/**
 * @file
 * Timing-model tests: per-opcode costs, memory-hierarchy charging,
 * spawn/squash overheads, CMP clock behaviour and the software cost
 * model's components.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/isa/assembler.hh"
#include "src/sim/timing.hh"

namespace
{

using namespace pe;
using isa::Opcode;

TEST(Timing, OpcodeCostTable)
{
    sim::TimingConfig t;
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Add), t.aluCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Mul), t.mulCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Div), t.divCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Rem), t.divCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Beq), t.branchCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Jal), t.jumpCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Sys), t.sysCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Alloc), t.allocCost);
    EXPECT_EQ(sim::opcodeCost(t, Opcode::Pfix), t.fixCost);
    EXPECT_GT(t.divCost, t.mulCost);
    EXPECT_GT(t.mulCost, t.aluCost);
}

TEST(Timing, Table2Configurations)
{
    auto std_ = sim::TimingConfig::standardConfig();
    auto cmp = sim::TimingConfig::cmpConfig();
    EXPECT_EQ(std_.mem.l1HitLatency, 2u);
    EXPECT_EQ(cmp.mem.l1HitLatency, 3u);
    EXPECT_EQ(std_.spawnOverhead, 20u);
    EXPECT_EQ(std_.squashOverhead, 10u);
    EXPECT_EQ(std_.mem.memLatency, 200u);
}

uint64_t
cyclesOf(const std::string &asmSrc)
{
    auto program = isa::assemble(asmSrc);
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine engine(program, cfg);
    return engine.run({}).cycles;
}

TEST(Timing, DivCostsMoreThanAdd)
{
    std::string adds = "li r8, 9\nli r9, 3\n";
    std::string divs = adds;
    for (int i = 0; i < 50; ++i) {
        adds += "add r10, r8, r9\n";
        divs += "div r10, r8, r9\n";
    }
    adds += "sys exit\n";
    divs += "sys exit\n";
    uint64_t a = cyclesOf(adds);
    uint64_t d = cyclesOf(divs);
    sim::TimingConfig t = sim::TimingConfig::standardConfig();
    EXPECT_EQ(d - a, 50 * (t.divCost - t.aluCost));
}

TEST(Timing, ColdMissThenWarmHits)
{
    // First access pays the full miss chain; subsequent hits pay L1.
    std::string warm = "li r8, 100\n";
    for (int i = 0; i < 10; ++i)
        warm += "ld r9, 0(r8)\n";
    warm += "sys exit\n";
    std::string cold = "li r8, 100\nld r9, 0(r8)\nsys exit\n";

    sim::TimingConfig t = sim::TimingConfig::standardConfig();
    uint64_t one = cyclesOf(cold);
    uint64_t ten = cyclesOf(warm);
    // The nine extra loads are all L1 hits.
    EXPECT_EQ(ten - one, 9 * (t.aluCost + t.mem.l1HitLatency));
    // And the first one paid at least the memory latency.
    EXPECT_GT(one, t.mem.memLatency);
}

TEST(Timing, SpawnAndSquashChargedPerNtPath)
{
    // One cold branch executed once; NT-Path length 0 is impossible,
    // so compare a 1-instruction NT-Path against the overhead model:
    // spawn + 1 instruction + squash.
    const char *src = R"(
.data flag 0
    ld   r8, flag(r0)
    beq  r8, r0, out       # taken; NT edge explores 'out' fallthrough
    nop
out:
    sys  exit
)";
    auto program = isa::assemble(src);
    auto off = core::PeConfig::forMode(core::PeMode::Off);
    auto std_ = core::PeConfig::forMode(core::PeMode::Standard);
    std_.maxNtPathLength = 1;
    core::PathExpanderEngine a(program, off);
    core::PathExpanderEngine b(program, std_);
    uint64_t base = a.run({}).cycles;
    auto r = b.run({});
    ASSERT_EQ(r.ntPathsSpawned, 1u);
    ASSERT_EQ(r.ntRecords[0].length, 1u);
    sim::TimingConfig t = sim::TimingConfig::standardConfig();
    EXPECT_EQ(r.cycles - base,
              t.spawnOverhead + t.aluCost + t.squashOverhead);
}

TEST(Timing, CmpClockIsPrimaryCompletionTime)
{
    // In CMP mode the NT instructions run on idle cores: for a
    // compute-only program the primary clock grows only by spawn
    // overheads, not by NT execution.
    std::string src = ".data flag 0\n";
    src += "li r20, 30\nloop:\n";
    src += "ld r8, flag(r0)\n";
    src += "beq r8, r0, cont\n";
    for (int i = 0; i < 20; ++i)
        src += "addi r9, r9, 1\n";      // cold body
    src += "cont:\naddi r20, r20, -1\n";
    src += "bgt r20, r0, loop\n";
    src += "sys exit\n";

    auto program = isa::assemble(src);
    auto cmpCfg = core::PeConfig::forMode(core::PeMode::Cmp);
    auto offCfg = core::PeConfig::forMode(core::PeMode::Off);
    offCfg.timing = sim::TimingConfig::cmpConfig();

    core::PathExpanderEngine cmp(program, cmpCfg);
    core::PathExpanderEngine off(program, offCfg);
    auto rc = cmp.run({});
    auto ro = off.run({});
    ASSERT_GT(rc.ntPathsSpawned, 0u);
    // Overhead far below the serial cost of the NT instructions.
    uint64_t serialNtCost = rc.ntInstructions;  // >= 1 cycle each
    EXPECT_LT(rc.cycles - ro.cycles, serialNtCost);
}

TEST(Timing, DetectorCheckCostCharged)
{
    std::string src = "li r8, 100\n";
    for (int i = 0; i < 20; ++i)
        src += "chkb 0(r8)\n";
    src += "sys exit\n";
    auto program = isa::assemble(src);

    detect::BoundsChecker ccured;   // 6 cycles per check
    detect::WatchChecker iwatcher;  // free
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine a(program, cfg, &ccured);
    core::PathExpanderEngine b(program, cfg, &iwatcher);
    uint64_t ca = a.run({}).cycles;
    uint64_t cb = b.run({}).cycles;
    EXPECT_EQ(ca - cb, 20 * ccured.boundsCheckCost());
}

TEST(Timing, L2ContentionReported)
{
    const auto &cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    (void)cfg;
    // Exercised end-to-end in the workload runs; here just check the
    // counter plumbing.
    mem::SharedPort port;
    port.acquire(0, 10);
    port.acquire(5, 10);
    EXPECT_EQ(port.contentionCycles(), 5u);
    port.reset();
    EXPECT_EQ(port.contentionCycles(), 0u);
}

} // namespace
