/**
 * @file
 * CMP-optimization tests (paper Section 4.3): correctness of the
 * tree-ordered versioning and commit/squash-token protocol, overlap
 * benefits, MaxNumNTPaths capping and forced squashes.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

const char *loopy = R"(
int total = 0;
int mode = 0;
int hist[16];
int main() {
    int i = 0;
    while (i < 60) {
        if (i % 4 == 0) {
            total = total + 2;
        } else {
            total = total + 1;
        }
        if (mode == 3) {
            total = total * 2;
        }
        hist[i % 16] = hist[i % 16] + total;
        i = i + 1;
    }
    print_int(total);
    print_int(hist[3]);
    return 0;
}
)";

core::RunResult
run(const isa::Program &program, core::PeConfig cfg,
    std::vector<int32_t> input = {})
{
    core::PathExpanderEngine engine(program, cfg, nullptr);
    return engine.run(std::move(input));
}

TEST(Cmp, ProgramBehaviorMatchesBaseline)
{
    auto program = minic::compile(loopy, "loopy");
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    auto cmp = run(program, core::PeConfig::forMode(core::PeMode::Cmp));
    EXPECT_GT(cmp.ntPathsSpawned, 0u);
    EXPECT_EQ(off.io.charOutput, cmp.io.charOutput);
    EXPECT_EQ(off.takenInstructions, cmp.takenInstructions);
}

TEST(Cmp, MatchesStandardModeResults)
{
    auto program = minic::compile(loopy, "loopy");
    auto std_ =
        run(program, core::PeConfig::forMode(core::PeMode::Standard));
    auto cmp = run(program, core::PeConfig::forMode(core::PeMode::Cmp));
    // Same NT-Path selection policy: same spawns and coverage.
    EXPECT_EQ(std_.ntPathsSpawned,
              cmp.ntPathsSpawned + cmp.ntPathsSkippedBusy);
    EXPECT_EQ(std_.io.charOutput, cmp.io.charOutput);
}

TEST(Cmp, OverlapsNtWorkWithTakenPath)
{
    // The whole point of Figure 4(b): NT instructions execute on idle
    // cores, so the primary core finishes far sooner than in the
    // standard configuration for the same NT workload.
    const auto &w = workloads::getWorkload("pe_go");
    auto program = minic::compile(w.source, w.name);

    auto stdCfg = core::PeConfig::forMode(core::PeMode::Standard);
    auto cmpCfg = core::PeConfig::forMode(core::PeMode::Cmp);
    auto std_ = run(program, stdCfg, w.benignInputs[0]);
    auto cmp = run(program, cmpCfg, w.benignInputs[0]);

    EXPECT_GT(cmp.ntInstructions, 0u);
    EXPECT_LT(cmp.cycles, std_.cycles);
}

TEST(Cmp, MaxNumNtPathsCapsOutstandingWork)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    cfg.maxNumNtPaths = 1;
    cfg.maxNtPathLength = 2000;
    auto capped = run(program, cfg);
    cfg.maxNumNtPaths = 32;
    auto roomy = run(program, cfg);
    EXPECT_GT(capped.ntPathsSkippedBusy, roomy.ntPathsSkippedBusy);
    EXPECT_LE(capped.ntPathsSpawned, roomy.ntPathsSpawned);
}

TEST(Cmp, QueueingBeyondIdleCores)
{
    // 2 cores = 1 idle core; long NT-Paths force queueing, yet all
    // spawned paths still run and the program result is unchanged.
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    cfg.numCores = 2;
    cfg.maxNtPathLength = 500;
    auto r = run(program, cfg);
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    EXPECT_GT(r.ntPathsSpawned, 0u);
    EXPECT_EQ(r.io.charOutput, off.io.charOutput);
}

TEST(Cmp, DetectionEquivalentToStandard)
{
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);

    auto collectIds = [&](core::PeMode mode) {
        detect::AssertChecker checker;
        auto cfg = core::PeConfig::forMode(mode);
        cfg.maxNtPathLength = w.maxNtPathLength;
        core::PathExpanderEngine engine(program, cfg, &checker);
        auto r = engine.run(w.benignInputs[0]);
        std::set<int32_t> ids;
        for (const auto &rep : r.monitor.reports())
            ids.insert(rep.assertId);
        return ids;
    };

    EXPECT_EQ(collectIds(core::PeMode::Standard),
              collectIds(core::PeMode::Cmp));
}

TEST(Cmp, SegmentDepthForcesSquashes)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    cfg.maxSegmentDepth = 2;
    cfg.maxNtPathLength = 2000;
    auto r = run(program, cfg);
    bool forced = false;
    for (const auto &rec : r.ntRecords)
        forced |= rec.cause == core::NtStopCause::ForcedSquash;
    EXPECT_TRUE(forced);
    // Correctness is unaffected by forced squashes.
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    EXPECT_EQ(r.io.charOutput, off.io.charOutput);
}

TEST(Cmp, SingleIdleCoreStillWorks)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    cfg.numCores = 2;
    auto r = run(program, cfg);
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    EXPECT_GT(r.ntPathsSpawned, 0u);
    EXPECT_EQ(r.io.charOutput, off.io.charOutput);
}

TEST(Cmp, DeterministicAcrossRuns)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    auto a = run(program, cfg);
    auto b = run(program, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ntPathsSpawned, b.ntPathsSpawned);
}

} // namespace
