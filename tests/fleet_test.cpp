/**
 * @file
 * Fleet tests: deterministic sharding, bit-reproducible merges,
 * worker-loss tolerance and the job service.
 *
 * The fleet's contract mirrors the single-process explorer's: same
 * options, same result — except "result" is now a merged frontier
 * and corpus assembled from N worker processes over IPC.  The tests
 * pin the shard plan (a pure function of config hash + seed), the
 * reproducibility witnesses (frontier/corpus digests across repeated
 * runs), the chaos story (kill one worker mid-round via an armed
 * fault plan; the fleet converges and reports the loss), and the
 * spool-driven service mode end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "src/fleet/checkpoint.hh"
#include "src/fleet/coordinator.hh"
#include "src/fleet/service.hh"
#include "src/fleet/transport.hh"
#include "src/fleet/worker.hh"
#include "src/minic/compiler.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/subprocess.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;
namespace fs = std::filesystem;

const workloads::Workload &
scheduleWorkload()
{
    return workloads::getWorkload("schedule");
}

const isa::Program &
scheduleProgram()
{
    static const isa::Program program =
        minic::compile(scheduleWorkload().source, "schedule");
    return program;
}

fleet::FleetOptions
fleetOptions(unsigned shards, uint64_t maxRuns, uint64_t seed)
{
    fleet::FleetOptions opts;
    // PE off keeps each monitored run cheap; the fleet machinery
    // under test is identical in every mode.
    opts.base.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.base.budget.maxRuns = maxRuns;
    opts.base.batchSize = 8;
    opts.base.seed = seed;
    opts.base.label = "schedule";
    opts.shards = shards;
    opts.workerThreads = 1;
    return opts;
}

TEST(ShardPlan, IsAPureFunctionOfItsInputs)
{
    auto a = fleet::makeShardPlan(0xc0de, 0x5eed, 4, 10);
    auto b = fleet::makeShardPlan(0xc0de, 0x5eed, 4, 10);
    EXPECT_EQ(a.planDigest, b.planDigest);
    ASSERT_EQ(a.specs.size(), b.specs.size());
    for (size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_EQ(a.specs[i].shardSeed, b.specs[i].shardSeed);
        EXPECT_EQ(a.specs[i].seedIndices, b.specs[i].seedIndices);
    }

    // Any identity knob moving re-plans the fleet.
    EXPECT_NE(fleet::makeShardPlan(0xc0de, 0x5eed, 4, 10).planDigest,
              fleet::makeShardPlan(0xc0df, 0x5eed, 4, 10).planDigest);
    EXPECT_NE(fleet::makeShardPlan(0xc0de, 0x5eed, 4, 10).planDigest,
              fleet::makeShardPlan(0xc0de, 0x5eee, 4, 10).planDigest);
    EXPECT_NE(fleet::makeShardPlan(0xc0de, 0x5eed, 4, 10).planDigest,
              fleet::makeShardPlan(0xc0de, 0x5eed, 3, 10).planDigest);
}

TEST(ShardPlan, DealsSeedsRoundRobinAndWrapsSmallSeedSets)
{
    auto plan = fleet::makeShardPlan(1, 2, 3, 8);
    // 8 seeds over 3 shards: 0,3,6 / 1,4,7 / 2,5.
    EXPECT_EQ(plan.specs[0].seedIndices,
              (std::vector<uint32_t>{0, 3, 6}));
    EXPECT_EQ(plan.specs[1].seedIndices,
              (std::vector<uint32_t>{1, 4, 7}));
    EXPECT_EQ(plan.specs[2].seedIndices,
              (std::vector<uint32_t>{2, 5}));

    // Fewer seeds than shards: every shard still starts with one.
    auto small = fleet::makeShardPlan(1, 2, 4, 2);
    for (const auto &spec : small.specs)
        EXPECT_FALSE(spec.seedIndices.empty());
    EXPECT_EQ(small.specs[2].seedIndices,
              (std::vector<uint32_t>{0}));
    EXPECT_EQ(small.specs[3].seedIndices,
              (std::vector<uint32_t>{1}));

    // Distinct shard seeds, so wrapped shards still diverge.
    EXPECT_NE(small.specs[2].shardSeed, small.specs[0].shardSeed);
}

TEST(Fleet, MergedDigestsAreBitReproducible)
{
    auto runOnce = [&] {
        return fleet::runFleet(scheduleProgram(),
                               scheduleWorkload().benignInputs,
                               fleetOptions(3, 120, 0x42));
    };
    fleet::FleetResult first = runOnce();
    fleet::FleetResult second = runOnce();

    EXPECT_EQ(first.planDigest, second.planDigest);
    EXPECT_EQ(first.frontierDigest, second.frontierDigest);
    EXPECT_EQ(first.corpusDigest, second.corpusDigest);
    EXPECT_EQ(first.runs, second.runs);
    EXPECT_EQ(first.rounds, second.rounds);
    EXPECT_EQ(first.corpusSize, second.corpusSize);
    EXPECT_EQ(first.edgesCombined, second.edgesCombined);

    // And the fleet actually explored: corpus beyond the seeds'
    // admissions, a real share of the edge universe covered.
    EXPECT_EQ(first.runs, 120u);
    EXPECT_GT(first.corpusSize, 0u);
    EXPECT_GT(first.edgesCombined, first.totalEdges / 2);
    EXPECT_EQ(first.lostWorkers, 0u);
}

TEST(Fleet, DifferentSeedsDiverge)
{
    fleet::FleetResult a =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs,
                        fleetOptions(2, 80, 0x42));
    fleet::FleetResult b =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs,
                        fleetOptions(2, 80, 0x43));
    EXPECT_NE(a.planDigest, b.planDigest);
    // The corpora virtually never coincide; digests catch it if the
    // seed failed to propagate into the workers.
    EXPECT_NE(a.corpusDigest, b.corpusDigest);
}

TEST(Fleet, SurvivesAWorkerKilledMidRound)
{
    // Shard 1's second round throws inside the forked worker; the
    // exception escapes workerMain, the child exits nonzero, and the
    // coordinator sees a dead pipe mid-round.  The fault site name
    // carries the shard id, so exactly one worker dies.
    fault::FaultPlan plan;
    plan.site = "fleet.worker_round.1";
    plan.hit = 2;
    plan.message = "injected worker death";
    fault::ScopedFaultPlan armed(plan);

    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs,
                        fleetOptions(3, 120, 0x42));

    EXPECT_EQ(res.lostWorkers, 1u);
    ASSERT_EQ(res.shards.size(), 3u);
    EXPECT_FALSE(res.shards[1].alive);
    EXPECT_TRUE(res.shards[0].alive);
    EXPECT_TRUE(res.shards[2].alive);

    // The fleet still converged on the survivors.
    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_EQ(res.runs, 120u);
    EXPECT_GT(res.edgesCombined, res.totalEdges / 2);
}

TEST(Fleet, SingleShardMatchesItsOwnRerun)
{
    // Degenerate fleet: one worker.  Still reproducible, still
    // terminates on the budget.
    fleet::FleetResult a =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs,
                        fleetOptions(1, 60, 0x99));
    fleet::FleetResult b =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs,
                        fleetOptions(1, 60, 0x99));
    EXPECT_EQ(a.frontierDigest, b.frontierDigest);
    EXPECT_EQ(a.corpusDigest, b.corpusDigest);
    EXPECT_GE(a.runs, 60u);
}

TEST(Fleet, PlateauStopsBeforeTheRunBudget)
{
    fleet::FleetOptions opts = fleetOptions(2, 100000, 0x42);
    opts.plateauRounds = 4;
    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    EXPECT_EQ(res.stop, fleet::FleetStop::Plateau);
    EXPECT_LT(res.runs, 100000u);
}

// --- Round deadline and bounded shutdown ----------------------------

TEST(Fleet, RoundDeadlineTurnsAStallIntoALostWorkerNotAHang)
{
    // Shard 1 stalls 2 s inside its second round.  The 400 ms round
    // deadline marks it dead instead of waiting the stall out: the
    // survivors' deltas (which arrived long before the deadline)
    // still merge, the dead shard's budget flows on, and the fleet
    // spends the full run budget.
    fault::FaultPlan plan;
    plan.site = "fleet.worker_round.1";
    plan.hit = 2;
    plan.kind = fault::FaultKind::Stall;
    plan.stallMs = 2000;
    fault::ScopedFaultPlan armed(plan);

    fleet::FleetOptions opts = fleetOptions(3, 120, 0x42);
    opts.roundDeadlineMs = 400;
    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);

    EXPECT_EQ(res.lostWorkers, 1u);
    ASSERT_EQ(res.shards.size(), 3u);
    EXPECT_FALSE(res.shards[1].alive);
    EXPECT_TRUE(res.shards[0].alive);
    EXPECT_TRUE(res.shards[2].alive);
    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_EQ(res.runs, 120u);
}

TEST(Fleet, ShutdownIsBoundedWhenAWorkerSitsOnItsGoodbye)
{
    // Shard 0 stalls 10 s between receiving Stop and answering with
    // Goodbye.  The goodbye timeout gives up on the frame and the
    // reap timeout escalates to SIGKILL, so the whole run returns
    // long before the stall would have ended on its own.
    fault::FaultPlan plan;
    plan.site = "fleet.worker_stop.0";
    plan.kind = fault::FaultKind::Stall;
    plan.stallMs = 10000;
    fault::ScopedFaultPlan armed(plan);

    fleet::FleetOptions opts = fleetOptions(2, 48, 0x42);
    opts.goodbyeTimeoutMs = 200;
    opts.reapTimeoutMs = 200;

    auto start = std::chrono::steady_clock::now();
    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    auto elapsedMs = std::chrono::duration_cast<
                         std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // The rounds themselves completed normally before the stall
    // (round-remainder allocation may overshoot the budget slightly).
    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_GE(res.runs, 48u);
    EXPECT_EQ(res.lostWorkers, 0u);
    EXPECT_LT(elapsedMs, 8000)
        << "shutdown must not wait out a wedged worker";
}

// --- Heartbeat liveness and quorum ----------------------------------

TEST(Fleet, HeartbeatDeclaresAStalledWorkerDeadBeforeTheDeadline)
{
    // Shard 1 stalls 20 s inside its second round while the round
    // deadline is a uselessly generous 30 s.  Heartbeats are what
    // save the session: the worker's progress beats stop, the
    // coordinator marks it suspect after heartbeatMs of silence and
    // dead after twice that, and the stalled shard's budget flows to
    // the survivors within ~2x heartbeatMs instead of a deadline.
    fault::FaultPlan plan;
    plan.site = "fleet.worker_round.1";
    plan.hit = 2;
    plan.kind = fault::FaultKind::Stall;
    plan.stallMs = 20000;
    fault::ScopedFaultPlan armed(plan);

    fleet::FleetOptions opts = fleetOptions(3, 120, 0x42);
    opts.heartbeatMs = 150;
    opts.roundDeadlineMs = 30000;   // the heartbeat must beat this
    opts.reapTimeoutMs = 200;       // bounded SIGKILL of the staller

    auto start = std::chrono::steady_clock::now();
    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    auto elapsedMs = std::chrono::duration_cast<
                         std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    EXPECT_EQ(res.lostWorkers, 1u);
    ASSERT_EQ(res.shards.size(), 3u);
    EXPECT_FALSE(res.shards[1].alive);
    EXPECT_TRUE(res.shards[0].alive);
    EXPECT_TRUE(res.shards[2].alive);

    // The survivors still spent the whole budget...
    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_EQ(res.runs, 120u);
    // ...and the session never waited out the stall or the deadline.
    EXPECT_LT(elapsedMs, 10000)
        << "a stalled worker must die at 2x heartbeatMs, not at the "
           "round deadline";
}

TEST(Fleet, QuorumLossStopsTheSessionInsteadOfLimpingOn)
{
    // Two of three workers die in round 2; with --min-quorum 2 the
    // session refuses to limp along on the lone survivor and stops
    // with QuorumLost instead of burning the rest of a huge budget.
    fault::FaultPlan p1;
    p1.site = "fleet.worker_round.1";
    p1.hit = 2;
    fault::FaultPlan p2;
    p2.site = "fleet.worker_round.2";
    p2.hit = 2;
    fault::ScopedFaultPlan armed(
        std::vector<fault::FaultPlan>{p1, p2});

    fleet::FleetOptions opts = fleetOptions(3, 100000, 0x42);
    opts.minQuorum = 2;
    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);

    EXPECT_EQ(res.stop, fleet::FleetStop::QuorumLost);
    EXPECT_EQ(res.lostWorkers, 2u);
    ASSERT_EQ(res.shards.size(), 3u);
    EXPECT_TRUE(res.shards[0].alive);
    EXPECT_FALSE(res.shards[1].alive);
    EXPECT_FALSE(res.shards[2].alive);
    EXPECT_LT(res.runs, 100000u);
}

TEST(FleetBackoff, RedialDelayIsDeterministicBoundedAndGrows)
{
    // The redial schedule is a pure function: a crashed-and-restarted
    // worker reproduces its own backoff, and distinct shards (distinct
    // seed words) jitter apart instead of thundering in lockstep.
    const uint64_t seed = 0xfeedface;
    for (uint64_t attempt = 0; attempt < 12; ++attempt) {
        int a = fleet::dialBackoffMs(seed, attempt, 100, 5000);
        EXPECT_EQ(a, fleet::dialBackoffMs(seed, attempt, 100, 5000));

        // Exponential envelope: jitter shaves at most half the raw
        // doubling curve, so delay stays in [raw/2, raw].
        int raw = static_cast<int>(std::min<uint64_t>(
            5000, 100ull << std::min<uint64_t>(attempt, 20)));
        EXPECT_GE(a, std::max(1, raw / 2)) << "attempt " << attempt;
        EXPECT_LE(a, raw) << "attempt " << attempt;
    }

    // Saturation: arbitrarily late attempts sit in [max/2, max] with
    // no overflow.
    int late = fleet::dialBackoffMs(seed, 4000, 100, 5000);
    EXPECT_GE(late, 2500);
    EXPECT_LE(late, 5000);

    // Degenerate parameters still yield a sane (>= 1 ms) delay.
    EXPECT_GE(fleet::dialBackoffMs(seed, 0, 0, 0), 1);

    // Different seed words de-synchronize somewhere in the schedule.
    bool differs = false;
    for (uint64_t attempt = 0; attempt < 8 && !differs; ++attempt)
        differs = fleet::dialBackoffMs(1, attempt, 100, 5000) !=
                  fleet::dialBackoffMs(2, attempt, 100, 5000);
    EXPECT_TRUE(differs);
}

// --- TCP transport: loopback fleets ---------------------------------

/**
 * Run a TCP fleet on loopback: bind an ephemeral port, fork
 * opts.shards dialing workers (each runs remoteWorkerMain exactly as
 * `explore --connect` would, deriving its own plan and options), and
 * drive the coordinator over the accepted sockets.  @p workerPlans
 * are armed inside the children only; the shard id baked into a
 * fault-site name selects which worker misbehaves.
 */
fleet::FleetResult
runTcpFleet(fleet::FleetOptions opts,
            const std::vector<fault::FaultPlan> &workerPlans = {})
{
    auto transport =
        std::make_shared<fleet::TcpTransport>("127.0.0.1:0");
    const std::string addr =
        "127.0.0.1:" + std::to_string(transport->port());
    opts.transport = transport;
    if (opts.roundDeadlineMs == 0)
        opts.roundDeadlineMs = 30000;   // hang guard, not the test

    std::vector<proc::ChildProcess> workers;
    for (unsigned i = 0; i < opts.shards; ++i) {
        workers.push_back(proc::spawnChild([&](int pairFd) {
            // The socketpair is not the channel here: dial instead.
            close(pairFd);
            fault::armPlans(workerPlans);
            fleet::RemoteWorkerOptions ro;
            ro.connect = addr;
            ro.shards = opts.shards;
            ro.base = opts.base;
            ro.seeds = scheduleWorkload().benignInputs;
            ro.workerThreads = opts.workerThreads;
            ro.redialDelayMs = 25;  // keep reconnects brisk in tests
            return fleet::remoteWorkerMain(scheduleProgram(), ro);
        }));
    }

    fleet::FleetResult res =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    for (auto &worker : workers)
        EXPECT_EQ(worker.wait(), 0) << "worker exit status";
    return res;
}

TEST(FleetTcp, LoopbackDigestsMatchTheForkFleet)
{
    // The whole point of the transport abstraction: same options,
    // same bytes, whether the workers are forked children over
    // socketpairs or remote processes over TCP.
    fleet::FleetOptions opts = fleetOptions(3, 120, 0x42);
    fleet::FleetResult forked =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    fleet::FleetResult tcp = runTcpFleet(opts);

    EXPECT_EQ(tcp.planDigest, forked.planDigest);
    EXPECT_EQ(tcp.frontierDigest, forked.frontierDigest);
    EXPECT_EQ(tcp.corpusDigest, forked.corpusDigest);
    EXPECT_EQ(tcp.runs, forked.runs);
    EXPECT_EQ(tcp.rounds, forked.rounds);
    EXPECT_EQ(tcp.corpusSize, forked.corpusSize);
    EXPECT_EQ(tcp.edgesCombined, forked.edgesCombined);
    EXPECT_EQ(tcp.lostWorkers, 0u);
    EXPECT_EQ(tcp.reconnects, 0u);
}

TEST(FleetTcp, PathTrackerDigestsMatchAcrossTransports)
{
    // With the prime-path tracker on, the merged completion words are
    // part of the reproducibility contract too: fork and TCP fleets
    // must land on the same path digest, and the workers' folded
    // completions must actually reach the coordinator.
    fleet::FleetOptions opts = fleetOptions(3, 120, 0x42);
    opts.base.config.recordEdgeTrace = true;
    opts.base.pathObjective = true;
    fleet::FleetResult forked =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);
    fleet::FleetResult tcp = runTcpFleet(opts);

    EXPECT_GT(forked.primePaths, 0u);
    EXPECT_GT(forked.pathCoverSize, 0u);
    EXPECT_GT(forked.pathsCompleted, 0u);
    EXPECT_EQ(tcp.primePaths, forked.primePaths);
    EXPECT_EQ(tcp.pathCoverSize, forked.pathCoverSize);
    EXPECT_EQ(tcp.pathsCompleted, forked.pathsCompleted);
    EXPECT_EQ(tcp.pathCoverCompleted, forked.pathCoverCompleted);
    EXPECT_EQ(tcp.pathDigest, forked.pathDigest);
    EXPECT_EQ(tcp.frontierDigest, forked.frontierDigest);
    EXPECT_EQ(tcp.corpusDigest, forked.corpusDigest);
    EXPECT_EQ(tcp.lostWorkers, 0u);
}

TEST(FleetTcp, DroppedConnectionsResumeWithoutPerturbingDigests)
{
    fleet::FleetOptions opts = fleetOptions(3, 120, 0x42);
    fleet::FleetResult forked =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);

    // Shard 0 loses its socket right *after* executing round 2: on
    // rejoin the coordinator replays the RoundStart and the worker
    // must answer from its stored delta without re-executing (a
    // re-execution would fork the RNG universe and the digests would
    // catch it).  Shard 1 loses its socket *before* executing round
    // 3: the replayed RoundStart is executed for the first time.
    fault::FaultPlan post;
    post.site = "fleet.remote_drop_post.0";
    post.hit = 2;
    fault::FaultPlan pre;
    pre.site = "fleet.remote_drop_pre.1";
    pre.hit = 3;
    fleet::FleetResult tcp = runTcpFleet(opts, {post, pre});

    EXPECT_EQ(tcp.reconnects, 2u);
    EXPECT_EQ(tcp.lostWorkers, 0u);
    EXPECT_EQ(tcp.frontierDigest, forked.frontierDigest);
    EXPECT_EQ(tcp.corpusDigest, forked.corpusDigest);
    EXPECT_EQ(tcp.runs, forked.runs);
    EXPECT_EQ(tcp.rounds, forked.rounds);
    EXPECT_EQ(tcp.corpusSize, forked.corpusSize);
}

// --- Durable sessions: kill -9 the coordinator, resume --------------

TEST(FleetTcp, CoordinatorKillNineThenResumeIsByteIdentical)
{
    // The durable-session contract end to end: a coordinator with
    // --fleet-checkpoint is SIGKILLed mid-session (no flush, no
    // goodbye — exactly what a crashed host looks like), a fresh
    // coordinator resumes from the checkpoint on the same address,
    // the TCP workers redial through the ordinary reconnect path, and
    // the merged digests come out byte-identical to a run that was
    // never interrupted.
    fleet::FleetOptions opts = fleetOptions(3, 240, 0x42);
    fleet::FleetResult baseline =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, opts);

    fs::path ckpt =
        fs::path(testing::TempDir()) / "fleet_kill9.ckpt";
    fs::remove(ckpt);

    // Pre-pick a port: bind an ephemeral one, note it, release it, so
    // both the doomed coordinator and its replacement can claim the
    // same address the workers know.
    uint16_t port = 0;
    {
        fleet::TcpTransport probe("127.0.0.1:0");
        port = probe.port();
    }
    const std::string addr = "127.0.0.1:" + std::to_string(port);

    proc::ChildProcess coord = proc::spawnChild([&](int pairFd) {
        close(pairFd);
        fleet::FleetOptions co = opts;
        co.transport = std::make_shared<fleet::TcpTransport>(addr);
        co.roundDeadlineMs = 30000;
        co.checkpointPath = ckpt.string();
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, co);
        return 0;
    });

    std::vector<proc::ChildProcess> workers;
    for (unsigned i = 0; i < opts.shards; ++i) {
        workers.push_back(proc::spawnChild([&](int pairFd) {
            close(pairFd);
            fleet::RemoteWorkerOptions ro;
            ro.connect = addr;
            ro.shards = opts.shards;
            ro.base = opts.base;
            ro.seeds = scheduleWorkload().benignInputs;
            ro.workerThreads = opts.workerThreads;
            ro.dialAttempts = 2000;  // outlive the coordinator gap
            ro.redialDelayMs = 10;
            ro.redialMaxMs = 100;
            return fleet::remoteWorkerMain(scheduleProgram(), ro);
        }));
    }

    // Wait for durable progress (a checkpoint covering >= 2 merged
    // rounds), then kill -9: mid-session, zero warning.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "coordinator made no durable progress";
        try {
            fleet::FleetCheckpoint c = fleet::loadFleetCheckpoint(
                ckpt.string(), scheduleProgram());
            if (c.rounds >= 2)
                break;
        } catch (const FatalError &) {
            // Not written yet; atomic rename means never partial.
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    coord.kill(SIGKILL);
    EXPECT_EQ(coord.wait(), -SIGKILL);

    // Resume on the same address.  The workers' bare-EOF redial loop
    // finds the new listener; identity validation accepts the
    // checkpoint; the session continues where round R left off.
    fleet::FleetOptions resumeOpts = opts;
    resumeOpts.transport =
        std::make_shared<fleet::TcpTransport>(addr);
    resumeOpts.roundDeadlineMs = 30000;
    resumeOpts.checkpointPath = ckpt.string();
    resumeOpts.resumeFrom = ckpt.string();
    fleet::FleetResult resumed =
        fleet::runFleet(scheduleProgram(),
                        scheduleWorkload().benignInputs, resumeOpts);

    for (auto &worker : workers)
        EXPECT_EQ(worker.wait(), 0) << "worker exit status";

    EXPECT_EQ(resumed.planDigest, baseline.planDigest);
    EXPECT_EQ(resumed.frontierDigest, baseline.frontierDigest);
    EXPECT_EQ(resumed.corpusDigest, baseline.corpusDigest);
    EXPECT_EQ(resumed.runs, baseline.runs);
    EXPECT_EQ(resumed.rounds, baseline.rounds);
    EXPECT_EQ(resumed.corpusSize, baseline.corpusSize);
    EXPECT_EQ(resumed.edgesCombined, baseline.edgesCombined);
    EXPECT_EQ(resumed.lostWorkers, 0u);
    // All shards came back through the reconnect path.
    EXPECT_GE(resumed.reconnects, opts.shards);

    fs::remove(ckpt);
}

// --- Job specs and the service loop ---------------------------------

TEST(FleetService, ParsesJobSpecs)
{
    fleet::JobSpec job = fleet::parseJobSpec(
        "j1",
        "workload=schedule runs=64 shards=3 seed=7 batch=4 "
        "rounds=12 plateau=2 policy=uniform mode=off");
    EXPECT_EQ(job.workload, "schedule");
    EXPECT_EQ(job.runs, 64u);
    EXPECT_EQ(job.shards, 3u);
    EXPECT_EQ(job.seed, 7u);
    EXPECT_EQ(job.batch, 4u);
    EXPECT_EQ(job.roundRuns, 12u);
    EXPECT_EQ(job.plateau, 2u);
    EXPECT_EQ(job.policy, "uniform");
    EXPECT_EQ(job.mode, "off");

    EXPECT_THROW(fleet::parseJobSpec("j2", "runs=10"), FatalError);
    EXPECT_THROW(
        fleet::parseJobSpec("j3", "workload=schedule bogus=1"),
        FatalError);
    EXPECT_THROW(
        fleet::parseJobSpec("j4", "workload=schedule runs=ten"),
        FatalError);
    EXPECT_THROW(
        fleet::parseJobSpec("j5", "workload=schedule shards=0"),
        FatalError);
}

TEST(FleetService, DrainsASpoolDirectory)
{
    fs::path spool =
        fs::path(testing::TempDir()) / "fleet_service_spool";
    fs::remove_all(spool);
    fs::create_directories(spool);

    {
        std::ofstream good(spool / "001-good.job");
        good << "# a tiny but real fleet job\n"
             << "workload=schedule runs=40 shards=2 seed=11 "
             << "mode=off\n";
        std::ofstream bad(spool / "002-bad.job");
        bad << "workload=no_such_workload runs=10\n";
    }

    std::ostringstream out;
    fleet::ServiceOptions svc;
    svc.spoolDir = spool.string();
    svc.out = &out;
    svc.drainOnce = true;
    svc.workerThreads = 1;
    EXPECT_EQ(fleet::runService(svc), 2u);

    std::string results = out.str();
    EXPECT_NE(results.find("\"event\":\"job\""), std::string::npos);
    EXPECT_NE(results.find("\"job\":\"001-good\""),
              std::string::npos);
    EXPECT_NE(results.find("\"frontier_digest\":\"0x"),
              std::string::npos);
    EXPECT_NE(results.find("\"event\":\"job_error\""),
              std::string::npos);
    EXPECT_NE(results.find("no_such_workload"), std::string::npos);

    // Consumed jobs are renamed out of the queue.
    EXPECT_FALSE(fs::exists(spool / "001-good.job"));
    EXPECT_TRUE(fs::exists(spool / "001-good.done"));
    EXPECT_TRUE(fs::exists(spool / "002-bad.failed"));

    // The drain announces its own exit so a tailing consumer can tell
    // "done" from "dead".
    EXPECT_NE(results.find("\"event\":\"stopped\""),
              std::string::npos);
    EXPECT_NE(results.find("\"reason\":\"drained\""),
              std::string::npos);
    EXPECT_NE(results.find("\"jobs\":2"), std::string::npos);

    // A second drain finds an empty queue.
    std::ostringstream out2;
    svc.out = &out2;
    EXPECT_EQ(fleet::runService(svc), 0u);
    EXPECT_EQ(out2.str().find("\"event\":\"job\""),
              std::string::npos);

    fs::remove_all(spool);
}

TEST(FleetService, StopFlagFinishesTheJobAndWritesATerminalRecord)
{
    // Resident mode (no drainOnce): only the stop flag — the SIGTERM/
    // SIGINT handler in the CLI — brings the loop down.  The in-flight
    // job must finish (result record, spool marker) before the
    // terminal stopped record goes out.
    fs::path spool =
        fs::path(testing::TempDir()) / "fleet_stop_spool";
    fs::remove_all(spool);
    fs::create_directories(spool);
    {
        std::ofstream job(spool / "001-only.job");
        job << "workload=schedule runs=40 shards=2 seed=11 "
            << "mode=off\n";
    }

    std::ostringstream out;
    std::atomic<bool> stop{false};
    fleet::ServiceOptions svc;
    svc.spoolDir = spool.string();
    svc.out = &out;
    svc.drainOnce = false;
    svc.pollMs = 10;
    svc.workerThreads = 1;
    svc.stopFlag = &stop;

    std::thread stopper([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(150));
        stop.store(true, std::memory_order_relaxed);
    });
    uint64_t processed = fleet::runService(svc);
    stopper.join();

    EXPECT_EQ(processed, 1u);
    EXPECT_TRUE(fs::exists(spool / "001-only.done"));

    std::string results = out.str();
    size_t job = results.find("\"event\":\"job\"");
    size_t stopped = results.find("\"event\":\"stopped\"");
    ASSERT_NE(job, std::string::npos);
    ASSERT_NE(stopped, std::string::npos);
    EXPECT_LT(job, stopped)
        << "the in-flight job's record precedes the terminal record";
    EXPECT_NE(results.find("\"reason\":\"signal\""),
              std::string::npos);
    EXPECT_NE(results.find("\"jobs\":1"), std::string::npos);

    fs::remove_all(spool);
}

TEST(FleetService, JobResultsAreReproducible)
{
    auto runJob = [&] {
        fs::path spool =
            fs::path(testing::TempDir()) / "fleet_repro_spool";
        fs::remove_all(spool);
        fs::create_directories(spool);
        {
            std::ofstream job(spool / "r.job");
            job << "workload=schedule runs=60 shards=2 seed=5 "
                << "mode=off\n";
        }
        std::ostringstream out;
        fleet::ServiceOptions svc;
        svc.spoolDir = spool.string();
        svc.out = &out;
        svc.drainOnce = true;
        svc.workerThreads = 1;
        fleet::runService(svc);
        fs::remove_all(spool);

        // Strip the wall_ms field: it is the one legitimately
        // nondeterministic value in the record.
        std::string line = out.str();
        size_t wall = line.find(",\"wall_ms\":");
        EXPECT_NE(wall, std::string::npos);
        return line.substr(0, wall);
    };
    EXPECT_EQ(runJob(), runJob());
}

} // namespace
