/**
 * @file
 * Exploration-engine tests: deterministic corpus growth for a fixed
 * seed, coverage-delta admission, budget and plateau stops, and the
 * headline scheduling property — rare-edge-weighted parent selection
 * reaches strictly more edges than uniform-random under an equal run
 * budget on the schedule workload.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>

#include "src/explore/explorer.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

std::vector<std::vector<int32_t>>
seedInputs(const workloads::Workload &workload, size_t n)
{
    return {workload.benignInputs.begin(),
            workload.benignInputs.begin() +
                std::min(n, workload.benignInputs.size())};
}

explore::ExploreOptions
scheduleOptions(explore::SchedulePolicy policy, uint64_t maxRuns)
{
    explore::ExploreOptions opts;
    // PE off: coverage growth must come from the inputs themselves,
    // which is where scheduling policy matters most (and runs fast).
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.policy = policy;
    opts.budget.maxRuns = maxRuns;
    opts.batchSize = 8;
    return opts;
}

TEST(Explore, NtStopCauseNamesDistinctAndNonNull)
{
    const core::NtStopCause causes[] = {
        core::NtStopCause::MaxLength,
        core::NtStopCause::Crash,
        core::NtStopCause::UnsafeEvent,
        core::NtStopCause::ProgramEnd,
        core::NtStopCause::CapacityOverflow,
        core::NtStopCause::ForcedSquash,
    };
    std::set<std::string> names;
    for (auto cause : causes) {
        const char *name = core::ntStopCauseName(cause);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
        EXPECT_STRNE(name, "?");
        names.insert(name);
    }
    // The scheduler keys off stop causes; a duplicated name would
    // make two causes indistinguishable in the JSONL stream.
    EXPECT_EQ(names.size(), std::size(causes));
}

TEST(Explore, DeterministicForFixedSeed)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    auto runOnce = [&] {
        auto opts = scheduleOptions(
            explore::SchedulePolicy::RareEdgeWeighted, 60);
        opts.seed = 0x1234;
        explore::Explorer explorer(program, seedInputs(workload, 3),
                                   opts);
        return std::make_pair(explorer.run(),
                              explorer.corpus().entries());
    };

    auto [resA, corpusA] = runOnce();
    auto [resB, corpusB] = runOnce();

    EXPECT_EQ(resA.stop, resB.stop);
    EXPECT_EQ(resA.runs, resB.runs);
    EXPECT_EQ(resA.instructions, resB.instructions);
    ASSERT_EQ(resA.history.size(), resB.history.size());
    for (size_t i = 0; i < resA.history.size(); ++i) {
        EXPECT_EQ(resA.history[i].combinedEdges,
                  resB.history[i].combinedEdges);
        EXPECT_EQ(resA.history[i].admitted, resB.history[i].admitted);
    }
    ASSERT_EQ(corpusA.size(), corpusB.size());
    for (size_t i = 0; i < corpusA.size(); ++i) {
        EXPECT_EQ(corpusA[i].input, corpusB[i].input);
        EXPECT_EQ(corpusA[i].newEdges, corpusB[i].newEdges);
        EXPECT_EQ(corpusA[i].coverage.takenWords(),
                  corpusB[i].coverage.takenWords());
    }
}

TEST(Explore, CorpusAdmitsOnlyCoverageDelta)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    core::PathExpanderEngine engine(
        program, core::PeConfig::forMode(core::PeMode::Off));
    auto result = engine.run(workload.benignInputs[0]);

    explore::Corpus corpus(program);
    EXPECT_GT(corpus.consider(workload.benignInputs[0], result, 0),
              0u);
    // The identical run adds no new edges: rejected, corpus stable.
    EXPECT_EQ(corpus.consider(workload.benignInputs[0], result, 1),
              0u);
    EXPECT_EQ(corpus.size(), 1u);
    // Exercise counts accumulate for rejected runs too.
    EXPECT_EQ(corpus.exercise().runsAccumulated(), 2u);
}

TEST(Explore, PlateauStopTriggers)
{
    // One input-dependent branch: the frontier saturates after a
    // couple of batches, so the plateau bound must fire long before
    // the run budget.
    auto program = minic::compile(R"MC(
int main() {
    int v = read_int();
    if (v > 3) { print_int(1); } else { print_int(0); }
    return 0;
}
)MC",
                                  "tiny");

    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Standard);
    opts.budget.maxRuns = 10'000;
    opts.budget.plateauBatches = 3;
    opts.batchSize = 4;
    explore::Explorer explorer(program, {{5}, {1}}, opts);
    auto result = explorer.run();

    EXPECT_EQ(result.stop, explore::ExploreStop::Plateau);
    EXPECT_LT(result.runs, opts.budget.maxRuns);
    // The last plateauBatches batches added nothing.
    ASSERT_GE(result.history.size(), 3u);
    for (size_t i = result.history.size() - 3;
         i < result.history.size(); ++i) {
        EXPECT_EQ(result.history[i].newEdges, 0u);
    }
}

TEST(Explore, InstructionBudgetStops)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    auto opts = scheduleOptions(
        explore::SchedulePolicy::RareEdgeWeighted, 10'000);
    opts.budget.maxInstructions = 1;    // exhausted by batch 0
    explore::Explorer explorer(program, seedInputs(workload, 2),
                               opts);
    auto result = explorer.run();
    EXPECT_EQ(result.stop, explore::ExploreStop::InstructionBudget);
    EXPECT_EQ(result.batches, 1u);
}

TEST(Explore, EmptySeedsStopImmediately)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    explore::Explorer explorer(
        program, {}, scheduleOptions(
                         explore::SchedulePolicy::UniformRandom, 10));
    auto result = explorer.run();
    EXPECT_EQ(result.stop, explore::ExploreStop::NoSeeds);
    EXPECT_EQ(result.runs, 0u);
}

TEST(Explore, RareEdgeEnergyRanksRareEntriesHigher)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    coverage::BranchCoverage cov(program);

    explore::CorpusEntry common({1}, cov);
    explore::CorpusEntry rare({2}, cov);
    rare.rareEdges = 5;

    explore::Scheduler weighted(
        explore::SchedulePolicy::RareEdgeWeighted, Rng(1));
    EXPECT_GT(weighted.energy(rare), weighted.energy(common));

    // Fatigue decays energy so one entry cannot monopolize batches.
    rare.timesScheduled = 20;
    EXPECT_LT(weighted.energy(rare), 5.0 * weighted.energy(common));

    explore::Scheduler uniform(
        explore::SchedulePolicy::UniformRandom, Rng(1));
    EXPECT_DOUBLE_EQ(uniform.energy(rare), uniform.energy(common));
}

TEST(Explore, RareEdgeSchedulingBeatsUniformOnSchedule)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    auto runPolicy = [&](explore::SchedulePolicy policy) {
        auto opts = scheduleOptions(policy, 160);
        opts.seed = 0x5eedbea7;
        explore::Explorer explorer(program, seedInputs(workload, 3),
                                   opts);
        auto result = explorer.run();
        EXPECT_EQ(result.stop, explore::ExploreStop::RunBudget);
        EXPECT_EQ(result.runs, 160u);   // equal budget, fully spent
        return explorer.corpus().frontier().combinedCovered();
    };

    size_t uniformEdges =
        runPolicy(explore::SchedulePolicy::UniformRandom);
    size_t rareEdges =
        runPolicy(explore::SchedulePolicy::RareEdgeWeighted);
    EXPECT_GT(rareEdges, uniformEdges);
}

TEST(Explore, JsonlStreamIsWellFormed)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    std::ostringstream jsonl;
    auto opts =
        scheduleOptions(explore::SchedulePolicy::RareEdgeWeighted, 20);
    opts.jsonl = &jsonl;
    opts.label = "schedule";
    explore::Explorer explorer(program, seedInputs(workload, 2),
                               opts);
    explorer.run();

    std::istringstream lines(jsonl.str());
    std::string line;
    size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"event\":"), std::string::npos);
    }
    // start + one per batch + done.
    EXPECT_GE(count, 3u);
    EXPECT_NE(jsonl.str().find("\"event\":\"start\""),
              std::string::npos);
    EXPECT_NE(jsonl.str().find("\"config_hash\":"),
              std::string::npos);
    EXPECT_NE(jsonl.str().find("\"event\":\"done\""),
              std::string::npos);
}

} // namespace
