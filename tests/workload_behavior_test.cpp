/**
 * @file
 * Functional tests of the workload programs themselves: each
 * re-creation must behave like the application it stands in for
 * (bc computes, the go evaluator captures, gzip compresses
 * deterministically, the parser accepts/rejects, the schedulers
 * account correctly).
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

std::string
runOn(const std::string &workloadName, std::vector<int32_t> input)
{
    const auto &w = workloads::getWorkload(workloadName);
    auto program = minic::compile(w.source, w.name);
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine engine(program, cfg, nullptr);
    auto r = engine.run(std::move(input));
    EXPECT_FALSE(r.programCrashed) << workloadName;
    return r.io.charOutput;
}

TEST(BcBehavior, EvaluatesExpressions)
{
    EXPECT_EQ(runOn("pe_bc", chars("3+4*2\n")),
              "11\nlines=1\nerrors=0\n");
    EXPECT_EQ(runOn("pe_bc", chars("(3+4)*2\n")),
              "14\nlines=1\nerrors=0\n");
    EXPECT_EQ(runOn("pe_bc", chars("100/7\n100%7\n")),
              "14\n2\nlines=2\nerrors=0\n");
}

TEST(BcBehavior, VariablesPersistAcrossLines)
{
    EXPECT_EQ(runOn("pe_bc", chars("a=6\nb=7\na*b\n")),
              "42\nlines=3\nerrors=0\n");
}

TEST(BcBehavior, DivisionByZeroCountsAnError)
{
    EXPECT_EQ(runOn("pe_bc", chars("5/0\n")),
              "0\nlines=1\nerrors=1\n");
}

TEST(GoBehavior, CountsCaptures)
{
    // Surround (4,4) with white, then black plays into the trap.
    std::vector<int32_t> in = {
        0, 0,  3, 4,  0, 1,  5, 4,  0, 2,  4, 3,  0, 3,  4, 5,
        4, 4,                       // black: captured immediately
        -1,
    };
    std::string out = runOn("pe_go", in);
    EXPECT_NE(out.find("captures=1"), std::string::npos);
}

TEST(GoBehavior, OccupiedCellsAreRejected)
{
    // The same cell twice: the second move is ignored (no crash) and
    // the third move is still played by the second color.
    std::vector<int32_t> in = {4, 4, 4, 4, 2, 2, -1};
    std::string out = runOn("pe_go", in);
    EXPECT_NE(out.find("captures=0"), std::string::npos);
}

TEST(GzipBehavior, FindsMatchesInRepetitiveInput)
{
    std::string text = "5";
    for (int i = 0; i < 12; ++i)
        text += "abcabcabc ";
    std::string out = runOn("pe_gzip", chars(text));
    // A compressor must emit matches on this input.
    size_t pos = out.find("match=");
    ASSERT_NE(pos, std::string::npos);
    int matches = std::stoi(out.substr(pos + 6));
    EXPECT_GE(matches, 3);
}

TEST(GzipBehavior, DeterministicAcrossRuns)
{
    const auto &w = workloads::getWorkload("pe_gzip");
    EXPECT_EQ(runOn("pe_gzip", w.benignInputs[1]),
              runOn("pe_gzip", w.benignInputs[1]));
}

TEST(ParserBehavior, AcceptsGrammaticalSentences)
{
    std::string out =
        runOn("pe_parser", chars("the dog sees a cat .\n"));
    EXPECT_NE(out.find("+"), std::string::npos);
    EXPECT_NE(out.find("accepted=1"), std::string::npos);
}

TEST(ParserBehavior, RejectsWordSalad)
{
    std::string out =
        runOn("pe_parser", chars("sees the the walks .\n"));
    EXPECT_NE(out.find("-"), std::string::npos);
    EXPECT_NE(out.find("accepted=0"), std::string::npos);
}

TEST(ParserBehavior, CountsUnknownWords)
{
    std::string out =
        runOn("pe_parser", chars("the zorp walks .\n"));
    EXPECT_NE(out.find("unknown=1"), std::string::npos);
}

TEST(ScheduleBehavior, RunsAndFinishesJobs)
{
    // add prio2, tick (dispatch), finish; repeat once.
    std::vector<int32_t> in = {1, 2, 2, 5, 1, 1, 2, 5, 0};
    std::string out = runOn("schedule", in);
    EXPECT_NE(out.find("jobs=2"), std::string::npos);
    EXPECT_NE(out.find("finished=2"), std::string::npos);
}

TEST(ScheduleBehavior, PriorityOrdering)
{
    // A prio-1 and a prio-3 job: the prio-3 one runs first, so after
    // one tick + finish, a second tick dispatches the prio-1 job.
    std::vector<int32_t> in = {1, 1, 1, 3, 2, 5, 2, 5, 0};
    std::string out = runOn("schedule", in);
    EXPECT_NE(out.find("finished=2"), std::string::npos);
}

TEST(Schedule2Behavior, RoundRobinAndReap)
{
    std::vector<int32_t> in = {1, 2, 1, 2, 2, 5, 2, 5, 7, 0};
    std::string out = runOn("schedule2", in);
    EXPECT_NE(out.find("done=2"), std::string::npos);
    EXPECT_NE(out.find("live=0"), std::string::npos);
}

TEST(ManBehavior, WrapsLongLines)
{
    // Three input lines of four 7-char words each (within the 39-char
    // line buffer); the output column crosses the 60-char page width
    // and wraps.
    std::string text;
    for (int line = 0; line < 3; ++line) {
        for (int i = 0; i < 4; ++i)
            text += "abcdefg ";
        text += "\n";
    }
    std::string out = runOn("pe_man", chars(text));
    EXPECT_NE(out.find("words=12"), std::string::npos);
    EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(ManBehavior, DirectivesControlFormatting)
{
    // Bold doubles each printed character.
    std::string plain = runOn("pe_man", chars("ab\n"));
    std::string bold = runOn("pe_man", chars(".B\nab\n"));
    EXPECT_GT(bold.size(), plain.size());
}

TEST(VprBehavior, AnnealingImprovesPlacement)
{
    const auto &w = workloads::getWorkload("pe_vpr");
    std::string out = runOn("pe_vpr", w.benignInputs[0]);
    size_t ipos = out.find("initial=");
    size_t fpos = out.find("final=");
    ASSERT_NE(ipos, std::string::npos);
    ASSERT_NE(fpos, std::string::npos);
    int initial = std::stoi(out.substr(ipos + 8));
    int final_ = std::stoi(out.substr(fpos + 6));
    EXPECT_LE(final_, initial);
    EXPECT_NE(out.find("accepted="), std::string::npos);
}

TEST(PrintTokensBehavior, ClassifiesKinds)
{
    // number, ident, op, open, close.
    std::string out =
        runOn("print_tokens", chars("42 foo + ( )\n"));
    EXPECT_NE(out.find("tok:1"), std::string::npos);
    EXPECT_NE(out.find("tok:2"), std::string::npos);
    EXPECT_NE(out.find("tok:3"), std::string::npos);
    EXPECT_NE(out.find("tok:4"), std::string::npos);
    EXPECT_NE(out.find("tok:5"), std::string::npos);
    EXPECT_NE(out.find("total=5"), std::string::npos);
}

TEST(PrintTokens2Behavior, SummaryCounts)
{
    std::string out = runOn("print_tokens2",
                            chars("if alpha 42 + \"str\" x"));
    EXPECT_NE(out.find("tokens=6"), std::string::npos);
    EXPECT_NE(out.find("keywords=1"), std::string::npos);
    EXPECT_NE(out.find("numbers=1"), std::string::npos);
    EXPECT_NE(out.find("strings=1"), std::string::npos);
}

} // namespace
