/**
 * @file
 * Property test for the flat line-granular VersionedBuffer: random
 * write/lookup/clear/commitTo traces checked against a trivially
 * correct std::map reference model, across many seeds and address
 * ranges (dense lines, sparse lines, table-growth pressure).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/mem/main_memory.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/support/rng.hh"

namespace
{

using namespace pe;
using namespace pe::mem;

constexpr uint32_t memWords = 1 << 14;

/** Reference model: overlay map plus committed image. */
struct Model
{
    std::map<uint32_t, int32_t> overlay;

    size_t
    numLines() const
    {
        std::set<uint32_t> lines;
        for (const auto &[addr, value] : overlay)
            lines.insert(addr / wordsPerLine);
        return lines.size();
    }
};

void
expectSameState(const VersionedBuffer &buf, const Model &model)
{
    EXPECT_EQ(buf.numWords(), model.overlay.size());
    EXPECT_EQ(buf.numLines(), model.numLines());

    // Every buffered write is visible and nothing extra exists.
    std::map<uint32_t, int32_t> seen;
    buf.forEachWrite([&](uint32_t addr, int32_t value) {
        EXPECT_TRUE(seen.emplace(addr, value).second)
            << "duplicate visit of addr " << addr;
    });
    EXPECT_EQ(seen, model.overlay);
}

class VersionedBufferProperty
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(VersionedBufferProperty, MatchesMapModelOnRandomTrace)
{
    Rng rng(GetParam());
    // Alternate between a narrow region (line collisions, same-word
    // overwrites) and the full space (growth, sparse lines).
    uint32_t span = (GetParam() % 2 == 0) ? 256 : memWords;

    VersionedBuffer buf(1);
    Model model;
    MainMemory mem(memWords);
    std::map<uint32_t, int32_t> memModel;

    for (int op = 0; op < 4000; ++op) {
        uint32_t addr = static_cast<uint32_t>(rng.nextBelow(span));
        switch (rng.nextBelow(100)) {
          case 0: {  // rare: squash
            buf.clear();
            model.overlay.clear();
            break;
          }
          case 1: case 2: {  // occasional: commit
            buf.commitTo(mem);
            for (const auto &[a, v] : model.overlay)
                memModel[a] = v;
            break;
          }
          default: {
            if (rng.nextBool(0.7)) {
                int32_t value = static_cast<int32_t>(rng.next64());
                buf.write(addr, value);
                model.overlay[addr] = value;
            } else {
                auto got = buf.lookup(addr);
                auto it = model.overlay.find(addr);
                if (it == model.overlay.end()) {
                    EXPECT_FALSE(got.has_value());
                } else {
                    ASSERT_TRUE(got.has_value());
                    EXPECT_EQ(*got, it->second);
                }
            }
            break;
          }
        }
    }

    expectSameState(buf, model);

    // Final commit: the image must equal the reference image.
    buf.commitTo(mem);
    for (const auto &[a, v] : model.overlay)
        memModel[a] = v;
    for (uint32_t a = 0; a < memWords; ++a) {
        auto it = memModel.find(a);
        EXPECT_EQ(mem.read(a), it == memModel.end() ? 0 : it->second)
            << "at addr " << a;
    }

    // Squash leaves an empty write set behind.
    buf.clear();
    model.overlay.clear();
    expectSameState(buf, model);
    EXPECT_FALSE(buf.lookup(0).has_value());
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, VersionedBufferProperty,
                         ::testing::Range<uint64_t>(1, 17));

TEST(VersionedBufferProperty, ParentChainResolutionUnchanged)
{
    // The flat storage must not change version-tree semantics: a
    // child sees its own words, then the parent's, then main memory.
    MainMemory mem(memWords);
    mem.write(100, 1);
    VersionedBuffer parent(1);
    VersionedBuffer child(2);
    child.setParent(&parent);

    parent.write(100, 2);
    parent.write(101, 3);
    child.write(101, 4);

    MemCtx ctx(mem, &child);
    EXPECT_EQ(ctx.read(100), 2);    // parent overlay
    EXPECT_EQ(ctx.read(101), 4);    // own overlay wins
    EXPECT_EQ(ctx.read(102), 0);    // committed memory

    int32_t out = -1;
    EXPECT_TRUE(ctx.tryRead(100, out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(ctx.tryRead(memWords, out));
    EXPECT_FALSE(ctx.tryWrite(memWords, 9));
    EXPECT_TRUE(ctx.tryWrite(102, 9));
    EXPECT_EQ(ctx.read(102), 9);
    EXPECT_EQ(mem.read(102), 0);    // buffered, not committed
}

} // namespace
