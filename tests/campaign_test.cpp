/**
 * @file
 * Campaign-runner tests: deterministic job ordering, bit-identical
 * parallel vs serial execution (digest, cycles, coverage, reports),
 * detector factories, coverage merge-reduce and error propagation.
 */

#include <gtest/gtest.h>

#include "src/core/campaign.hh"
#include "src/detect/detector.hh"
#include "src/minic/compiler.hh"
#include "src/support/thread_pool.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

/** Compile @p name and build jobs over its first @p inputs inputs. */
struct CampaignFixture
{
    explicit CampaignFixture(const std::string &name)
        : workload(&workloads::getWorkload(name)),
          program(minic::compile(workload->source, name))
    {}

    core::CampaignJob
    job(core::PeMode mode, size_t inputIdx,
        core::DetectorFactory factory = nullptr) const
    {
        core::CampaignJob j;
        j.program = &program;
        j.input = workload->benignInputs[inputIdx];
        j.config = core::PeConfig::forMode(mode);
        j.config.maxNtPathLength = workload->maxNtPathLength;
        j.detectorFactory = std::move(factory);
        return j;
    }

    const workloads::Workload *workload;
    isa::Program program;
};

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.memoryDigest, b.memoryDigest);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.takenInstructions, b.takenInstructions);
    EXPECT_EQ(a.ntInstructions, b.ntInstructions);
    EXPECT_EQ(a.ntPathsSpawned, b.ntPathsSpawned);
    EXPECT_EQ(a.coverage.takenCovered(), b.coverage.takenCovered());
    EXPECT_EQ(a.coverage.combinedCovered(),
              b.coverage.combinedCovered());
    EXPECT_EQ(a.io.charOutput, b.io.charOutput);
    EXPECT_EQ(a.monitor.reports().size(), b.monitor.reports().size());
}

TEST(Campaign, EmptyCampaignIsEmpty)
{
    auto outcome = core::runCampaign({});
    EXPECT_TRUE(outcome.results.empty());
    EXPECT_EQ(outcome.threadsUsed, 1u);
}

TEST(Campaign, ResultsArriveInJobOrder)
{
    CampaignFixture fx("schedule");
    size_t inputs = fx.workload->benignInputs.size();
    std::vector<core::CampaignJob> jobs;
    for (size_t i = 0; i < inputs; ++i)
        jobs.push_back(fx.job(core::PeMode::Off, i));

    auto outcome = core::runCampaign(jobs, core::campaignThreads(4));
    ASSERT_EQ(outcome.results.size(), jobs.size());
    // RunResult carries its input back; slot i must hold job i.
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(outcome.results[i].io.input, jobs[i].input);
}

TEST(Campaign, ParallelRunsBitIdenticalToSerial)
{
    CampaignFixture fx("print_tokens");
    std::vector<core::CampaignJob> jobs;
    size_t inputs = std::min<size_t>(
        fx.workload->benignInputs.size(), 6);
    for (size_t i = 0; i < inputs; ++i) {
        jobs.push_back(fx.job(core::PeMode::Standard, i));
        jobs.push_back(fx.job(core::PeMode::Cmp, i));
    }

    auto serial = core::runCampaign(jobs, core::campaignThreads(1));
    auto parallel = core::runCampaign(jobs, core::campaignThreads(4));
    EXPECT_EQ(serial.threadsUsed, 1u);
    EXPECT_GT(parallel.threadsUsed, 1u);
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i)
        expectIdentical(serial.results[i], parallel.results[i]);
}

TEST(Campaign, DetectorFactoriesGiveEachRunItsOwnDetector)
{
    CampaignFixture fx("schedule2");
    auto factory = [] {
        return std::unique_ptr<detect::Detector>(
            std::make_unique<detect::BoundsChecker>());
    };
    std::vector<core::CampaignJob> jobs;
    for (int rep = 0; rep < 4; ++rep)
        jobs.push_back(fx.job(core::PeMode::Standard, 0, factory));

    auto serial = core::runCampaign(jobs, core::campaignThreads(1));
    auto parallel = core::runCampaign(jobs, core::campaignThreads(4));
    for (size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(serial.results[i], parallel.results[i]);
        // Identical jobs: a shared or reused detector would dedup
        // reports differently between runs.
        expectIdentical(parallel.results[0], parallel.results[i]);
    }
}

TEST(Campaign, MergeCoverageIsOrderIndependent)
{
    CampaignFixture fx("schedule");
    std::vector<core::CampaignJob> jobs;
    size_t inputs = std::min<size_t>(
        fx.workload->benignInputs.size(), 8);
    for (size_t i = 0; i < inputs; ++i)
        jobs.push_back(fx.job(core::PeMode::Standard, i));
    auto outcome = core::runCampaign(jobs);

    auto merged = core::mergeCoverage(fx.program, outcome.results);
    std::vector<core::RunResult> reversed;
    for (auto it = outcome.results.rbegin();
         it != outcome.results.rend(); ++it) {
        reversed.push_back(std::move(*it));
    }
    auto mergedRev = core::mergeCoverage(fx.program, reversed);
    EXPECT_EQ(merged.takenCovered(), mergedRev.takenCovered());
    EXPECT_EQ(merged.combinedCovered(), mergedRev.combinedCovered());
    EXPECT_EQ(merged.takenWords(), mergedRev.takenWords());
    EXPECT_EQ(merged.ntWords(), mergedRev.ntWords());

    // The union covers at least as much as any single run.
    EXPECT_GE(merged.combinedCovered(),
              reversed.front().coverage.combinedCovered());
}

TEST(Campaign, OnResultObserverSeesEveryJobOnce)
{
    CampaignFixture fx("schedule");
    std::vector<core::CampaignJob> jobs;
    for (size_t i = 0; i < 8; ++i)
        jobs.push_back(fx.job(core::PeMode::Off, i));

    // The hook is serialized, so plain state is safe to touch.
    std::vector<int> seen(jobs.size(), 0);
    core::CampaignOptions opts;
    opts.threads = 4;
    opts.onResult = [&seen](size_t i, const core::RunResult &r) {
        ASSERT_LT(i, seen.size());
        ++seen[i];
        EXPECT_GT(r.takenInstructions, 0u);
    };
    auto outcome = core::runCampaign(jobs, opts);
    ASSERT_EQ(outcome.results.size(), jobs.size());
    for (int n : seen)
        EXPECT_EQ(n, 1);
}

TEST(Config, HashDistinguishesConfigs)
{
    auto a = core::PeConfig::forMode(core::PeMode::Standard);
    auto b = core::PeConfig::forMode(core::PeMode::Standard);
    EXPECT_EQ(core::configHash(a), core::configHash(b));

    b.maxNtPathLength += 1;
    EXPECT_NE(core::configHash(a), core::configHash(b));

    auto cmp = core::PeConfig::forMode(core::PeMode::Cmp);
    EXPECT_NE(core::configHash(a), core::configHash(cmp));

    auto c = a;
    c.noSpawnFuncs.push_back("checker");
    EXPECT_NE(core::configHash(a), core::configHash(c));
}

TEST(ThreadPool, RunsEverySubmittedTaskOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<int> hits(200, 0);
    for (size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { hits[i] += 1; });
    pool.waitIdle();
    for (int h : hits)
        EXPECT_EQ(h, 1);

    // The pool stays usable after an idle wait.
    bool ran = false;
    pool.submit([&ran] { ran = true; });
    pool.waitIdle();
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();    // no tasks: must not block
}

} // namespace
