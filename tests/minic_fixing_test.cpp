/**
 * @file
 * Consistency-fixing tests (paper Section 4.4, Table 1): the compiler
 * must insert predicated Pfix/Pfixst pairs at both edges of fixable
 * branches, they must behave as NOPs on the taken path, and at an
 * NT-Path entrance they must force the condition variable to the
 * boundary value satisfying that edge (or to the blank structure for
 * pointers).
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"

namespace
{

using namespace pe;
using isa::Opcode;

/** Count Pfix/Pfixst instructions in a compiled program. */
std::pair<int, int>
countFixes(const isa::Program &program)
{
    int pfix = 0;
    int pfixst = 0;
    for (const auto &inst : program.code) {
        if (inst.op == Opcode::Pfix)
            ++pfix;
        if (inst.op == Opcode::Pfixst)
            ++pfixst;
    }
    return {pfix, pfixst};
}

core::RunResult
runMode(const isa::Program &program, core::PeMode mode, bool fixing,
        detect::Detector *det = nullptr)
{
    auto cfg = core::PeConfig::forMode(mode);
    cfg.variableFixing = fixing;
    core::PathExpanderEngine engine(program, cfg, det);
    return engine.run({});
}

TEST(Fixing, Table1ShapeEmitsFixesOnBothEdges)
{
    // The paper's Table 1 example: if (x <= 2) big(); else small();
    auto program = minic::compile(R"(
int var = 0;
int big(int x) { return x * 2; }
int small(int x) { return x + 1; }
int main() {
    int x = read_int();
    if (x <= 2) {
        big(x);
    } else {
        small(x);
    }
    var = x;
    return 0;
}
)",
                                  "table1");
    auto [pfix, pfixst] = countFixes(program);
    // One Pfix+Pfixst pair per edge (true and false).
    EXPECT_EQ(pfix, 2);
    EXPECT_EQ(pfixst, 2);

    // The fix values are the boundary values: x=2 on the true edge,
    // x=3 on the false edge.
    std::set<int32_t> values;
    for (const auto &inst : program.code) {
        if (inst.op == Opcode::Pfix)
            values.insert(inst.imm);
    }
    EXPECT_TRUE(values.count(2));
    EXPECT_TRUE(values.count(3));
}

TEST(Fixing, BoundaryValuesPerRelop)
{
    struct Case
    {
        const char *cond;
        int32_t trueVal;
        int32_t falseVal;
    };
    const Case cases[] = {
        {"x < 5", 4, 5},   {"x <= 5", 5, 6}, {"x > 5", 6, 5},
        {"x >= 5", 5, 4},  {"x == 5", 5, 6}, {"x != 5", 6, 5},
        // Mirrored literal-first forms.
        {"5 > x", 4, 5},   {"5 == x", 5, 6},
    };
    for (const auto &c : cases) {
        std::string src = std::string("int main() { int x = "
                                      "read_int(); if (") +
                          c.cond + ") { x = 0; } return x; }";
        auto program = minic::compile(src, "bv");
        std::vector<int32_t> values;
        for (const auto &inst : program.code) {
            if (inst.op == Opcode::Pfix)
                values.push_back(inst.imm);
        }
        ASSERT_EQ(values.size(), 2u) << c.cond;
        EXPECT_EQ(values[0], c.trueVal) << c.cond;  // true edge first
        EXPECT_EQ(values[1], c.falseVal) << c.cond;
    }
}

TEST(Fixing, UnfixableShapesGetNoFixes)
{
    // Variable-vs-variable and complex conditions carry no fix.
    auto program = minic::compile(R"(
int a = 1;
int b = 2;
int t[3];
int main() {
    if (a == b) { a = 0; }
    if (t[0] < 4) { a = 1; }
    if (a + b > 3) { a = 2; }
    return 0;
}
)",
                                  "nofix");
    auto [pfix, pfixst] = countFixes(program);
    EXPECT_EQ(pfix, 0);
    EXPECT_EQ(pfixst, 0);
}

TEST(Fixing, BareAndNegatedVariableShapes)
{
    auto program = minic::compile(R"(
int flag = 0;
int main() {
    if (flag) { flag = 2; }
    if (!flag) { flag = 3; }
    return 0;
}
)",
                                  "bare");
    auto [pfix, pfixst] = countFixes(program);
    EXPECT_EQ(pfix, 4);
    EXPECT_EQ(pfixst, 4);
}

TEST(Fixing, PointerNullTestFixesToBlankStructure)
{
    auto program = minic::compile(R"(
int *p = 0;
int main() {
    if (p != 0) {
        p[1] = 5;
    }
    return 0;
}
)",
                                  "ptr");
    std::vector<int32_t> values;
    for (const auto &inst : program.code) {
        if (inst.op == Opcode::Pfix)
            values.push_back(inst.imm);
    }
    ASSERT_EQ(values.size(), 2u);
    // True edge (p != 0): point p at the blank structure.
    EXPECT_EQ(values[0], static_cast<int32_t>(program.blankAddr));
    // False edge (p == 0): null.
    EXPECT_EQ(values[1], 0);
}

TEST(Fixing, NopOnTakenPath)
{
    // With and without PathExpander, taken-path results must match:
    // the predicated fixes never execute outside an NT-Path entry.
    auto program = minic::compile(R"(
int total = 0;
int main() {
    for (int i = 0; i < 20; i = i + 1) {
        if (i < 10) {
            total = total + 1;
        } else {
            total = total + 100;
        }
    }
    print_int(total);
    return 0;
}
)",
                                  "nop");
    auto off = runMode(program, core::PeMode::Off, true);
    auto pe = runMode(program, core::PeMode::Standard, true);
    EXPECT_EQ(off.io.charOutput, "1010");
    EXPECT_EQ(pe.io.charOutput, "1010");
}

TEST(Fixing, ForcesBranchConditionOnNtPath)
{
    // The assert inside the never-taken branch checks that the fix
    // actually forced the condition variable to the boundary value:
    // it passes exactly when mode == 7.
    auto program = minic::compile(R"(
int mode = 0;
int main() {
    int i = 0;
    while (i < 8) {
        if (mode == 7) {
            assert(mode == 7, 1);       // holds only if fixed
            assert(0 == 1, 2);          // fires whenever reached
        }
        i = i + 1;
    }
    return 0;
}
)",
                                  "force");
    detect::AssertChecker checker;

    auto fixed = runMode(program, core::PeMode::Standard, true,
                         &checker);
    bool sawId1 = false;
    bool sawId2 = false;
    for (const auto &r : fixed.monitor.reports()) {
        sawId1 = sawId1 || r.assertId == 1;
        sawId2 = sawId2 || r.assertId == 2;
    }
    EXPECT_FALSE(sawId1);   // fix made mode == 7 hold
    EXPECT_TRUE(sawId2);    // the path itself was explored

    auto unfixed = runMode(program, core::PeMode::Standard, false,
                           &checker);
    sawId1 = false;
    for (const auto &r : unfixed.monitor.reports())
        sawId1 = sawId1 || r.assertId == 1;
    EXPECT_TRUE(sawId1);    // without fixing, mode stayed 0
}

TEST(Fixing, PointerFixLetsNtPathSurviveNullGuard)
{
    // Paper Section 4.4: with the blank structure, an NT-Path can
    // execute a pointer-guarded body; without fixing the null
    // dereference of p[-2] crashes the path.
    auto program = minic::compile(R"(
int *p = 0;
int seen = 0;
int main() {
    int i = 0;
    while (i < 8) {
        if (p != 0) {
            seen = p[0 - 2];
            assert(0 == 1, 9);      // reached only if we survive
        }
        i = i + 1;
    }
    return 0;
}
)",
                                  "blank");
    detect::AssertChecker checker;
    auto fixed = runMode(program, core::PeMode::Standard, true,
                         &checker);
    bool reached = false;
    for (const auto &r : fixed.monitor.reports())
        reached = reached || r.assertId == 9;
    EXPECT_TRUE(reached);

    auto unfixed = runMode(program, core::PeMode::Standard, false,
                           &checker);
    reached = false;
    for (const auto &r : unfixed.monitor.reports())
        reached = reached || r.assertId == 9;
    EXPECT_FALSE(reached);
    // The unfixed NT-Paths crashed instead.
    bool crashed = false;
    for (const auto &rec : unfixed.ntRecords)
        crashed = crashed || rec.cause == core::NtStopCause::Crash;
    EXPECT_TRUE(crashed);
}

TEST(Fixing, SaturatedBoundarySkipsFix)
{
    // x <= INT_MAX has no representable false-edge boundary
    // (INT_MAX + 1 overflows); the compiler simply omits that fix
    // value rather than emitting a wrong one.
    auto program = minic::compile(R"(
int main() {
    int x = read_int();
    if (x <= 2147483647) { x = 0; }
    return x;
}
)",
                                  "sat");
    int pfix = 0;
    for (const auto &inst : program.code) {
        if (inst.op == Opcode::Pfix)
            ++pfix;
    }
    EXPECT_EQ(pfix, 1);     // only the true-edge fix (x = INT_MAX)
}

} // namespace
