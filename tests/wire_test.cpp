/**
 * @file
 * Wire-module tests: the versioned serialization substrate shared by
 * the explorer's checkpoints and the fleet's IPC frames.
 *
 * The headline property: encode → decode → encode is byte-identical
 * for random corpus entries, frontier states and RNG states, so a
 * checkpoint and an IPC frame describing the same state hold the same
 * bytes.  The failure surface is exercised just as explicitly —
 * every truncated prefix of a payload is rejected as a structured
 * WireError (never a crash, never a silent partial decode), frames
 * with foreign magic or bumped versions are refused with the expected
 * and found values attached, and checkpoint-header corruption names
 * the exact disagreeing field.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "src/explore/explorer.hh"
#include "src/explore/serialize.hh"
#include "src/fleet/protocol.hh"
#include "src/fleet/wire.hh"
#include "src/minic/compiler.hh"
#include "src/support/rng.hh"
#include "src/support/status.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

const isa::Program &
testProgram()
{
    static const isa::Program program = [] {
        const auto &workload = workloads::getWorkload("schedule");
        return minic::compile(workload.source, "schedule");
    }();
    return program;
}

/** A random but internally consistent corpus entry. */
explore::CorpusEntry
randomEntry(Rng &rng)
{
    const isa::Program &program = testProgram();
    std::vector<int32_t> input(1 + rng.nextBelow(16));
    for (int32_t &v : input)
        v = static_cast<int32_t>(rng.next64());

    coverage::BranchCoverage cov(program);
    size_t pcs = program.code.size();
    for (size_t i = 0, n = rng.nextBelow(64); i < n; ++i) {
        uint32_t pc = static_cast<uint32_t>(rng.nextBelow(pcs));
        if (rng.nextBool())
            cov.onTakenEdge(pc, rng.nextBool());
        else
            cov.onNtEdge(pc, rng.nextBool());
    }

    explore::CorpusEntry entry(std::move(input), std::move(cov));
    entry.newEdges = rng.nextBelow(100);
    entry.rareEdges = rng.nextBelow(100);
    entry.ntEarlyStops = rng.next64();
    entry.ntSpawned = rng.next64();
    entry.batchAdmitted = rng.nextBelow(1000);
    entry.timesScheduled = rng.nextBelow(1000);
    entry.foreign = rng.nextBool();
    return entry;
}

std::string
encodeOne(const explore::CorpusEntry &entry)
{
    wire::Encoder enc;
    explore::encodeEntry(enc, entry);
    return enc.buffer();
}

TEST(Wire, PrimitivesRoundTrip)
{
    wire::Encoder enc;
    enc.u8(0xab);
    enc.u32(0xdeadbeef);
    enc.u64(0x0123456789abcdefull);
    enc.i32(-42);
    enc.str("hello wire");
    enc.u64vec({1, 2, 3});
    enc.u32vec({});
    enc.i32vec({-1, 0, 1});

    wire::Decoder dec(enc.buffer());
    EXPECT_EQ(dec.u8("a"), 0xab);
    EXPECT_EQ(dec.u32("b"), 0xdeadbeefu);
    EXPECT_EQ(dec.u64("c"), 0x0123456789abcdefull);
    EXPECT_EQ(dec.i32("d"), -42);
    EXPECT_EQ(dec.str("e"), "hello wire");
    EXPECT_EQ(dec.u64vec("f"), (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_TRUE(dec.u32vec("g").empty());
    EXPECT_EQ(dec.i32vec("h"), (std::vector<int32_t>{-1, 0, 1}));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_NO_THROW(dec.expectEnd("primitives"));
}

TEST(Wire, DecoderRejectsImplausibleCounts)
{
    wire::Encoder enc;
    enc.u32(wire::Decoder::kSanityCap + 1);
    wire::Decoder dec(enc.buffer());
    try {
        dec.count("bogus count");
        FAIL() << "implausible count was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Implausible);
        EXPECT_EQ(err.found(), wire::Decoder::kSanityCap + 1);
    }
}

TEST(Wire, ExpectEndRejectsTrailingBytes)
{
    wire::Encoder enc;
    enc.u32(7);
    enc.u8(1);
    wire::Decoder dec(enc.buffer());
    dec.u32("value");
    try {
        dec.expectEnd("trailing");
        FAIL() << "trailing byte was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadFrame);
    }
}

/** encode → decode → encode is byte-identical for random entries. */
TEST(Wire, EntryRoundTripIsByteIdentical)
{
    Rng rng(0xc0ffee);
    for (int i = 0; i < 200; ++i) {
        explore::CorpusEntry entry = randomEntry(rng);
        std::string first = encodeOne(entry);

        wire::Decoder dec(first);
        explore::CorpusEntry decoded =
            explore::decodeEntry(dec, testProgram());
        EXPECT_TRUE(dec.atEnd());

        EXPECT_EQ(decoded.input, entry.input);
        EXPECT_EQ(decoded.coverage.takenWords(),
                  entry.coverage.takenWords());
        EXPECT_EQ(decoded.coverage.ntWords(),
                  entry.coverage.ntWords());
        EXPECT_EQ(decoded.foreign, entry.foreign);
        EXPECT_EQ(encodeOne(decoded), first) << "iteration " << i;
    }
}

/** Frontier words and RNG states survive a round trip bit-exactly. */
TEST(Wire, FrontierAndRngStateRoundTrip)
{
    Rng rng(0x5eed);
    coverage::BranchCoverage cov(testProgram());
    for (int i = 0; i < 300; ++i) {
        uint32_t pc = static_cast<uint32_t>(
            rng.nextBelow(testProgram().code.size()));
        cov.onTakenEdge(pc, rng.nextBool());
        cov.onNtEdge(pc, rng.nextBool());
    }
    uint64_t rngState = rng.rawState();

    wire::Encoder enc;
    enc.u64vec(cov.takenWords());
    enc.u64vec(cov.ntWords());
    enc.u64(rngState);
    std::string first = enc.buffer();

    wire::Decoder dec(first);
    auto taken = dec.u64vec("taken");
    auto nt = dec.u64vec("nt");
    uint64_t state = dec.u64("rng");

    wire::Encoder enc2;
    enc2.u64vec(taken);
    enc2.u64vec(nt);
    enc2.u64(state);
    EXPECT_EQ(enc2.buffer(), first);

    // The digest — the fleet's reproducibility witness — must agree
    // between the original tracker and a restored copy.
    coverage::BranchCoverage restored(testProgram());
    restored.restoreWords(taken, nt);
    EXPECT_EQ(explore::coverageDigest(restored),
              explore::coverageDigest(cov));
}

/** Every truncated prefix is a structured Truncated error. */
TEST(Wire, TruncatedEntryPrefixesAreRejected)
{
    Rng rng(0x77);
    explore::CorpusEntry entry = randomEntry(rng);
    std::string full = encodeOne(entry);
    ASSERT_GT(full.size(), 8u);

    for (size_t cut = 0; cut < full.size(); ++cut) {
        wire::Decoder dec(std::string_view(full.data(), cut));
        try {
            explore::decodeEntry(dec, testProgram());
            FAIL() << "prefix of " << cut << "/" << full.size()
                   << " bytes decoded";
        } catch (const wire::WireError &err) {
            EXPECT_EQ(err.kind(), wire::WireErrorKind::Truncated)
                << "prefix " << cut;
        }
    }
}

/** Entries from a different edge universe are refused, not aborted. */
TEST(Wire, ForeignProgramEntryIsMismatch)
{
    Rng rng(0xfeed);
    explore::CorpusEntry entry = randomEntry(rng);
    std::string bytes = encodeOne(entry);

    // Any workload with a different-size edge universe will do.
    isa::Program foreign;
    bool found = false;
    for (const std::string &name : workloads::workloadNames()) {
        auto candidate = minic::compile(
            workloads::getWorkload(name).source, name);
        if (coverage::BranchCoverage(candidate).takenWords().size() !=
            entry.coverage.takenWords().size()) {
            foreign = std::move(candidate);
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found)
        << "every workload shares schedule's bitmap size?";
    wire::Decoder dec(bytes);
    try {
        explore::decodeEntry(dec, foreign);
        FAIL() << "entry for another program decoded";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_NE(err.expected(), err.found());
    }
}

// --- Framing over real fds ------------------------------------------

TEST(Wire, FrameRoundTripOverPipe)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    wire::writeFrame(fds[1], wire::FrameType::RoundStart, "payload");
    wire::writeFrame(fds[1], wire::FrameType::Stop, "");
    close(fds[1]);

    auto first = wire::readFrame(fds[0]);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, wire::FrameType::RoundStart);
    EXPECT_EQ(first->payload, "payload");

    auto second = wire::readFrame(fds[0]);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, wire::FrameType::Stop);
    EXPECT_TRUE(second->payload.empty());

    // Clean EOF at a frame boundary is a normal shutdown.
    EXPECT_FALSE(wire::readFrame(fds[0]).has_value());
    close(fds[0]);
}

TEST(Wire, MidFrameEofIsTruncated)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    // A full header promising 100 payload bytes, then silence.
    wire::Encoder header;
    header.u32(0x31464550);     // kFrameMagic "PEF1"
    header.u32(100);
    header.u32(static_cast<uint32_t>(wire::FrameType::RoundDelta));
    ASSERT_EQ(write(fds[1], header.buffer().data(), header.size()),
              static_cast<ssize_t>(header.size()));
    close(fds[1]);

    try {
        wire::readFrame(fds[0]);
        FAIL() << "truncated frame was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Truncated);
    }
    close(fds[0]);
}

TEST(Wire, BadMagicIsRejected)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    wire::Encoder header;
    header.u32(0x46454542);     // not our magic
    header.u32(0);
    header.u32(1);
    ASSERT_EQ(write(fds[1], header.buffer().data(), header.size()),
              static_cast<ssize_t>(header.size()));
    close(fds[1]);

    try {
        wire::readFrame(fds[0]);
        FAIL() << "foreign magic was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadMagic);
        EXPECT_EQ(err.found(), 0x46454542u);
    }
    close(fds[0]);
}

// --- Version negotiation --------------------------------------------

TEST(Wire, VersionBumpedHelloIsRejectedWithBothValues)
{
    fleet::Hello want;
    want.shard = 3;
    fleet::Hello got = want;
    got.wireVersion = wire::kWireVersion + 1;

    try {
        fleet::validateHello(got, want);
        FAIL() << "future wire version was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadVersion);
        EXPECT_EQ(err.expected(), wire::kWireVersion);
        EXPECT_EQ(err.found(), wire::kWireVersion + 1);
        // The message names the shard and both versions.
        EXPECT_NE(std::string(err.what()).find("shard 3"),
                  std::string::npos);
    }
}

TEST(Wire, HelloIdentityMismatchNamesTheField)
{
    fleet::Hello want;
    want.configHash = 0x1111;
    fleet::Hello got = want;
    got.configHash = 0x2222;

    try {
        fleet::validateHello(got, want);
        FAIL() << "config-hash mismatch was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_EQ(err.expected(), 0x1111u);
        EXPECT_EQ(err.found(), 0x2222u);
        std::string what = err.what();
        EXPECT_NE(what.find("config hash"), std::string::npos);
        EXPECT_NE(what.find("expected"), std::string::npos);
        EXPECT_NE(what.find("found"), std::string::npos);
    }
}

// --- Checkpoint corruption reporting --------------------------------

class WireCheckpointTest : public ::testing::Test
{
  protected:
    std::string
    path(const char *name)
    {
        return testing::TempDir() + "wire_ckp_" + name + ".bin";
    }

    /** Run a short exploration that leaves a checkpoint behind. */
    void
    writeCheckpoint(const std::string &file)
    {
        const auto &workload = workloads::getWorkload("schedule");
        explore::ExploreOptions opts;
        opts.config = core::PeConfig::forMode(core::PeMode::Off);
        opts.budget.maxRuns = 24;
        opts.batchSize = 4;
        opts.checkpointPath = file;
        explore::Explorer explorer(testProgram(),
                                   workload.benignInputs, opts);
        explorer.run();
    }
};

TEST_F(WireCheckpointTest, VersionCorruptionReportsExpectedAndFound)
{
    std::string file = path("version");
    writeCheckpoint(file);

    // The u32 version lives right after the 8-byte magic.
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(8);
        uint32_t bogus = 77;
        f.write(reinterpret_cast<const char *>(&bogus), 4);
    }

    const auto &workload = workloads::getWorkload("schedule");
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.budget.maxRuns = 48;
    opts.batchSize = 4;
    opts.resumeFrom = file;
    explore::Explorer explorer(testProgram(), workload.benignInputs,
                               opts);
    try {
        explorer.run();
        FAIL() << "corrupt checkpoint version was accepted";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("version mismatch"), std::string::npos);
        EXPECT_NE(what.find("expected 2"), std::string::npos);
        EXPECT_NE(what.find("found 77"), std::string::npos);
    }
    std::remove(file.c_str());
}

TEST_F(WireCheckpointTest, TruncatedCheckpointIsStructuredError)
{
    std::string file = path("truncated");
    writeCheckpoint(file);

    // Chop the file at two thirds: decode must fail as Truncated,
    // surfaced through the explorer as a FatalError naming the kind.
    std::string bytes;
    {
        std::ifstream f(file, std::ios::binary);
        std::ostringstream raw;
        raw << f.rdbuf();
        bytes = raw.str();
    }
    ASSERT_GT(bytes.size(), 32u);
    {
        std::ofstream f(file, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * 2 / 3));
    }

    const auto &workload = workloads::getWorkload("schedule");
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.budget.maxRuns = 48;
    opts.batchSize = 4;
    opts.resumeFrom = file;
    explore::Explorer explorer(testProgram(), workload.benignInputs,
                               opts);
    try {
        explorer.run();
        FAIL() << "truncated checkpoint was accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("truncated"),
                  std::string::npos);
    }
    std::remove(file.c_str());
}

} // namespace
