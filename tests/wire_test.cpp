/**
 * @file
 * Wire-module tests: the versioned serialization substrate shared by
 * the explorer's checkpoints and the fleet's IPC frames.
 *
 * The headline property: encode → decode → encode is byte-identical
 * for random corpus entries, frontier states and RNG states, so a
 * checkpoint and an IPC frame describing the same state hold the same
 * bytes.  The failure surface is exercised just as explicitly —
 * every truncated prefix of a payload is rejected as a structured
 * WireError (never a crash, never a silent partial decode), frames
 * with foreign magic or bumped versions are refused with the expected
 * and found values attached, and checkpoint-header corruption names
 * the exact disagreeing field.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "src/explore/explorer.hh"
#include "src/explore/serialize.hh"
#include "src/fleet/protocol.hh"
#include "src/fleet/wire.hh"
#include "src/minic/compiler.hh"
#include "src/support/rng.hh"
#include "src/support/status.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

const isa::Program &
testProgram()
{
    static const isa::Program program = [] {
        const auto &workload = workloads::getWorkload("schedule");
        return minic::compile(workload.source, "schedule");
    }();
    return program;
}

/** A random but internally consistent corpus entry. */
explore::CorpusEntry
randomEntry(Rng &rng)
{
    const isa::Program &program = testProgram();
    std::vector<int32_t> input(1 + rng.nextBelow(16));
    for (int32_t &v : input)
        v = static_cast<int32_t>(rng.next64());

    coverage::BranchCoverage cov(program);
    size_t pcs = program.code.size();
    for (size_t i = 0, n = rng.nextBelow(64); i < n; ++i) {
        uint32_t pc = static_cast<uint32_t>(rng.nextBelow(pcs));
        if (rng.nextBool())
            cov.onTakenEdge(pc, rng.nextBool());
        else
            cov.onNtEdge(pc, rng.nextBool());
    }

    explore::CorpusEntry entry(std::move(input), std::move(cov));
    entry.newEdges = rng.nextBelow(100);
    entry.rareEdges = rng.nextBelow(100);
    entry.ntEarlyStops = rng.next64();
    entry.ntSpawned = rng.next64();
    entry.batchAdmitted = rng.nextBelow(1000);
    entry.timesScheduled = rng.nextBelow(1000);
    entry.foreign = rng.nextBool();
    return entry;
}

std::string
encodeOne(const explore::CorpusEntry &entry)
{
    wire::Encoder enc;
    explore::encodeEntry(enc, entry);
    return enc.buffer();
}

TEST(Wire, PrimitivesRoundTrip)
{
    wire::Encoder enc;
    enc.u8(0xab);
    enc.u32(0xdeadbeef);
    enc.u64(0x0123456789abcdefull);
    enc.i32(-42);
    enc.str("hello wire");
    enc.u64vec({1, 2, 3});
    enc.u32vec({});
    enc.i32vec({-1, 0, 1});

    wire::Decoder dec(enc.buffer());
    EXPECT_EQ(dec.u8("a"), 0xab);
    EXPECT_EQ(dec.u32("b"), 0xdeadbeefu);
    EXPECT_EQ(dec.u64("c"), 0x0123456789abcdefull);
    EXPECT_EQ(dec.i32("d"), -42);
    EXPECT_EQ(dec.str("e"), "hello wire");
    EXPECT_EQ(dec.u64vec("f"), (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_TRUE(dec.u32vec("g").empty());
    EXPECT_EQ(dec.i32vec("h"), (std::vector<int32_t>{-1, 0, 1}));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_NO_THROW(dec.expectEnd("primitives"));
}

TEST(Wire, DecoderRejectsImplausibleCounts)
{
    wire::Encoder enc;
    enc.u32(wire::Decoder::kSanityCap + 1);
    wire::Decoder dec(enc.buffer());
    try {
        dec.count("bogus count");
        FAIL() << "implausible count was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Implausible);
        EXPECT_EQ(err.found(), wire::Decoder::kSanityCap + 1);
    }
}

TEST(Wire, ExpectEndRejectsTrailingBytes)
{
    wire::Encoder enc;
    enc.u32(7);
    enc.u8(1);
    wire::Decoder dec(enc.buffer());
    dec.u32("value");
    try {
        dec.expectEnd("trailing");
        FAIL() << "trailing byte was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadFrame);
    }
}

/** encode → decode → encode is byte-identical for random entries. */
TEST(Wire, EntryRoundTripIsByteIdentical)
{
    Rng rng(0xc0ffee);
    for (int i = 0; i < 200; ++i) {
        explore::CorpusEntry entry = randomEntry(rng);
        std::string first = encodeOne(entry);

        wire::Decoder dec(first);
        explore::CorpusEntry decoded =
            explore::decodeEntry(dec, testProgram());
        EXPECT_TRUE(dec.atEnd());

        EXPECT_EQ(decoded.input, entry.input);
        EXPECT_EQ(decoded.coverage.takenWords(),
                  entry.coverage.takenWords());
        EXPECT_EQ(decoded.coverage.ntWords(),
                  entry.coverage.ntWords());
        EXPECT_EQ(decoded.foreign, entry.foreign);
        EXPECT_EQ(encodeOne(decoded), first) << "iteration " << i;
    }
}

/** Frontier words and RNG states survive a round trip bit-exactly. */
TEST(Wire, FrontierAndRngStateRoundTrip)
{
    Rng rng(0x5eed);
    coverage::BranchCoverage cov(testProgram());
    for (int i = 0; i < 300; ++i) {
        uint32_t pc = static_cast<uint32_t>(
            rng.nextBelow(testProgram().code.size()));
        cov.onTakenEdge(pc, rng.nextBool());
        cov.onNtEdge(pc, rng.nextBool());
    }
    uint64_t rngState = rng.rawState();

    wire::Encoder enc;
    enc.u64vec(cov.takenWords());
    enc.u64vec(cov.ntWords());
    enc.u64(rngState);
    std::string first = enc.buffer();

    wire::Decoder dec(first);
    auto taken = dec.u64vec("taken");
    auto nt = dec.u64vec("nt");
    uint64_t state = dec.u64("rng");

    wire::Encoder enc2;
    enc2.u64vec(taken);
    enc2.u64vec(nt);
    enc2.u64(state);
    EXPECT_EQ(enc2.buffer(), first);

    // The digest — the fleet's reproducibility witness — must agree
    // between the original tracker and a restored copy.
    coverage::BranchCoverage restored(testProgram());
    restored.restoreWords(taken, nt);
    EXPECT_EQ(explore::coverageDigest(restored),
              explore::coverageDigest(cov));
}

/** Every truncated prefix is a structured Truncated error. */
TEST(Wire, TruncatedEntryPrefixesAreRejected)
{
    Rng rng(0x77);
    explore::CorpusEntry entry = randomEntry(rng);
    std::string full = encodeOne(entry);
    ASSERT_GT(full.size(), 8u);

    for (size_t cut = 0; cut < full.size(); ++cut) {
        wire::Decoder dec(std::string_view(full.data(), cut));
        try {
            explore::decodeEntry(dec, testProgram());
            FAIL() << "prefix of " << cut << "/" << full.size()
                   << " bytes decoded";
        } catch (const wire::WireError &err) {
            EXPECT_EQ(err.kind(), wire::WireErrorKind::Truncated)
                << "prefix " << cut;
        }
    }
}

/** Entries from a different edge universe are refused, not aborted. */
TEST(Wire, ForeignProgramEntryIsMismatch)
{
    Rng rng(0xfeed);
    explore::CorpusEntry entry = randomEntry(rng);
    std::string bytes = encodeOne(entry);

    // Any workload with a different-size edge universe will do.
    isa::Program foreign;
    bool found = false;
    for (const std::string &name : workloads::workloadNames()) {
        auto candidate = minic::compile(
            workloads::getWorkload(name).source, name);
        if (coverage::BranchCoverage(candidate).takenWords().size() !=
            entry.coverage.takenWords().size()) {
            foreign = std::move(candidate);
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found)
        << "every workload shares schedule's bitmap size?";
    wire::Decoder dec(bytes);
    try {
        explore::decodeEntry(dec, foreign);
        FAIL() << "entry for another program decoded";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_NE(err.expected(), err.found());
    }
}

// --- Framing over real fds ------------------------------------------

TEST(Wire, FrameRoundTripOverPipe)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    wire::writeFrame(fds[1], wire::FrameType::RoundStart, "payload");
    wire::writeFrame(fds[1], wire::FrameType::Stop, "");
    close(fds[1]);

    auto first = wire::readFrame(fds[0]);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, wire::FrameType::RoundStart);
    EXPECT_EQ(first->payload, "payload");

    auto second = wire::readFrame(fds[0]);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, wire::FrameType::Stop);
    EXPECT_TRUE(second->payload.empty());

    // Clean EOF at a frame boundary is a normal shutdown.
    EXPECT_FALSE(wire::readFrame(fds[0]).has_value());
    close(fds[0]);
}

TEST(Wire, MidFrameEofIsTruncated)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    // A full header promising 100 payload bytes, then silence.
    wire::Encoder header;
    header.u32(0x31464550);     // kFrameMagic "PEF1"
    header.u32(100);
    header.u32(static_cast<uint32_t>(wire::FrameType::RoundDelta));
    ASSERT_EQ(write(fds[1], header.buffer().data(), header.size()),
              static_cast<ssize_t>(header.size()));
    close(fds[1]);

    try {
        wire::readFrame(fds[0]);
        FAIL() << "truncated frame was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Truncated);
    }
    close(fds[0]);
}

TEST(Wire, BadMagicIsRejected)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);

    wire::Encoder header;
    header.u32(0x46454542);     // not our magic
    header.u32(0);
    header.u32(1);
    ASSERT_EQ(write(fds[1], header.buffer().data(), header.size()),
              static_cast<ssize_t>(header.size()));
    close(fds[1]);

    try {
        wire::readFrame(fds[0]);
        FAIL() << "foreign magic was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadMagic);
        EXPECT_EQ(err.found(), 0x46454542u);
    }
    close(fds[0]);
}

// --- Frame reader state machine -------------------------------------

constexpr uint32_t kTestFrameMagic = 0x31464550; // "PEF1"

/** Raw bytes of one well-formed frame. */
std::string
frameBytes(wire::FrameType type, std::string_view payload)
{
    wire::Encoder enc;
    enc.u32(kTestFrameMagic);
    enc.u32(static_cast<uint32_t>(payload.size()));
    enc.u32(static_cast<uint32_t>(type));
    std::string out = enc.take();
    out.append(payload.data(), payload.size());
    return out;
}

/**
 * The incremental reader must be delivery-agnostic: a stream of
 * random frames fed one byte at a time yields exactly the frames a
 * single bulk feed yields, in order, with byte-identical payloads and
 * no residue at the end.
 */
TEST(Wire, FrameReaderByteAtATimeMatchesBulkFeed)
{
    Rng rng(0xf00df4a6);
    const wire::FrameType kinds[] = {
        wire::FrameType::Hello,      wire::FrameType::HelloReply,
        wire::FrameType::RoundStart, wire::FrameType::RoundDelta,
        wire::FrameType::Stop,       wire::FrameType::Goodbye,
        wire::FrameType::Error,      wire::FrameType::Join,
    };
    std::string stream;
    std::vector<std::pair<wire::FrameType, std::string>> sent;
    for (int i = 0; i < 25; ++i) {
        std::string payload(rng.nextBelow(200), '\0');
        for (char &c : payload)
            c = static_cast<char>(rng.next64());
        wire::FrameType type = kinds[rng.nextBelow(8)];
        sent.emplace_back(type, payload);
        stream += frameBytes(type, payload);
    }

    wire::FrameReader bulk;
    wire::FrameReader trickle;
    bulk.feed(stream.data(), stream.size());
    for (char c : stream)
        trickle.feed(&c, 1);

    EXPECT_EQ(bulk.pendingFrames(), sent.size());
    EXPECT_EQ(trickle.pendingFrames(), sent.size());
    for (const auto &[type, payload] : sent) {
        auto a = bulk.next();
        auto b = trickle.next();
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(a->type, type);
        EXPECT_EQ(a->payload, payload);
        EXPECT_EQ(b->type, type);
        EXPECT_EQ(b->payload, payload);
    }
    EXPECT_FALSE(bulk.next().has_value());
    EXPECT_FALSE(trickle.next().has_value());
    EXPECT_FALSE(bulk.midFrame());
    EXPECT_FALSE(trickle.midFrame());
}

/** Reassembly is split-point-independent, including inside headers. */
TEST(Wire, FrameReaderReassemblesAcrossEverySplitPoint)
{
    std::string stream =
        frameBytes(wire::FrameType::RoundStart, "alpha") +
        frameBytes(wire::FrameType::Stop, "") +
        frameBytes(wire::FrameType::Goodbye, "omega payload");

    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        wire::FrameReader reader;
        reader.feed(stream.data(), cut);
        reader.feed(stream.data() + cut, stream.size() - cut);

        auto first = reader.next();
        ASSERT_TRUE(first.has_value()) << "cut " << cut;
        EXPECT_EQ(first->type, wire::FrameType::RoundStart);
        EXPECT_EQ(first->payload, "alpha");
        auto second = reader.next();
        ASSERT_TRUE(second.has_value()) << "cut " << cut;
        EXPECT_EQ(second->type, wire::FrameType::Stop);
        EXPECT_TRUE(second->payload.empty());
        auto third = reader.next();
        ASSERT_TRUE(third.has_value()) << "cut " << cut;
        EXPECT_EQ(third->payload, "omega payload");
        EXPECT_FALSE(reader.next().has_value()) << "cut " << cut;
        EXPECT_FALSE(reader.midFrame()) << "cut " << cut;
    }
}

/**
 * Fuzz the header state machine: random 12-byte headers fed one byte
 * at a time.  A malformed header must throw a structured WireError
 * (BadMagic for foreign bytes, BadFrame for an implausible length)
 * exactly when its 12th byte lands — never earlier, never after
 * buffering payload it should not believe — and a well-formed header
 * must never throw.
 */
TEST(Wire, FrameReaderRejectsRandomHeadersTheMomentTheyComplete)
{
    Rng rng(0x8eade4);
    int sawBadMagic = 0;
    int sawBadLength = 0;
    int sawWellFormed = 0;

    for (int iter = 0; iter < 3000; ++iter) {
        uint32_t magic;
        uint32_t len;
        switch (iter % 3) {
          case 0:   // fully random header; magic is ~never ours
            magic = static_cast<uint32_t>(rng.next64());
            len = static_cast<uint32_t>(rng.next64());
            break;
          case 1:   // our magic, random (usually implausible) length
            magic = kTestFrameMagic;
            len = static_cast<uint32_t>(rng.next64());
            break;
          default:  // fully well-formed header
            magic = kTestFrameMagic;
            len = static_cast<uint32_t>(rng.nextBelow(4096));
            break;
        }
        wire::Encoder enc;
        enc.u32(magic);
        enc.u32(len);
        enc.u32(static_cast<uint32_t>(rng.next64())); // type: any u32
        const std::string &head = enc.buffer();
        ASSERT_EQ(head.size(), 12u);

        const bool badMagic = magic != kTestFrameMagic;
        const bool badLen = !badMagic && len > wire::kMaxFramePayload;

        wire::FrameReader reader;
        size_t fed = 0;
        bool threw = false;
        try {
            for (char c : head) {
                ++fed;
                reader.feed(&c, 1);
            }
        } catch (const wire::WireError &err) {
            threw = true;
            EXPECT_EQ(fed, 12u) << "threw before the header completed";
            if (badMagic) {
                EXPECT_EQ(err.kind(), wire::WireErrorKind::BadMagic);
                EXPECT_EQ(err.found(), magic);
                ++sawBadMagic;
            } else {
                EXPECT_EQ(err.kind(), wire::WireErrorKind::BadFrame);
                EXPECT_EQ(err.found(), len);
                ++sawBadLength;
            }
        }
        EXPECT_EQ(threw, badMagic || badLen) << "iteration " << iter;
        if (threw)
            continue;

        ++sawWellFormed;
        // Nothing completed yet unless the frame was empty; a partial
        // payload never yields a frame and never over-reads.
        if (len == 0) {
            EXPECT_EQ(reader.pendingFrames(), 1u);
            EXPECT_FALSE(reader.midFrame());
        } else {
            EXPECT_EQ(reader.pendingFrames(), 0u);
            EXPECT_TRUE(reader.midFrame());
            std::string part(std::min<size_t>(len - 1, 64), 'x');
            reader.feed(part.data(), part.size());
            EXPECT_EQ(reader.pendingFrames(), 0u);
            EXPECT_TRUE(reader.midFrame());
        }
    }
    // The fuzz loop actually exercised all three classes.
    EXPECT_GT(sawBadMagic, 0);
    EXPECT_GT(sawBadLength, 0);
    EXPECT_GT(sawWellFormed, 0);
}

/** After garbage, reset() returns the reader to a clean state. */
TEST(Wire, FrameReaderResetRecoversAfterGarbage)
{
    wire::FrameReader reader;
    std::string garbage(12, '\x5a');
    EXPECT_THROW(reader.feed(garbage.data(), garbage.size()),
                 wire::WireError);

    reader.reset();
    EXPECT_FALSE(reader.midFrame());
    EXPECT_EQ(reader.pendingFrames(), 0u);

    std::string good = frameBytes(wire::FrameType::Stop, "ok");
    reader.feed(good.data(), good.size());
    auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, wire::FrameType::Stop);
    EXPECT_EQ(frame->payload, "ok");
}

// --- Join identity (TCP transport handshake) ------------------------

TEST(Wire, JoinIdentityMismatchNamesTheField)
{
    fleet::Join want;
    want.shards = 3;
    want.configHash = 0x1111;
    want.sessionWord = 0xaaaa;
    want.seedsDigest = 0x5e5e;

    fleet::Join got = want;
    got.seedsDigest = 0x6f6f;
    try {
        fleet::validateJoin(got, want);
        FAIL() << "seeds-digest mismatch was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_EQ(err.expected(), 0x5e5eu);
        EXPECT_EQ(err.found(), 0x6f6fu);
        EXPECT_NE(std::string(err.what()).find("seeds digest"),
                  std::string::npos);
    }

    got = want;
    got.sessionWord = 0xbbbb;
    try {
        fleet::validateJoin(got, want);
        FAIL() << "session-word mismatch was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_NE(std::string(err.what()).find("session word"),
                  std::string::npos);
    }

    got = want;
    got.wireVersion = wire::kWireVersion + 1;
    try {
        fleet::validateJoin(got, want);
        FAIL() << "future wire version was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadVersion);
    }

    // desiredShard and lastAckedRound are negotiation, not identity.
    got = want;
    got.desiredShard = 2;
    got.lastAckedRound = 7;
    EXPECT_NO_THROW(fleet::validateJoin(got, want));
}

/**
 * The session word must move with every off-wire knob that changes
 * worker behavior — it is what stops a TCP worker started with
 * different flags from silently forking the deterministic merge.
 */
TEST(Wire, SessionWordTracksOffWireKnobs)
{
    explore::ExploreOptions base;
    uint64_t word = fleet::sessionWord(base);
    EXPECT_EQ(word, fleet::sessionWord(base));

    explore::ExploreOptions batch = base;
    batch.batchSize = base.batchSize + 1;
    EXPECT_NE(fleet::sessionWord(batch), word);

    explore::ExploreOptions pct = base;
    pct.rarePercentile = base.rarePercentile + 0.1;
    EXPECT_NE(fleet::sessionWord(pct), word);

    explore::ExploreOptions pol = base;
    pol.policy = explore::SchedulePolicy::UniformRandom;
    ASSERT_NE(pol.policy, base.policy);
    EXPECT_NE(fleet::sessionWord(pol), word);
}

// --- Version negotiation --------------------------------------------

TEST(Wire, VersionBumpedHelloIsRejectedWithBothValues)
{
    fleet::Hello want;
    want.shard = 3;
    fleet::Hello got = want;
    got.wireVersion = wire::kWireVersion + 1;

    try {
        fleet::validateHello(got, want);
        FAIL() << "future wire version was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::BadVersion);
        EXPECT_EQ(err.expected(), wire::kWireVersion);
        EXPECT_EQ(err.found(), wire::kWireVersion + 1);
        // The message names the shard and both versions.
        EXPECT_NE(std::string(err.what()).find("shard 3"),
                  std::string::npos);
    }
}

TEST(Wire, HelloIdentityMismatchNamesTheField)
{
    fleet::Hello want;
    want.configHash = 0x1111;
    fleet::Hello got = want;
    got.configHash = 0x2222;

    try {
        fleet::validateHello(got, want);
        FAIL() << "config-hash mismatch was accepted";
    } catch (const wire::WireError &err) {
        EXPECT_EQ(err.kind(), wire::WireErrorKind::Mismatch);
        EXPECT_EQ(err.expected(), 0x1111u);
        EXPECT_EQ(err.found(), 0x2222u);
        std::string what = err.what();
        EXPECT_NE(what.find("config hash"), std::string::npos);
        EXPECT_NE(what.find("expected"), std::string::npos);
        EXPECT_NE(what.find("found"), std::string::npos);
    }
}

// --- Checkpoint corruption reporting --------------------------------

class WireCheckpointTest : public ::testing::Test
{
  protected:
    std::string
    path(const char *name)
    {
        return testing::TempDir() + "wire_ckp_" + name + ".bin";
    }

    /** Run a short exploration that leaves a checkpoint behind. */
    void
    writeCheckpoint(const std::string &file)
    {
        const auto &workload = workloads::getWorkload("schedule");
        explore::ExploreOptions opts;
        opts.config = core::PeConfig::forMode(core::PeMode::Off);
        opts.budget.maxRuns = 24;
        opts.batchSize = 4;
        opts.checkpointPath = file;
        explore::Explorer explorer(testProgram(),
                                   workload.benignInputs, opts);
        explorer.run();
    }
};

TEST_F(WireCheckpointTest, VersionCorruptionReportsExpectedAndFound)
{
    std::string file = path("version");
    writeCheckpoint(file);

    // The u32 version lives right after the 8-byte magic.
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(8);
        uint32_t bogus = 77;
        f.write(reinterpret_cast<const char *>(&bogus), 4);
    }

    const auto &workload = workloads::getWorkload("schedule");
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.budget.maxRuns = 48;
    opts.batchSize = 4;
    opts.resumeFrom = file;
    explore::Explorer explorer(testProgram(), workload.benignInputs,
                               opts);
    try {
        explorer.run();
        FAIL() << "corrupt checkpoint version was accepted";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("version mismatch"), std::string::npos);
        EXPECT_NE(what.find("expected 3"), std::string::npos);
        EXPECT_NE(what.find("found 77"), std::string::npos);
    }
    std::remove(file.c_str());
}

TEST_F(WireCheckpointTest, TruncatedCheckpointIsStructuredError)
{
    std::string file = path("truncated");
    writeCheckpoint(file);

    // Chop the file at two thirds: decode must fail as Truncated,
    // surfaced through the explorer as a FatalError naming the kind.
    std::string bytes;
    {
        std::ifstream f(file, std::ios::binary);
        std::ostringstream raw;
        raw << f.rdbuf();
        bytes = raw.str();
    }
    ASSERT_GT(bytes.size(), 32u);
    {
        std::ofstream f(file, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * 2 / 3));
    }

    const auto &workload = workloads::getWorkload("schedule");
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.budget.maxRuns = 48;
    opts.batchSize = 4;
    opts.resumeFrom = file;
    explore::Explorer explorer(testProgram(), workload.benignInputs,
                               opts);
    try {
        explorer.run();
        FAIL() << "truncated checkpoint was accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("truncated"),
                  std::string::npos);
    }
    std::remove(file.c_str());
}

} // namespace
