/**
 * @file
 * ISA tests: opcode properties, 64-bit encode/decode round-trips
 * (property-style sweep over all opcodes and field extremes),
 * disassembly, and Program helpers.
 */

#include <gtest/gtest.h>

#include "src/isa/instruction.hh"
#include "src/isa/program.hh"
#include "src/isa/regs.hh"
#include "src/support/rng.hh"

namespace
{

using namespace pe;
using namespace pe::isa;

TEST(Opcode, NamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i)
        names.insert(opcodeName(static_cast<Opcode>(i)));
    EXPECT_EQ(names.size(),
              static_cast<size_t>(Opcode::NumOpcodes));
}

TEST(Opcode, BranchClassification)
{
    EXPECT_TRUE(isConditionalBranch(Opcode::Beq));
    EXPECT_TRUE(isConditionalBranch(Opcode::Bgt));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jal));
    EXPECT_FALSE(isConditionalBranch(Opcode::Add));
}

TEST(Opcode, MemoryClassification)
{
    EXPECT_TRUE(isMemoryOp(Opcode::Ld));
    EXPECT_TRUE(isMemoryOp(Opcode::St));
    EXPECT_TRUE(isMemoryOp(Opcode::Pfixst));
    EXPECT_FALSE(isMemoryOp(Opcode::Add));
    EXPECT_FALSE(isMemoryOp(Opcode::Chkb));
}

TEST(Opcode, PredicatedFixClassification)
{
    EXPECT_TRUE(isPredicatedFix(Opcode::Pfix));
    EXPECT_TRUE(isPredicatedFix(Opcode::Pfixst));
    EXPECT_FALSE(isPredicatedFix(Opcode::Li));
}

/** Property sweep: encode/decode round-trips for every opcode. */
class EncodeRoundTrip
    : public ::testing::TestWithParam<int>
{};

TEST_P(EncodeRoundTrip, AllFieldCombinations)
{
    Opcode op = static_cast<Opcode>(GetParam());
    Rng rng(GetParam() * 7919 + 1);
    const int32_t imms[] = {0, 1, -1, 42, -42, 0x7fffffff,
                            static_cast<int32_t>(0x80000000), 123456};
    for (int32_t imm : imms) {
        Instruction inst;
        inst.op = op;
        inst.rd = static_cast<uint8_t>(rng.nextBelow(numRegs));
        inst.rs1 = static_cast<uint8_t>(rng.nextBelow(numRegs));
        inst.rs2 = static_cast<uint8_t>(rng.nextBelow(numRegs));
        inst.imm = imm;
        EXPECT_EQ(decode(encode(inst)), inst)
            << opcodeName(op) << " imm=" << imm;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)));

TEST(Encode, RegisterBoundaries)
{
    Instruction inst = makeR(Opcode::Add, 31, 31, 31);
    EXPECT_EQ(decode(encode(inst)), inst);
    inst = makeR(Opcode::Add, 0, 0, 0);
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(Disassemble, RepresentativeForms)
{
    EXPECT_EQ(disassemble(makeR(Opcode::Add, 8, 9, 10)),
              "add r8, r9, r10");
    EXPECT_EQ(disassemble(makeLi(5, -7)), "li r5, -7");
    EXPECT_EQ(disassemble(makeI(Opcode::Ld, 8, 2, -3)),
              "ld r8, -3(r2)");
    EXPECT_EQ(disassemble(Instruction{Opcode::St, 0, 2, 9, 4}),
              "st r9, 4(r2)");
    EXPECT_EQ(disassemble(makeBranch(Opcode::Beq, 8, 0, 42)),
              "beq r8, r0, 42");
    EXPECT_EQ(disassemble(makeJmp(7)), "jmp 7");
    EXPECT_EQ(disassemble(makeJr(3)), "jr r3");
    EXPECT_EQ(disassemble(Instruction{Opcode::Assert, 0, 8, 0, 99}),
              "assert r8, #99");
    EXPECT_EQ(disassemble(makeI(Opcode::Pfix, 31, 0, 5)),
              "pfix r31, 5");
}

TEST(Program, BranchEnumeration)
{
    Program p;
    p.code.push_back(makeLi(8, 1));
    p.code.push_back(makeBranch(Opcode::Beq, 8, 0, 0));
    p.code.push_back(makeJmp(0));
    p.code.push_back(makeBranch(Opcode::Blt, 8, 9, 1));
    auto pcs = p.branchPcs();
    ASSERT_EQ(pcs.size(), 2u);
    EXPECT_EQ(pcs[0], 1u);
    EXPECT_EQ(pcs[1], 3u);
    EXPECT_EQ(p.numBranches(), 2u);
}

TEST(Program, FuncAndLocLookup)
{
    Program p;
    for (int i = 0; i < 10; ++i) {
        p.code.push_back(makeLi(8, i));
        p.locs.push_back(SourceLoc{i + 1, 0});
    }
    p.funcs.push_back(FuncInfo{"alpha", 0, 5});
    p.funcs.push_back(FuncInfo{"beta", 5, 10});
    EXPECT_EQ(p.funcOf(0), "alpha");
    EXPECT_EQ(p.funcOf(4), "alpha");
    EXPECT_EQ(p.funcOf(5), "beta");
    EXPECT_EQ(p.funcOf(99), "?");
    EXPECT_EQ(p.locOf(3).line, 4);
    EXPECT_EQ(p.locOf(99).line, 0);
    EXPECT_EQ(p.describePc(6), "beta:7");
}

} // namespace
