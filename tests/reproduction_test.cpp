/**
 * @file
 * Reproduction locks: end-to-end regression tests pinning the
 * headline numbers of the paper reproduction (see EXPERIMENTS.md).
 * If a change to the engine, the compiler or a workload shifts one of
 * these, the corresponding EXPERIMENTS.md entry must be re-derived.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

struct ToolRow
{
    const char *app;
    bool memory;
};

const ToolRow table4Rows[] = {
    {"pe_go", true},         {"pe_bc", true},
    {"pe_man", true},        {"print_tokens2", true},
    {"print_tokens", false}, {"print_tokens2", false},
    {"schedule", false},     {"schedule2", false},
};

core::RunResult
runTool(const isa::Program &program, const workloads::Workload &w,
        core::PeMode mode, bool memory, bool fixing = true)
{
    std::unique_ptr<detect::Detector> det;
    if (memory)
        det = std::make_unique<detect::WatchChecker>();
    else
        det = std::make_unique<detect::AssertChecker>();
    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.variableFixing = fixing;
    core::PathExpanderEngine engine(program, cfg, det.get());
    return engine.run(w.benignInputs[0]);
}

TEST(Reproduction, Table4TotalsAre38Tested0Baseline21Detected)
{
    int tested = 0;
    int baseline = 0;
    int detected = 0;
    for (const auto &row : table4Rows) {
        const auto &w = workloads::getWorkload(row.app);
        auto program = minic::compile(w.source, w.name);
        // Memory rows count twice (CCured-like and iWatcher-like see
        // identical results on these bugs, as validated elsewhere).
        int weight = row.memory ? 2 : 1;

        auto base = runTool(program, w, core::PeMode::Off, row.memory);
        auto pe =
            runTool(program, w, core::PeMode::Standard, row.memory);
        auto ab =
            workloads::analyzeReports(w, program, base.monitor,
                                      row.memory);
        auto ap = workloads::analyzeReports(w, program, pe.monitor,
                                            row.memory);
        tested += weight * static_cast<int>(ap.outcomes.size());
        baseline += weight * ab.numDetected;
        detected += weight * ap.numDetected;
    }
    EXPECT_EQ(tested, 38);
    EXPECT_EQ(baseline, 0);
    EXPECT_EQ(detected, 21);
}

TEST(Reproduction, CoverageImprovementBand)
{
    double baseSum = 0;
    double peSum = 0;
    int n = 0;
    for (const auto &name : workloads::workloadNames()) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, w.name);
        auto cfgOff = core::PeConfig::forMode(core::PeMode::Off);
        auto cfgPe = core::PeConfig::forMode(core::PeMode::Standard);
        cfgPe.maxNtPathLength = w.maxNtPathLength;
        core::PathExpanderEngine off(program, cfgOff, nullptr);
        core::PathExpanderEngine pe(program, cfgPe, nullptr);
        baseSum += off.run(w.benignInputs[0]).coverage.takenFraction();
        peSum +=
            pe.run(w.benignInputs[0]).coverage.combinedFraction();
        ++n;
    }
    double base = baseSum / n;
    double withPe = peSum / n;
    // Paper band: 40% -> 65%.  Lock our measured band.
    EXPECT_GT(base, 0.35);
    EXPECT_LT(base, 0.60);
    EXPECT_GT(withPe, 0.60);
    EXPECT_LT(withPe, 0.85);
    EXPECT_GT(withPe - base, 0.15);     // at least +15pp
}

TEST(Reproduction, FalsePositivePruningBand)
{
    double before = 0;
    double after = 0;
    int rows = 0;
    for (const char *name :
         {"pe_go", "pe_bc", "pe_man", "print_tokens2"}) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, w.name);
        auto rb = runTool(program, w, core::PeMode::Standard, true,
                          /*fixing=*/false);
        auto ra = runTool(program, w, core::PeMode::Standard, true,
                          /*fixing=*/true);
        before += workloads::analyzeReports(w, program, rb.monitor,
                                            true)
                      .falsePositiveSites;
        after += workloads::analyzeReports(w, program, ra.monitor,
                                           true)
                     .falsePositiveSites;
        ++rows;
    }
    before /= rows;
    after /= rows;
    // Paper: 13 -> 4.  Lock the shape: a substantial reduction to a
    // small residue.
    EXPECT_GT(before, 5.0);
    EXPECT_LT(after, 4.0);
    EXPECT_GT(before, 2.5 * after);
}

TEST(Reproduction, ManBugNeedsFixing)
{
    const auto &w = workloads::getWorkload("pe_man");
    auto program = minic::compile(w.source, w.name);
    auto rb = runTool(program, w, core::PeMode::Standard, true, false);
    auto ra = runTool(program, w, core::PeMode::Standard, true, true);
    EXPECT_EQ(workloads::analyzeReports(w, program, rb.monitor, true)
                  .numDetected,
              0);
    EXPECT_EQ(workloads::analyzeReports(w, program, ra.monitor, true)
                  .numDetected,
              1);
}

TEST(Reproduction, CmpOverheadUnderTenPercent)
{
    // The paper's headline: < 9.9% with the CMP option, on every app.
    for (const auto &name : workloads::workloadNames()) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, w.name);

        auto baseCfg = core::PeConfig::forMode(core::PeMode::Off);
        baseCfg.timing = sim::TimingConfig::cmpConfig();
        core::PathExpanderEngine base(program, baseCfg, nullptr);
        auto rb = base.run(w.benignInputs[0]);

        auto cmpCfg = core::PeConfig::forMode(core::PeMode::Cmp);
        cmpCfg.maxNtPathLength = w.maxNtPathLength;
        core::PathExpanderEngine cmp(program, cmpCfg, nullptr);
        auto rc = cmp.run(w.benignInputs[0]);

        double overhead = (static_cast<double>(rc.cycles) -
                           static_cast<double>(rb.cycles)) /
                          static_cast<double>(rb.cycles);
        EXPECT_LT(overhead, 0.15) << name;
    }
}

TEST(Reproduction, SoftwareThreeOrdersOfMagnitude)
{
    const auto &w = workloads::getWorkload("pe_go");
    auto program = minic::compile(w.source, w.name);

    auto offCfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine off(program, offCfg, nullptr);
    auto rb = off.run(w.benignInputs[0]);

    auto cmpBaseCfg = offCfg;
    cmpBaseCfg.timing = sim::TimingConfig::cmpConfig();
    core::PathExpanderEngine cmpBase(program, cmpBaseCfg, nullptr);
    auto rcb = cmpBase.run(w.benignInputs[0]);

    auto cmpCfg = core::PeConfig::forMode(core::PeMode::Cmp);
    core::PathExpanderEngine cmp(program, cmpCfg, nullptr);
    auto rc = cmp.run(w.benignInputs[0]);

    auto swCfg = core::PeConfig::forMode(core::PeMode::Standard);
    swCfg.costModel = core::CostModelKind::Software;
    core::PathExpanderEngine sw(program, swCfg, nullptr);
    auto rs = sw.run(w.benignInputs[0]);

    double cmpOver = (static_cast<double>(rc.cycles) -
                      static_cast<double>(rcb.cycles)) /
                     static_cast<double>(rcb.cycles);
    double swOver = (static_cast<double>(rs.cycles) -
                     static_cast<double>(rb.cycles)) /
                    static_cast<double>(rb.cycles);
    EXPECT_GT(swOver / std::max(cmpOver, 1e-9), 1000.0);
}

TEST(Reproduction, Figure3SurvivalBands)
{
    struct Band
    {
        const char *app;
        double minSurvive;
        double maxSurvive;
    };
    // Paper: 65-99% survive; go barely ever stops early; gzip is the
    // most unsafe-event-bound.
    const Band bands[] = {
        {"pe_go", 0.85, 1.00},
        {"pe_gzip", 0.55, 0.80},
        {"pe_vpr", 0.55, 0.85},
    };
    for (const auto &band : bands) {
        const auto &w = workloads::getWorkload(band.app);
        auto program = minic::compile(w.source, w.name);
        auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
        cfg.maxNtPathLength = 1000;
        cfg.ntPathCounterThreshold = 1;
        cfg.variableFixing = false;
        core::PathExpanderEngine engine(program, cfg, nullptr);
        auto r = engine.run(w.benignInputs[0]);
        double stopped =
            r.ntFraction(core::NtStopCause::Crash) +
            r.ntFraction(core::NtStopCause::UnsafeEvent);
        double survive = 1.0 - stopped;
        EXPECT_GE(survive, band.minSurvive) << band.app;
        EXPECT_LE(survive, band.maxSurvive) << band.app;
    }
}

} // namespace
