/**
 * @file
 * Fault-tolerance tests: campaign failure policies under injected
 * faults (fail-fast, continue, retry — surviving results must stay
 * bit-identical to a failure-free campaign), the per-job wall-clock
 * watchdog, thread-pool cancellation, the fault-plan spec language
 * and explorer checkpoint/resume bit-identity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/campaign.hh"
#include "src/explore/explorer.hh"
#include "src/fleet/checkpoint.hh"
#include "src/fleet/coordinator.hh"
#include "src/minic/compiler.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/thread_pool.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

// ---------------------------------------------------------------------
// Fault-plan spec language.

TEST(FaultPlan, SpecStringRoundTrips)
{
    fault::FaultPlan plans[] = {
        {},
        {"campaign.run_job", 5, 1, fault::FaultKind::Throw, 1, "boom"},
        {"explore.batch_merge", 2, 0, fault::FaultKind::BadAlloc, 1,
         "oom"},
        {"objfile.write", 1, 3, fault::FaultKind::Stall, 25, "slow"},
    };
    plans[0].site = "a.b";
    for (const auto &plan : plans) {
        EXPECT_EQ(fault::parsePlan(plan.str()), plan) << plan.str();
    }
}

TEST(FaultPlan, ParsesSparseSpecsWithDefaults)
{
    auto plan = fault::parsePlan("site=campaign.run_job");
    EXPECT_EQ(plan.site, "campaign.run_job");
    EXPECT_EQ(plan.hit, 1u);
    EXPECT_EQ(plan.count, 1u);
    EXPECT_EQ(plan.kind, fault::FaultKind::Throw);

    auto list = fault::parsePlanList(
        "site=a.b,hit=2;site=c.d,kind=stall,stall_ms=5");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0].hit, 2u);
    EXPECT_EQ(list[1].kind, fault::FaultKind::Stall);
    EXPECT_EQ(list[1].stallMs, 5u);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::parsePlan("hit=1"), FatalError);
    EXPECT_THROW(fault::parsePlan("site=a.b,kind=nonsense"),
                 FatalError);
    EXPECT_THROW(fault::parsePlan("site=a.b,hit=0"), FatalError);
    EXPECT_THROW(fault::parsePlan("site=a.b,frobnicate=1"),
                 FatalError);
}

TEST(FaultPlan, SiteFiresOnConfiguredHitsOnly)
{
    fault::FaultPlan plan;
    plan.site = "test.site";
    plan.hit = 3;
    plan.count = 2;
    plan.message = "deliberate";
    fault::ScopedFaultPlan armed(plan);

    fault::site("test.other");      // different site: never fires
    fault::site("test.site");       // hit 1
    fault::site("test.site");       // hit 2
    EXPECT_THROW(fault::site("test.site"), FatalError);     // hit 3
    EXPECT_THROW(fault::site("test.site"), FatalError);     // hit 4
    fault::site("test.site");       // hit 5: window over
    EXPECT_EQ(fault::siteHits("test.site"), 5u);
    EXPECT_EQ(fault::siteHits("test.other"), 1u);
}

TEST(FaultPlan, BadAllocAndStallKinds)
{
    {
        fault::FaultPlan plan;
        plan.site = "test.alloc";
        plan.kind = fault::FaultKind::BadAlloc;
        fault::ScopedFaultPlan armed(plan);
        EXPECT_THROW(fault::site("test.alloc"), std::bad_alloc);
    }
    {
        fault::FaultPlan plan;
        plan.site = "test.stall";
        plan.kind = fault::FaultKind::Stall;
        plan.stallMs = 1;
        fault::ScopedFaultPlan armed(plan);
        EXPECT_NO_THROW(fault::site("test.stall"));
    }
    // ScopedFaultPlan restored the disarmed state.
    EXPECT_TRUE(fault::armedPlans().empty());
    EXPECT_NO_THROW(fault::site("test.alloc"));
}

// ---------------------------------------------------------------------
// Thread-pool cancellation.

TEST(ThreadPool, CancelPendingDrainsQueueWithoutExecuting)
{
    ThreadPool pool(1);
    std::promise<void> started;
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    std::atomic<int> executed{0};

    // The single worker blocks on the gate; everything behind it
    // stays queued.  Wait for the gate task to actually start so the
    // cancellation below cannot reap it while it is still queued.
    pool.submit([&started, gate] {
        started.set_value();
        gate.wait();
    });
    started.get_future().wait();
    for (int i = 0; i < 50; ++i)
        pool.submit([&executed] { ++executed; });

    EXPECT_EQ(pool.cancelPending(), 50u);
    release.set_value();
    pool.waitIdle();
    EXPECT_EQ(executed.load(), 0);

    // The pool stays usable after a cancellation.
    pool.submit([&executed] { ++executed; });
    pool.waitIdle();
    EXPECT_EQ(executed.load(), 1);
}

// ---------------------------------------------------------------------
// Campaign failure policies.

/** Compile @p name and build jobs over its benign inputs (cycled). */
struct CampaignFixture
{
    explicit CampaignFixture(const std::string &name)
        : workload(&workloads::getWorkload(name)),
          program(minic::compile(workload->source, name))
    {}

    std::vector<core::CampaignJob> jobs(size_t n) const
    {
        std::vector<core::CampaignJob> out;
        for (size_t i = 0; i < n; ++i) {
            core::CampaignJob j;
            j.program = &program;
            j.input = workload->benignInputs
                          [i % workload->benignInputs.size()];
            j.config = core::PeConfig::forMode(core::PeMode::Standard);
            j.config.maxNtPathLength = workload->maxNtPathLength;
            out.push_back(std::move(j));
        }
        return out;
    }

    const workloads::Workload *workload;
    isa::Program program;
};

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.memoryDigest, b.memoryDigest);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.takenInstructions, b.takenInstructions);
    EXPECT_EQ(a.ntInstructions, b.ntInstructions);
    EXPECT_EQ(a.ntPathsSpawned, b.ntPathsSpawned);
    EXPECT_EQ(a.coverage.takenCovered(), b.coverage.takenCovered());
    EXPECT_EQ(a.coverage.combinedCovered(),
              b.coverage.combinedCovered());
    EXPECT_EQ(a.io.charOutput, b.io.charOutput);
}

fault::FaultPlan
failNthRunJob(uint64_t hit, uint64_t count = 1)
{
    fault::FaultPlan plan;
    plan.site = "campaign.run_job";
    plan.hit = hit;
    plan.count = count;
    plan.message = "injected job failure";
    return plan;
}

TEST(FailPolicy, FailFastRethrowsTheFirstError)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(16);
    fault::ScopedFaultPlan armed(failNthRunJob(3));

    core::CampaignOptions opts;
    opts.threads = 2;   // default policy: FailFast
    EXPECT_THROW(core::runCampaign(jobs, opts), FatalError);
}

TEST(FailPolicy, ContinueReturnsSurvivorsBitIdentical)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(64);

    auto baseline = core::runCampaign(jobs, core::campaignThreads(4));
    ASSERT_EQ(baseline.results.size(), 64u);

    fault::ScopedFaultPlan armed(failNthRunJob(13));
    core::CampaignOptions opts;
    opts.threads = 4;
    opts.failPolicy = core::FailPolicy::continueOnError();
    auto outcome = core::runCampaign(jobs, opts);

    ASSERT_EQ(outcome.failures.size(), 1u);
    ASSERT_EQ(outcome.results.size(), 63u);
    ASSERT_EQ(outcome.resultJobIndex.size(), 63u);
    EXPECT_EQ(outcome.suppressedErrors, 0u);
    const auto &failure = outcome.failures[0];
    EXPECT_EQ(failure.attempts, 1u);
    EXPECT_NE(failure.what.find("injected job failure"),
              std::string::npos);

    // Every survivor is bit-identical to the same job in the
    // failure-free campaign: a failure never perturbs its neighbors.
    for (size_t k = 0; k < outcome.results.size(); ++k) {
        size_t jobIndex = outcome.resultJobIndex[k];
        EXPECT_NE(jobIndex, failure.jobIndex);
        expectIdentical(outcome.results[k],
                        baseline.results[jobIndex]);
    }
}

TEST(FailPolicy, ContinueIsDeterministicWhenSerial)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(8);

    // Serially, the 5th site hit is exactly job index 4.
    fault::ScopedFaultPlan armed(failNthRunJob(5));
    core::CampaignOptions opts;
    opts.threads = 1;
    opts.failPolicy = core::FailPolicy::continueOnError();
    auto outcome = core::runCampaign(jobs, opts);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].jobIndex, 4u);
    ASSERT_EQ(outcome.results.size(), 7u);
    for (size_t k = 0; k < outcome.results.size(); ++k)
        EXPECT_EQ(outcome.results[k].io.input,
                  jobs[outcome.resultJobIndex[k]].input);
}

TEST(FailPolicy, RetryRecoversTransientFaultBitIdentical)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(16);
    auto baseline = core::runCampaign(jobs, core::campaignThreads(1));

    // The 3rd site hit fails once; serially that is job 2's first
    // attempt.  Attempt 2 is hit 4 and succeeds.
    fault::ScopedFaultPlan armed(failNthRunJob(3));
    core::CampaignOptions opts;
    opts.threads = 1;
    opts.failPolicy = core::FailPolicy::retry(2);
    auto outcome = core::runCampaign(jobs, opts);

    EXPECT_TRUE(outcome.failures.empty());
    ASSERT_EQ(outcome.results.size(), 16u);
    EXPECT_EQ(outcome.suppressedErrors, 1u);
    for (size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(outcome.resultJobIndex[i], i);
        expectIdentical(outcome.results[i], baseline.results[i]);
    }
}

TEST(FailPolicy, RetryExhaustionRecordsAttempts)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(8);

    // Hits 3 and 4 both fail: job 2's two attempts.  Job 3 runs on
    // hit 5 and succeeds.
    fault::ScopedFaultPlan armed(failNthRunJob(3, 2));
    core::CampaignOptions opts;
    opts.threads = 1;
    opts.failPolicy = core::FailPolicy::retry(2);
    auto outcome = core::runCampaign(jobs, opts);

    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].jobIndex, 2u);
    EXPECT_EQ(outcome.failures[0].attempts, 2u);
    EXPECT_EQ(outcome.results.size(), 7u);
}

// ---------------------------------------------------------------------
// Per-job watchdog.

const char *spinSource = R"(
int main() {
    int n = read_int();
    int i = 0;
    int acc = 0;
    while (i < n) {
        acc = acc + i;
        i = i + 1;
    }
    print_int(acc);
    return 0;
}
)";

TEST(Watchdog, DeadlineAbortsRunWithPartialResult)
{
    auto program = minic::compile(spinSource, "spin");

    core::CampaignJob job;
    job.program = &program;
    job.input = {2'000'000'000};    // far beyond any 50 ms of work
    job.config = core::PeConfig::forMode(core::PeMode::Off);

    core::CampaignOptions opts;
    opts.threads = 1;
    opts.jobDeadline = std::chrono::milliseconds(50);
    auto start = std::chrono::steady_clock::now();
    auto outcome = core::runCampaign({job}, opts);
    auto elapsed = std::chrono::steady_clock::now() - start;

    ASSERT_EQ(outcome.results.size(), 1u);
    const auto &res = outcome.results[0];
    EXPECT_TRUE(res.aborted);
    EXPECT_EQ(res.stopCause, core::RunStopCause::Deadline);
    EXPECT_FALSE(res.programCrashed);
    EXPECT_FALSE(res.hitInstructionLimit);
    // Partial but real progress, and the loop clearly did not finish.
    EXPECT_GT(res.takenInstructions, 0u);
    EXPECT_LT(res.takenInstructions, 8'000'000'000u);
    // Aborted runs are results, not failures.
    EXPECT_TRUE(outcome.failures.empty());
    // Generous bound: the cancel must land well before the ~20 s the
    // full loop would take.
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
}

TEST(Watchdog, FastJobsAreUntouchedByTheDeadline)
{
    CampaignFixture fx("schedule");
    auto jobs = fx.jobs(8);
    auto baseline = core::runCampaign(jobs, core::campaignThreads(2));

    core::CampaignOptions opts;
    opts.threads = 2;
    opts.jobDeadline = std::chrono::seconds(60);
    auto outcome = core::runCampaign(jobs, opts);
    ASSERT_EQ(outcome.results.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(outcome.results[i].aborted);
        EXPECT_NE(outcome.results[i].stopCause,
                  core::RunStopCause::Deadline);
        expectIdentical(outcome.results[i], baseline.results[i]);
    }
}

TEST(Watchdog, RunStopCauseNamesDistinctAndNonNull)
{
    const core::RunStopCause causes[] = {
        core::RunStopCause::Completed,
        core::RunStopCause::Crashed,
        core::RunStopCause::InstructionLimit,
        core::RunStopCause::Deadline,
    };
    std::set<std::string> names;
    for (auto cause : causes) {
        const char *name = core::runStopCauseName(cause);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), std::size(causes));
    EXPECT_STREQ(
        core::ntStopCauseName(core::NtStopCause::HostAbort),
        "host-abort");
}

// ---------------------------------------------------------------------
// Explorer: failure plumbing and checkpoint/resume.

struct TempPath
{
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    std::string path;
};

explore::ExploreOptions
exploreOptions(uint64_t maxRuns, uint64_t seed = 0x1234)
{
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.policy = explore::SchedulePolicy::RareEdgeWeighted;
    opts.budget.maxRuns = maxRuns;
    opts.batchSize = 8;
    opts.seed = seed;
    return opts;
}

std::vector<std::vector<int32_t>>
scheduleSeeds(const workloads::Workload &workload)
{
    return {workload.benignInputs.begin(),
            workload.benignInputs.begin() + 3};
}

void
expectSameExploration(const explore::ExploreResult &a,
                      const explore::Explorer &ea,
                      const explore::ExploreResult &b,
                      const explore::Explorer &eb)
{
    EXPECT_EQ(a.stop, b.stop);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.failedJobs, b.failedJobs);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].totalRuns, b.history[i].totalRuns);
        EXPECT_EQ(a.history[i].admitted, b.history[i].admitted);
        EXPECT_EQ(a.history[i].combinedEdges,
                  b.history[i].combinedEdges);
    }
    // The frontier bitmaps — the acceptance criterion — must match
    // word for word, and so must the corpus.
    EXPECT_EQ(ea.corpus().frontier().takenWords(),
              eb.corpus().frontier().takenWords());
    EXPECT_EQ(ea.corpus().frontier().ntWords(),
              eb.corpus().frontier().ntWords());
    ASSERT_EQ(ea.corpus().size(), eb.corpus().size());
    for (size_t i = 0; i < ea.corpus().size(); ++i) {
        const auto &x = ea.corpus().entries()[i];
        const auto &y = eb.corpus().entries()[i];
        EXPECT_EQ(x.input, y.input);
        EXPECT_EQ(x.newEdges, y.newEdges);
        EXPECT_EQ(x.timesScheduled, y.timesScheduled);
        EXPECT_EQ(x.coverage.takenWords(), y.coverage.takenWords());
    }
}

TEST(Checkpoint, ResumeContinuesBitIdentically)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_resume_test.ckpt");

    // Uninterrupted reference: 3 seeds + mutated batches up to 59.
    explore::Explorer full(program, scheduleSeeds(workload),
                           exploreOptions(59));
    auto fullRes = full.run();
    EXPECT_EQ(fullRes.stop, explore::ExploreStop::RunBudget);

    // Interrupted run: the budget lands exactly on a batch boundary
    // (3 seeds + 3 * 8), where the final checkpoint is written —
    // exactly the state a kill -9 between batches leaves behind.
    {
        auto opts = exploreOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer head(program, scheduleSeeds(workload), opts);
        auto headRes = head.run();
        EXPECT_EQ(headRes.runs, 27u);
    }

    auto opts = exploreOptions(59);
    opts.resumeFrom = ckpt.path;
    explore::Explorer tail(program, scheduleSeeds(workload), opts);
    auto tailRes = tail.run();

    expectSameExploration(fullRes, full, tailRes, tail);
}

TEST(Checkpoint, PeriodicCheckpointMatchesFinalOne)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath everyCkpt("pe_every_test.ckpt");
    TempPath finalCkpt("pe_final_test.ckpt");

    // checkpointEvery=1 keeps overwriting; the surviving file is the
    // last boundary's — identical to one written only at the end.
    {
        auto opts = exploreOptions(27);
        opts.checkpointPath = everyCkpt.path;
        opts.checkpointEvery = 1;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        e.run();
    }
    {
        auto opts = exploreOptions(27);
        opts.checkpointPath = finalCkpt.path;
        opts.checkpointEvery = 1000;    // only the forced final write
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        e.run();
    }

    auto resumeAndFinish = [&](const std::string &from) {
        auto opts = exploreOptions(59);
        opts.resumeFrom = from;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        auto res = e.run();
        return std::make_pair(res,
                              e.corpus().frontier().takenWords());
    };
    auto [resA, wordsA] = resumeAndFinish(everyCkpt.path);
    auto [resB, wordsB] = resumeAndFinish(finalCkpt.path);
    EXPECT_EQ(resA.runs, resB.runs);
    EXPECT_EQ(resA.instructions, resB.instructions);
    EXPECT_EQ(wordsA, wordsB);
}

TEST(Checkpoint, MismatchedSessionIsFatal)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_mismatch_test.ckpt");

    {
        auto opts = exploreOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        e.run();
    }

    {   // Wrong master seed.
        auto opts = exploreOptions(59, /*seed=*/0x9999);
        opts.resumeFrom = ckpt.path;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        EXPECT_THROW(e.run(), FatalError);
    }
    {   // Wrong engine config.
        auto opts = exploreOptions(59);
        opts.config = core::PeConfig::forMode(core::PeMode::Standard);
        opts.resumeFrom = ckpt.path;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        EXPECT_THROW(e.run(), FatalError);
    }
    {   // Wrong program image.
        auto other = minic::compile(spinSource, "spin");
        auto opts = exploreOptions(59);
        opts.resumeFrom = ckpt.path;
        explore::Explorer e(other, {{1}}, opts);
        EXPECT_THROW(e.run(), FatalError);
    }
    {   // Missing file.
        auto opts = exploreOptions(59);
        opts.resumeFrom = ckpt.path + ".nonexistent";
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        EXPECT_THROW(e.run(), FatalError);
    }
}

TEST(Explorer, StopFlagInterruptsAtBatchBoundary)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    std::atomic<bool> stop{true};   // raised before the run starts
    auto opts = exploreOptions(1000);
    opts.stopFlag = &stop;
    std::ostringstream jsonl;
    opts.jsonl = &jsonl;
    explore::Explorer e(program, scheduleSeeds(workload), opts);
    auto res = e.run();

    // One batch (the seeds) ran, then the flag was honored.
    EXPECT_EQ(res.stop, explore::ExploreStop::Interrupted);
    EXPECT_EQ(res.batches, 1u);

    // The stream ends with the terminal "stopped" record.
    std::string out = jsonl.str();
    auto pos = out.rfind("{\"event\":\"stopped\",\"cause\":\"");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_NE(out.find("interrupted", pos), std::string::npos);
}

TEST(Explorer, ContinuePolicyAbsorbsFailingRuns)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    fault::FaultPlan plan = failNthRunJob(2);
    fault::ScopedFaultPlan armed(plan);

    auto opts = exploreOptions(19);     // 3 seeds + 2 * 8
    opts.threads = 1;
    opts.failPolicy = core::FailPolicy::continueOnError();
    std::ostringstream jsonl;
    opts.jsonl = &jsonl;
    explore::Explorer e(program, scheduleSeeds(workload), opts);
    auto res = e.run();

    // The failed job consumed its budget slot and was counted.
    EXPECT_EQ(res.stop, explore::ExploreStop::RunBudget);
    EXPECT_EQ(res.runs, 19u);
    EXPECT_EQ(res.failedJobs, 1u);
    EXPECT_NE(jsonl.str().find("\"failed\":1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Fleet checkpoint chaos: a failed or slow checkpoint write must cost
// durability, never the session.

fleet::FleetOptions
chaosFleetOptions(uint64_t maxRuns, uint64_t seed)
{
    fleet::FleetOptions opts;
    opts.base.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.base.budget.maxRuns = maxRuns;
    opts.base.batchSize = 8;
    opts.base.seed = seed;
    opts.base.label = "schedule";
    opts.shards = 3;
    opts.workerThreads = 1;
    return opts;
}

TEST(FleetCheckpointChaos, WriteFailureIsAWarningNeverAnAbort)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_fleet_chaos.ckpt");

    fleet::FleetResult baseline = fleet::runFleet(
        program, workload.benignInputs, chaosFleetOptions(120, 0x42));

    // Every checkpoint write from round 2 on throws inside the save.
    // The session must not notice beyond a warning record: same stop,
    // same digests, full budget.  And since writes go temp + atomic
    // rename, the failed attempts never clobber the round-1 file —
    // the survivor on disk still loads.
    fault::FaultPlan plan;
    plan.site = "fleet.checkpoint_write";
    plan.hit = 2;
    plan.count = 0;     // every hit from the 2nd on
    plan.message = "injected checkpoint write failure";
    fault::ScopedFaultPlan armed(plan);

    auto opts = chaosFleetOptions(120, 0x42);
    opts.checkpointPath = ckpt.path;
    std::ostringstream jsonl;
    opts.base.jsonl = &jsonl;
    fleet::FleetResult res =
        fleet::runFleet(program, workload.benignInputs, opts);

    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_EQ(res.runs, baseline.runs);
    EXPECT_EQ(res.frontierDigest, baseline.frontierDigest);
    EXPECT_EQ(res.corpusDigest, baseline.corpusDigest);
    EXPECT_EQ(res.lostWorkers, 0u);
    EXPECT_NE(jsonl.str().find(
                  "\"warning\":\"checkpoint_write_failed\""),
              std::string::npos);

    fleet::FleetCheckpoint survivor =
        fleet::loadFleetCheckpoint(ckpt.path, program);
    EXPECT_EQ(survivor.rounds, 1u)
        << "a failed write must leave the previous checkpoint intact";
    EXPECT_EQ(survivor.shards, 3u);
    ASSERT_EQ(survivor.shardStates.size(), 3u);
}

TEST(FleetCheckpointChaos, StalledWritesOnlySlowTheSessionDown)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_fleet_stall_chaos.ckpt");

    fleet::FleetResult baseline = fleet::runFleet(
        program, workload.benignInputs, chaosFleetOptions(120, 0x42));

    // Every checkpoint write stalls 50 ms (a wheezing disk).  The
    // write itself still happens after the stall, the session result
    // is untouched, and the final checkpoint covers the final round.
    fault::FaultPlan plan;
    plan.site = "fleet.checkpoint_write";
    plan.hit = 1;
    plan.count = 0;
    plan.kind = fault::FaultKind::Stall;
    plan.stallMs = 50;
    fault::ScopedFaultPlan armed(plan);

    auto opts = chaosFleetOptions(120, 0x42);
    opts.checkpointPath = ckpt.path;
    fleet::FleetResult res =
        fleet::runFleet(program, workload.benignInputs, opts);

    EXPECT_EQ(res.stop, fleet::FleetStop::RunBudget);
    EXPECT_EQ(res.frontierDigest, baseline.frontierDigest);
    EXPECT_EQ(res.corpusDigest, baseline.corpusDigest);

    fleet::FleetCheckpoint final_ =
        fleet::loadFleetCheckpoint(ckpt.path, program);
    EXPECT_EQ(final_.rounds, res.rounds);
    EXPECT_EQ(final_.runs, res.runs);
}

TEST(FleetCheckpointChaos, ResumeRefusesForeignCorruptOrMissingState)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_fleet_identity_chaos.ckpt");

    {
        auto opts = chaosFleetOptions(120, 0x42);
        opts.checkpointPath = ckpt.path;
        fleet::runFleet(program, workload.benignInputs, opts);
    }

    {   // Another session's seed: the identity header is judged
        // before any worker is contacted.
        auto opts = chaosFleetOptions(120, 0x43);
        opts.resumeFrom = ckpt.path;
        EXPECT_THROW(
            fleet::runFleet(program, workload.benignInputs, opts),
            FatalError);
    }
    {   // Matching identity and budget left to spend, but the fork
        // transport cannot take redialing workers — resume demands
        // reconnect support.  (The budget is deliberately raised:
        // it is not part of the session identity, and a checkpoint
        // whose budget is already spent stops before any worker is
        // contacted.)
        auto opts = chaosFleetOptions(240, 0x42);
        opts.resumeFrom = ckpt.path;
        EXPECT_THROW(
            fleet::runFleet(program, workload.benignInputs, opts),
            FatalError);
    }
    {   // Corrupt bytes fail the magic/decode, not the process.
        TempPath junk("pe_fleet_junk.ckpt");
        std::ofstream(junk.path) << "not a fleet checkpoint";
        EXPECT_THROW(fleet::loadFleetCheckpoint(junk.path, program),
                     FatalError);
    }
    EXPECT_THROW(fleet::loadFleetCheckpoint(
                     ckpt.path + ".nonexistent", program),
                 FatalError);
}

} // namespace
