/**
 * @file
 * Assembler tests: syntax coverage, label resolution, data
 * directives, diagnostics, and executed behaviour of assembled
 * programs (including PathExpander exploration of assembly code).
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/isa/assembler.hh"
#include "src/support/status.hh"

namespace
{

using namespace pe;
using isa::Opcode;

core::RunResult
runAsm(const std::string &src, std::vector<int32_t> input = {},
       core::PeMode mode = core::PeMode::Off,
       detect::Detector *det = nullptr)
{
    auto program = isa::assemble(src, "t");
    auto cfg = core::PeConfig::forMode(mode);
    core::PathExpanderEngine engine(program, cfg, det);
    return engine.run(std::move(input));
}

TEST(Assembler, CountdownLoop)
{
    const char *src = R"(
main:
    li      r8, 5
    li      r9, 0
loop:
    add     r9, r9, r8
    addi    r8, r8, -1
    bgt     r8, r0, loop
    sys     print_int r9
    sys     exit
)";
    auto r = runAsm(src);
    EXPECT_FALSE(r.programCrashed);
    EXPECT_EQ(r.io.charOutput, "15");
}

TEST(Assembler, DataAndArrayDirectives)
{
    const char *src = R"(
.data   counter 7
.array  buf 4 10 20 30 40

    ld      r8, counter(r0)
    ld      r9, buf(r0)         # buf's address is the payload base
    li      r10, buf
    ld      r11, 3(r10)
    add     r8, r8, r9
    add     r8, r8, r11
    sys     print_int r8        # 7 + 10 + 40
    sys     exit
)";
    auto r = runAsm(src);
    EXPECT_EQ(r.io.charOutput, "57");
}

TEST(Assembler, ArraysAreRegisteredWithGuards)
{
    // Walking off the array end hits the guard zone and the
    // iWatcher-like checker reports it.
    const char *src = R"(
.array  buf 4

    li      r10, buf
    li      r8, 1
    st      r8, 4(r10)          # one past the payload
    sys     exit
)";
    detect::WatchChecker checker;
    auto r = runAsm(src, {}, core::PeMode::Off, &checker);
    ASSERT_EQ(r.monitor.reports().size(), 1u);
    EXPECT_EQ(r.monitor.reports()[0].kind,
              detect::ReportKind::GuardHit);
}

TEST(Assembler, CallAndReturn)
{
    const char *src = R"(
    li      r8, 20
    jal     ra, double
    sys     print_int rv
    sys     exit
double:
    add     rv, r8, r8
    jr      ra
)";
    EXPECT_EQ(runAsm(src).io.charOutput, "40");
}

TEST(Assembler, IoAndAssert)
{
    const char *src = R"(
    sys     read_int r8
    assert  r8, 42              # fires when the input word is 0
    sys     print_int r8
    sys     exit
)";
    detect::AssertChecker checker;
    auto ok = runAsm(src, {7}, core::PeMode::Off, &checker);
    EXPECT_EQ(ok.monitor.reports().size(), 0u);
    detect::AssertChecker checker2;
    auto bad = runAsm(src, {0}, core::PeMode::Off, &checker2);
    ASSERT_EQ(bad.monitor.reports().size(), 1u);
    EXPECT_EQ(bad.monitor.reports()[0].assertId, 42);
}

TEST(Assembler, AllocAndHeap)
{
    const char *src = R"(
    li      r8, 4
    alloc   r9, r8
    li      r10, 99
    st      r10, 2(r9)
    ld      r11, 2(r9)
    sys     print_int r11
    sys     exit
)";
    EXPECT_EQ(runAsm(src).io.charOutput, "99");
}

TEST(Assembler, PredicatedFixSequence)
{
    // Hand-crafted Table-1 pattern: a cold branch with a fix at the
    // entry of the non-taken edge.  PathExpander's NT-Path executes
    // the fix; the taken path treats it as a NOP.
    const char *src = R"(
.data   mode 0

    li      r20, 3
outer:
    ld      r8, mode(r0)
    li      r9, 7
    bne     r8, r9, skip        # always taken (mode != 7)
    pfix    r31, 7
    pfixst  r31, mode(r0)
    ld      r10, mode(r0)
    assert  r10, 55             # r10 == 7 after the fix: no report
skip:
    addi    r20, r20, -1
    bgt     r20, r0, outer
    sys     exit
)";
    detect::AssertChecker checker;
    auto r = runAsm(src, {}, core::PeMode::Standard, &checker);
    EXPECT_GT(r.ntPathsSpawned, 0u);
    EXPECT_EQ(r.monitor.reports().size(), 0u);
    EXPECT_FALSE(r.programCrashed);
}

TEST(Assembler, RegobjAndUnregobj)
{
    const char *src = R"(
    li      r8, 4
    alloc   r9, r8
    regobj  r9, r8, heap
    unregobj r9
    li      r10, 1
    st      r10, 1(r9)          # use after free
    sys     exit
)";
    detect::WatchChecker checker;
    auto r = runAsm(src, {}, core::PeMode::Off, &checker);
    ASSERT_EQ(r.monitor.reports().size(), 1u);
    EXPECT_EQ(r.monitor.reports()[0].kind,
              detect::ReportKind::UseAfterFree);
}

TEST(Assembler, NamedRegistersAndRadixes)
{
    const char *src = R"(
    li      r8, 0x10
    li      r9, 8
    add     rv, r8, r9
    sys     print_int rv
    sys     exit
)";
    EXPECT_EQ(runAsm(src).io.charOutput, "24");
}

TEST(Assembler, Diagnostics)
{
    EXPECT_THROW(isa::assemble("bogus r1, r2\n"), FatalError);
    EXPECT_THROW(isa::assemble("li r99, 1\n"), FatalError);
    EXPECT_THROW(isa::assemble("jmp nowhere\n"), FatalError);
    EXPECT_THROW(isa::assemble("li r1\n"), FatalError);
    EXPECT_THROW(isa::assemble("x: nop\nx: nop\n"), FatalError);
    EXPECT_THROW(isa::assemble("nop\n.data late 1\n"), FatalError);
    EXPECT_THROW(isa::assemble(".array a 0\nnop\n"), FatalError);
    EXPECT_THROW(isa::assemble("sys fly\n"), FatalError);
    EXPECT_THROW(isa::assemble("ld r8, oops\n"), FatalError);
}

TEST(Assembler, UndefinedLabelReportsReferencingLine)
{
    // Two branches share the bad label; the error must name the
    // *first* referencing source line and its instruction, not just
    // that the label is missing.
    const char *src = "start:\n"
                      "    nop\n"
                      "    jmp missing\n"
                      "    beq r8, r9, missing\n";
    try {
        isa::assemble(src, "t");
        FAIL() << "expected FatalError for undefined label";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
        EXPECT_NE(msg.find("jmp"), std::string::npos) << msg;
    }
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    const char *src = R"(
    jmp     fwd
back:
    sys     print_int r8
    sys     exit
fwd:
    li      r8, 3
    jmp     back
)";
    EXPECT_EQ(runAsm(src).io.charOutput, "3");
}

} // namespace
