/**
 * @file
 * BTB tests: per-edge exercise counters, miss-as-zero, 4-bit
 * saturation, periodic reset and LRU eviction — the NT-Path selection
 * hardware of paper Section 4.2.
 */

#include <gtest/gtest.h>

#include "src/branch/btb.hh"
#include "src/checkpoint/checkpoint.hh"
#include "src/sim/core.hh"

namespace
{

using namespace pe::branch;

TEST(Btb, MissReadsAsZero)
{
    Btb btb;
    EXPECT_EQ(btb.count(0x1234, true), 0);
    EXPECT_EQ(btb.count(0x1234, false), 0);
    EXPECT_GT(btb.missesOnLookup(), 0u);
}

TEST(Btb, EdgesCountIndependently)
{
    Btb btb;
    btb.increment(100, true);
    btb.increment(100, true);
    btb.increment(100, false);
    EXPECT_EQ(btb.count(100, true), 2);
    EXPECT_EQ(btb.count(100, false), 1);
}

TEST(Btb, FourBitSaturation)
{
    Btb btb;
    for (int i = 0; i < 100; ++i)
        btb.increment(7, true);
    EXPECT_EQ(btb.count(7, true), 15);
    EXPECT_EQ(btb.maxCount(), 15);
}

TEST(Btb, ResetClearsCounters)
{
    Btb btb;
    btb.increment(7, true);
    btb.increment(9, false);
    btb.resetCounters();
    EXPECT_EQ(btb.count(7, true), 0);
    EXPECT_EQ(btb.count(9, false), 0);
}

TEST(Btb, DistinctPcsDoNotAlias)
{
    Btb btb;
    btb.increment(1, true);
    EXPECT_EQ(btb.count(2, true), 0);
    // Same set (1024 sets, 2 ways): pcs 1, 1025 and 2049 collide.
    btb.increment(1025, true);
    EXPECT_EQ(btb.count(1, true), 1);
    EXPECT_EQ(btb.count(1025, true), 1);
}

TEST(Btb, LruEvictionWithinSet)
{
    BtbParams p;
    p.entries = 4;
    p.ways = 2;     // 2 sets; pcs 0,2,4 share set 0
    Btb btb(p);
    btb.increment(0, true);
    btb.increment(2, true);
    btb.count(0, true);         // refresh? lookups don't touch LRU
    btb.increment(0, false);    // 0 is now MRU
    btb.increment(4, true);     // evicts 2
    EXPECT_EQ(btb.count(2, true), 0);
    EXPECT_EQ(btb.count(0, true), 1);
    EXPECT_EQ(btb.count(4, true), 1);
    EXPECT_GT(btb.evictions(), 0u);
}

TEST(Btb, CustomCounterWidth)
{
    BtbParams p;
    p.counterBits = 2;
    Btb btb(p);
    for (int i = 0; i < 10; ++i)
        btb.increment(5, false);
    EXPECT_EQ(btb.count(5, false), 3);
}

TEST(Checkpoint, RoundTrip)
{
    pe::sim::Core core;
    core.pc = 77;
    core.ntEntryPred = true;
    core.writeReg(8, 1234);
    core.writeReg(31, -5);

    auto cp = pe::checkpoint::take(core);

    core.pc = 0;
    core.ntEntryPred = false;
    core.writeReg(8, 0);
    core.writeReg(31, 0);

    pe::checkpoint::restore(core, cp);
    EXPECT_EQ(core.pc, 77u);
    EXPECT_TRUE(core.ntEntryPred);
    EXPECT_EQ(core.readReg(8), 1234);
    EXPECT_EQ(core.readReg(31), -5);
}

} // namespace
