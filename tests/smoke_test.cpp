/**
 * @file
 * End-to-end smoke test: compile a tiny MiniC program and run it
 * under each PathExpander mode.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"

namespace
{

const char *tinySource = R"(
int counter = 0;

int bump(int x) {
    if (x > 3) {
        counter = counter + x;
    } else {
        counter = counter + 1;
    }
    return counter;
}

int main() {
    int i = 0;
    while (i < 10) {
        bump(i);
        i = i + 1;
    }
    print_int(counter);
    return 0;
}
)";

TEST(Smoke, CompileAndRunBaseline)
{
    auto program = pe::minic::compile(tinySource, "tiny");
    auto cfg = pe::core::PeConfig::forMode(pe::core::PeMode::Off);
    pe::core::PathExpanderEngine engine(program, cfg);
    auto result = engine.run({});
    EXPECT_FALSE(result.programCrashed);
    ASSERT_EQ(result.io.intOutput.size(), 1u);
    // i=0..3 -> +1 each (4); i=4..9 -> +i (4+5+...+9 = 39); total 43.
    EXPECT_EQ(result.io.intOutput[0], 43);
}

TEST(Smoke, RunStandardAndCmp)
{
    auto program = pe::minic::compile(tinySource, "tiny");
    for (auto mode :
         {pe::core::PeMode::Standard, pe::core::PeMode::Cmp}) {
        auto cfg = pe::core::PeConfig::forMode(mode);
        pe::core::PathExpanderEngine engine(program, cfg);
        auto result = engine.run({});
        EXPECT_FALSE(result.programCrashed);
        ASSERT_EQ(result.io.intOutput.size(), 1u);
        EXPECT_EQ(result.io.intOutput[0], 43);
        EXPECT_GT(result.ntPathsSpawned, 0u);
    }
}

} // namespace
