/**
 * @file
 * Interpreter semantics tests: one behaviour per opcode family,
 * crash conditions, the NT-entry predicate, syscalls and allocation.
 */

#include <gtest/gtest.h>

#include "src/isa/regs.hh"
#include "src/sim/interpreter.hh"

namespace
{

using namespace pe;
using namespace pe::isa;
using namespace pe::sim;
namespace r = pe::isa::reg;

/** Harness around a hand-assembled program. */
struct Rig
{
    explicit Rig(std::vector<Instruction> code,
                 std::vector<int32_t> input = {})
        : memory(layout.memWords)
    {
        program.code = std::move(code);
        program.heapBase = 64;
        loadProgram(program, memory, core, layout);
        io.input = std::move(input);
    }

    StepResult stepOnce(bool allowIo = true)
    {
        mem::MemCtx ctx(memory, buf);
        return step(program, core, ctx, io, allowIo, layout);
    }

    /** Run to exit/crash, with a step limit. */
    StepResult
    run(bool allowIo = true, int limit = 10000)
    {
        StepResult res;
        for (int i = 0; i < limit; ++i) {
            res = stepOnce(allowIo);
            if (res.crashed() || res.exited || res.unsafeEvent)
                return res;
        }
        return res;
    }

    MachineLayout layout;
    isa::Program program;
    mem::MainMemory memory;
    Core core;
    IoChannel io;
    mem::VersionedBuffer *buf = nullptr;
};

TEST(Interpreter, AluBasics)
{
    Rig rig({
        makeLi(8, 7),
        makeLi(9, 3),
        makeR(Opcode::Add, 10, 8, 9),
        makeR(Opcode::Sub, 11, 8, 9),
        makeR(Opcode::Mul, 12, 8, 9),
        makeR(Opcode::Div, 13, 8, 9),
        makeR(Opcode::Rem, 14, 8, 9),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(10), 10);
    EXPECT_EQ(rig.core.readReg(11), 4);
    EXPECT_EQ(rig.core.readReg(12), 21);
    EXPECT_EQ(rig.core.readReg(13), 2);
    EXPECT_EQ(rig.core.readReg(14), 1);
}

TEST(Interpreter, CompareOps)
{
    Rig rig({
        makeLi(8, 2),
        makeLi(9, 5),
        makeR(Opcode::Slt, 10, 8, 9),
        makeR(Opcode::Sge, 11, 8, 9),
        makeR(Opcode::Seq, 12, 8, 8),
        makeR(Opcode::Sne, 13, 8, 8),
        makeR(Opcode::Sle, 14, 9, 9),
        makeR(Opcode::Sgt, 15, 9, 8),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(10), 1);
    EXPECT_EQ(rig.core.readReg(11), 0);
    EXPECT_EQ(rig.core.readReg(12), 1);
    EXPECT_EQ(rig.core.readReg(13), 0);
    EXPECT_EQ(rig.core.readReg(14), 1);
    EXPECT_EQ(rig.core.readReg(15), 1);
}

TEST(Interpreter, ImmediateOps)
{
    Rig rig({
        makeLi(8, 12),
        makeI(Opcode::Addi, 9, 8, -2),
        makeI(Opcode::Andi, 10, 8, 6),
        makeI(Opcode::Ori, 11, 8, 1),
        makeI(Opcode::Xori, 12, 8, 0xff),
        makeI(Opcode::Shli, 13, 8, 2),
        makeI(Opcode::Shri, 14, 8, 2),
        makeI(Opcode::Slti, 15, 8, 13),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(9), 10);
    EXPECT_EQ(rig.core.readReg(10), 4);
    EXPECT_EQ(rig.core.readReg(11), 13);
    EXPECT_EQ(rig.core.readReg(12), 0xf3);
    EXPECT_EQ(rig.core.readReg(13), 48);
    EXPECT_EQ(rig.core.readReg(14), 3);
    EXPECT_EQ(rig.core.readReg(15), 1);
}

TEST(Interpreter, ShiftsAndSra)
{
    Rig rig({
        makeLi(8, -8),
        makeLi(9, 1),
        makeR(Opcode::Sra, 10, 8, 9),
        makeR(Opcode::Shr, 11, 8, 9),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(10), -4);
    EXPECT_EQ(rig.core.readReg(11), 0x7ffffffc);
}

TEST(Interpreter, ZeroRegisterSemantics)
{
    Rig rig({
        makeLi(r::zero, 99),        // must be ignored
        makeI(Opcode::Addi, 8, r::zero, 5),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(r::zero), 0);
    EXPECT_EQ(rig.core.readReg(8), 5);
}

TEST(Interpreter, SignedOverflowWraps)
{
    Rig rig({
        makeLi(8, 0x7fffffff),
        makeLi(9, 1),
        makeR(Opcode::Add, 10, 8, 9),
        makeR(Opcode::Mul, 11, 8, 8),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(10),
              std::numeric_limits<int32_t>::min());
}

TEST(Interpreter, DivRemEdgeCases)
{
    Rig rig({
        makeLi(8, std::numeric_limits<int32_t>::min()),
        makeLi(9, -1),
        makeR(Opcode::Div, 10, 8, 9),
        makeR(Opcode::Rem, 11, 8, 9),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.core.readReg(10),
              std::numeric_limits<int32_t>::min());
    EXPECT_EQ(rig.core.readReg(11), 0);
}

TEST(Interpreter, DivByZeroCrashes)
{
    Rig rig({
        makeLi(8, 1),
        makeR(Opcode::Div, 9, 8, r::zero),
    });
    auto res = rig.run();
    EXPECT_EQ(res.crash, CrashKind::DivByZero);
    EXPECT_EQ(rig.core.pc, 1u);     // PC stays at the faulting instr
}

TEST(Interpreter, LoadStore)
{
    Rig rig({
        makeLi(8, 100),
        makeLi(9, 77),
        Instruction{Opcode::St, 0, 8, 9, 3},
        makeI(Opcode::Ld, 10, 8, 3),
        makeSys(Syscall::Exit),
    });
    rig.run();
    EXPECT_EQ(rig.memory.read(103), 77);
    EXPECT_EQ(rig.core.readReg(10), 77);
}

TEST(Interpreter, BadAddressCrashes)
{
    Rig rig({
        makeLi(8, -5),
        makeI(Opcode::Ld, 9, 8, 0),
    });
    auto res = rig.run();
    EXPECT_EQ(res.crash, CrashKind::BadAddress);
}

TEST(Interpreter, BranchTakenAndNotTaken)
{
    Rig rig({
        makeLi(8, 1),
        makeBranch(Opcode::Beq, 8, r::zero, 4),   // not taken
        makeBranch(Opcode::Bne, 8, r::zero, 4),   // taken
        makeLi(9, 111),                           // skipped
        makeSys(Syscall::Exit),
    });
    rig.stepOnce();
    auto res = rig.stepOnce();
    EXPECT_TRUE(res.branch);
    EXPECT_FALSE(res.branchTaken);
    EXPECT_EQ(res.branchTarget, 4u);
    EXPECT_EQ(res.branchFallthrough, 2u);
    res = rig.stepOnce();
    EXPECT_TRUE(res.branchTaken);
    EXPECT_EQ(rig.core.pc, 4u);
    EXPECT_EQ(rig.core.readReg(9), 0);
}

TEST(Interpreter, BadJumpCrashes)
{
    Rig rig({makeJmp(1000)});
    auto res = rig.stepOnce();
    EXPECT_EQ(res.crash, CrashKind::BadJump);

    Rig rig2({makeLi(8, -1), makeJr(8)});
    rig2.stepOnce();
    EXPECT_EQ(rig2.stepOnce().crash, CrashKind::BadJump);
}

TEST(Interpreter, FallingOffCodeCrashes)
{
    Rig rig({makeLi(8, 1)});
    rig.stepOnce();
    EXPECT_EQ(rig.stepOnce().crash, CrashKind::BadJump);
}

TEST(Interpreter, JalLinks)
{
    Rig rig({
        makeJal(r::ra, 2),
        makeSys(Syscall::Exit),
        makeJr(r::ra),
    });
    rig.stepOnce();
    EXPECT_EQ(rig.core.pc, 2u);
    EXPECT_EQ(rig.core.readReg(r::ra), 1);
    rig.stepOnce();
    EXPECT_EQ(rig.core.pc, 1u);
}

TEST(Interpreter, AllocBumpsAndReports)
{
    Rig rig({
        makeLi(8, 10),
        makeR(Opcode::Alloc, 9, 8, 0),
        makeR(Opcode::Alloc, 10, 8, 0),
        makeSys(Syscall::Exit),
    });
    rig.stepOnce();
    auto res = rig.stepOnce();
    EXPECT_TRUE(res.allocated);
    EXPECT_EQ(res.allocBase, rig.program.heapBase);
    EXPECT_EQ(res.allocSize, 10u);
    rig.stepOnce();
    EXPECT_EQ(rig.core.readReg(10),
              static_cast<int32_t>(rig.program.heapBase) + 10);
}

TEST(Interpreter, AllocOverflowCrashes)
{
    Rig rig({
        makeLi(8, 1 << 30),
        makeR(Opcode::Alloc, 9, 8, 0),
    });
    rig.stepOnce();
    EXPECT_EQ(rig.stepOnce().crash, CrashKind::HeapOverflow);
}

TEST(Interpreter, AssertFiresOnlyOnZero)
{
    Rig rig({
        makeLi(8, 1),
        Instruction{Opcode::Assert, 0, 8, 0, 5},
        Instruction{Opcode::Assert, 0, r::zero, 0, 6},
        makeSys(Syscall::Exit),
    });
    rig.stepOnce();
    EXPECT_FALSE(rig.stepOnce().assertFired);
    auto res = rig.stepOnce();
    EXPECT_TRUE(res.assertFired);
    EXPECT_EQ(res.assertId, 6);
    // Execution continues after a fired assert.
    EXPECT_TRUE(rig.stepOnce().exited);
}

TEST(Interpreter, ChkbReportsAddress)
{
    Rig rig({
        makeLi(8, 500),
        makeI(Opcode::Chkb, 0, 8, 3),
        makeSys(Syscall::Exit),
    });
    rig.stepOnce();
    auto res = rig.stepOnce();
    EXPECT_TRUE(res.boundsCheck);
    EXPECT_EQ(res.checkAddr, 503u);
}

TEST(Interpreter, RegobjEvents)
{
    Rig rig({
        makeLi(8, 200),
        makeLi(9, 16),
        Instruction{Opcode::Regobj, 0, 8, 9,
                    static_cast<int32_t>(ObjectKind::HeapBlock)},
        Instruction{Opcode::Unregobj, 0, 8, 0, 0},
        makeSys(Syscall::Exit),
    });
    rig.stepOnce();
    rig.stepOnce();
    auto res = rig.stepOnce();
    EXPECT_TRUE(res.registeredObject);
    EXPECT_EQ(res.objBase, 200u);
    EXPECT_EQ(res.objSize, 16u);
    EXPECT_EQ(res.objKind, ObjectKind::HeapBlock);
    res = rig.stepOnce();
    EXPECT_TRUE(res.unregisteredObject);
    EXPECT_EQ(res.objBase, 200u);
}

TEST(Interpreter, PredicatedFixExecutesOnlyWithPredicate)
{
    std::vector<Instruction> code = {
        makeI(Opcode::Pfix, 8, 0, 42),
        makeSys(Syscall::Exit),
    };
    Rig plain(code);
    plain.stepOnce();
    EXPECT_EQ(plain.core.readReg(8), 0);    // NOP without predicate

    Rig armed(code);
    armed.core.ntEntryPred = true;
    armed.stepOnce();
    EXPECT_EQ(armed.core.readReg(8), 42);
}

TEST(Interpreter, PredicateClearsAtFirstNonFix)
{
    Rig rig({
        makeI(Opcode::Pfix, 8, 0, 1),
        makeLi(9, 2),                    // clears the predicate
        makeI(Opcode::Pfix, 10, 0, 3),   // now a NOP
        makeSys(Syscall::Exit),
    });
    rig.core.ntEntryPred = true;
    rig.run();
    EXPECT_EQ(rig.core.readReg(8), 1);
    EXPECT_EQ(rig.core.readReg(10), 0);
    EXPECT_FALSE(rig.core.ntEntryPred);
}

TEST(Interpreter, PfixstStoresUnderPredicate)
{
    std::vector<Instruction> code = {
        makeLi(31, 55),
        Instruction{Opcode::Pfixst, 0, r::zero, 31, 300},
        makeSys(Syscall::Exit),
    };
    // Note: Li clears the predicate, so arm it via a pure-fix prefix.
    std::vector<Instruction> armedCode = {
        makeI(Opcode::Pfix, 31, 0, 55),
        Instruction{Opcode::Pfixst, 0, r::zero, 31, 300},
        makeSys(Syscall::Exit),
    };
    Rig plain(code);
    plain.run();
    EXPECT_EQ(plain.memory.read(300), 0);

    Rig armed(armedCode);
    armed.core.ntEntryPred = true;
    armed.run();
    EXPECT_EQ(armed.memory.read(300), 55);
}

TEST(Interpreter, SyscallIo)
{
    Rig rig({
        makeSys(Syscall::ReadInt, 8, 0),
        makeSys(Syscall::ReadInt, 9, 0),
        makeSys(Syscall::PrintInt, 0, 8),
        makeLi(10, 'x'),
        makeSys(Syscall::PrintChar, 0, 10),
        makeSys(Syscall::Exit),
    },
    {31});
    auto res = rig.run();
    EXPECT_TRUE(res.exited);
    EXPECT_EQ(rig.core.readReg(8), 31);
    EXPECT_EQ(rig.core.readReg(9), -1);     // EOF
    ASSERT_EQ(rig.io.intOutput.size(), 1u);
    EXPECT_EQ(rig.io.intOutput[0], 31);
    EXPECT_EQ(rig.io.charOutput, "31x");
}

TEST(Interpreter, IoDisallowedIsUnsafeEventWithoutSideEffects)
{
    Rig rig({
        makeLi(8, 5),
        makeSys(Syscall::PrintInt, 0, 8),
        makeSys(Syscall::Exit),
    });
    rig.stepOnce(false);
    auto res = rig.stepOnce(false);
    EXPECT_TRUE(res.unsafeEvent);
    EXPECT_EQ(rig.io.intOutput.size(), 0u);
    EXPECT_EQ(rig.core.pc, 1u);     // not advanced

    // Exit is NOT an unsafe event: it ends the (NT-)path normally.
    rig.core.pc = 2;
    EXPECT_TRUE(rig.stepOnce(false).exited);
}

TEST(Interpreter, WritesGoThroughVersionedBuffer)
{
    Rig rig({
        makeLi(8, 100),
        makeLi(9, 9),
        Instruction{Opcode::St, 0, 8, 9, 0},
        makeSys(Syscall::Exit),
    });
    mem::VersionedBuffer buf(1);
    rig.buf = &buf;
    rig.run();
    EXPECT_EQ(rig.memory.read(100), 0);         // main untouched
    EXPECT_EQ(buf.lookup(100).value_or(-1), 9); // buffered
}

} // namespace
