/**
 * @file
 * Prime-path enumeration, minimum path cover and runtime completion
 * tracking: the Cfg successor-order pin the whole path-id space rests
 * on, enumeration oracles on hand-built CFGs, structural properties
 * (simplicity, maximality, determinism, edge coverage) on compiled
 * workloads, pinned counts for two workloads, truncation behavior,
 * the branch-trace fold, merge semantics (campaign accumulation ==
 * sharded merge, bit-identical), wire round-trips, and the explorer's
 * path-objective checkpoint/resume identity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/cfg.hh"
#include "src/analysis/primepaths.hh"
#include "src/core/engine.hh"
#include "src/coverage/pathcov.hh"
#include "src/explore/explorer.hh"
#include "src/fleet/wire.hh"
#include "src/isa/assembler.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

// A diamond: read -> branch -> (then | else) -> join -> exit.
const char *diamondSrc = R"(
    sys read_int r8
    beq r8, r0, else_
    li r9, 1
    jmp join
else_:
    li r9, 2
join:
    sys print_int r9
    sys exit
)";

// A self-loop: read -> spin while nonzero -> exit.
const char *loopSrc = R"(
loop:
    sys read_int r8
    bne r8, r0, loop
    sys exit
)";

std::vector<uint32_t>
blockSeq(const analysis::Cfg &cfg, const analysis::PrimePath &path)
{
    return analysis::primePathBlocks(cfg, path);
}

// ---------------------------------------------------------------------
// The successor-order pin.  Prime-path ids are only stable across
// processes because every Cfg lists a block's successors in the same
// order: ascending target firstPc, edge id breaking ties (parallel
// branch edges to one target).  Everything downstream — canonical
// path order, cover selection, completion-word layout, fleet digests
// — inherits determinism from this.

TEST(PrimePaths, CfgSuccessorsAreSortedByTargetPc)
{
    for (const auto &name : workloads::workloadNames()) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, name);
        analysis::Cfg cfg(program);
        for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
            const auto &succs = cfg.block(b).succs;
            for (size_t i = 1; i < succs.size(); ++i) {
                const uint32_t pa =
                    cfg.block(cfg.edges()[succs[i - 1]].to).firstPc;
                const uint32_t pb =
                    cfg.block(cfg.edges()[succs[i]].to).firstPc;
                EXPECT_TRUE(pa < pb ||
                            (pa == pb && succs[i - 1] < succs[i]))
                    << name << " block " << b << " succ " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Enumeration oracles on hand-built CFGs.

TEST(PrimePaths, DiamondHasExactlyTwoPaths)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);
    auto set = analysis::enumeratePrimePaths(cfg);

    ASSERT_EQ(set.paths.size(), 2u);
    EXPECT_FALSE(set.truncated);
    const uint32_t b0 = cfg.blockOf(0);
    const uint32_t bThen = cfg.blockOf(2);
    const uint32_t bElse = cfg.blockOf(4);
    const uint32_t bJoin = cfg.blockOf(5);
    // Canonical order is (start block, edge-id sequence); the beq's
    // BranchTaken edge (to else_) was materialized first, so the
    // else-arm carries the lower edge id and sorts first.
    EXPECT_EQ(blockSeq(cfg, set.paths[0]),
              (std::vector<uint32_t>{b0, bElse, bJoin}));
    EXPECT_EQ(blockSeq(cfg, set.paths[1]),
              (std::vector<uint32_t>{b0, bThen, bJoin}));

    // Both arms are needed to cover both branch directions.
    auto cover = analysis::computePathCover(cfg, set);
    EXPECT_EQ(cover.size(), 2u);
}

TEST(PrimePaths, SelfLoopProducesACyclePath)
{
    auto program = isa::assemble(loopSrc, "selfloop");
    analysis::Cfg cfg(program);
    auto set = analysis::enumeratePrimePaths(cfg);

    EXPECT_FALSE(set.truncated);
    bool sawCycle = false;
    for (const auto &p : set.paths) {
        auto blocks = blockSeq(cfg, p);
        if (blocks.size() > 1 && blocks.front() == blocks.back())
            sawCycle = true;
    }
    EXPECT_TRUE(sawCycle) << "the back edge must close a cycle path";
}

// ---------------------------------------------------------------------
// Structural properties on compiled workloads.

TEST(PrimePaths, PathsAreSimpleAndDeterministic)
{
    for (const char *name : {"schedule", "print_tokens"}) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, name);
        analysis::Cfg cfg(program);
        auto set = analysis::enumeratePrimePaths(cfg);

        for (const auto &p : set.paths) {
            auto blocks = blockSeq(cfg, p);
            // Simple: no block repeats, except last == first (cycle).
            std::set<uint32_t> seen;
            for (size_t i = 0; i + 1 < blocks.size(); ++i)
                EXPECT_TRUE(seen.insert(blocks[i]).second) << name;
            if (blocks.back() != blocks.front()) {
                EXPECT_TRUE(seen.insert(blocks.back()).second) << name;
            }
        }

        // Two enumerations of the same program are identical.
        auto again = analysis::enumeratePrimePaths(cfg);
        ASSERT_EQ(again.paths.size(), set.paths.size()) << name;
        for (size_t i = 0; i < set.paths.size(); ++i) {
            EXPECT_EQ(again.paths[i].startBlock,
                      set.paths[i].startBlock);
            EXPECT_EQ(again.paths[i].edges, set.paths[i].edges);
        }
    }
}

TEST(PrimePaths, PathsAreMaximal)
{
    // Pairwise containment is quadratic; print_tokens is the smallest
    // untruncated workload (634 paths), small enough to check fully.
    const auto &w = workloads::getWorkload("print_tokens");
    auto program = minic::compile(w.source, "print_tokens");
    analysis::Cfg cfg(program);
    auto set = analysis::enumeratePrimePaths(cfg);
    ASSERT_FALSE(set.truncated);

    // Containment compares block sequences: a proper contiguous
    // sub-sequence of another path's blocks means non-maximal.
    std::vector<std::vector<uint32_t>> seqs;
    seqs.reserve(set.paths.size());
    for (const auto &p : set.paths)
        seqs.push_back(blockSeq(cfg, p));
    for (size_t i = 0; i < seqs.size(); ++i) {
        for (size_t j = 0; j < seqs.size(); ++j) {
            if (i == j || seqs[i].size() >= seqs[j].size())
                continue;
            auto it = std::search(seqs[j].begin(), seqs[j].end(),
                                  seqs[i].begin(), seqs[i].end());
            EXPECT_EQ(it, seqs[j].end())
                << "path " << i << " is a subpath of " << j;
        }
    }
}

TEST(PrimePaths, EveryReachableDecisionEdgeIsOnSomePath)
{
    // Untruncated enumeration: every intraprocedural edge reachable
    // from some function root lies on at least one prime path, and
    // the greedy cover touches exactly the union the full set does.
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, "schedule");
    analysis::Cfg cfg(program);
    auto set = analysis::enumeratePrimePaths(cfg);
    ASSERT_FALSE(set.truncated);

    std::set<uint32_t> onPaths;
    for (const auto &p : set.paths)
        onPaths.insert(p.edges.begin(), p.edges.end());

    for (uint32_t e = 0; e < cfg.edges().size(); ++e) {
        const auto &edge = cfg.edges()[e];
        if (edge.kind == analysis::EdgeKind::Call)
            continue;       // enumeration is intraprocedural
        if (!cfg.reachable()[edge.from])
            continue;
        EXPECT_TRUE(onPaths.count(e))
            << "edge " << e << " ("
            << analysis::edgeKindName(edge.kind)
            << ") missing from every prime path";
    }

    auto cover = analysis::computePathCover(cfg, set);
    ASSERT_FALSE(cover.empty());
    std::set<uint32_t> covered;
    for (uint32_t id : cover) {
        ASSERT_LT(id, set.paths.size());
        covered.insert(set.paths[id].edges.begin(),
                       set.paths[id].edges.end());
    }
    EXPECT_EQ(covered, onPaths)
        << "the cover must touch every edge any prime path touches";
}

TEST(PrimePaths, WorkloadCountsArePinned)
{
    // Regression pins: these move only when the enumeration, the
    // canonical order, the greedy cover or the compiler changes — all
    // of which invalidate persisted path-id spaces and must be loud.
    struct Pin
    {
        const char *name;
        size_t paths;
        size_t cover;
    };
    const Pin pins[] = {
        {"schedule", 3392, 52},
        {"schedule2", 3994, 58},
    };
    for (const auto &pin : pins) {
        const auto &w = workloads::getWorkload(pin.name);
        auto program = minic::compile(w.source, pin.name);
        analysis::Cfg cfg(program);
        auto set = analysis::enumeratePrimePaths(cfg);
        EXPECT_EQ(set.paths.size(), pin.paths) << pin.name;
        EXPECT_FALSE(set.truncated) << pin.name;
        EXPECT_EQ(analysis::computePathCover(cfg, set).size(),
                  pin.cover)
            << pin.name;
    }
}

TEST(PrimePaths, CapTruncatesLoudlyAndKeepsAPrefix)
{
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, "schedule");
    analysis::Cfg cfg(program);

    analysis::PrimePathOptions opts;
    opts.maxPaths = 1;
    auto capped = analysis::enumeratePrimePaths(cfg, opts);
    EXPECT_TRUE(capped.truncated);
    EXPECT_LE(capped.paths.size(), 1u);

    // The cover of a truncated set still only picks kept ids.
    auto cover = analysis::computePathCover(cfg, capped);
    for (uint32_t id : cover)
        EXPECT_LT(id, capped.paths.size());
}

// ---------------------------------------------------------------------
// Runtime fold: branch-decision streams into completion bits.

core::RunResult
runTraced(const isa::Program &program, std::vector<int32_t> input,
          uint32_t traceCap = 1u << 18)
{
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    cfg.recordEdgeTrace = true;
    cfg.edgeTraceCap = traceCap;
    core::PathExpanderEngine engine(program, cfg, nullptr);
    return engine.run(input);
}

void
foldRun(coverage::PathCoverage &tracker, const core::RunResult &res)
{
    tracker.fold(res.branchTrace, res.branchTraceTruncated,
                 res.stopCause == core::RunStopCause::Completed);
}

TEST(PathCoverage, FoldCompletesExactlyTheWalkedPaths)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);
    auto set = analysis::enumeratePrimePaths(cfg);
    ASSERT_EQ(set.paths.size(), 2u);

    // Map ids to arms rather than hardcoding the canonical order.
    const uint32_t bThen = cfg.blockOf(2);
    uint32_t thenId = analysis::noBlock, elseId = analysis::noBlock;
    for (uint32_t i = 0; i < set.paths.size(); ++i) {
        if (blockSeq(cfg, set.paths[i])[1] == bThen)
            thenId = i;
        else
            elseId = i;
    }
    ASSERT_NE(thenId, analysis::noBlock);
    ASSERT_NE(elseId, analysis::noBlock);

    coverage::PathCoverage tracker(program);
    ASSERT_EQ(tracker.numPaths(), 2u);
    EXPECT_EQ(tracker.completedCount(), 0u);

    // Input 1: beq r8, r0 not taken, the then-arm runs.
    foldRun(tracker, runTraced(program, {1}));
    EXPECT_EQ(tracker.foldedRuns(), 1u);
    EXPECT_TRUE(tracker.completed(thenId));
    EXPECT_FALSE(tracker.completed(elseId));
    EXPECT_EQ(tracker.completedCount(), 1u);

    // Input 0: the else-arm; now everything is complete.
    foldRun(tracker, runTraced(program, {0}));
    EXPECT_TRUE(tracker.completed(elseId));
    EXPECT_EQ(tracker.completedCount(), 2u);
    EXPECT_EQ(tracker.coverCompleted(), tracker.coverSize());
    EXPECT_EQ(tracker.desyncRuns(), 0u);
    EXPECT_EQ(tracker.truncatedRuns(), 0u);
}

TEST(PathCoverage, TruncatedTracesAreCountedNotTrusted)
{
    auto program = isa::assemble(loopSrc, "selfloop");
    coverage::PathCoverage tracker(program);

    // Three loop iterations under a 2-event trace cap: the recording
    // stops mid-run, the fold absorbs the prefix and counts the
    // truncation instead of desyncing or inventing completions.
    foldRun(tracker, runTraced(program, {1, 1, 0}, /*traceCap=*/2));
    EXPECT_EQ(tracker.foldedRuns(), 1u);
    EXPECT_EQ(tracker.truncatedRuns(), 1u);
    EXPECT_EQ(tracker.desyncRuns(), 0u);
}

TEST(PathCoverage, ShardedMergeEqualsSerialAccumulation)
{
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, "schedule");

    std::vector<core::RunResult> runs;
    for (const auto &input : w.benignInputs)
        runs.push_back(runTraced(program, input));

    // Serial: one tracker folds every run in order.
    coverage::PathCoverage serial(program);
    for (const auto &r : runs)
        foldRun(serial, r);
    EXPECT_GT(serial.completedCount(), 0u);

    // Sharded: round-robin the same runs over three trackers, then
    // merge in shard order — the fleet coordinator's exact shape.
    coverage::PathCoverage shards[] = {
        coverage::PathCoverage(program),
        coverage::PathCoverage(program),
        coverage::PathCoverage(program),
    };
    for (size_t i = 0; i < runs.size(); ++i)
        foldRun(shards[i % 3], runs[i]);

    coverage::PathCoverage merged(program);
    for (const auto &shard : shards)
        merged.merge(shard);
    EXPECT_EQ(merged.words(), serial.words());
    EXPECT_EQ(merged.digest(), serial.digest());
    EXPECT_EQ(merged.completedCount(), serial.completedCount());
    EXPECT_EQ(merged.coverCompleted(), serial.coverCompleted());
    EXPECT_EQ(merged.foldedRuns(), serial.foldedRuns());

    // The raw-word variant (fleet frames) lands on the same bits.
    coverage::PathCoverage viaWords(program);
    for (const auto &shard : shards)
        viaWords.mergeWords(shard.words());
    EXPECT_EQ(viaWords.words(), serial.words());
    EXPECT_EQ(viaWords.digest(), serial.digest());
}

TEST(PathCoverage, WireStateRoundTripsAndRefusesForeignPrograms)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    coverage::PathCoverage tracker(program);
    foldRun(tracker, runTraced(program, {1}));

    wire::Encoder enc;
    tracker.encodeState(enc);
    const std::string bytes(enc.buffer().data(), enc.size());

    coverage::PathCoverage restored(program);
    wire::Decoder dec(bytes);
    restored.decodeState(dec);
    EXPECT_EQ(restored.words(), tracker.words());
    EXPECT_EQ(restored.digest(), tracker.digest());
    EXPECT_EQ(restored.foldedRuns(), tracker.foldedRuns());

    // A tracker over a different program refuses the state at word
    // granularity (a finer mismatch is caught upstream: explorer and
    // fleet checkpoints validate the program fingerprint and config
    // hash before any tracker state is ever decoded).
    const auto &w = workloads::getWorkload("schedule");
    auto other = minic::compile(w.source, "schedule");
    coverage::PathCoverage foreign(other);
    ASSERT_NE((foreign.numPaths() + 63) / 64,
              (tracker.numPaths() + 63) / 64);
    wire::Decoder dec2(bytes);
    EXPECT_THROW(foreign.decodeState(dec2), wire::WireError);
}

// ---------------------------------------------------------------------
// Explorer integration: the path objective must keep the explorer's
// checkpoint/resume identity, and a policy-word mismatch must refuse.

struct TempPath
{
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    std::string path;
};

explore::ExploreOptions
pathObjectiveOptions(uint64_t maxRuns, uint64_t seed = 0x1234)
{
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.config.recordEdgeTrace = true;
    opts.pathObjective = true;
    opts.policy = explore::SchedulePolicy::RareEdgeWeighted;
    opts.budget.maxRuns = maxRuns;
    opts.batchSize = 8;
    opts.seed = seed;
    return opts;
}

std::vector<std::vector<int32_t>>
scheduleSeeds(const workloads::Workload &workload)
{
    return {workload.benignInputs.begin(),
            workload.benignInputs.begin() + 3};
}

TEST(PathObjective, CheckpointResumeIsBitIdentical)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_pathobj_resume_test.ckpt");

    explore::Explorer full(program, scheduleSeeds(workload),
                           pathObjectiveOptions(59));
    auto fullRes = full.run();
    EXPECT_EQ(fullRes.stop, explore::ExploreStop::RunBudget);
    ASSERT_NE(full.pathTracker(), nullptr);
    EXPECT_GT(full.pathTracker()->completedCount(), 0u);

    {
        auto opts = pathObjectiveOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer head(program, scheduleSeeds(workload), opts);
        EXPECT_EQ(head.run().runs, 27u);
    }

    auto opts = pathObjectiveOptions(59);
    opts.resumeFrom = ckpt.path;
    explore::Explorer tail(program, scheduleSeeds(workload), opts);
    auto tailRes = tail.run();

    // The general exploration state continues bit-identically...
    EXPECT_EQ(fullRes.runs, tailRes.runs);
    EXPECT_EQ(fullRes.instructions, tailRes.instructions);
    EXPECT_EQ(full.corpus().frontier().takenWords(),
              tail.corpus().frontier().takenWords());
    EXPECT_EQ(full.corpus().frontier().ntWords(),
              tail.corpus().frontier().ntWords());
    ASSERT_EQ(full.corpus().size(), tail.corpus().size());
    for (size_t i = 0; i < full.corpus().size(); ++i) {
        EXPECT_EQ(full.corpus().entries()[i].input,
                  tail.corpus().entries()[i].input);
    }
    // ...and so does the path tracker itself.
    ASSERT_NE(tail.pathTracker(), nullptr);
    EXPECT_EQ(tail.pathTracker()->words(),
              full.pathTracker()->words());
    EXPECT_EQ(tail.pathTracker()->digest(),
              full.pathTracker()->digest());
}

TEST(PathObjective, PolicyWordMismatchRefusesTheCheckpoint)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_pathobj_mismatch_test.ckpt");

    {
        auto opts = pathObjectiveOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer e(program, scheduleSeeds(workload), opts);
        e.run();
    }

    // Same config hash (trace recording still on) but the objective
    // off: the schedule the checkpoint was built under differs, so
    // the policy word must refuse the resume.
    auto opts = pathObjectiveOptions(59);
    opts.pathObjective = false;
    opts.resumeFrom = ckpt.path;
    explore::Explorer e(program, scheduleSeeds(workload), opts);
    EXPECT_THROW(e.run(), FatalError);
}

} // namespace
