/**
 * @file
 * Object-format tests: round-tripping every workload program through
 * the binary encoding preserves behaviour bit-for-bit, and malformed
 * inputs produce clean diagnostics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/engine.hh"
#include "src/isa/objfile.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

isa::Program
roundTrip(const isa::Program &program)
{
    std::stringstream buf;
    isa::saveObject(program, buf);
    return isa::loadObject(buf);
}

TEST(ObjFile, PreservesEveryField)
{
    auto program = minic::compile(R"(
int g = 5;
int t[3] = {1, 2};
int helper(int a) { return a * 2; }
int main() {
    assert(helper(g) == 10, 71);
    print_int(t[1]);
    return 0;
}
)",
                                  "roundtrip");
    auto loaded = roundTrip(program);

    EXPECT_EQ(loaded.name, program.name);
    EXPECT_EQ(loaded.dataBase, program.dataBase);
    EXPECT_EQ(loaded.heapBase, program.heapBase);
    EXPECT_EQ(loaded.entry, program.entry);
    EXPECT_EQ(loaded.blankAddr, program.blankAddr);
    ASSERT_EQ(loaded.code.size(), program.code.size());
    for (size_t i = 0; i < program.code.size(); ++i)
        EXPECT_EQ(loaded.code[i], program.code[i]) << "pc " << i;
    EXPECT_EQ(loaded.dataInit, program.dataInit);
    ASSERT_EQ(loaded.funcs.size(), program.funcs.size());
    for (size_t i = 0; i < program.funcs.size(); ++i) {
        EXPECT_EQ(loaded.funcs[i].name, program.funcs[i].name);
        EXPECT_EQ(loaded.funcs[i].startPc, program.funcs[i].startPc);
        EXPECT_EQ(loaded.funcs[i].endPc, program.funcs[i].endPc);
    }
    ASSERT_TRUE(loaded.assertLocs.count(71));
    EXPECT_EQ(loaded.assertLocs.at(71).line,
              program.assertLocs.at(71).line);
    EXPECT_EQ(loaded.locOf(5).line, program.locOf(5).line);
}

class ObjFileWorkloads
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ObjFileWorkloads, LoadedProgramBehavesIdentically)
{
    const auto &w = workloads::getWorkload(GetParam());
    auto original = minic::compile(w.source, w.name);
    auto loaded = roundTrip(original);

    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;
    detect::WatchChecker ca;
    detect::WatchChecker cb;
    core::PathExpanderEngine a(original, cfg, &ca);
    core::PathExpanderEngine b(loaded, cfg, &cb);
    auto ra = a.run(w.benignInputs[0]);
    auto rb = b.run(w.benignInputs[0]);

    EXPECT_EQ(ra.io.charOutput, rb.io.charOutput);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.ntPathsSpawned, rb.ntPathsSpawned);
    EXPECT_EQ(ra.memoryDigest, rb.memoryDigest);
    EXPECT_EQ(ra.monitor.numDistinctSites(),
              rb.monitor.numDistinctSites());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ObjFileWorkloads,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(ObjFile, RejectsGarbage)
{
    std::stringstream notMagic("hello world, not an object");
    EXPECT_THROW(isa::loadObject(notMagic), FatalError);
}

TEST(ObjFile, RejectsTruncation)
{
    auto program = minic::compile(
        "int main() { print_int(1); return 0; }", "tiny");
    std::stringstream buf;
    isa::saveObject(program, buf);
    std::string bytes = buf.str();
    for (size_t cut : {bytes.size() / 4, bytes.size() / 2,
                       bytes.size() - 3}) {
        std::stringstream truncated(bytes.substr(0, cut));
        EXPECT_THROW(isa::loadObject(truncated), FatalError)
            << "cut at " << cut;
    }
}

TEST(ObjFile, FileRoundTrip)
{
    auto program = minic::compile(
        "int main() { print_int(7); return 0; }", "file");
    std::string path = ::testing::TempDir() + "/pe_objfile_test.po";
    isa::saveObjectFile(program, path);
    auto loaded = isa::loadObjectFile(path);
    EXPECT_EQ(loaded.code.size(), program.code.size());
    EXPECT_THROW(isa::loadObjectFile("/nonexistent/x.po"),
                 FatalError);
}

} // namespace
