/**
 * @file
 * PathExpander engine tests (standard configuration): sandboxing
 * invariants, NT-Path selection and termination, counter thresholds
 * and reset, instruction budgeting and determinism.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"

namespace
{

using namespace pe;

const char *loopy = R"(
int total = 0;
int mode = 0;
int main() {
    int i = 0;
    while (i < 40) {
        if (i % 4 == 0) {
            total = total + 2;
        } else {
            total = total + 1;
        }
        if (mode == 3) {
            total = total * 2;      // cold path
        }
        i = i + 1;
    }
    print_int(total);
    return 0;
}
)";

core::RunResult
run(const isa::Program &program, core::PeConfig cfg,
    detect::Detector *det = nullptr, std::vector<int32_t> input = {})
{
    core::PathExpanderEngine engine(program, cfg, det);
    return engine.run(input);
}

TEST(Engine, SandboxPreservesProgramBehavior)
{
    auto program = minic::compile(loopy, "loopy");
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    auto pe =
        run(program, core::PeConfig::forMode(core::PeMode::Standard));
    // NT-Paths executed the cold doubling path, yet the architected
    // result is identical: all side effects rolled back.
    EXPECT_GT(pe.ntPathsSpawned, 0u);
    EXPECT_GT(pe.ntInstructions, 0u);
    EXPECT_EQ(off.io.charOutput, pe.io.charOutput);
    EXPECT_EQ(off.takenInstructions, pe.takenInstructions);
}

TEST(Engine, NtPathsCostCyclesInStandardMode)
{
    auto program = minic::compile(loopy, "loopy");
    auto off = run(program, core::PeConfig::forMode(core::PeMode::Off));
    auto pe =
        run(program, core::PeConfig::forMode(core::PeMode::Standard));
    EXPECT_GT(pe.cycles, off.cycles);
}

TEST(Engine, ThresholdBoundsSpawnsPerEdge)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.ntPathCounterThreshold = 1;
    auto one = run(program, cfg);
    cfg.ntPathCounterThreshold = 5;
    auto five = run(program, cfg);
    EXPECT_GT(one.ntPathsSpawned, 0u);
    EXPECT_GT(five.ntPathsSpawned, one.ntPathsSpawned);
    // With threshold 1 every static edge spawns at most once.
    EXPECT_LE(one.ntPathsSpawned, 2 * program.numBranches());
}

TEST(Engine, MaxLengthTerminatesNtPaths)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = 25;
    auto r = run(program, cfg);
    ASSERT_GT(r.ntRecords.size(), 0u);
    for (const auto &rec : r.ntRecords) {
        EXPECT_LE(rec.length, 25u);
        if (rec.cause == core::NtStopCause::MaxLength) {
            EXPECT_EQ(rec.length, 25u);
        }
    }
}

TEST(Engine, CounterResetReenablesSpawning)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.counterResetInterval = 1u << 30;
    auto noReset = run(program, cfg);
    cfg.counterResetInterval = 200;     // reset often
    auto reset = run(program, cfg);
    EXPECT_GT(reset.ntPathsSpawned, noReset.ntPathsSpawned);
}

TEST(Engine, UnsafeEventStopsNtPath)
{
    const char *src = R"(
int chatty = 0;
int main() {
    int i = 0;
    while (i < 10) {
        if (chatty == 1) {
            print_int(i);       // I/O right behind the cold edge
        }
        i = i + 1;
    }
    return 0;
}
)";
    auto program = minic::compile(src, "chatty");
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard));
    EXPECT_EQ(r.io.charOutput, "");     // nothing leaked
    bool sawUnsafe = false;
    for (const auto &rec : r.ntRecords)
        sawUnsafe |= rec.cause == core::NtStopCause::UnsafeEvent;
    EXPECT_TRUE(sawUnsafe);
}

TEST(Engine, NtCrashIsContained)
{
    const char *src = R"(
int danger = 0;
int main() {
    int i = 0;
    int v = 1;
    while (i < 10) {
        if (danger == 1) {
            v = 100 / (danger - 1);     // div by zero when fixed to 1
        }
        i = i + 1;
    }
    print_int(v);
    return 0;
}
)";
    auto program = minic::compile(src, "danger");
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard));
    EXPECT_FALSE(r.programCrashed);
    EXPECT_EQ(r.io.charOutput, "1");
    bool sawCrash = false;
    for (const auto &rec : r.ntRecords) {
        if (rec.cause == core::NtStopCause::Crash) {
            sawCrash = true;
            EXPECT_EQ(rec.crashKind, sim::CrashKind::DivByZero);
        }
    }
    EXPECT_TRUE(sawCrash);
}

TEST(Engine, ProgramEndStopsNtPath)
{
    const char *src = R"(
int last = 0;
int main() {
    int v = read_int();
    if (v == 77) {
        last = 1;
    }
    return 0;
}
)";
    auto program = minic::compile(src, "short");
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard));
    bool sawEnd = false;
    for (const auto &rec : r.ntRecords)
        sawEnd |= rec.cause == core::NtStopCause::ProgramEnd;
    EXPECT_TRUE(sawEnd);
}

TEST(Engine, MonitorAreaSurvivesSquash)
{
    const char *src = R"(
int rare = 0;
int main() {
    int i = 0;
    while (i < 10) {
        if (rare == 1) {
            assert(0 == 1, 31);
        }
        i = i + 1;
    }
    return 0;
}
)";
    auto program = minic::compile(src, "monitor");
    detect::AssertChecker checker;
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard),
                 &checker);
    // The report was raised inside a squashed NT-Path yet survives.
    ASSERT_GT(r.monitor.reports().size(), 0u);
    EXPECT_TRUE(r.monitor.reports()[0].fromNtPath);
    EXPECT_EQ(r.monitor.reports()[0].assertId, 31);
    EXPECT_NE(r.monitor.reports()[0].ntSpawnPc, 0u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto program = minic::compile(loopy, "loopy");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    auto a = run(program, cfg);
    auto b = run(program, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ntPathsSpawned, b.ntPathsSpawned);
    EXPECT_EQ(a.ntInstructions, b.ntInstructions);
    EXPECT_EQ(a.coverage.combinedCovered(),
              b.coverage.combinedCovered());
}

TEST(Engine, InstructionLimitStopsRunaways)
{
    const char *src = R"(
int main() {
    int i = 0;
    while (i >= 0) {
        i = i + 1;
        if (i > 1000000) { i = 0; }
    }
    return 0;
}
)";
    auto program = minic::compile(src, "forever");
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    cfg.maxTakenInstructions = 5000;
    auto r = run(program, cfg);
    EXPECT_TRUE(r.hitInstructionLimit);
    EXPECT_LE(r.takenInstructions, 5000u);
}

TEST(Engine, ProgramCrashIsReported)
{
    const char *src = R"(
int main() {
    int z = read_int();      // -1 at EOF
    return 10 / (z + 1);
}
)";
    auto program = minic::compile(src, "crash");
    auto r = run(program, core::PeConfig::forMode(core::PeMode::Off));
    EXPECT_TRUE(r.programCrashed);
    EXPECT_EQ(r.programCrashKind, sim::CrashKind::DivByZero);
}

TEST(Engine, OffModeSpawnsNothing)
{
    auto program = minic::compile(loopy, "loopy");
    auto r = run(program, core::PeConfig::forMode(core::PeMode::Off));
    EXPECT_EQ(r.ntPathsSpawned, 0u);
    EXPECT_EQ(r.ntInstructions, 0u);
    EXPECT_TRUE(r.ntRecords.empty());
}

TEST(Engine, CoverageAttributionTakenVsNt)
{
    auto program = minic::compile(loopy, "loopy");
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard));
    EXPECT_GT(r.coverage.ntOnlyCovered(), 0u);
    EXPECT_GE(r.coverage.combinedCovered(),
              r.coverage.takenCovered());
    EXPECT_LE(r.coverage.combinedCovered(), r.coverage.totalEdges());
}

TEST(Engine, NtRecordsIdentifySpawnEdge)
{
    auto program = minic::compile(loopy, "loopy");
    auto r = run(program,
                 core::PeConfig::forMode(core::PeMode::Standard));
    ASSERT_GT(r.ntRecords.size(), 0u);
    auto branches = program.branchPcs();
    std::set<uint32_t> branchSet(branches.begin(), branches.end());
    for (const auto &rec : r.ntRecords)
        EXPECT_TRUE(branchSet.count(rec.spawnBranchPc));
}

} // namespace
