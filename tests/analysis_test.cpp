/**
 * @file
 * Unit tests for the report-to-bug matching (src/workloads/analysis)
 * and the workload registry.
 */

#include <gtest/gtest.h>

#include "src/support/status.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;
using namespace pe::workloads;

struct AnalysisRig
{
    AnalysisRig()
    {
        program.funcs.push_back(isa::FuncInfo{"buggy", 0, 10});
        program.funcs.push_back(isa::FuncInfo{"clean", 10, 20});
        for (int i = 0; i < 20; ++i)
            program.locs.push_back(isa::SourceLoc{i + 1, 0});
        program.code.resize(20);

        BugSpec mem;
        mem.id = "m1";
        mem.kind = BugSpec::Kind::Memory;
        mem.funcName = "buggy";
        workload.bugs.push_back(mem);

        BugSpec assertion;
        assertion.id = "a1";
        assertion.kind = BugSpec::Kind::Assertion;
        assertion.assertId = 42;
        workload.bugs.push_back(assertion);
    }

    detect::Report
    memReport(uint32_t pc)
    {
        detect::Report r;
        r.kind = detect::ReportKind::GuardHit;
        r.pc = pc;
        return r;
    }

    detect::Report
    assertReport(int32_t id)
    {
        detect::Report r;
        r.kind = detect::ReportKind::AssertFail;
        r.assertId = id;
        return r;
    }

    isa::Program program;
    Workload workload;
    detect::MonitorArea monitor;
};

TEST(Analysis, MemoryBugMatchesByFunction)
{
    AnalysisRig rig;
    rig.monitor.add(rig.memReport(5));      // inside "buggy"
    auto a = analyzeReports(rig.workload, rig.program, rig.monitor,
                            /*memoryTools=*/true);
    ASSERT_EQ(a.outcomes.size(), 1u);       // only the memory bug
    EXPECT_TRUE(a.outcomes[0].detected);
    EXPECT_EQ(a.numDetected, 1);
    EXPECT_EQ(a.falsePositiveSites, 0);
}

TEST(Analysis, ReportsOutsideBugFunctionAreFalsePositives)
{
    AnalysisRig rig;
    rig.monitor.add(rig.memReport(15));     // inside "clean"
    auto a = analyzeReports(rig.workload, rig.program, rig.monitor,
                            true);
    EXPECT_EQ(a.numDetected, 0);
    EXPECT_EQ(a.falsePositiveSites, 1);
}

TEST(Analysis, FalsePositivesCountDistinctSites)
{
    AnalysisRig rig;
    rig.monitor.add(rig.memReport(15));
    rig.monitor.add(rig.memReport(15));     // duplicate site
    rig.monitor.add(rig.memReport(16));
    auto a = analyzeReports(rig.workload, rig.program, rig.monitor,
                            true);
    EXPECT_EQ(a.falsePositiveSites, 2);
}

TEST(Analysis, AssertBugMatchesById)
{
    AnalysisRig rig;
    rig.monitor.add(rig.assertReport(42));
    rig.monitor.add(rig.assertReport(99));  // not a seeded bug
    auto a = analyzeReports(rig.workload, rig.program, rig.monitor,
                            /*memoryTools=*/false);
    ASSERT_EQ(a.outcomes.size(), 1u);       // only the assertion bug
    EXPECT_TRUE(a.outcomes[0].detected);
    EXPECT_EQ(a.falsePositiveSites, 1);
}

TEST(Analysis, AssertReportsNeverMatchMemoryBugs)
{
    AnalysisRig rig;
    rig.monitor.add(rig.assertReport(42));
    auto a = analyzeReports(rig.workload, rig.program, rig.monitor,
                            /*memoryTools=*/true);
    EXPECT_EQ(a.numDetected, 0);
}

TEST(Analysis, LineRangeNarrowsMemoryMatch)
{
    AnalysisRig rig;
    rig.workload.bugs[0].lineLo = 7;
    rig.workload.bugs[0].lineHi = 8;
    rig.monitor.add(rig.memReport(2));      // line 3: outside range
    auto miss = analyzeReports(rig.workload, rig.program, rig.monitor,
                               true);
    EXPECT_EQ(miss.numDetected, 0);
    EXPECT_EQ(miss.falsePositiveSites, 1);

    rig.monitor.add(rig.memReport(6));      // line 7: inside range
    auto hit = analyzeReports(rig.workload, rig.program, rig.monitor,
                              true);
    EXPECT_EQ(hit.numDetected, 1);
}

TEST(Registry, NamesArePartitioned)
{
    auto all = workloadNames();
    auto buggy = buggyWorkloadNames();
    auto spec = specWorkloadNames();
    EXPECT_EQ(all.size(), 10u);
    EXPECT_EQ(buggy.size(), 7u);
    EXPECT_EQ(spec.size(), 3u);
    EXPECT_EQ(buggy.size() + spec.size(), all.size());
}

TEST(Registry, LookupIsCachedAndStable)
{
    const auto &a = getWorkload("pe_go");
    const auto &b = getWorkload("pe_go");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.name, "pe_go");
    EXPECT_FALSE(a.benignInputs.empty());
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(getWorkload("no_such_app"), FatalError);
}

TEST(Registry, EveryWorkloadHas50BenignInputs)
{
    for (const auto &name : workloadNames()) {
        const auto &w = getWorkload(name);
        EXPECT_EQ(w.benignInputs.size(), 50u) << name;
        EXPECT_FALSE(w.source.empty()) << name;
    }
}

TEST(Registry, EveryBugHasATriggerInput)
{
    for (const auto &name : buggyWorkloadNames()) {
        const auto &w = getWorkload(name);
        for (const auto &bug : w.bugs) {
            EXPECT_TRUE(w.triggerInputs.count(bug.id))
                << name << " " << bug.id;
            EXPECT_TRUE(bug.expectPeDetect || !bug.missCategory.empty())
                << name << " " << bug.id
                << ": misses must state their category";
        }
    }
}

} // namespace
