/**
 * @file
 * Tests for the tagged-checking-function mechanism (paper Section
 * 6.2) and the per-core clock reporting of the CMP option.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"

namespace
{

using namespace pe;

const char *source = R"(
int state = 0;
int checked = 0;

// Stands in for an instrumented checking routine of a software
// detector: its internal branches must not spawn NT-Paths.
int check_invariants(int v) {
    if (v < 0) {
        checked = checked + 1;
    }
    if (v > 100) {
        checked = checked + 2;
    }
    return checked;
}

int main() {
    int i = 0;
    while (i < 20) {
        if (state == 9) {
            state = 0;
        }
        check_invariants(i);
        i = i + 1;
    }
    print_int(checked);
    return 0;
}
)";

uint32_t
countSpawnsIn(const isa::Program &program, const core::RunResult &r,
              const std::string &func)
{
    uint32_t n = 0;
    for (const auto &rec : r.ntRecords) {
        if (program.funcOf(rec.spawnBranchPc) == func)
            ++n;
    }
    return n;
}

TEST(NoSpawn, TaggedFunctionsAreSkipped)
{
    auto program = minic::compile(source, "nospawn");

    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    core::PathExpanderEngine plain(program, cfg, nullptr);
    auto before = plain.run({});
    EXPECT_GT(countSpawnsIn(program, before, "check_invariants"), 0u);

    cfg.noSpawnFuncs = {"check_invariants"};
    core::PathExpanderEngine tagged(program, cfg, nullptr);
    auto after = tagged.run({});
    EXPECT_EQ(countSpawnsIn(program, after, "check_invariants"), 0u);
    // Spawning elsewhere (main's cold branch) is unaffected.
    EXPECT_GT(countSpawnsIn(program, after, "main"), 0u);
    EXPECT_EQ(before.io.charOutput, after.io.charOutput);
}

TEST(NoSpawn, UnknownNamesAreHarmless)
{
    auto program = minic::compile(source, "nospawn");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.noSpawnFuncs = {"does_not_exist"};
    core::PathExpanderEngine engine(program, cfg, nullptr);
    auto r = engine.run({});
    EXPECT_GT(r.ntPathsSpawned, 0u);
}

TEST(NoSpawn, WorksInCmpMode)
{
    auto program = minic::compile(source, "nospawn");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    cfg.noSpawnFuncs = {"check_invariants"};
    core::PathExpanderEngine engine(program, cfg, nullptr);
    auto r = engine.run({});
    EXPECT_EQ(countSpawnsIn(program, r, "check_invariants"), 0u);
}

TEST(CoreCycles, ReportedPerCore)
{
    auto program = minic::compile(source, "nospawn");

    auto off = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine base(program, off, nullptr);
    auto rb = base.run({});
    ASSERT_EQ(rb.coreCycles.size(), 1u);
    EXPECT_EQ(rb.coreCycles[0], rb.cycles);

    auto cmp = core::PeConfig::forMode(core::PeMode::Cmp);
    core::PathExpanderEngine engine(program, cmp, nullptr);
    auto rc = engine.run({});
    ASSERT_EQ(rc.coreCycles.size(), 4u);
    EXPECT_EQ(rc.coreCycles[0], rc.cycles);
    // Idle cores did some NT work but lag the primary.
    for (size_t c = 1; c < rc.coreCycles.size(); ++c)
        EXPECT_LE(rc.coreCycles[c], rc.cycles + 2000);
}

} // namespace
