/**
 * @file
 * MiniC compiler tests: lexer, parser error handling, and language
 * semantics verified by executing compiled programs.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/minic/lexer.hh"
#include "src/minic/parser.hh"
#include "src/support/status.hh"

namespace
{

using namespace pe;
using namespace pe::minic;

/** Compile and run in baseline mode; return the character output. */
std::string
runProgram(const std::string &source,
           const std::vector<int32_t> &input = {})
{
    auto program = compile(source, "test");
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine engine(program, cfg);
    auto r = engine.run(input);
    EXPECT_FALSE(r.programCrashed)
        << "crash: " << sim::crashKindName(r.programCrashKind);
    return r.io.charOutput;
}

// ---- lexer ----

TEST(Lexer, TokenKinds)
{
    auto toks = lex("int x = 42; if (x <= 'a') { x = x << 2; }");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokenKind::KwInt);
    EXPECT_EQ(toks[1].kind, TokenKind::Ident);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[3].kind, TokenKind::IntLit);
    EXPECT_EQ(toks[3].intValue, 42);
    EXPECT_EQ(toks.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, CharAndStringEscapes)
{
    auto toks = lex(R"( '\n' "a\tb" )");
    EXPECT_EQ(toks[0].kind, TokenKind::CharLit);
    EXPECT_EQ(toks[0].intValue, '\n');
    EXPECT_EQ(toks[1].kind, TokenKind::StrLit);
    EXPECT_EQ(toks[1].text, "a\tb");
}

TEST(Lexer, Comments)
{
    auto toks = lex("1 // line\n/* block\nstill */ 2");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].intValue, 1);
    EXPECT_EQ(toks[1].intValue, 2);
}

TEST(Lexer, TwoCharOperators)
{
    auto toks = lex("== != <= >= << >> && ||");
    EXPECT_EQ(toks[0].kind, TokenKind::Eq);
    EXPECT_EQ(toks[1].kind, TokenKind::Ne);
    EXPECT_EQ(toks[2].kind, TokenKind::Le);
    EXPECT_EQ(toks[3].kind, TokenKind::Ge);
    EXPECT_EQ(toks[4].kind, TokenKind::Shl);
    EXPECT_EQ(toks[5].kind, TokenKind::Shr);
    EXPECT_EQ(toks[6].kind, TokenKind::AmpAmp);
    EXPECT_EQ(toks[7].kind, TokenKind::PipePipe);
}

TEST(Lexer, LineNumbers)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 3);
    EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(lex("`"), FatalError);
    EXPECT_THROW(lex("\"unterminated"), FatalError);
    EXPECT_THROW(lex("99999999999"), FatalError);
    EXPECT_THROW(lex("/* open"), FatalError);
}

// ---- parser errors ----

TEST(Parser, RejectsBadSyntax)
{
    EXPECT_THROW(compile("int main() { return 1 }", "t"), FatalError);
    EXPECT_THROW(compile("int main() { 1 = 2; }", "t"), FatalError);
    EXPECT_THROW(compile("int main() { break; }", "t"), FatalError);
    EXPECT_THROW(compile("int f() { }", "t"), FatalError); // no main
    EXPECT_THROW(compile("int main() { int a[0]; }", "t"),
                 FatalError);
    EXPECT_THROW(compile("int main() { undefined(); }", "t"),
                 FatalError);
    EXPECT_THROW(compile("int main() { return x; }", "t"),
                 FatalError);
}

TEST(Parser, RejectsDuplicates)
{
    EXPECT_THROW(compile("int x; int x; int main() { return 0; }",
                         "t"),
                 FatalError);
    EXPECT_THROW(
        compile("int f(int a, int a) { return 0; } "
                "int main() { return 0; }",
                "t"),
        FatalError);
    EXPECT_THROW(
        compile("int main() { int y; int y; return 0; }", "t"),
        FatalError);
}

// ---- semantics via execution ----

TEST(MiniC, ArithmeticAndPrecedence)
{
    EXPECT_EQ(runProgram("int main() { print_int(2 + 3 * 4); "
                         "return 0; }"),
              "14");
    EXPECT_EQ(runProgram("int main() { print_int((2 + 3) * 4); "
                         "return 0; }"),
              "20");
    EXPECT_EQ(runProgram("int main() { print_int(17 % 5); "
                         "return 0; }"),
              "2");
    EXPECT_EQ(runProgram("int main() { print_int(-7 / 2); "
                         "return 0; }"),
              "-3");
}

TEST(MiniC, BitwiseAndShift)
{
    EXPECT_EQ(runProgram("int main() { print_int(12 & 10); "
                         "print_int(12 | 3); print_int(12 ^ 10); "
                         "print_int(3 << 3); print_int(64 >> 2); "
                         "return 0; }"),
              "81562416");   // 8, 15, 6, 24, 16 concatenated
}

TEST(MiniC, ComparisonChain)
{
    EXPECT_EQ(runProgram("int main() { print_int(3 < 4); "
                         "print_int(4 <= 4); print_int(5 > 6); "
                         "print_int(5 >= 6); print_int(7 == 7); "
                         "print_int(7 != 7); return 0; }"),
              "110010");
}

TEST(MiniC, ShortCircuitEvaluation)
{
    // The right operand must not run when short-circuited.
    const char *src = R"(
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
    int a = 0 && bump();
    int b = 1 || bump();
    print_int(calls);
    print_int(a);
    print_int(b);
    print_int(1 && 2);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "0011");
}

TEST(MiniC, IfElseChains)
{
    const char *src = R"(
int classify(int v) {
    if (v < 0) { return -1; }
    else if (v == 0) { return 0; }
    else if (v < 10) { return 1; }
    return 2;
}
int main() {
    print_int(classify(-5));
    print_int(classify(0));
    print_int(classify(5));
    print_int(classify(50));
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "-1012");
}

TEST(MiniC, WhileAndForLoops)
{
    const char *src = R"(
int main() {
    int sum = 0;
    for (int i = 1; i <= 10; i = i + 1) {
        sum = sum + i;
    }
    print_int(sum);
    int n = 1;
    while (n < 100) { n = n * 2; }
    print_int(n);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "55128");
}

TEST(MiniC, BreakAndContinue)
{
    const char *src = R"(
int main() {
    int sum = 0;
    for (int i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        sum = sum + i;
    }
    print_int(sum);    // 1+3+5+7+9 = 25
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "25");
}

TEST(MiniC, Recursion)
{
    const char *src = R"(
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(15)); return 0; }
)";
    EXPECT_EQ(runProgram(src), "610");
}

TEST(MiniC, NestedCallsAsArguments)
{
    const char *src = R"(
int add(int a, int b) { return a + b; }
int main() {
    print_int(add(add(1, 2), add(3, add(4, 5))));
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "15");
}

TEST(MiniC, CallInsideIndexExpression)
{
    // Regression for the call-at-depth ABI bug: the callee must see
    // its own arguments even when live eval registers are saved.
    const char *src = R"(
int tab[10];
int idx(int a, int b) { return a * 2 + b; }
int main() {
    tab[idx(2, 1)] = 42;
    print_int(tab[idx(1, 3)] + tab[5]);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "84");
}

TEST(MiniC, GlobalsAndInitializers)
{
    const char *src = R"(
int counter = 5;
int table[4] = { 10, 20, 30 };
int main() {
    print_int(counter);
    print_int(table[0] + table[1] + table[2] + table[3]);
    counter = counter + 1;
    print_int(counter);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "5606");
}

TEST(MiniC, LocalArraysAndScoping)
{
    const char *src = R"(
int main() {
    int a[5];
    for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
    int sum = 0;
    {
        int sum2 = 100;     // shadowing in an inner scope
        sum = sum + sum2;
    }
    for (int i = 0; i < 5; i = i + 1) { sum = sum + a[i]; }
    print_int(sum);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "130");
}

TEST(MiniC, PointersAndAddressOf)
{
    const char *src = R"(
int swap(int *a, int *b) {
    int t = *a;
    *a = *b;
    *b = t;
    return 0;
}
int main() {
    int x = 3;
    int y = 9;
    swap(&x, &y);
    print_int(x);
    print_int(y);
    int *p = &x;
    *p = *p + 1;
    print_int(x);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "9310");
}

TEST(MiniC, MallocAndPointerArithmetic)
{
    const char *src = R"(
int main() {
    int *buf = malloc(6);
    for (int i = 0; i < 6; i = i + 1) { buf[i] = i + 1; }
    int *mid = buf + 3;
    print_int(*mid);
    print_int(mid[2]);
    free(buf);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "46");
}

TEST(MiniC, StringsAndPrint)
{
    EXPECT_EQ(runProgram("int main() { print_str(\"hi there\"); "
                         "return 0; }"),
              "hi there");
    const char *src = R"(
int main() {
    int *s = "abc";
    print_int(s[0]);
    print_int(s[3]);    // terminator
    return 0;
}
)";
    EXPECT_EQ(runProgram(src), "970");
}

TEST(MiniC, ReadInput)
{
    const char *src = R"(
int main() {
    int total = 0;
    int v = read_int();
    while (v != -1) {
        total = total + v;
        v = read_int();
    }
    print_int(total);
    return 0;
}
)";
    EXPECT_EQ(runProgram(src, {5, 10, 15}), "30");
}

TEST(MiniC, UnaryOperators)
{
    EXPECT_EQ(runProgram("int main() { print_int(!0); print_int(!7); "
                         "print_int(-(3 + 4)); return 0; }"),
              "10-7");
}

TEST(MiniC, ExitBuiltinStopsExecution)
{
    EXPECT_EQ(runProgram("int main() { print_int(1); exit(); "
                         "print_int(2); return 0; }"),
              "1");
}

TEST(MiniC, ImplicitReturnZero)
{
    const char *src = R"(
int noret(int x) { x = x + 1; }
int main() { print_int(noret(5)); return 0; }
)";
    EXPECT_EQ(runProgram(src), "0");
}

TEST(MiniC, ProgramMetadata)
{
    auto program = compile(R"(
int g;
int helper(int a) { return a; }
int main() {
    assert(1 == 1, 404);
    return helper(2);
}
)",
                           "meta");
    EXPECT_EQ(program.name, "meta");
    EXPECT_TRUE(program.assertLocs.count(404));
    bool sawHelper = false;
    bool sawMain = false;
    bool sawStart = false;
    for (const auto &f : program.funcs) {
        sawHelper = sawHelper || f.name == "helper";
        sawMain = sawMain || f.name == "main";
        sawStart = sawStart || f.name == "_start";
    }
    EXPECT_TRUE(sawHelper && sawMain && sawStart);
    EXPECT_GT(program.blankAddr, 0u);
    EXPECT_GT(program.heapBase, program.dataBase);
}

TEST(MiniC, DeepExpressionFailsGracefully)
{
    std::string expr = "1";
    for (int i = 0; i < 40; ++i)
        expr = "(" + expr + " + (1";
    // Unbalanced on purpose is a parse error; balanced-deep is an
    // eval-depth error. Build a balanced right-leaning expression:
    std::string deep = "1";
    for (int i = 0; i < 30; ++i)
        deep = "1 + (" + deep + ")";
    std::string src =
        "int main() { print_int(" + deep + "); return 0; }";
    // Right-leaning nesting grows the eval stack; expect a clean
    // compiler diagnostic rather than a crash.
    EXPECT_THROW(compile(src, "deep"), FatalError);
}

} // namespace
