/**
 * @file
 * Detection-subsystem tests: object registry classification and
 * overlay chaining, guard zones, use-after-free, the three detectors
 * and the monitor area's site deduplication.
 */

#include <gtest/gtest.h>

#include "src/detect/detector.hh"
#include "src/detect/registry.hh"
#include "src/detect/report.hh"

namespace
{

using namespace pe;
using namespace pe::detect;
using isa::ObjectKind;

constexpr uint32_t G = isa::Program::guardWords;

TEST(Registry, ClassifyPayloadGuardUnknown)
{
    ObjectRegistry reg;
    reg.registerObject(100, 10, ObjectKind::GlobalArray);
    EXPECT_EQ(reg.classify(100), AddrClass::Payload);
    EXPECT_EQ(reg.classify(109), AddrClass::Payload);
    EXPECT_EQ(reg.classify(110), AddrClass::Guard);
    EXPECT_EQ(reg.classify(111), AddrClass::Guard);
    EXPECT_EQ(reg.classify(99), AddrClass::Guard);
    EXPECT_EQ(reg.classify(100 - G - 1), AddrClass::Unknown);
    EXPECT_EQ(reg.classify(110 + G), AddrClass::Unknown);
}

TEST(Registry, HeapFreeLeavesTombstone)
{
    ObjectRegistry reg;
    reg.registerObject(100, 10, ObjectKind::HeapBlock);
    reg.unregisterObject(100);
    EXPECT_EQ(reg.classify(105), AddrClass::FreedPayload);
    EXPECT_EQ(reg.classify(110), AddrClass::FreedGuard);
}

TEST(Registry, StackArrayUnregisterErases)
{
    ObjectRegistry reg;
    reg.registerObject(100, 10, ObjectKind::StackArray);
    reg.unregisterObject(100);
    EXPECT_EQ(reg.classify(105), AddrClass::Unknown);
    EXPECT_EQ(reg.numOwn(), 0u);
}

TEST(Registry, ReuseOverwritesOverlappingObjects)
{
    ObjectRegistry reg;
    reg.registerObject(100, 10, ObjectKind::StackArray);
    // New frame reuses overlapping addresses.
    reg.registerObject(104, 20, ObjectKind::StackArray);
    EXPECT_EQ(reg.classify(104), AddrClass::Payload);
    EXPECT_EQ(reg.classify(123), AddrClass::Payload);
    EXPECT_EQ(reg.classify(124), AddrClass::Guard);
    EXPECT_EQ(reg.numOwn(), 1u);
}

TEST(Registry, OverlayReadsThroughParent)
{
    ObjectRegistry base;
    base.registerObject(100, 10, ObjectKind::GlobalArray);
    ObjectRegistry overlay(&base);
    EXPECT_EQ(overlay.classify(105), AddrClass::Payload);
    EXPECT_EQ(overlay.classify(110), AddrClass::Guard);
}

TEST(Registry, OverlayRegistrationInvisibleToParent)
{
    ObjectRegistry base;
    ObjectRegistry overlay(&base);
    overlay.registerObject(200, 8, ObjectKind::HeapBlock);
    EXPECT_EQ(overlay.classify(204), AddrClass::Payload);
    EXPECT_EQ(base.classify(204), AddrClass::Unknown);
}

TEST(Registry, OverlayFreeTombstonesParentObject)
{
    ObjectRegistry base;
    base.registerObject(100, 10, ObjectKind::HeapBlock);
    ObjectRegistry overlay(&base);
    overlay.unregisterObject(100);
    // The NT-Path's view sees the free; the primary view does not.
    EXPECT_EQ(overlay.classify(105), AddrClass::FreedPayload);
    EXPECT_EQ(base.classify(105), AddrClass::Payload);
}

TEST(Registry, DeadStackArrayInOverlayReadsUnknown)
{
    ObjectRegistry base;
    base.registerObject(100, 10, ObjectKind::StackArray);
    ObjectRegistry overlay(&base);
    overlay.unregisterObject(100);
    EXPECT_EQ(overlay.classify(105), AddrClass::Unknown);
    EXPECT_EQ(base.classify(105), AddrClass::Payload);
}

TEST(Registry, FindContaining)
{
    ObjectRegistry reg;
    reg.registerObject(100, 10, ObjectKind::HeapBlock);
    auto obj = reg.findContaining(105);
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->base, 100u);
    EXPECT_EQ(obj->size, 10u);
    EXPECT_FALSE(reg.findContaining(500).has_value());
}

// ---- detectors ----

struct DetectorRig
{
    DetectorRig()
    {
        program.name = "rig";
        program.dataBase = 16;
        program.heapBase = 200;
        program.funcs.push_back(isa::FuncInfo{"f", 0, 100});
        registry.registerObject(100, 10, ObjectKind::GlobalArray);

        ctx.program = &program;
        ctx.registry = &registry;
        ctx.monitor = &monitor;
        ctx.pc = 5;
        ctx.dataBase = 16;
        ctx.heapBase = 200;
        ctx.heapTop = 250;
        ctx.stackBase = 1000;
        ctx.memWords = 2000;
    }

    isa::Program program;
    ObjectRegistry registry;
    MonitorArea monitor;
    DetectCtx ctx;
};

TEST(BoundsChecker, FlagsGuardHit)
{
    DetectorRig rig;
    BoundsChecker det;
    det.onBoundsCheck(rig.ctx, 105);
    EXPECT_EQ(rig.monitor.reports().size(), 0u);
    det.onBoundsCheck(rig.ctx, 110);
    ASSERT_EQ(rig.monitor.reports().size(), 1u);
    EXPECT_EQ(rig.monitor.reports()[0].kind, ReportKind::GuardHit);
    EXPECT_EQ(rig.monitor.reports()[0].site, "f:0");
}

TEST(BoundsChecker, FlagsNullZoneAndWildHeap)
{
    DetectorRig rig;
    BoundsChecker det;
    det.onBoundsCheck(rig.ctx, 3);      // null zone
    det.onBoundsCheck(rig.ctx, 500);    // beyond heapTop, below stack
    ASSERT_EQ(rig.monitor.reports().size(), 2u);
    EXPECT_EQ(rig.monitor.reports()[0].kind, ReportKind::WildAccess);
    EXPECT_EQ(rig.monitor.reports()[1].kind, ReportKind::WildAccess);
}

TEST(BoundsChecker, AcceptsValidRegions)
{
    DetectorRig rig;
    BoundsChecker det;
    det.onBoundsCheck(rig.ctx, 20);     // globals
    det.onBoundsCheck(rig.ctx, 220);    // allocated heap
    det.onBoundsCheck(rig.ctx, 1500);   // stack
    EXPECT_EQ(rig.monitor.reports().size(), 0u);
}

TEST(BoundsChecker, FlagsUseAfterFree)
{
    DetectorRig rig;
    rig.registry.registerObject(220, 8, ObjectKind::HeapBlock);
    rig.registry.unregisterObject(220);
    BoundsChecker det;
    det.onBoundsCheck(rig.ctx, 223);
    ASSERT_EQ(rig.monitor.reports().size(), 1u);
    EXPECT_EQ(rig.monitor.reports()[0].kind,
              ReportKind::UseAfterFree);
}

TEST(WatchChecker, TriggersOnGuardAndNullOnly)
{
    DetectorRig rig;
    WatchChecker det;
    det.onMemAccess(rig.ctx, 110, true);    // guard -> triggers
    det.onMemAccess(rig.ctx, 3, false);     // null zone -> triggers
    det.onMemAccess(rig.ctx, 500, true);    // unwatched wild -> silent
    ASSERT_EQ(rig.monitor.reports().size(), 2u);
    EXPECT_EQ(rig.monitor.reports()[0].kind, ReportKind::GuardHit);
    EXPECT_EQ(rig.monitor.reports()[1].kind, ReportKind::WildAccess);
}

TEST(WatchChecker, IgnoresBoundsHooks)
{
    DetectorRig rig;
    WatchChecker det;
    det.onBoundsCheck(rig.ctx, 110);
    EXPECT_EQ(rig.monitor.reports().size(), 0u);
}

TEST(AssertChecker, ReportsWithId)
{
    DetectorRig rig;
    AssertChecker det;
    rig.ctx.fromNtPath = true;
    rig.ctx.ntSpawnPc = 42;
    det.onAssert(rig.ctx, 207);
    ASSERT_EQ(rig.monitor.reports().size(), 1u);
    const auto &r = rig.monitor.reports()[0];
    EXPECT_EQ(r.kind, ReportKind::AssertFail);
    EXPECT_EQ(r.assertId, 207);
    EXPECT_TRUE(r.fromNtPath);
    EXPECT_EQ(r.ntSpawnPc, 42u);
}

TEST(CheckerCosts, SoftwareVsHardware)
{
    BoundsChecker sw;
    WatchChecker hw;
    EXPECT_GT(sw.boundsCheckCost(), 0u);
    EXPECT_EQ(hw.memAccessCost(), 0u);
}

TEST(MonitorArea, DeduplicatesSites)
{
    MonitorArea m;
    Report r;
    r.kind = ReportKind::GuardHit;
    r.pc = 10;
    m.add(r);
    m.add(r);                           // same site
    r.pc = 11;
    m.add(r);                           // new site
    r.kind = ReportKind::AssertFail;
    r.assertId = 5;
    m.add(r);
    r.pc = 99;                          // pc ignored for asserts
    m.add(r);
    EXPECT_EQ(m.reports().size(), 5u);
    EXPECT_EQ(m.numDistinctSites(), 3u);
    EXPECT_EQ(m.distinctReports().size(), 3u);
}

TEST(MonitorArea, Clear)
{
    MonitorArea m;
    Report r;
    r.kind = ReportKind::WildAccess;
    m.add(r);
    m.clear();
    EXPECT_EQ(m.reports().size(), 0u);
    EXPECT_EQ(m.numDistinctSites(), 0u);
}

} // namespace
