/**
 * @file
 * Differential proof of the self-pruning superblock path.
 *
 * `cfg.selfPrune` selects an execution *strategy*, not a behavior:
 * runs with the flag on and off must produce bit-identical RunResults
 * in every field except the `prunedInstructions` diagnostic (which
 * exists precisely so these tests can assert the pruned path actually
 * engaged).  This file extends the block-step identity methodology
 * (tests/block_step_test.cpp) to the pruned path: the full workload ×
 * mode grid, engineered saturation kernels, the epoch-invalidation
 * corners (counter reset landing inside a would-be superblock), the
 * activation gates that must keep the flag inert, a random-program
 * sweep, and unit tests of the new building blocks (BTB reset epoch,
 * coverage generation counter, static saturation eligibility, the
 * cache's promote/demote lifecycle).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/cfg.hh"
#include "src/analysis/regions.hh"
#include "src/branch/btb.hh"
#include "src/core/engine.hh"
#include "src/coverage/coverage.hh"
#include "src/detect/detector.hh"
#include "src/isa/assembler.hh"
#include "src/minic/compiler.hh"
#include "src/sim/superblock.hh"
#include "src/support/rng.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

/** Field-by-field identity, excluding the prunedInstructions diagnostic. */
void
expectIdentical(const core::RunResult &pruned, const core::RunResult &plain)
{
    EXPECT_EQ(pruned.programCrashed, plain.programCrashed);
    EXPECT_EQ(pruned.programCrashKind, plain.programCrashKind);
    EXPECT_EQ(pruned.hitInstructionLimit, plain.hitInstructionLimit);
    EXPECT_EQ(pruned.takenInstructions, plain.takenInstructions);
    EXPECT_EQ(pruned.ntInstructions, plain.ntInstructions);
    EXPECT_EQ(pruned.cycles, plain.cycles);
    EXPECT_EQ(pruned.ntPathsSpawned, plain.ntPathsSpawned);
    EXPECT_EQ(pruned.ntPathsSkippedBusy, plain.ntPathsSkippedBusy);
    EXPECT_EQ(pruned.l2ContentionCycles, plain.l2ContentionCycles);
    EXPECT_EQ(pruned.coreCycles, plain.coreCycles);
    EXPECT_EQ(pruned.memoryDigest, plain.memoryDigest);
    EXPECT_EQ(pruned.io.intOutput, plain.io.intOutput);
    EXPECT_EQ(pruned.io.charOutput, plain.io.charOutput);
    EXPECT_EQ(pruned.io.inputPos, plain.io.inputPos);
    EXPECT_EQ(pruned.coverage.takenWords(), plain.coverage.takenWords());
    EXPECT_EQ(pruned.coverage.ntWords(), plain.coverage.ntWords());

    ASSERT_EQ(pruned.ntRecords.size(), plain.ntRecords.size());
    for (size_t i = 0; i < pruned.ntRecords.size(); ++i) {
        SCOPED_TRACE("ntRecord " + std::to_string(i));
        const auto &a = pruned.ntRecords[i];
        const auto &b = plain.ntRecords[i];
        EXPECT_EQ(a.spawnBranchPc, b.spawnBranchPc);
        EXPECT_EQ(a.spawnEdgeTaken, b.spawnEdgeTaken);
        EXPECT_EQ(a.length, b.length);
        EXPECT_EQ(a.cause, b.cause);
        EXPECT_EQ(a.crashKind, b.crashKind);
    }

    ASSERT_EQ(pruned.monitor.reports().size(),
              plain.monitor.reports().size());
    for (size_t i = 0; i < pruned.monitor.reports().size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        const auto &a = pruned.monitor.reports()[i];
        const auto &b = plain.monitor.reports()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.assertId, b.assertId);
        EXPECT_EQ(a.fromNtPath, b.fromNtPath);
        EXPECT_EQ(a.ntSpawnPc, b.ntSpawnPc);
        EXPECT_EQ(a.site, b.site);
    }
}

/**
 * Run @p program on @p input under @p cfg twice — selfPrune on and
 * off — with a fresh detector instance each time, require identity,
 * and return how many instructions the pruned run retired through the
 * superblock loop (0 when the flag never engaged).
 */
uint64_t
comparePrune(const isa::Program &program, core::PeConfig cfg,
             const std::string &tools, const std::vector<int32_t> &input)
{
    auto runWith = [&](bool prune) {
        core::PeConfig c = cfg;
        c.selfPrune = prune;
        detect::WatchChecker watch;
        detect::AssertChecker assert_;
        detect::Detector *det = nullptr;
        if (tools == "memory")
            det = &watch;
        else if (tools == "assert")
            det = &assert_;
        core::PathExpanderEngine engine(program, c, det);
        return engine.run(input);
    };
    core::RunResult pruned = runWith(true);
    core::RunResult plain = runWith(false);
    expectIdentical(pruned, plain);
    EXPECT_EQ(plain.prunedInstructions, 0u);
    return pruned.prunedInstructions;
}

/**
 * A kernel engineered to saturate (same shape as the bench arm): an
 * outer counted loop around a 4-iteration inner loop whose branches
 * all alternate direction, so both coverage bits of each inner branch
 * record within the first outer iteration and — with the spawn
 * threshold at the counter cap — the exercise counters reach
 * saturation after a few more.
 */
isa::Program
saturatedKernel(int iterations)
{
    std::ostringstream out;
    out << "li r8, 0\n"
        << "li r20, " << iterations << "\n"
        << "li r21, 4\nli r9, 1\nli r10, 3\n"
        << "outer:\n"
        << "li r12, 0\n"
        << "inner:\n"
        << "andi r13, r12, 1\n"
        << "beq r13, r0, even\n"
        << "add r9, r9, r10\n"
        << "jmp join1\n"
        << "even:\n"
        << "sub r9, r9, r10\n"
        << "join1:\n"
        << "andi r13, r12, 2\n"
        << "bne r13, r0, skip2\n"
        << "xor r10, r10, r9\n"
        << "skip2:\n"
        << "add r9, r9, r10\n"
        << "xori r10, r10, 21\n"
        << "slt r14, r9, r10\n"
        << "addi r12, r12, 1\n"
        << "blt r12, r21, inner\n"
        << "addi r8, r8, 1\n"
        << "blt r8, r20, outer\n"
        << "sys print_int r9\n"
        << "sys exit\n";
    return isa::assemble(out.str(), "saturated_kernel");
}

/** Standard-mode config under which the kernel saturates. */
core::PeConfig
saturatingConfig()
{
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = 100;
    cfg.ntPathCounterThreshold = 15;    // == 4-bit counter cap
    return cfg;
}

// ---------------------------------------------------------------------
// Every workload, every mode: selfPrune on must be invisible in the
// results.  Engagement is not asserted here — at the paper-default
// threshold (5, well below the counter cap) spawn-capable branches
// never saturate, which is itself the correct behavior — only
// identity, plus the requirement that non-Standard modes never prune.
// ---------------------------------------------------------------------

using WorkloadParam = std::tuple<std::string, core::PeMode>;

class SelfPruneWorkloads : public ::testing::TestWithParam<WorkloadParam>
{};

TEST_P(SelfPruneWorkloads, BitIdenticalToInstrumentedRun)
{
    const auto &[name, mode] = GetParam();
    const auto &w = workloads::getWorkload(name);
    auto program = minic::compile(w.source, w.name);

    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = w.maxNtPathLength;

    {
        SCOPED_TRACE("benign input");
        uint64_t pruned =
            comparePrune(program, cfg, w.tools, w.benignInputs[0]);
        if (mode != core::PeMode::Standard)
            EXPECT_EQ(pruned, 0u);
    }
    if (!w.triggerInputs.empty()) {
        SCOPED_TRACE("trigger input " + w.triggerInputs.begin()->first);
        uint64_t pruned = comparePrune(program, cfg, w.tools,
                                       w.triggerInputs.begin()->second);
        if (mode != core::PeMode::Standard)
            EXPECT_EQ(pruned, 0u);
    }
}

std::string
workloadParamName(const ::testing::TestParamInfo<WorkloadParam> &info)
{
    const auto &[name, mode] = info.param;
    std::string s = name + "_" + core::peModeName(mode);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SelfPruneWorkloads,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::workloadNames()),
        ::testing::Values(core::PeMode::Off, core::PeMode::Standard,
                          core::PeMode::Cmp)),
    workloadParamName);

// ---------------------------------------------------------------------
// Engagement and the activation gates.
// ---------------------------------------------------------------------

TEST(SelfPrune, EngagesOnSaturatedKernel)
{
    auto program = saturatedKernel(300);
    uint64_t pruned = comparePrune(program, saturatingConfig(), "", {});
    // Most of the run is the saturated inner loop; after warmup it
    // must retire through the superblock path.
    EXPECT_GT(pruned, 0u);
}

TEST(SelfPrune, GatesKeepTheFlagInert)
{
    auto program = saturatedKernel(120);

    {
        SCOPED_TRACE("random spawn factor consumes RNG at branches");
        auto cfg = saturatingConfig();
        cfg.randomSpawnFraction = 0.25;
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
    {
        SCOPED_TRACE("NT redirect ablation reads frozen counters");
        auto cfg = saturatingConfig();
        cfg.followNonTakenInNt = true;
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
    {
        SCOPED_TRACE("threshold above the counter cap");
        auto cfg = saturatingConfig();
        cfg.ntPathCounterThreshold = 16;    // > 4-bit cap: at-cap
                                            // edges could still spawn
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
    {
        SCOPED_TRACE("legacy per-step loop");
        auto cfg = saturatingConfig();
        cfg.legacyStepLoop = true;
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
    {
        SCOPED_TRACE("PE off");
        auto cfg = saturatingConfig();
        cfg.mode = core::PeMode::Off;
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
    {
        SCOPED_TRACE("CMP mode");
        auto cfg = saturatingConfig();
        cfg.mode = core::PeMode::Cmp;
        EXPECT_EQ(comparePrune(program, cfg, "", {}), 0u);
    }
}

// ---------------------------------------------------------------------
// Epoch invalidation: counter resets landing where a superblock would
// otherwise keep running.  The budget clip must stop the superblock at
// the exact legacy reset boundary, the reset must demote every
// promoted branch, and re-saturation must re-engage — all invisibly.
// ---------------------------------------------------------------------

TEST(SelfPruneEpochs, CounterResetMidSuperblock)
{
    auto program = saturatedKernel(200);
    for (uint64_t interval : {3ull, 17ull, 50ull, 256ull, 1000ull}) {
        SCOPED_TRACE("interval " + std::to_string(interval));
        auto cfg = saturatingConfig();
        cfg.counterResetInterval = interval;
        comparePrune(program, cfg, "", {});
    }
}

TEST(SelfPruneEpochs, TightIntervalOnWorkload)
{
    const auto &w = workloads::getWorkload("schedule2");
    auto program = minic::compile(w.source, w.name);
    for (uint64_t interval : {3ull, 17ull, 256ull}) {
        SCOPED_TRACE("interval " + std::to_string(interval));
        auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
        cfg.maxNtPathLength = w.maxNtPathLength;
        cfg.counterResetInterval = interval;
        cfg.ntPathCounterThreshold = 15;
        comparePrune(program, cfg, w.tools, w.benignInputs[0]);
    }
}

// ---------------------------------------------------------------------
// Configuration corners interacting with the bulk cycle accounting
// and the promotion predicate's waived-direction legs.
// ---------------------------------------------------------------------

TEST(SelfPruneCorners, SoftwareCostModel)
{
    // Per-branch analysis cost must be bulk-charged exactly.
    auto program = saturatedKernel(150);
    auto cfg = saturatingConfig();
    cfg.costModel = core::CostModelKind::Software;
    EXPECT_GT(comparePrune(program, cfg, "", {}), 0u);
}

TEST(SelfPruneCorners, SpawnPreFilterAndNoFixing)
{
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.ntPathCounterThreshold = 15;
    cfg.spawnPreFilter = true;      // doomed edges waive their leg
    cfg.variableFixing = false;
    comparePrune(program, cfg, w.tools, w.benignInputs[0]);
}

TEST(SelfPruneCorners, InstructionLimit)
{
    // The limit must cut the run at the exact same instruction even
    // when it lands inside a superblock.
    auto program = saturatedKernel(100000);
    for (uint64_t limit : {1000ull, 12345ull}) {
        SCOPED_TRACE("limit " + std::to_string(limit));
        auto cfg = saturatingConfig();
        cfg.maxTakenInstructions = limit;
        comparePrune(program, cfg, "", {});
    }
}

TEST(SelfPruneCorners, DetectorKeepsChecksSurfacing)
{
    // With a detector attached, Chkb/Assert must still surface from
    // the pruned image (startsSuper's inertChecks leg).
    const auto &w = workloads::getWorkload("pe_bc");
    auto program = minic::compile(w.source, w.name);
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.ntPathCounterThreshold = 15;
    comparePrune(program, cfg, w.tools, w.benignInputs[0]);
}

// ---------------------------------------------------------------------
// Random programs: same generator family as the block-step sweep
// (ALU runs, div/rem by possibly-zero registers, masked loads/stores,
// forward branches in a counted loop), but iterated enough for
// counters to cap so promotions actually happen.
// ---------------------------------------------------------------------

std::string
generateProgram(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream out;
    out << ".data acc 0\n.array buf 16\n";

    for (int r = 8; r <= 15; ++r)
        out << "li r" << r << ", " << rng.nextRange(-50, 50) << "\n";
    out << "li r20, " << rng.nextRange(40, 80) << "\n";
    out << "outer:\n";

    int blocks = static_cast<int>(rng.nextRange(4, 8));
    for (int b = 0; b < blocks; ++b) {
        int ops = static_cast<int>(rng.nextRange(3, 8));
        for (int i = 0; i < ops; ++i) {
            int rd = static_cast<int>(rng.nextRange(8, 15));
            int rs1 = static_cast<int>(rng.nextRange(8, 15));
            int rs2 = static_cast<int>(rng.nextRange(8, 15));
            switch (rng.nextBelow(9)) {
              case 0:
                out << "add r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 1:
                out << "sub r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 2:
                out << "mul r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 3:
                out << "xor r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 4:
                out << "slt r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 5:
                // Crash-capable: rs2 may hold zero on some path.
                out << "div r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 6:
                out << "rem r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 7: {
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "st r" << rs2 << ", 0(r28)\n";
                break;
              }
              default: {
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "ld r" << rd << ", 0(r28)\n";
                break;
              }
            }
        }
        int rs1 = static_cast<int>(rng.nextRange(8, 15));
        int rs2 = static_cast<int>(rng.nextRange(8, 15));
        const char *cond =
            (const char *[]){"beq", "bne", "blt", "bge"}[rng.nextBelow(
                4)];
        out << cond << " r" << rs1 << ", r" << rs2 << ", blk" << seed
            << "_" << b + 1 << "\n";
        out << "addi r" << rs1 << ", r" << rs1 << ", 1\n";
        out << "blk" << seed << "_" << b + 1 << ":\n";
    }

    out << "addi r20, r20, -1\n"
        << "bgt r20, r0, outer\n";
    out << "li r21, 0\n";
    for (int r = 8; r <= 15; ++r)
        out << "xor r21, r21, r" << r << "\n";
    out << "sys print_int r21\n"
        << "sys exit\n";
    return out.str();
}

TEST(SelfPruneRandom, SeedSweepIsBitIdentical)
{
    int crashes = 0;
    uint64_t totalPruned = 0;
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto program =
            isa::assemble(generateProgram(seed),
                          "selfprune_" + std::to_string(seed));
        auto cfg = saturatingConfig();
        cfg.maxTakenInstructions = 50'000;

        auto runWith = [&](bool prune) {
            core::PeConfig c = cfg;
            c.selfPrune = prune;
            core::PathExpanderEngine engine(program, c, nullptr);
            return engine.run({});
        };
        core::RunResult pruned = runWith(true);
        core::RunResult plain = runWith(false);
        expectIdentical(pruned, plain);
        totalPruned += pruned.prunedInstructions;
        if (pruned.programCrashed)
            ++crashes;

        // And with a reset interval that fires mid-run.
        cfg.counterResetInterval = 997;
        core::RunResult prunedTight = runWith(true);
        core::RunResult plainTight = runWith(false);
        expectIdentical(prunedTight, plainTight);
    }
    // The sweep is only meaningful if some seeds crash-surface and
    // some seeds actually engage the pruned path.
    EXPECT_GT(crashes, 0);
    EXPECT_GT(totalPruned, 0u);
}

// ---------------------------------------------------------------------
// Unit tests of the building blocks.
// ---------------------------------------------------------------------

TEST(BtbEpoch, ResetBumpsEpoch)
{
    branch::Btb btb;
    EXPECT_EQ(btb.resetEpoch(), 0u);
    btb.increment(42, true);
    EXPECT_EQ(btb.resetEpoch(), 0u);    // increments don't invalidate
    btb.resetCounters();
    EXPECT_EQ(btb.resetEpoch(), 1u);
    btb.resetCounters();
    EXPECT_EQ(btb.resetEpoch(), 2u);
}

TEST(BtbEpoch, AtCapTracksSaturation)
{
    branch::Btb btb;
    EXPECT_FALSE(btb.atCap(7, false));  // miss reads as not-at-cap
    for (int i = 0; i < 15; ++i)
        btb.increment(7, false);
    EXPECT_TRUE(btb.atCap(7, false));
    EXPECT_FALSE(btb.atCap(7, true));
    btb.increment(7, false);            // saturating: still at cap
    EXPECT_TRUE(btb.atCap(7, false));
    btb.resetCounters();
    EXPECT_FALSE(btb.atCap(7, false));
}

TEST(CoverageGeneration, BumpsOnlyOnRealChange)
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(isa::Opcode::Beq, 8, 0, 0));
    p.code.push_back(isa::makeBranch(isa::Opcode::Bne, 8, 0, 0));

    coverage::BranchCoverage cov(p);
    EXPECT_EQ(cov.generation(), 0u);
    EXPECT_FALSE(cov.takenEdgeCovered(1, true));

    cov.onTakenEdge(1, true);
    EXPECT_TRUE(cov.takenEdgeCovered(1, true));
    EXPECT_FALSE(cov.takenEdgeCovered(1, false));
    uint64_t g = cov.generation();
    EXPECT_GT(g, 0u);

    cov.onTakenEdge(1, true);           // idempotent re-record
    EXPECT_EQ(cov.generation(), g);

    cov.onNtEdge(2, false);             // NT bitmap counts too
    EXPECT_GT(cov.generation(), g);
}

TEST(CoverageGeneration, MergeAndRestoreInvalidate)
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(isa::Opcode::Beq, 8, 0, 0));

    coverage::BranchCoverage a(p);
    coverage::BranchCoverage b(p);
    b.onTakenEdge(1, false);

    uint64_t g = a.generation();
    a.mergeFrom(b);                     // contributes a new bit
    EXPECT_GT(a.generation(), g);
    EXPECT_TRUE(a.takenEdgeCovered(1, false));

    g = a.generation();
    a.mergeFrom(b);                     // no-op merge
    EXPECT_EQ(a.generation(), g);

    // Universe growth counts as a change even with no new bits.
    isa::Program bigger = p;
    bigger.code.push_back(isa::makeBranch(isa::Opcode::Bne, 8, 0, 0));
    coverage::BranchCoverage c(bigger);
    g = c.generation();
    c.mergeFrom(a);
    EXPECT_GT(c.generation(), g);

    // restoreWords may clear bits: always a change.
    g = a.generation();
    a.restoreWords(a.takenWords(), a.ntWords());
    EXPECT_GT(a.generation(), g);
}

TEST(SaturationEligibility, ConflictingSetsAreExcluded)
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(isa::Opcode::Beq, 8, 0, 0));
    p.code.push_back(isa::makeBranch(isa::Opcode::Bne, 8, 0, 0));

    // One set, one way: two valid branches conflict — neither is safe.
    auto tight = analysis::computeSaturationEligibility(p, 1, 1);
    EXPECT_EQ(tight.condBranches, 2u);
    EXPECT_EQ(tight.eligibleBranches, 0u);
    EXPECT_FALSE(tight.branchEligible[1]);
    EXPECT_FALSE(tight.branchEligible[2]);

    // One set, two ways: both fit, eviction impossible.
    auto roomy = analysis::computeSaturationEligibility(p, 1, 2);
    EXPECT_EQ(roomy.eligibleBranches, 2u);

    // Two sets, one way: pcs 1 and 2 land in different sets.
    auto spread = analysis::computeSaturationEligibility(p, 2, 1);
    EXPECT_EQ(spread.eligibleBranches, 2u);
}

TEST(SaturationEligibility, InvalidTargetsDoNotPopulateSets)
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(isa::Opcode::Beq, 8, 0, 0));
    p.code.push_back(isa::makeBranch(isa::Opcode::Bne, 8, 0, 99));

    // The invalid-target branch crashes before any BTB bookkeeping,
    // so it neither counts nor conflicts.
    auto elig = analysis::computeSaturationEligibility(p, 1, 1);
    EXPECT_EQ(elig.condBranches, 1u);
    EXPECT_EQ(elig.eligibleBranches, 1u);
    EXPECT_TRUE(elig.branchEligible[1]);
    EXPECT_FALSE(elig.branchEligible[2]);
}

TEST(SaturationEligibility, CountsRegionsOverTheCfg)
{
    auto program = saturatedKernel(10);
    const branch::BtbParams btb;
    auto elig = analysis::computeSaturationEligibility(
        program, btb.entries / btb.ways, btb.ways);
    EXPECT_GT(elig.condBranches, 0u);
    EXPECT_EQ(elig.eligibleBranches, elig.condBranches);
    analysis::Cfg cfg(program);
    EXPECT_GT(analysis::countEligibleRegions(cfg, elig), 0u);
}

TEST(SuperblockCacheUnit, PromoteDemoteLifecycle)
{
    auto program = isa::assemble("li r8, 0\n"
                                 "li r9, 5\n"
                                 "loop:\n"
                                 "addi r8, r8, 1\n"
                                 "blt r8, r9, loop\n"
                                 "sys exit\n",
                                 "tiny_loop");
    const uint32_t branchPc = 3;
    sim::DecodedProgram decoded(program,
                                sim::TimingConfig::standardConfig());
    std::vector<bool> elig(program.code.size(), true);
    sim::SuperblockCache cache(decoded, elig);

    // Fresh cache: branch demoted, straight-line kinds intact.
    EXPECT_TRUE(cache.eligible(branchPc));
    EXPECT_FALSE(cache.promoted(branchPc));
    EXPECT_FALSE(cache.startsSuper(branchPc, true));
    EXPECT_TRUE(cache.startsSuper(0, true));        // li
    EXPECT_FALSE(cache.startsSuper(4, true));       // sys: Surface
    EXPECT_EQ(cache.epoch(), 0u);

    cache.promote(branchPc);
    EXPECT_TRUE(cache.promoted(branchPc));
    EXPECT_TRUE(cache.startsSuper(branchPc, true));
    EXPECT_EQ(cache.promotedCount(), 1u);

    cache.syncEpoch(0);                 // same epoch: no-op
    EXPECT_TRUE(cache.promoted(branchPc));

    cache.syncEpoch(1);                 // reset intervened: demote all
    EXPECT_FALSE(cache.promoted(branchPc));
    EXPECT_FALSE(cache.startsSuper(branchPc, true));
    EXPECT_EQ(cache.promotedCount(), 0u);
    EXPECT_EQ(cache.epoch(), 1u);

    cache.promote(branchPc);            // re-saturation re-promotes
    EXPECT_TRUE(cache.promoted(branchPc));
}

} // namespace
