/**
 * @file
 * print_tokens2 workload validation: clean baseline on benign inputs,
 * every seeded bug fires on its trigger input (taken path), and
 * PathExpander detects exactly the expected subset on benign inputs.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workloads.hh"

namespace
{

using namespace pe;

class Pt2Test : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        workload = new workloads::Workload(workloads::makePrintTokens2());
        program = new isa::Program(
            minic::compile(workload->source, workload->name));
    }

    static void TearDownTestSuite()
    {
        delete program;
        delete workload;
        program = nullptr;
        workload = nullptr;
    }

    static workloads::Workload *workload;
    static isa::Program *program;
};

workloads::Workload *Pt2Test::workload = nullptr;
isa::Program *Pt2Test::program = nullptr;

core::RunResult
runMode(const isa::Program &program, core::PeMode mode,
        const std::vector<int32_t> &input, detect::Detector *det,
        uint32_t maxNt)
{
    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = maxNt;
    core::PathExpanderEngine engine(program, cfg, det);
    return engine.run(input);
}

TEST_F(Pt2Test, BaselineBenignIsClean)
{
    detect::AssertChecker assertChecker;
    detect::WatchChecker watchChecker;
    for (const auto &input : workload->benignInputs) {
        auto r1 = runMode(*program, core::PeMode::Off, input,
                          &assertChecker, workload->maxNtPathLength);
        EXPECT_FALSE(r1.programCrashed);
        EXPECT_EQ(r1.monitor.reports().size(), 0u);
        auto r2 = runMode(*program, core::PeMode::Off, input,
                          &watchChecker, workload->maxNtPathLength);
        EXPECT_EQ(r2.monitor.reports().size(), 0u);
    }
}

TEST_F(Pt2Test, TriggersExposeEachBugOnTakenPath)
{
    for (const auto &bug : workload->bugs) {
        auto it = workload->triggerInputs.find(bug.id);
        ASSERT_NE(it, workload->triggerInputs.end())
            << "no trigger input for " << bug.id;
        bool memory = bug.kind == workloads::BugSpec::Kind::Memory;
        detect::AssertChecker assertChecker;
        detect::WatchChecker watchChecker;
        detect::Detector *det =
            memory ? static_cast<detect::Detector *>(&watchChecker)
                   : &assertChecker;
        auto r = runMode(*program, core::PeMode::Off, it->second, det,
                         workload->maxNtPathLength);
        auto analysis = workloads::analyzeReports(*workload, *program,
                                                  r.monitor, memory);
        bool found = false;
        for (const auto &o : analysis.outcomes) {
            if (o.bug->id == bug.id && o.detected)
                found = true;
        }
        EXPECT_TRUE(found) << bug.id << " did not fire on its trigger";
    }
}

TEST_F(Pt2Test, PeDetectsExpectedAssertionBugs)
{
    detect::AssertChecker checker;
    auto r = runMode(*program, core::PeMode::Standard,
                     workload->benignInputs[0], &checker,
                     workload->maxNtPathLength);
    auto analysis = workloads::analyzeReports(*workload, *program,
                                              r.monitor, false);
    for (const auto &o : analysis.outcomes) {
        EXPECT_EQ(o.detected, o.bug->expectPeDetect)
            << o.bug->id << " (" << o.bug->description << ")";
    }
}

TEST_F(Pt2Test, PeDetectsFigure1MemoryBug)
{
    detect::WatchChecker watchChecker;
    auto r = runMode(*program, core::PeMode::Standard,
                     workload->benignInputs[0], &watchChecker,
                     workload->maxNtPathLength);
    auto analysis = workloads::analyzeReports(*workload, *program,
                                              r.monitor, true);
    ASSERT_EQ(analysis.outcomes.size(), 1u);
    EXPECT_TRUE(analysis.outcomes[0].detected);

    // Baseline on the same benign input misses it.
    detect::WatchChecker baselineChecker;
    auto rb = runMode(*program, core::PeMode::Off,
                      workload->benignInputs[0], &baselineChecker,
                      workload->maxNtPathLength);
    auto ab = workloads::analyzeReports(*workload, *program, rb.monitor,
                                        true);
    EXPECT_FALSE(ab.outcomes[0].detected);
}

TEST_F(Pt2Test, CoverageImprovesWithPe)
{
    auto base = runMode(*program, core::PeMode::Off,
                        workload->benignInputs[0], nullptr,
                        workload->maxNtPathLength);
    auto pe = runMode(*program, core::PeMode::Standard,
                      workload->benignInputs[0], nullptr,
                      workload->maxNtPathLength);
    EXPECT_GT(pe.coverage.combinedFraction(),
              base.coverage.takenFraction());
}

} // namespace
