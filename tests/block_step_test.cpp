/**
 * @file
 * Differential proof of the block-stepped execution loop.
 *
 * The engine's pre-decoded fast path (`sim::runBlock`, selected by
 * default) and the legacy one-instruction-at-a-time loop (forced via
 * `PeConfig::legacyStepLoop`) are bit-identical by contract: same
 * RunResult in every field, including the final memory digest, the
 * per-core cycle clocks, the coverage bitmaps and the NT-Path record
 * stream.  This test enforces the contract in breadth — every
 * registered workload across the mode grid, plus a random-program
 * sweep whose generator deliberately includes the crash-capable
 * opcodes (div/rem by a possibly-zero register) so the
 * surface-before-crash rule of runBlock is exercised.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.hh"
#include "src/detect/detector.hh"
#include "src/isa/assembler.hh"
#include "src/minic/compiler.hh"
#include "src/support/rng.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

void
expectIdentical(const core::RunResult &blk, const core::RunResult &leg)
{
    EXPECT_EQ(blk.programCrashed, leg.programCrashed);
    EXPECT_EQ(blk.programCrashKind, leg.programCrashKind);
    EXPECT_EQ(blk.hitInstructionLimit, leg.hitInstructionLimit);
    EXPECT_EQ(blk.takenInstructions, leg.takenInstructions);
    EXPECT_EQ(blk.ntInstructions, leg.ntInstructions);
    EXPECT_EQ(blk.cycles, leg.cycles);
    EXPECT_EQ(blk.ntPathsSpawned, leg.ntPathsSpawned);
    EXPECT_EQ(blk.ntPathsSkippedBusy, leg.ntPathsSkippedBusy);
    EXPECT_EQ(blk.l2ContentionCycles, leg.l2ContentionCycles);
    EXPECT_EQ(blk.coreCycles, leg.coreCycles);
    EXPECT_EQ(blk.memoryDigest, leg.memoryDigest);
    EXPECT_EQ(blk.io.intOutput, leg.io.intOutput);
    EXPECT_EQ(blk.io.charOutput, leg.io.charOutput);
    EXPECT_EQ(blk.io.inputPos, leg.io.inputPos);
    EXPECT_EQ(blk.coverage.takenWords(), leg.coverage.takenWords());
    EXPECT_EQ(blk.coverage.ntWords(), leg.coverage.ntWords());

    ASSERT_EQ(blk.ntRecords.size(), leg.ntRecords.size());
    for (size_t i = 0; i < blk.ntRecords.size(); ++i) {
        SCOPED_TRACE("ntRecord " + std::to_string(i));
        const auto &a = blk.ntRecords[i];
        const auto &b = leg.ntRecords[i];
        EXPECT_EQ(a.spawnBranchPc, b.spawnBranchPc);
        EXPECT_EQ(a.spawnEdgeTaken, b.spawnEdgeTaken);
        EXPECT_EQ(a.length, b.length);
        EXPECT_EQ(a.cause, b.cause);
        EXPECT_EQ(a.crashKind, b.crashKind);
    }

    ASSERT_EQ(blk.monitor.reports().size(), leg.monitor.reports().size());
    for (size_t i = 0; i < blk.monitor.reports().size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        const auto &a = blk.monitor.reports()[i];
        const auto &b = leg.monitor.reports()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.assertId, b.assertId);
        EXPECT_EQ(a.fromNtPath, b.fromNtPath);
        EXPECT_EQ(a.ntSpawnPc, b.ntSpawnPc);
        EXPECT_EQ(a.site, b.site);
    }
}

/**
 * Run @p program on @p input under @p cfg twice — block-stepped and
 * legacy — with a fresh detector instance each time, and require the
 * results bit-identical.
 */
void
compareLoops(const isa::Program &program, core::PeConfig cfg,
             const std::string &tools,
             const std::vector<int32_t> &input)
{
    auto runWith = [&](bool legacy) {
        core::PeConfig c = cfg;
        c.legacyStepLoop = legacy;
        detect::WatchChecker watch;
        detect::AssertChecker assert_;
        detect::Detector *det = nullptr;
        if (tools == "memory")
            det = &watch;
        else if (tools == "assert")
            det = &assert_;
        core::PathExpanderEngine engine(program, c, det);
        return engine.run(input);
    };
    core::RunResult blk = runWith(false);
    core::RunResult leg = runWith(true);
    expectIdentical(blk, leg);
}

// ---------------------------------------------------------------------
// Every workload, every mode.
// ---------------------------------------------------------------------

using WorkloadParam = std::tuple<std::string, core::PeMode>;

class BlockStepWorkloads : public ::testing::TestWithParam<WorkloadParam>
{};

TEST_P(BlockStepWorkloads, BitIdenticalToLegacyLoop)
{
    const auto &[name, mode] = GetParam();
    const auto &w = workloads::getWorkload(name);
    auto program = minic::compile(w.source, w.name);

    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = w.maxNtPathLength;

    {
        SCOPED_TRACE("benign input");
        compareLoops(program, cfg, w.tools, w.benignInputs[0]);
    }
    if (!w.triggerInputs.empty()) {
        SCOPED_TRACE("trigger input " + w.triggerInputs.begin()->first);
        compareLoops(program, cfg, w.tools,
                     w.triggerInputs.begin()->second);
    }
}

std::string
workloadParamName(const ::testing::TestParamInfo<WorkloadParam> &info)
{
    const auto &[name, mode] = info.param;
    std::string s = name + "_" + core::peModeName(mode);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, BlockStepWorkloads,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::workloadNames()),
        ::testing::Values(core::PeMode::Off, core::PeMode::Standard,
                          core::PeMode::Cmp)),
    workloadParamName);

// ---------------------------------------------------------------------
// Configuration corners on a couple of representative workloads: the
// software cost model (per-instruction dilation interacts with the
// bulk cycle accounting), sandboxed I/O, disabled variable fixing
// (NT-entry predicate handling in the block prologue), NT-side branch
// redirection and the random spawn factor.
// ---------------------------------------------------------------------

TEST(BlockStepCorners, SoftwareCostModel)
{
    for (const char *name : {"print_tokens2", "pe_bc"}) {
        SCOPED_TRACE(name);
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, w.name);
        for (auto mode : {core::PeMode::Standard, core::PeMode::Cmp}) {
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = w.maxNtPathLength;
            cfg.costModel = core::CostModelKind::Software;
            compareLoops(program, cfg, w.tools, w.benignInputs[0]);
        }
    }
}

TEST(BlockStepCorners, SandboxIoAndNoFixing)
{
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);
    for (auto mode : {core::PeMode::Standard, core::PeMode::Cmp}) {
        for (bool sandbox : {false, true}) {
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = w.maxNtPathLength;
            cfg.sandboxIo = sandbox;
            cfg.variableFixing = false;
            compareLoops(program, cfg, w.tools, w.benignInputs[0]);
        }
    }
}

TEST(BlockStepCorners, NtRedirectAndRandomSpawn)
{
    const auto &w = workloads::getWorkload("print_tokens");
    auto program = minic::compile(w.source, w.name);
    for (auto mode : {core::PeMode::Standard, core::PeMode::Cmp}) {
        auto cfg = core::PeConfig::forMode(mode);
        cfg.maxNtPathLength = w.maxNtPathLength;
        cfg.followNonTakenInNt = true;
        cfg.randomSpawnFraction = 0.25;
        compareLoops(program, cfg, w.tools, w.benignInputs[0]);
    }
}

TEST(BlockStepCorners, TightCounterResetInterval)
{
    // A reset interval small enough to fire inside straight-line
    // stretches: the block must stop short of the boundary so the
    // reset keeps its legacy position in the global step order.
    const auto &w = workloads::getWorkload("schedule2");
    auto program = minic::compile(w.source, w.name);
    for (auto mode : {core::PeMode::Standard, core::PeMode::Cmp}) {
        for (uint64_t interval : {3ull, 17ull, 256ull}) {
            SCOPED_TRACE(interval);
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = w.maxNtPathLength;
            cfg.counterResetInterval = interval;
            compareLoops(program, cfg, w.tools, w.benignInputs[0]);
        }
    }
}

TEST(BlockStepCorners, InstructionLimit)
{
    // The limit must cut the run at the exact same instruction.
    const auto &w = workloads::getWorkload("pe_bc");
    auto program = minic::compile(w.source, w.name);
    for (auto mode :
         {core::PeMode::Off, core::PeMode::Standard, core::PeMode::Cmp}) {
        for (uint64_t limit : {1000ull, 12345ull}) {
            SCOPED_TRACE(limit);
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = w.maxNtPathLength;
            cfg.maxTakenInstructions = limit;
            compareLoops(program, cfg, w.tools, w.benignInputs[0]);
        }
    }
}

// ---------------------------------------------------------------------
// Random programs.  The generator mixes plain ALU runs (the block fast
// path), div/rem by a possibly-zero register (crash-capable: must
// surface so the legacy step reproduces the fault at the same PC),
// masked loads/stores and forward branches, inside a counted loop.
// ---------------------------------------------------------------------

std::string
generateProgram(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream out;
    out << ".data acc 0\n.array buf 16\n";

    for (int r = 8; r <= 15; ++r)
        out << "li r" << r << ", " << rng.nextRange(-50, 50) << "\n";
    out << "li r20, " << rng.nextRange(2, 5) << "\n";
    out << "outer:\n";

    int blocks = static_cast<int>(rng.nextRange(4, 8));
    for (int b = 0; b < blocks; ++b) {
        int ops = static_cast<int>(rng.nextRange(3, 8));
        for (int i = 0; i < ops; ++i) {
            int rd = static_cast<int>(rng.nextRange(8, 15));
            int rs1 = static_cast<int>(rng.nextRange(8, 15));
            int rs2 = static_cast<int>(rng.nextRange(8, 15));
            switch (rng.nextBelow(9)) {
              case 0:
                out << "add r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 1:
                out << "sub r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 2:
                out << "mul r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 3:
                out << "xor r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 4:
                out << "slt r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 5:
                // Crash-capable: rs2 may hold zero on some path.
                out << "div r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 6:
                out << "rem r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 7: {
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "st r" << rs2 << ", 0(r28)\n";
                break;
              }
              default: {
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "ld r" << rd << ", 0(r28)\n";
                break;
              }
            }
        }
        int rs1 = static_cast<int>(rng.nextRange(8, 15));
        int rs2 = static_cast<int>(rng.nextRange(8, 15));
        const char *cond =
            (const char *[]){"beq", "bne", "blt", "bge"}[rng.nextBelow(
                4)];
        out << cond << " r" << rs1 << ", r" << rs2 << ", blk" << seed
            << "_" << b + 1 << "\n";
        out << "addi r" << rs1 << ", r" << rs1 << ", 1\n";
        out << "blk" << seed << "_" << b + 1 << ":\n";
    }

    out << "addi r20, r20, -1\n"
        << "bgt r20, r0, outer\n";
    out << "li r21, 0\n";
    for (int r = 8; r <= 15; ++r)
        out << "xor r21, r21, r" << r << "\n";
    out << "sys print_int r21\n"
        << "sys exit\n";
    return out.str();
}

TEST(BlockStepRandom, SeedSweepIsBitIdentical)
{
    int crashes = 0;
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto program =
            isa::assemble(generateProgram(seed),
                          "blockstep_" + std::to_string(seed));
        for (auto mode : {core::PeMode::Off, core::PeMode::Standard,
                          core::PeMode::Cmp}) {
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = 100;
            cfg.maxTakenInstructions = 50'000;
            cfg.ntPathCounterThreshold = 8;

            auto runWith = [&](bool legacy) {
                core::PeConfig c = cfg;
                c.legacyStepLoop = legacy;
                core::PathExpanderEngine engine(program, c, nullptr);
                return engine.run({});
            };
            core::RunResult blk = runWith(false);
            core::RunResult leg = runWith(true);
            expectIdentical(blk, leg);
            if (blk.programCrashed && mode == core::PeMode::Off)
                ++crashes;
        }
    }
    // The sweep is only meaningful if some seeds actually take the
    // crash-surfacing path (div/rem by zero).
    EXPECT_GT(crashes, 0);
}

} // namespace
