/**
 * @file
 * Software-PathExpander tests (paper Section 5): identical path
 * semantics to the hardware standard configuration, vastly higher
 * cost under the PIN-style instrumentation model.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/swpe/software_pe.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

TEST(Swpe, ConfigIsSoftwareStandard)
{
    auto cfg = swpe::softwareConfig();
    EXPECT_EQ(cfg.mode, core::PeMode::Standard);
    EXPECT_EQ(cfg.costModel, core::CostModelKind::Software);
}

TEST(Swpe, IdenticalDetectionToHardware)
{
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);

    detect::AssertChecker hwChecker;
    auto hwCfg = core::PeConfig::forMode(core::PeMode::Standard);
    hwCfg.maxNtPathLength = w.maxNtPathLength;
    core::PathExpanderEngine hw(program, hwCfg, &hwChecker);
    auto hwRun = hw.run(w.benignInputs[0]);

    detect::AssertChecker swChecker;
    auto swCfg = swpe::softwareConfig();
    swCfg.maxNtPathLength = w.maxNtPathLength;
    auto swRun = swpe::runSoftwarePe(program, w.benignInputs[0],
                                     &swChecker, &swCfg);

    // Same algorithm: identical spawns, instruction counts, coverage
    // and detection results (paper Section 7: "All these results of
    // different PathExpander implementation are similar").
    EXPECT_EQ(hwRun.ntPathsSpawned, swRun.ntPathsSpawned);
    EXPECT_EQ(hwRun.ntInstructions, swRun.ntInstructions);
    EXPECT_EQ(hwRun.coverage.combinedCovered(),
              swRun.coverage.combinedCovered());
    EXPECT_EQ(hwRun.monitor.numDistinctSites(),
              swRun.monitor.numDistinctSites());
}

TEST(Swpe, OrdersOfMagnitudeSlower)
{
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);

    auto baseCfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine base(program, baseCfg, nullptr);
    auto baseRun = base.run(w.benignInputs[0]);

    auto hwCfg = core::PeConfig::forMode(core::PeMode::Standard);
    hwCfg.maxNtPathLength = w.maxNtPathLength;
    core::PathExpanderEngine hw(program, hwCfg, nullptr);
    auto hwRun = hw.run(w.benignInputs[0]);

    auto swCfg = swpe::softwareConfig();
    swCfg.maxNtPathLength = w.maxNtPathLength;
    auto swRun = swpe::runSoftwarePe(program, w.benignInputs[0],
                                     nullptr, &swCfg);

    double hwOverhead =
        static_cast<double>(hwRun.cycles - baseRun.cycles) /
        static_cast<double>(baseRun.cycles);
    double swOverhead =
        static_cast<double>(swRun.cycles - baseRun.cycles) /
        static_cast<double>(baseRun.cycles);

    EXPECT_GT(swOverhead, 10.0);            // > 1000% slowdown
    EXPECT_GT(swOverhead / hwOverhead, 20.0);
}

TEST(Swpe, InstrumentationCostsApplyToTakenPath)
{
    // Even with zero NT-Paths explored (threshold 0 is impossible, so
    // use a program with no branches beyond the harness), the dynamic
    // instrumentation dilates execution.
    auto program = minic::compile(R"(
int main() {
    int s = 0;
    int i = 0;
    while (i < 500) {
        s = s + i;
        i = i + 1;
    }
    print_int(s);
    return 0;
}
)",
                                  "dilate");
    auto baseCfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine base(program, baseCfg, nullptr);
    auto baseRun = base.run({});

    auto swCfg = swpe::softwareConfig();
    swCfg.ntPathCounterThreshold = 1;   // minimal NT work
    auto swRun = swpe::runSoftwarePe(program, {}, nullptr, &swCfg);

    EXPECT_GT(swRun.cycles, 3 * baseRun.cycles);
}

TEST(Swpe, SoftwareCostsScaleWithParameters)
{
    auto program = minic::compile(R"(
int flag = 0;
int main() {
    int i = 0;
    while (i < 100) {
        if (flag == 1) { flag = 0; }
        i = i + 1;
    }
    return 0;
}
)",
                                  "scale");
    auto cheap = swpe::softwareConfig();
    cheap.swCosts.perInstructionDilation = 1;
    cheap.swCosts.branchAnalysisCost = 10;
    auto expensive = swpe::softwareConfig();
    expensive.swCosts.perInstructionDilation = 20;
    expensive.swCosts.branchAnalysisCost = 500;

    auto a = swpe::runSoftwarePe(program, {}, nullptr, &cheap);
    auto b = swpe::runSoftwarePe(program, {}, nullptr, &expensive);
    EXPECT_GT(b.cycles, a.cycles);
    EXPECT_EQ(a.ntPathsSpawned, b.ntPathsSpawned);
}

} // namespace
