/**
 * @file
 * Tests for the two engine extensions the paper itself proposes:
 *
 *  - random-factor NT-Path selection (Section 7.1: the remedy for the
 *    hot-entry-edge misses);
 *  - speculative I/O sandboxing (Section 3.2: "if we had an OS
 *    support to sandbox unsafe events, more than 90% of NT-Paths may
 *    potentially execute up to 1000 instructions");
 *
 * plus the memory-digest sandboxing invariant across all modes.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

TEST(RandomSpawn, RecoversHotEntryEdgeBug)
{
    // schedule bug 305 is missed at the default threshold because its
    // entry edge saturates the 4-bit counter before the interesting
    // state arises; the random factor keeps occasionally exploring.
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);

    auto detect305 = [&](double fraction) {
        detect::AssertChecker checker;
        auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
        cfg.maxNtPathLength = w.maxNtPathLength;
        cfg.randomSpawnFraction = fraction;
        core::PathExpanderEngine engine(program, cfg, &checker);
        auto r = engine.run(w.benignInputs[0]);
        auto analysis =
            workloads::analyzeReports(w, program, r.monitor, false);
        for (const auto &o : analysis.outcomes) {
            if (o.bug->id == "sched-a305")
                return o.detected;
        }
        return false;
    };

    EXPECT_FALSE(detect305(0.0));
    EXPECT_TRUE(detect305(0.5));
}

TEST(RandomSpawn, DeterministicForFixedSeed)
{
    const auto &w = workloads::getWorkload("print_tokens");
    auto program = minic::compile(w.source, w.name);
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.randomSpawnFraction = 0.3;

    core::PathExpanderEngine a(program, cfg, nullptr);
    core::PathExpanderEngine b(program, cfg, nullptr);
    auto ra = a.run(w.benignInputs[0]);
    auto rb = b.run(w.benignInputs[0]);
    EXPECT_EQ(ra.ntPathsSpawned, rb.ntPathsSpawned);
    EXPECT_EQ(ra.cycles, rb.cycles);

    cfg.randomSpawnSeed = 12345;
    core::PathExpanderEngine c(program, cfg, nullptr);
    auto rc = c.run(w.benignInputs[0]);
    EXPECT_NE(ra.ntPathsSpawned, rc.ntPathsSpawned);
}

TEST(RandomSpawn, SpawnsMoreThanThresholdAlone)
{
    const auto &w = workloads::getWorkload("schedule2");
    auto program = minic::compile(w.source, w.name);
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;

    core::PathExpanderEngine plain(program, cfg, nullptr);
    auto base = plain.run(w.benignInputs[0]);

    cfg.randomSpawnFraction = 0.25;
    core::PathExpanderEngine random(program, cfg, nullptr);
    auto withRandom = random.run(w.benignInputs[0]);

    EXPECT_GT(withRandom.ntPathsSpawned, base.ntPathsSpawned);
    EXPECT_EQ(base.io.charOutput, withRandom.io.charOutput);
}

TEST(SandboxIo, EliminatesUnsafeEventTerminations)
{
    // gzip is the unsafe-event-dominated Figure-3 application.
    const auto &w = workloads::getWorkload("pe_gzip");
    auto program = minic::compile(w.source, w.name);

    auto runWith = [&](bool sandbox) {
        auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
        cfg.sandboxIo = sandbox;
        core::PathExpanderEngine engine(program, cfg, nullptr);
        return engine.run(w.benignInputs[0]);
    };

    auto off = runWith(false);
    auto on = runWith(true);

    double unsafeOff = off.ntFraction(core::NtStopCause::UnsafeEvent);
    double unsafeOn = on.ntFraction(core::NtStopCause::UnsafeEvent);
    EXPECT_GT(unsafeOff, 0.1);
    EXPECT_EQ(unsafeOn, 0.0);

    // The paper's prediction: survival rises past 90%.
    double survivedOn =
        1.0 - on.ntFraction(core::NtStopCause::Crash) - unsafeOn;
    EXPECT_GT(survivedOn, 0.9);
}

TEST(SandboxIo, SpeculativeOutputNeverLeaks)
{
    const auto &w = workloads::getWorkload("pe_gzip");
    auto program = minic::compile(w.source, w.name);

    auto baseCfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine base(program, baseCfg, nullptr);
    auto off = base.run(w.benignInputs[0]);

    for (auto mode : {core::PeMode::Standard, core::PeMode::Cmp}) {
        auto cfg = core::PeConfig::forMode(mode);
        cfg.sandboxIo = true;
        core::PathExpanderEngine engine(program, cfg, nullptr);
        auto r = engine.run(w.benignInputs[0]);
        // NT-Paths printed speculatively, but the architected output
        // and the input cursor are exactly the baseline's.
        EXPECT_EQ(r.io.charOutput, off.io.charOutput);
        EXPECT_EQ(r.io.inputPos, off.io.inputPos);
        EXPECT_GT(r.ntPathsSpawned, 0u);
    }
}

TEST(SandboxIo, SpeculativeReadsSeeConsistentStream)
{
    // An NT-Path that reads input sees the words the taken path would
    // have seen next (a speculative cursor), not garbage.
    const char *src = R"(
int probe = 0;
int got = -99;
int main() {
    int v = read_int();
    while (v != -1) {
        if (probe == 1) {
            got = read_int();       // speculative read on NT-Paths
            assert(got == 0 - 99, 77);  // fires: got became the next word
        }
        v = read_int();
    }
    print_int(got);
    return 0;
}
)";
    auto program = minic::compile(src, "specio");
    detect::AssertChecker checker;
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.sandboxIo = true;
    core::PathExpanderEngine engine(program, cfg, &checker);
    auto r = engine.run({10, 20, 30, -1});
    EXPECT_EQ(r.io.charOutput, "-99");  // rollback restored `got`
    bool fired = false;
    for (const auto &rep : r.monitor.reports())
        fired |= rep.assertId == 77;
    EXPECT_TRUE(fired);
}

TEST(MemoryDigest, IdenticalAcrossAllModes)
{
    // The strongest sandboxing statement: the final architected
    // memory image is bit-identical whether or not PathExpander (in
    // either configuration, with any extension) explored NT-Paths.
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);

    auto digestOf = [&](core::PeMode mode, bool sandboxIo,
                        double randomFraction) {
        auto cfg = core::PeConfig::forMode(mode);
        cfg.maxNtPathLength = w.maxNtPathLength;
        cfg.sandboxIo = sandboxIo;
        cfg.randomSpawnFraction = randomFraction;
        core::PathExpanderEngine engine(program, cfg, nullptr);
        return engine.run(w.benignInputs[0]).memoryDigest;
    };

    uint64_t base = digestOf(core::PeMode::Off, false, 0.0);
    EXPECT_EQ(digestOf(core::PeMode::Standard, false, 0.0), base);
    EXPECT_EQ(digestOf(core::PeMode::Cmp, false, 0.0), base);
    EXPECT_EQ(digestOf(core::PeMode::Standard, true, 0.3), base);
    EXPECT_EQ(digestOf(core::PeMode::Cmp, true, 0.3), base);
}

} // namespace
