/**
 * @file
 * Memory-system tests: main memory, versioned buffers (the Vtag
 * model), tree-ordered read resolution, cache hit/miss/LRU behaviour
 * and shared-port contention.
 */

#include <gtest/gtest.h>

#include "src/mem/cache.hh"
#include "src/mem/hierarchy.hh"
#include "src/mem/main_memory.hh"
#include "src/mem/versioned_buffer.hh"

namespace
{

using namespace pe::mem;

TEST(MainMemory, ReadWriteAndBounds)
{
    MainMemory m(128);
    EXPECT_TRUE(m.valid(0));
    EXPECT_TRUE(m.valid(127));
    EXPECT_FALSE(m.valid(128));
    m.write(5, -9);
    EXPECT_EQ(m.read(5), -9);
    EXPECT_EQ(m.read(6), 0);
}

TEST(VersionedBuffer, BuffersWrites)
{
    VersionedBuffer b(1);
    EXPECT_FALSE(b.lookup(10).has_value());
    b.write(10, 42);
    b.write(10, 43);
    EXPECT_EQ(b.lookup(10).value(), 43);
    EXPECT_EQ(b.numWords(), 1u);
}

TEST(VersionedBuffer, LineAccounting)
{
    VersionedBuffer b(1);
    // Words 0..7 share one 8-word line; 8 starts the next.
    b.write(0, 1);
    b.write(7, 1);
    EXPECT_EQ(b.numLines(), 1u);
    b.write(8, 1);
    EXPECT_EQ(b.numLines(), 2u);
}

TEST(VersionedBuffer, CommitAndClear)
{
    MainMemory m(64);
    VersionedBuffer b(1);
    b.write(3, 30);
    b.write(9, 90);
    b.commitTo(m);
    EXPECT_EQ(m.read(3), 30);
    EXPECT_EQ(m.read(9), 90);
    b.clear();
    EXPECT_EQ(b.numWords(), 0u);
    EXPECT_EQ(b.numLines(), 0u);
}

TEST(MemCtx, ReadsThroughParentChain)
{
    MainMemory m(64);
    m.write(1, 100);
    m.write(2, 200);
    m.write(3, 300);

    VersionedBuffer parent(1);
    parent.write(2, 222);
    VersionedBuffer child(2);
    child.setParent(&parent);
    child.write(3, 333);

    MemCtx ctx(m, &child);
    EXPECT_EQ(ctx.read(1), 100);    // from main
    EXPECT_EQ(ctx.read(2), 222);    // from parent
    EXPECT_EQ(ctx.read(3), 333);    // own write wins

    // Child writes are invisible to a parent-level view: the
    // Figure-6(c) tree order.
    MemCtx parentCtx(m, &parent);
    EXPECT_EQ(parentCtx.read(3), 300);
}

TEST(MemCtx, SiblingIsolation)
{
    MainMemory m(64);
    VersionedBuffer parent(1);
    parent.write(5, 50);
    VersionedBuffer left(2);
    left.setParent(&parent);
    VersionedBuffer right(3);
    right.setParent(&parent);

    MemCtx lctx(m, &left);
    MemCtx rctx(m, &right);
    lctx.write(5, 55);
    EXPECT_EQ(rctx.read(5), 50);    // sibling write invisible
    EXPECT_EQ(lctx.read(5), 55);
}

TEST(MemCtx, WritesDirectWhenNoBuffer)
{
    MainMemory m(64);
    MemCtx ctx(m, nullptr);
    ctx.write(7, 77);
    EXPECT_EQ(m.read(7), 77);
    EXPECT_EQ(ctx.read(7), 77);
}

TEST(Cache, GeometryDerivation)
{
    CacheGeometry g{16 * 1024, 4, 32};
    EXPECT_EQ(g.numLines(), 512u);
    EXPECT_EQ(g.numSets(), 128u);
}

TEST(Cache, HitAfterMiss)
{
    Cache c(CacheGeometry{256, 2, 32});     // 8 lines, 4 sets
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(7));               // same 8-word line
    EXPECT_FALSE(c.access(8));              // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 4 sets: lines mapping to set 0 are line numbers 0,4,8...
    Cache c(CacheGeometry{256, 2, 32});
    uint32_t wordsPerLine = 8;
    auto line = [&](uint32_t n) { return n * 4 * wordsPerLine; };
    EXPECT_FALSE(c.access(line(0)));
    EXPECT_FALSE(c.access(line(1)));
    EXPECT_TRUE(c.access(line(0)));         // 0 now MRU
    EXPECT_FALSE(c.access(line(2)));        // evicts 1 (LRU)
    EXPECT_TRUE(c.access(line(0)));
    EXPECT_FALSE(c.access(line(1)));        // 1 was evicted
}

TEST(Cache, InvalidateAll)
{
    Cache c(CacheGeometry{256, 2, 32});
    c.access(0);
    EXPECT_TRUE(c.contains(0));
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0));
}

TEST(SharedPort, SerializesAccesses)
{
    SharedPort port;
    EXPECT_EQ(port.acquire(100, 10), 100u);
    // Second access at t=105 must wait until 110.
    EXPECT_EQ(port.acquire(105, 10), 110u);
    EXPECT_EQ(port.contentionCycles(), 5u);
    // A late access after the port is free starts immediately.
    EXPECT_EQ(port.acquire(200, 10), 200u);
}

TEST(Hierarchy, LatencyLevels)
{
    MemTimingParams p;
    p.l1HitLatency = 2;
    p.l2HitLatency = 10;
    p.memLatency = 200;
    MemHierarchy h(2, p);

    // Cold access: all the way to memory.
    uint64_t first = h.accessLatency(0, 0, 0);
    EXPECT_GE(first, p.memLatency);
    // Now L1-resident.
    EXPECT_EQ(h.accessLatency(0, 0, 1000), p.l1HitLatency);
    // Other core: misses its L1, hits shared L2.
    uint64_t other = h.accessLatency(1, 0, 2000);
    EXPECT_GE(other, p.l2HitLatency);
    EXPECT_LT(other, p.memLatency);
}

TEST(Hierarchy, L1InvalidationForcesL2Hit)
{
    MemTimingParams p;
    MemHierarchy h(1, p);
    h.accessLatency(0, 0, 0);
    EXPECT_EQ(h.accessLatency(0, 0, 500), p.l1HitLatency);
    h.invalidateL1(0);
    uint64_t after = h.accessLatency(0, 0, 1000);
    EXPECT_GE(after, p.l2HitLatency);
    EXPECT_LT(after, p.memLatency);
}

TEST(Hierarchy, L1LineCapacityMatchesGeometry)
{
    MemTimingParams p;
    MemHierarchy h(1, p);
    EXPECT_EQ(h.l1LineCapacity(), defaultL1Geometry().numLines());
}

} // namespace
