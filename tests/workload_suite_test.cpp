/**
 * @file
 * Workload suite validation, parameterized over every application:
 *
 *  - every workload compiles and runs clean on all benign inputs
 *    (no crash, no detector report on the taken path);
 *  - every seeded bug is real: its trigger input makes it fire on
 *    the taken path in baseline mode;
 *  - PathExpander on the default benign input detects exactly the
 *    expected subset of bugs (and the misses fall into the paper's
 *    categories by construction).
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

core::PeConfig
configFor(const workloads::Workload &w, core::PeMode mode)
{
    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = w.maxNtPathLength;
    return cfg;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override
    {
        workload = &workloads::getWorkload(GetParam());
        program = minic::compile(workload->source, workload->name);
    }

    const workloads::Workload *workload = nullptr;
    isa::Program program;
};

TEST_P(WorkloadSuite, CompilesToReasonableSize)
{
    EXPECT_GT(program.code.size(), 100u);
    EXPECT_GT(program.numBranches(), 10u);
    EXPECT_FALSE(program.funcs.empty());
}

TEST_P(WorkloadSuite, BenignInputsRunCleanInBaseline)
{
    detect::AssertChecker assertChecker;
    detect::WatchChecker watchChecker;
    detect::BoundsChecker boundsChecker;
    for (size_t i = 0; i < workload->benignInputs.size(); ++i) {
        const auto &input = workload->benignInputs[i];
        for (detect::Detector *det :
             {static_cast<detect::Detector *>(&assertChecker),
              static_cast<detect::Detector *>(&watchChecker),
              static_cast<detect::Detector *>(&boundsChecker)}) {
            core::PathExpanderEngine engine(
                program, configFor(*workload, core::PeMode::Off), det);
            auto r = engine.run(input);
            EXPECT_FALSE(r.programCrashed)
                << workload->name << " input " << i << " crashed: "
                << sim::crashKindName(r.programCrashKind);
            EXPECT_FALSE(r.hitInstructionLimit)
                << workload->name << " input " << i;
            EXPECT_EQ(r.monitor.reports().size(), 0u)
                << workload->name << " input " << i << " with "
                << det->name() << ": "
                << (r.monitor.reports().empty()
                        ? ""
                        : r.monitor.reports()[0].site);
        }
    }
}

TEST_P(WorkloadSuite, TriggerInputsExposeBugsOnTakenPath)
{
    for (const auto &bug : workload->bugs) {
        auto it = workload->triggerInputs.find(bug.id);
        ASSERT_NE(it, workload->triggerInputs.end())
            << "no trigger input for " << bug.id;
        bool memory = bug.kind == workloads::BugSpec::Kind::Memory;
        detect::AssertChecker assertChecker;
        detect::WatchChecker watchChecker;
        detect::Detector *det =
            memory ? static_cast<detect::Detector *>(&watchChecker)
                   : &assertChecker;
        core::PathExpanderEngine engine(
            program, configFor(*workload, core::PeMode::Off), det);
        auto r = engine.run(it->second);
        auto analysis = workloads::analyzeReports(*workload, program,
                                                  r.monitor, memory);
        bool fired = false;
        for (const auto &o : analysis.outcomes) {
            if (o.bug->id == bug.id && o.detected)
                fired = true;
        }
        EXPECT_TRUE(fired)
            << bug.id << " (" << bug.description
            << ") did not fire on its trigger input";
    }
}

TEST_P(WorkloadSuite, PeDetectionMatchesExpectations)
{
    if (workload->bugs.empty())
        GTEST_SKIP() << "no seeded bugs";

    bool memory = workload->tools == "memory";
    detect::AssertChecker assertChecker;
    detect::WatchChecker watchChecker;
    detect::Detector *det =
        memory ? static_cast<detect::Detector *>(&watchChecker)
               : &assertChecker;

    core::PathExpanderEngine engine(
        program, configFor(*workload, core::PeMode::Standard), det);
    auto r = engine.run(workload->benignInputs[0]);
    EXPECT_FALSE(r.programCrashed);
    EXPECT_GT(r.ntPathsSpawned, 0u);
    auto analysis =
        workloads::analyzeReports(*workload, program, r.monitor, memory);
    for (const auto &o : analysis.outcomes) {
        EXPECT_EQ(o.detected, o.bug->expectPeDetect)
            << workload->name << " " << o.bug->id << " ("
            << o.bug->description << ")";
    }
}

TEST_P(WorkloadSuite, PeImprovesBranchCoverage)
{
    core::PathExpanderEngine base(
        program, configFor(*workload, core::PeMode::Off), nullptr);
    auto rb = base.run(workload->benignInputs[0]);

    core::PathExpanderEngine pe(
        program, configFor(*workload, core::PeMode::Standard), nullptr);
    auto rp = pe.run(workload->benignInputs[0]);

    EXPECT_EQ(rb.io.charOutput, rp.io.charOutput)
        << "PathExpander must not change program output";
    EXPECT_GT(rp.coverage.combinedFraction(),
              rb.coverage.takenFraction())
        << workload->name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
