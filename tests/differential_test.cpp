/**
 * @file
 * Differential fuzzing: randomly generated (but guaranteed-
 * terminating) PE-RISC programs must behave identically under
 * baseline, PathExpander standard and PathExpander CMP — same
 * output, same final memory digest, same crash outcome — across a
 * seed sweep.  This is the sandboxing correctness property tested in
 * breadth.
 *
 * The three modes of each seed run as one campaign through
 * runCampaign, so the sweep also exercises the parallel runner's
 * isolation: every comparison below would fail if concurrent engine
 * runs shared any mutable state.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/campaign.hh"
#include "src/core/engine.hh"
#include "src/isa/assembler.hh"
#include "src/support/rng.hh"

namespace
{

using namespace pe;

/**
 * Generate a structured random program:
 *  - a guarded data array and a few scalars;
 *  - an outer counted loop (guaranteed to terminate);
 *  - a body of blocks, each mixing ALU ops, masked loads/stores into
 *    the array, and a conditional branch that either falls through or
 *    skips the next block (forward only, so no extra loops);
 *  - a final output of the accumulated state.
 */
std::string
generateProgram(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream out;
    out << ".data acc 0\n.array buf 16\n";

    // Initialize working registers r8..r15.
    for (int r = 8; r <= 15; ++r)
        out << "li r" << r << ", " << rng.nextRange(-50, 50) << "\n";
    out << "li r20, " << rng.nextRange(2, 5) << "\n";  // outer trips
    out << "outer:\n";

    int blocks = static_cast<int>(rng.nextRange(4, 8));
    for (int b = 0; b < blocks; ++b) {
        int ops = static_cast<int>(rng.nextRange(2, 6));
        for (int i = 0; i < ops; ++i) {
            int rd = static_cast<int>(rng.nextRange(8, 15));
            int rs1 = static_cast<int>(rng.nextRange(8, 15));
            int rs2 = static_cast<int>(rng.nextRange(8, 15));
            switch (rng.nextBelow(7)) {
              case 0:
                out << "add r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 1:
                out << "sub r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 2:
                out << "mul r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 3:
                out << "xor r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 4:
                out << "slt r" << rd << ", r" << rs1 << ", r" << rs2
                    << "\n";
                break;
              case 5: {
                // Masked store into the array: always in bounds.
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "st r" << rs2 << ", 0(r28)\n";
                break;
              }
              default: {
                out << "andi r28, r" << rs1 << ", 15\n"
                    << "li r29, buf\n"
                    << "add r28, r28, r29\n"
                    << "ld r" << rd << ", 0(r28)\n";
                break;
              }
            }
        }
        // Conditional skip of the next block (forward branch only).
        int rs1 = static_cast<int>(rng.nextRange(8, 15));
        int rs2 = static_cast<int>(rng.nextRange(8, 15));
        const char *cond =
            (const char *[]){"beq", "bne", "blt", "bge"}[rng.nextBelow(
                4)];
        out << cond << " r" << rs1 << ", r" << rs2 << ", blk" << seed
            << "_" << b + 1 << "\n";
        // A little extra work on the not-skipped path.
        out << "addi r" << rs1 << ", r" << rs1 << ", 1\n";
        out << "blk" << seed << "_" << b + 1 << ":\n";
    }

    out << "addi r20, r20, -1\n"
        << "bgt r20, r0, outer\n";
    // Fold the registers into one value and print it.
    out << "li r21, 0\n";
    for (int r = 8; r <= 15; ++r)
        out << "xor r21, r21, r" << r << "\n";
    out << "sys print_int r21\n"
        << "sys exit\n";
    return out.str();
}

struct Outcome
{
    bool crashed;
    sim::CrashKind kind;
    std::string output;
    uint64_t digest;
    uint64_t takenInstructions;
};

core::CampaignJob
modeJob(const isa::Program &program, core::PeMode mode)
{
    core::CampaignJob job;
    job.program = &program;
    job.config = core::PeConfig::forMode(mode);
    job.config.maxTakenInstructions = 2'000'000;
    return job;
}

Outcome
toOutcome(const core::RunResult &r)
{
    return Outcome{r.programCrashed, r.programCrashKind,
                   r.io.charOutput, r.memoryDigest,
                   r.takenInstructions};
}

class Differential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Differential, ModesAgreeOnArchitectedBehavior)
{
    auto program = isa::assemble(generateProgram(GetParam()),
                                 "fuzz");
    auto outcome = core::runCampaign(
        {modeJob(program, core::PeMode::Off),
         modeJob(program, core::PeMode::Standard),
         modeJob(program, core::PeMode::Cmp)});
    Outcome off = toOutcome(outcome.results[0]);
    Outcome std_ = toOutcome(outcome.results[1]);
    Outcome cmp = toOutcome(outcome.results[2]);

    EXPECT_EQ(off.crashed, std_.crashed);
    EXPECT_EQ(off.crashed, cmp.crashed);
    if (off.crashed) {
        EXPECT_EQ(off.kind, std_.kind);
        EXPECT_EQ(off.kind, cmp.kind);
    }
    EXPECT_EQ(off.output, std_.output);
    EXPECT_EQ(off.output, cmp.output);
    EXPECT_EQ(off.digest, std_.digest);
    EXPECT_EQ(off.digest, cmp.digest);
    EXPECT_EQ(off.takenInstructions, std_.takenInstructions);
    EXPECT_EQ(off.takenInstructions, cmp.takenInstructions);
}

TEST_P(Differential, ExplorationIsDeterministic)
{
    auto program = isa::assemble(generateProgram(GetParam()),
                                 "fuzz");
    // Two identical jobs, run concurrently, must replay identically.
    auto outcome = core::runCampaign(
        {modeJob(program, core::PeMode::Standard),
         modeJob(program, core::PeMode::Standard)});
    const auto &ra = outcome.results[0];
    const auto &rb = outcome.results[1];
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.ntPathsSpawned, rb.ntPathsSpawned);
    EXPECT_EQ(ra.ntInstructions, rb.ntInstructions);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, Differential,
                         ::testing::Range<uint64_t>(1, 33));

} // namespace
