/**
 * @file
 * Tests for the static-analysis subsystem: CFG construction,
 * dominators, liveness and reaching-definitions oracles on hand-built
 * programs; the program verifier's diagnostic classes on adversarial
 * assembly; the Section-4.4 fix-set checker (clean on every workload,
 * and flags corrupted Pfix/Pfixst sequences); the static NT-spawn
 * priors (doomed-edge detection, the engine's spawn pre-filter, and
 * prior-seeded exploration determinism with bit-identical resume).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "src/analysis/cfg.hh"
#include "src/analysis/dataflow.hh"
#include "src/analysis/fixcheck.hh"
#include "src/analysis/priors.hh"
#include "src/analysis/verify.hh"
#include "src/core/engine.hh"
#include "src/explore/explorer.hh"
#include "src/isa/assembler.hh"
#include "src/isa/regs.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;
using analysis::DiagCode;

bool
hasDiag(const std::vector<analysis::Diagnostic> &diags, DiagCode code)
{
    return std::any_of(diags.begin(), diags.end(),
                       [code](const analysis::Diagnostic &d) {
                           return d.code == code;
                       });
}

// A diamond: read -> branch -> (then | else) -> join -> exit.
const char *diamondSrc = R"(
    sys read_int r8
    beq r8, r0, else_
    li r9, 1
    jmp join
else_:
    li r9, 2
join:
    sys print_int r9
    sys exit
)";

// ---------------------------------------------------------------------
// CFG, dominators, liveness, reaching definitions.

TEST(Cfg, DiamondBlocksEdgesAndReachability)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);

    ASSERT_EQ(cfg.numBlocks(), 4u);
    const uint32_t b0 = cfg.blockOf(0);
    const uint32_t bThen = cfg.blockOf(2);
    const uint32_t bElse = cfg.blockOf(4);
    const uint32_t bJoin = cfg.blockOf(5);
    EXPECT_EQ(cfg.blockOf(1), b0);
    EXPECT_EQ(cfg.blockOf(6), bJoin);
    EXPECT_NE(bThen, bElse);

    // Every block is reachable; edge kinds match the branch shape.
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_TRUE(cfg.reachable()[b]) << "block " << b;
    size_t takenEdges = 0, notTakenEdges = 0, jumpEdges = 0;
    for (const auto &e : cfg.edges()) {
        if (e.kind == analysis::EdgeKind::BranchTaken) {
            ++takenEdges;
            EXPECT_EQ(e.from, b0);
            EXPECT_EQ(e.to, bElse);
        } else if (e.kind == analysis::EdgeKind::BranchNotTaken) {
            ++notTakenEdges;
            EXPECT_EQ(e.to, bThen);
        } else if (e.kind == analysis::EdgeKind::Jump) {
            ++jumpEdges;
            EXPECT_EQ(e.to, bJoin);
        }
    }
    EXPECT_EQ(takenEdges, 1u);
    EXPECT_EQ(notTakenEdges, 1u);
    EXPECT_EQ(jumpEdges, 1u);
}

TEST(Cfg, DiamondDominatorsOracle)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);
    const uint32_t b0 = cfg.blockOf(0);
    const uint32_t bThen = cfg.blockOf(2);
    const uint32_t bElse = cfg.blockOf(4);
    const uint32_t bJoin = cfg.blockOf(5);

    auto rpo = cfg.reversePostOrder(b0, /*intraprocedural=*/true);
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), b0);
    EXPECT_EQ(rpo.back(), bJoin);   // the join is last in any RPO

    auto idom = cfg.dominators(b0);
    EXPECT_EQ(idom[b0], b0);
    EXPECT_EQ(idom[bThen], b0);
    EXPECT_EQ(idom[bElse], b0);
    // Neither arm dominates the join; the branch block does.
    EXPECT_EQ(idom[bJoin], b0);
    EXPECT_TRUE(analysis::Cfg::dominates(idom, b0, bJoin));
    EXPECT_FALSE(analysis::Cfg::dominates(idom, bThen, bJoin));
    EXPECT_FALSE(analysis::Cfg::dominates(idom, bElse, bJoin));
    EXPECT_TRUE(analysis::Cfg::dominates(idom, bJoin, bJoin));
}

TEST(Dataflow, DiamondLivenessOracle)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);
    auto live = analysis::liveness(cfg);

    // r9 carries the arm's value into the join's print.
    EXPECT_NE(analysis::liveBefore(cfg, live, 5) & (1u << 9), 0u);
    // r8 is live into the branch but defined by the read before it.
    EXPECT_NE(analysis::liveBefore(cfg, live, 1) & (1u << 8), 0u);
    EXPECT_EQ(analysis::liveBefore(cfg, live, 0) & (1u << 8), 0u);
    // r9 is dead before its own definitions in either arm.
    EXPECT_EQ(analysis::liveBefore(cfg, live, 2) & (1u << 9), 0u);
    EXPECT_EQ(analysis::liveBefore(cfg, live, 4) & (1u << 9), 0u);
}

TEST(Dataflow, DiamondDefinedRegsAndReachingDefs)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    analysis::Cfg cfg(program);

    constexpr uint32_t entryDefined =
        (1u << isa::reg::zero) | (1u << isa::reg::sp) |
        (1u << isa::reg::fp) | (1u << isa::reg::ra) |
        (1u << isa::reg::rv);
    auto defined = analysis::definedRegsIn(cfg, entryDefined);
    // Both arms define r9, so it is must-defined at the join.
    EXPECT_NE(defined[cfg.blockOf(5)] & (1u << 9), 0u);
    // r9 is not defined on entry to the arms themselves.
    EXPECT_EQ(defined[cfg.blockOf(2)] & (1u << 9), 0u);

    analysis::ReachingDefs rd(cfg);
    // Two definitions of r9 (one per arm) reach the join: no unique
    // def, and defsBefore lists both sites.
    EXPECT_EQ(rd.uniqueRegDef(5, 9), analysis::ReachingDefs::noPc);
    auto defs = rd.defsBefore(5, analysis::Cell::regCell(9));
    EXPECT_FALSE(defs.unknown);
    EXPECT_EQ(defs.pcs, (std::vector<uint32_t>{2, 4}));
    // Inside the then-arm the sole def is pc 2.
    EXPECT_EQ(rd.uniqueRegDef(3, 9), 2u);
}

// ---------------------------------------------------------------------
// Verifier: every diagnostic class fires on a seeded defect.

TEST(Verify, InvalidTargetIsError)
{
    auto program = isa::assemble("    li r8, 1\n"
                                 "    beq r8, r0, 99\n"
                                 "    sys exit\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(hasDiag(report.diagnostics, DiagCode::InvalidTarget));
    EXPECT_TRUE(report.hasErrors());
}

TEST(Verify, FallOffEndIsError)
{
    auto program = isa::assemble("    li r8, 1\n", "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(hasDiag(report.diagnostics, DiagCode::FallOffEnd));
    EXPECT_TRUE(report.hasErrors());
}

TEST(Verify, UnreachableBlockIsWarning)
{
    auto program = isa::assemble("    jmp fin\n"
                                 "    li r8, 1\n"
                                 "fin:\n"
                                 "    sys exit\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(
        hasDiag(report.diagnostics, DiagCode::UnreachableBlock));
    EXPECT_FALSE(report.hasErrors());
}

TEST(Verify, DefBeforeUseIsWarning)
{
    auto program = isa::assemble("    add r9, r10, r11\n"
                                 "    sys exit\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(hasDiag(report.diagnostics, DiagCode::DefBeforeUse));
}

TEST(Verify, UnbalancedStackIsWarning)
{
    auto program = isa::assemble("    addi sp, sp, -2\n"
                                 "    jr ra\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(
        hasDiag(report.diagnostics, DiagCode::UnbalancedStack));
}

TEST(Verify, UnpairedObjIsWarning)
{
    auto program = isa::assemble("    li r8, 100\n"
                                 "    li r9, 4\n"
                                 "    regobj r8, r9, stack\n"
                                 "    sys exit\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(hasDiag(report.diagnostics, DiagCode::UnpairedObj));
}

TEST(Verify, BranchIntoFixPairIsWarning)
{
    auto program = isa::assemble("    sys read_int r8\n"
                                 "    beq r8, r0, bad\n"
                                 "    nop\n"
                                 "    pfix r31, 7\n"
                                 "bad:\n"
                                 "    pfixst r31, 8(r0)\n"
                                 "    sys exit\n",
                                 "bad");
    auto report = analysis::verifyProgram(program);
    EXPECT_TRUE(hasDiag(report.diagnostics, DiagCode::SplitFixPair));
}

TEST(Verify, CachedReportIsMemoisedPerProgram)
{
    auto program = isa::assemble(diamondSrc, "diamond");
    const auto &a = analysis::verifyCached(program);
    const auto &b = analysis::verifyCached(program);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.errorCount(), 0u);
}

TEST(Verify, EngineConstructsOnInvalidProgramAndSurfacesReport)
{
    // Malformed programs are legal simulator inputs: construction
    // must not abort, and the report must be visible on the engine.
    auto program = isa::assemble("    li r8, 1\n"
                                 "    beq r8, r0, 99\n"
                                 "    sys exit\n",
                                 "bad");
    core::PathExpanderEngine engine(
        program, core::PeConfig::forMode(core::PeMode::Standard));
    EXPECT_TRUE(engine.verifyReport().hasErrors());
    auto result = engine.run({});
    EXPECT_TRUE(result.programCrashed);
}

// ---------------------------------------------------------------------
// Fix-set checker.

// One fixable branch (global v vs literal 5) with correct fixes on
// both edges — the clean baseline the corruption tests mutate.
const char *fixableSrc = R"(
.data   v 0
    ld r8, v(r0)
    li r9, 5
    bgt r8, r9, big
    pfix r31, 3
    pfixst r31, v(r0)
    jmp fin
big:
    pfix r31, 9
    pfixst r31, v(r0)
fin:
    sys exit
)";

TEST(FixCheck, CleanOnWellFormedFixes)
{
    auto program = isa::assemble(fixableSrc, "fixable");
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(fc.clean());
    EXPECT_EQ(fc.checkedBranches, 1u);
    EXPECT_EQ(fc.derivedSlices, 1u);
    EXPECT_EQ(fc.matchedFixes, 2u);
}

TEST(FixCheck, FlagsWrongFixValue)
{
    auto program = isa::assemble(fixableSrc, "fixable");
    // The fall-through edge's relation is v <= 5; 99 violates it.
    ASSERT_EQ(program.code[3].op, isa::Opcode::Pfix);
    program.code[3].imm = 99;
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(hasDiag(fc.diagnostics, DiagCode::WrongFixValue));
}

TEST(FixCheck, FlagsWrongFixHome)
{
    auto program = isa::assemble(fixableSrc, "fixable");
    // Redirect the fall-through Pfixst one word past v's home slot.
    ASSERT_EQ(program.code[4].op, isa::Opcode::Pfixst);
    program.code[4].imm += 1;
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(hasDiag(fc.diagnostics, DiagCode::WrongFixHome));
}

TEST(FixCheck, FlagsMissingFix)
{
    auto program = isa::assemble(fixableSrc, "fixable");
    // Blank the taken edge's pair; its companion still has one, so
    // the branch is known-fixable and the absence is a finding.
    ASSERT_EQ(program.code[6].op, isa::Opcode::Pfix);
    program.code[6] = isa::Instruction{};
    program.code[7] = isa::Instruction{};
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(hasDiag(fc.diagnostics, DiagCode::MissingFix));
}

TEST(FixCheck, FlagsExtraFixOnUnfixableBranch)
{
    // var-RELOP-var conditions have no derivable slice; a fix pair on
    // such an edge is spurious.
    auto program = isa::assemble("    sys read_int r8\n"
                                 "    sys read_int r9\n"
                                 "    blt r8, r9, less\n"
                                 "    pfix r31, 3\n"
                                 "    pfixst r31, 8(r0)\n"
                                 "less:\n"
                                 "    sys exit\n",
                                 "extra");
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(hasDiag(fc.diagnostics, DiagCode::ExtraFix));
}

TEST(FixCheck, FlagsUnpairedPfixAsMalformed)
{
    auto program = isa::assemble("    sys read_int r8\n"
                                 "    beq r8, r0, fin\n"
                                 "    pfix r31, 5\n"
                                 "    nop\n"
                                 "fin:\n"
                                 "    sys exit\n",
                                 "malformed");
    auto fc = analysis::checkFixSets(program);
    EXPECT_TRUE(
        hasDiag(fc.diagnostics, DiagCode::MalformedFixPair));
}

TEST(FixCheck, AllWorkloadsVerifyErrorFreeAndFixSetsClean)
{
    // The acceptance bar: minic's emitted fix sets and the checker's
    // independent derivation agree on every registered workload, and
    // the verifier finds no error-severity defect in any of them.
    for (const auto &name : workloads::workloadNames()) {
        const auto &w = workloads::getWorkload(name);
        auto program = minic::compile(w.source, name);
        auto report = analysis::verifyProgram(program);
        EXPECT_EQ(report.errorCount(), 0u) << name;
        auto fc = analysis::checkFixSets(program);
        EXPECT_TRUE(fc.clean()) << name << ": "
            << (fc.diagnostics.empty()
                    ? std::string()
                    : analysis::formatDiagnostic(
                          program, fc.diagnostics[0]));
        EXPECT_GT(fc.checkedBranches, 0u) << name;
        EXPECT_GT(fc.matchedFixes, 0u) << name;
    }
}

// ---------------------------------------------------------------------
// Static NT-spawn priors.

// A hot loop whose branch is always taken; the non-taken continuation
// is an immediate unsafe Sys, i.e. a provably-doomed NT-Path.
const char *doomedSrc = R"(
    li r20, 8
outer:
    li r8, 7
    bne r8, r0, skip
    sys print_int r8
skip:
    addi r20, r20, -1
    bgt r20, r0, outer
    sys exit
)";

TEST(Priors, DoomedEdgeDetectedAndScoredZero)
{
    auto program = isa::assemble(doomedSrc, "doomed");
    auto priors = analysis::computeBranchPriors(program, 100);

    EXPECT_EQ(priors.edge(0, false), nullptr);  // li: not a branch
    const auto *fall = priors.edge(2, false);
    const auto *taken = priors.edge(2, true);
    ASSERT_NE(fall, nullptr);
    ASSERT_NE(taken, nullptr);
    EXPECT_TRUE(fall->doomed);
    EXPECT_FALSE(taken->doomed);
    EXPECT_EQ(analysis::edgePotential(*fall, priors.maxLen), 0.0);
    EXPECT_GT(analysis::edgePotential(*taken, priors.maxLen), 0.0);
    // The doomed direction's unsafe event is right at its entry.
    EXPECT_EQ(fall->unsafeDistance, 0u);
}

TEST(Priors, SpawnPreFilterSuppressesDoomedNtPaths)
{
    auto program = isa::assemble(doomedSrc, "doomed");

    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    core::PathExpanderEngine plain(program, cfg);
    auto base = plain.run({});
    EXPECT_GT(base.ntPathsSpawned, 0u);
    EXPECT_FALSE(plain.decodedProgram().doomedEdge(2, false));

    cfg.spawnPreFilter = true;
    core::PathExpanderEngine filtered(program, cfg);
    EXPECT_TRUE(filtered.decodedProgram().doomedEdge(2, false));
    EXPECT_FALSE(filtered.decodedProgram().doomedEdge(2, true));
    auto trimmed = filtered.run({});
    // The doomed spawns are gone; the taken-path semantics are not.
    EXPECT_LT(trimmed.ntPathsSpawned, base.ntPathsSpawned);
    EXPECT_EQ(trimmed.io.charOutput, base.io.charOutput);
    EXPECT_EQ(trimmed.programCrashed, base.programCrashed);
}

// ---------------------------------------------------------------------
// Prior-seeded exploration: determinism and checkpoint/resume.

struct TempPath
{
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    std::string path;
};

explore::ExploreOptions
priorOptions(uint64_t maxRuns)
{
    explore::ExploreOptions opts;
    opts.config = core::PeConfig::forMode(core::PeMode::Off);
    opts.policy = explore::SchedulePolicy::RareEdgeWeighted;
    opts.budget.maxRuns = maxRuns;
    opts.batchSize = 8;
    opts.seed = 0x9e11;
    opts.useStaticPriors = true;
    return opts;
}

std::vector<std::vector<int32_t>>
scheduleSeeds(const workloads::Workload &workload)
{
    return {workload.benignInputs.begin(),
            workload.benignInputs.begin() + 3};
}

TEST(Priors, SeededExplorationIsDeterministic)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");

    auto runOnce = [&] {
        explore::Explorer explorer(program, scheduleSeeds(workload),
                                   priorOptions(59));
        auto res = explorer.run();
        return std::make_pair(res, explorer.corpus().entries());
    };
    auto [resA, corpusA] = runOnce();
    auto [resB, corpusB] = runOnce();

    EXPECT_EQ(resA.runs, resB.runs);
    EXPECT_EQ(resA.instructions, resB.instructions);
    ASSERT_EQ(corpusA.size(), corpusB.size());
    double maxPrior = 0.0;
    for (size_t i = 0; i < corpusA.size(); ++i) {
        EXPECT_EQ(corpusA[i].input, corpusB[i].input);
        EXPECT_EQ(corpusA[i].priorEnergy, corpusB[i].priorEnergy);
        maxPrior = std::max(maxPrior, corpusA[i].priorEnergy);
    }
    // At least one entry sits adjacent to an uncovered direction, so
    // the priors actually shaped the energy distribution.
    EXPECT_GT(maxPrior, 0.0);
}

TEST(Priors, SeededResumeContinuesBitIdentically)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_priors_resume_test.ckpt");

    explore::Explorer full(program, scheduleSeeds(workload),
                           priorOptions(59));
    auto fullRes = full.run();

    {
        auto opts = priorOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer head(program, scheduleSeeds(workload),
                               opts);
        auto headRes = head.run();
        EXPECT_EQ(headRes.runs, 27u);
    }

    auto opts = priorOptions(59);
    opts.resumeFrom = ckpt.path;
    explore::Explorer tail(program, scheduleSeeds(workload), opts);
    auto tailRes = tail.run();

    EXPECT_EQ(fullRes.runs, tailRes.runs);
    EXPECT_EQ(fullRes.instructions, tailRes.instructions);
    EXPECT_EQ(full.corpus().frontier().takenWords(),
              tail.corpus().frontier().takenWords());
    EXPECT_EQ(full.corpus().frontier().ntWords(),
              tail.corpus().frontier().ntWords());
    ASSERT_EQ(full.corpus().size(), tail.corpus().size());
    for (size_t i = 0; i < full.corpus().size(); ++i) {
        const auto &x = full.corpus().entries()[i];
        const auto &y = tail.corpus().entries()[i];
        EXPECT_EQ(x.input, y.input);
        EXPECT_EQ(x.timesScheduled, y.timesScheduled);
        // priorEnergy is recomputed on restore, not serialized; it
        // must still match the uninterrupted run exactly.
        EXPECT_EQ(x.priorEnergy, y.priorEnergy);
    }
}

TEST(Priors, CheckpointRefusesPriorSettingMismatch)
{
    const auto &workload = workloads::getWorkload("schedule");
    auto program = minic::compile(workload.source, "schedule");
    TempPath ckpt("pe_priors_mismatch_test.ckpt");

    {
        auto opts = priorOptions(27);
        opts.checkpointPath = ckpt.path;
        explore::Explorer head(program, scheduleSeeds(workload),
                               opts);
        head.run();
    }

    // Same seed, policy and config, but priors off: the scheduler
    // contract differs, so the resume must be rejected.
    auto opts = priorOptions(59);
    opts.useStaticPriors = false;
    opts.resumeFrom = ckpt.path;
    explore::Explorer tail(program, scheduleSeeds(workload), opts);
    EXPECT_THROW(tail.run(), FatalError);
}

} // namespace
