/**
 * @file
 * Branch-coverage tracker tests: edge accounting, taken/NT
 * attribution and cumulative merging (the Section-7.4 machinery).
 */

#include <gtest/gtest.h>

#include "src/coverage/coverage.hh"
#include "src/isa/instruction.hh"

namespace
{

using namespace pe;
using isa::Opcode;

isa::Program
twoBranchProgram()
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(Opcode::Beq, 8, 0, 0));   // pc 1
    p.code.push_back(isa::makeBranch(Opcode::Bne, 8, 0, 0));   // pc 2
    return p;
}

TEST(Coverage, TotalEdgesIsTwiceBranches)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    EXPECT_EQ(cov.totalEdges(), 4u);
    EXPECT_EQ(cov.takenCovered(), 0u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.0);
}

TEST(Coverage, TakenEdgesAccumulateOnce)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    cov.onTakenEdge(1, true);
    cov.onTakenEdge(1, true);
    EXPECT_EQ(cov.takenCovered(), 1u);
    cov.onTakenEdge(1, false);
    EXPECT_EQ(cov.takenCovered(), 2u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.5);
}

TEST(Coverage, NtOnlyCountsNewEdges)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    cov.onTakenEdge(1, true);
    cov.onNtEdge(1, true);      // already taken: adds nothing
    cov.onNtEdge(1, false);     // new
    cov.onNtEdge(2, true);      // new
    EXPECT_EQ(cov.ntOnlyCovered(), 2u);
    EXPECT_EQ(cov.combinedCovered(), 3u);
    EXPECT_DOUBLE_EQ(cov.combinedFraction(), 0.75);
    EXPECT_GT(cov.combinedFraction(), cov.takenFraction());
}

TEST(Coverage, MergeUnionsRuns)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage a(p);
    a.onTakenEdge(1, true);
    coverage::BranchCoverage b(p);
    b.onTakenEdge(1, false);
    b.onNtEdge(2, false);

    coverage::BranchCoverage cum(p);
    cum.mergeFrom(a);
    cum.mergeFrom(b);
    EXPECT_EQ(cum.takenCovered(), 2u);
    EXPECT_EQ(cum.combinedCovered(), 3u);
    // Merging the same run twice changes nothing.
    cum.mergeFrom(a);
    EXPECT_EQ(cum.combinedCovered(), 3u);
}

TEST(Coverage, MergeFromGrowsAcrossDifferingBitmapSizes)
{
    // Variant builds of one workload have different code extents;
    // merging across them must grow the map, not index out of range.
    auto small = twoBranchProgram();
    isa::Program big;
    for (int i = 0; i < 200; ++i)
        big.code.push_back(isa::makeLi(8, 1));
    big.code.push_back(isa::makeBranch(Opcode::Beq, 8, 0, 0)); // pc 200
    big.code.push_back(isa::makeBranch(Opcode::Bne, 8, 0, 0)); // pc 201
    big.code.push_back(isa::makeBranch(Opcode::Beq, 8, 0, 0)); // pc 202

    coverage::BranchCoverage covSmall(small);
    covSmall.onTakenEdge(1, true);
    coverage::BranchCoverage covBig(big);
    covBig.onTakenEdge(200, false);
    covBig.onNtEdge(200, true);

    // Small into big: size unchanged, small's edges land in place.
    coverage::BranchCoverage intoBig = covBig;
    intoBig.mergeFrom(covSmall);
    EXPECT_EQ(intoBig.totalEdges(), covBig.totalEdges());
    EXPECT_EQ(intoBig.takenCovered(), 2u);
    EXPECT_EQ(intoBig.combinedCovered(), 3u);

    // Big into small: the bitmap and edge universe grow to big's.
    coverage::BranchCoverage intoSmall = covSmall;
    intoSmall.mergeFrom(covBig);
    EXPECT_EQ(intoSmall.totalEdges(), covBig.totalEdges());
    EXPECT_EQ(intoSmall.takenCovered(), 2u);
    EXPECT_EQ(intoSmall.combinedCovered(), 3u);
    EXPECT_EQ(intoSmall.takenWords().size(),
              covBig.takenWords().size());

    // Both merge orders reach the same state.
    EXPECT_EQ(intoSmall.takenWords(), intoBig.takenWords());
    EXPECT_EQ(intoSmall.ntWords(), intoBig.ntWords());
}

TEST(Coverage, ExerciseCountsFindRareEdges)
{
    auto p = twoBranchProgram();
    coverage::EdgeExerciseCounts counts(p);

    coverage::BranchCoverage common(p);
    common.onTakenEdge(1, true);
    coverage::BranchCoverage both(p);
    both.onTakenEdge(1, true);
    both.onNtEdge(2, false);

    for (int i = 0; i < 9; ++i)
        counts.accumulate(common);
    counts.accumulate(both);
    EXPECT_EQ(counts.runsAccumulated(), 10u);

    // Edge (1,true) ran 10 times, edge (2,false) once: the low
    // percentile threshold isolates the rare one.
    uint32_t threshold = counts.rarityThreshold(0.3);
    EXPECT_GE(threshold, 1u);
    EXPECT_LT(threshold, 10u);
    EXPECT_EQ(counts.countRareIn(both, threshold), 1u);
    EXPECT_EQ(counts.countRareIn(common, threshold), 0u);
}

TEST(Coverage, NewEdgesOverCountsFrontierDelta)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage frontier(p);
    frontier.onTakenEdge(1, true);

    coverage::BranchCoverage run(p);
    run.onTakenEdge(1, true);       // already known
    run.onNtEdge(1, false);         // new
    run.onNtEdge(2, true);          // new
    EXPECT_EQ(run.newEdgesOver(frontier), 2u);

    frontier.mergeFrom(run);
    EXPECT_EQ(run.newEdgesOver(frontier), 0u);
}

TEST(Coverage, EmptyProgramIsSafe)
{
    isa::Program p;
    coverage::BranchCoverage cov(p);
    EXPECT_EQ(cov.totalEdges(), 0u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.0);
    EXPECT_DOUBLE_EQ(cov.combinedFraction(), 0.0);
}

} // namespace
