/**
 * @file
 * Branch-coverage tracker tests: edge accounting, taken/NT
 * attribution and cumulative merging (the Section-7.4 machinery).
 */

#include <gtest/gtest.h>

#include "src/coverage/coverage.hh"
#include "src/isa/instruction.hh"

namespace
{

using namespace pe;
using isa::Opcode;

isa::Program
twoBranchProgram()
{
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    p.code.push_back(isa::makeBranch(Opcode::Beq, 8, 0, 0));   // pc 1
    p.code.push_back(isa::makeBranch(Opcode::Bne, 8, 0, 0));   // pc 2
    return p;
}

TEST(Coverage, TotalEdgesIsTwiceBranches)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    EXPECT_EQ(cov.totalEdges(), 4u);
    EXPECT_EQ(cov.takenCovered(), 0u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.0);
}

TEST(Coverage, TakenEdgesAccumulateOnce)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    cov.onTakenEdge(1, true);
    cov.onTakenEdge(1, true);
    EXPECT_EQ(cov.takenCovered(), 1u);
    cov.onTakenEdge(1, false);
    EXPECT_EQ(cov.takenCovered(), 2u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.5);
}

TEST(Coverage, NtOnlyCountsNewEdges)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage cov(p);
    cov.onTakenEdge(1, true);
    cov.onNtEdge(1, true);      // already taken: adds nothing
    cov.onNtEdge(1, false);     // new
    cov.onNtEdge(2, true);      // new
    EXPECT_EQ(cov.ntOnlyCovered(), 2u);
    EXPECT_EQ(cov.combinedCovered(), 3u);
    EXPECT_DOUBLE_EQ(cov.combinedFraction(), 0.75);
    EXPECT_GT(cov.combinedFraction(), cov.takenFraction());
}

TEST(Coverage, MergeUnionsRuns)
{
    auto p = twoBranchProgram();
    coverage::BranchCoverage a(p);
    a.onTakenEdge(1, true);
    coverage::BranchCoverage b(p);
    b.onTakenEdge(1, false);
    b.onNtEdge(2, false);

    coverage::BranchCoverage cum(p);
    cum.mergeFrom(a);
    cum.mergeFrom(b);
    EXPECT_EQ(cum.takenCovered(), 2u);
    EXPECT_EQ(cum.combinedCovered(), 3u);
    // Merging the same run twice changes nothing.
    cum.mergeFrom(a);
    EXPECT_EQ(cum.combinedCovered(), 3u);
}

TEST(Coverage, EmptyProgramIsSafe)
{
    isa::Program p;
    coverage::BranchCoverage cov(p);
    EXPECT_EQ(cov.totalEdges(), 0u);
    EXPECT_DOUBLE_EQ(cov.takenFraction(), 0.0);
    EXPECT_DOUBLE_EQ(cov.combinedFraction(), 0.0);
}

} // namespace
