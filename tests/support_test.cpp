/**
 * @file
 * Unit tests for the support library: RNG, string utilities,
 * statistics and table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/support/rng.hh"
#include "src/support/stats.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

namespace
{

using namespace pe;

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next64(), b.next64());
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyFair)
{
    Rng rng(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.5) ? 1 : 0;
    EXPECT_GT(heads, 4500);
    EXPECT_LT(heads, 5500);
}

TEST(Strutil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strutil, SplitEmpty)
{
    auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strutil, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcde", 3), "abcde");
}

TEST(Strutil, Formatting)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.5, 1), "50.0%");
    EXPECT_EQ(fmtPercent(0.123456, 2), "12.35%");
}

TEST(Stats, SummaryBasics)
{
    Summary s;
    EXPECT_EQ(s.mean(), 0.0);
    s.add(1);
    s.add(3);
    s.add(5);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, CdfFractions)
{
    Cdf cdf;
    for (uint64_t v : {10u, 20u, 30u, 40u})
        cdf.add(v);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10), 0.25);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(25), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(100), 1.0);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(10), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(11), 0.25);
}

TEST(Stats, CdfQuantile)
{
    Cdf cdf;
    for (uint64_t v = 1; v <= 100; ++v)
        cdf.add(v);
    EXPECT_EQ(cdf.quantile(0.0), 1u);
    EXPECT_EQ(cdf.quantile(1.0), 100u);
    EXPECT_NEAR(static_cast<double>(cdf.quantile(0.5)), 50.0, 2.0);
}

TEST(Stats, CdfEmpty)
{
    Cdf cdf;
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10), 0.0);
    EXPECT_EQ(cdf.count(), 0u);
}

TEST(Table, RendersAligned)
{
    Table t({"A", "Bee"});
    t.addRow({"longer", "x"});
    t.addSeparator();
    t.addRow({"y", "zz"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("| A      | Bee |"), std::string::npos);
    EXPECT_NE(out.find("| longer | x   |"), std::string::npos);
    // Header separator plus the explicit one.
    size_t first = out.find("|--");
    size_t second = out.find("|--", first + 1);
    EXPECT_NE(second, std::string::npos);
}

TEST(Status, FatalThrows)
{
    EXPECT_THROW(pe_fatal("boom ", 42), FatalError);
}

TEST(Status, FatalMessageContainsDetail)
{
    try {
        pe_fatal("code=", 7);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("code=7"),
                  std::string::npos);
    }
}

} // namespace
