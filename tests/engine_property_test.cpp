/**
 * @file
 * Property grid: across the full configuration grid (mode x fixing x
 * sandboxIo x random factor) and multiple workloads, PathExpander
 * must never perturb architected behaviour — same output, same input
 * consumption, same memory digest, same taken-instruction count as
 * the baseline.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

// (workload, mode, fixing, sandboxIo, randomFraction)
using GridParam =
    std::tuple<std::string, core::PeMode, bool, bool, double>;

class EngineGrid : public ::testing::TestWithParam<GridParam>
{};

TEST_P(EngineGrid, ArchitectedBehaviorIsInvariant)
{
    const auto &[name, mode, fixing, sandboxIo, fraction] = GetParam();
    const auto &w = workloads::getWorkload(name);
    auto program = minic::compile(w.source, w.name);

    auto offCfg = core::PeConfig::forMode(core::PeMode::Off);
    core::PathExpanderEngine base(program, offCfg, nullptr);
    auto rb = base.run(w.benignInputs[0]);

    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.variableFixing = fixing;
    cfg.sandboxIo = sandboxIo;
    cfg.randomSpawnFraction = fraction;
    core::PathExpanderEngine engine(program, cfg, nullptr);
    auto r = engine.run(w.benignInputs[0]);

    EXPECT_GT(r.ntPathsSpawned, 0u);
    EXPECT_EQ(r.io.charOutput, rb.io.charOutput);
    EXPECT_EQ(r.io.inputPos, rb.io.inputPos);
    EXPECT_EQ(r.takenInstructions, rb.takenInstructions);
    EXPECT_EQ(r.memoryDigest, rb.memoryDigest);
    EXPECT_FALSE(r.programCrashed);
}

std::string
gridName(const ::testing::TestParamInfo<GridParam> &info)
{
    const auto &[name, mode, fixing, sandboxIo, fraction] = info.param;
    std::string s = name;
    s += mode == core::PeMode::Standard ? "_std" : "_cmp";
    s += fixing ? "_fix" : "_nofix";
    if (sandboxIo)
        s += "_specio";
    if (fraction > 0)
        s += "_rand";
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGrid,
    ::testing::Combine(
        ::testing::Values("print_tokens2", "pe_bc", "pe_gzip"),
        ::testing::Values(core::PeMode::Standard, core::PeMode::Cmp),
        ::testing::Bool(),              // fixing
        ::testing::Bool(),              // sandboxIo
        ::testing::Values(0.0, 0.25)),  // random spawn fraction
    gridName);

} // namespace
