/**
 * @file
 * Mechanism tests for the paper's Section-7.1 miss categories: the
 * hot-entry-edge miss (schedule bug 305) really is caused by the
 * exercise-counter saturation — raising NTPathCounterThreshold (the
 * paper's suggested "random factor" style remedy) recovers the bug —
 * and the special-input misses really are the nested-condition
 * limitation.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace pe;

bool
detects(const workloads::Workload &w, const isa::Program &program,
        const std::string &bugId, uint8_t threshold)
{
    detect::AssertChecker checker;
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = w.maxNtPathLength;
    cfg.ntPathCounterThreshold = threshold;
    core::PathExpanderEngine engine(program, cfg, &checker);
    auto r = engine.run(w.benignInputs[0]);
    auto analysis =
        workloads::analyzeReports(w, program, r.monitor, false);
    for (const auto &o : analysis.outcomes) {
        if (o.bug->id == bugId)
            return o.detected;
    }
    ADD_FAILURE() << "bug not found: " << bugId;
    return false;
}

TEST(HotEdge, ScheduleBug305MissedAtDefaultThreshold)
{
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);
    EXPECT_FALSE(detects(w, program, "sched-a305", 5));
}

TEST(HotEdge, ScheduleBug305CaughtWithoutSaturation)
{
    // The 4-bit counters saturate at 15; a threshold above that means
    // every occurrence of the edge spawns an NT-Path, so the late
    // long-queue state is finally explored -- proving the miss is the
    // counter mechanism, not the NT-Path machinery.
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);
    EXPECT_TRUE(detects(w, program, "sched-a305", 16));
}

TEST(HotEdge, ValueCoverageBugsStayMissedAtAnyThreshold)
{
    // schedule 303/304 are value-coverage-limited (paper: v1/v3):
    // no amount of path exploration exposes them.
    const auto &w = workloads::getWorkload("schedule");
    auto program = minic::compile(w.source, w.name);
    EXPECT_FALSE(detects(w, program, "sched-a303", 16));
    EXPECT_FALSE(detects(w, program, "sched-a304", 16));
}

TEST(HotEdge, SpecialInputBugsStayMissedAtAnyThreshold)
{
    // print_tokens2 206/207 hide behind nested conditions; NT-Paths
    // follow actual outcomes at inner branches, so more spawning does
    // not help (the paper's category 4).
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);
    EXPECT_FALSE(detects(w, program, "pt2-a206", 16));
    EXPECT_FALSE(detects(w, program, "pt2-a207", 16));
}

TEST(HotEdge, InconsistencyMaskedBugNeedsBetterFixing)
{
    // print_tokens2 203 (the paper's v3): masked by the unfixed
    // correlated variable regardless of threshold.
    const auto &w = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(w.source, w.name);
    EXPECT_FALSE(detects(w, program, "pt2-a203", 16));
}

} // namespace
