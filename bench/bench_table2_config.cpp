/**
 * @file
 * Reproduces Table 2: "Parameters of the simulation" — prints the
 * architecture parameters the simulator is configured with, so the
 * setup used by every other bench is on record in bench_output.txt.
 */

#include <iostream>

#include "src/branch/btb.hh"
#include "src/core/config.hh"
#include "src/mem/hierarchy.hh"
#include "src/support/table.hh"

using namespace pe;

int
main()
{
    std::cout << "Table 2: Parameters of the simulation\n\n";

    sim::TimingConfig std_ = sim::TimingConfig::standardConfig();
    sim::TimingConfig cmp = sim::TimingConfig::cmpConfig();
    branch::BtbParams btb;
    mem::CacheGeometry l1 = mem::defaultL1Geometry();
    mem::CacheGeometry l2 = mem::defaultL2Geometry();
    core::PeConfig defaults;

    Table table({"Parameter", "Value"});
    table.addRow({"Cores (CMP option)", "4"});
    table.addRow({"BTB", std::to_string(btb.entries / 1024) + "K, " +
                             std::to_string(btb.ways) + "-way"});
    table.addRow({"Exercise counters",
                  std::to_string(btb.counterBits) + " bits per edge"});
    table.addRow({"Spawn overhead",
                  std::to_string(std_.spawnOverhead) + " cycles"});
    table.addRow({"Squash overhead",
                  std::to_string(std_.squashOverhead) + " cycles"});
    table.addSeparator();
    table.addRow({"L1 cache",
                  std::to_string(l1.sizeBytes / 1024) + "KB, " +
                      std::to_string(l1.ways) + "-way, " +
                      std::to_string(l1.lineBytes) + "B/line"});
    table.addRow({"L1 latency (CMP / non-CMP)",
                  std::to_string(cmp.mem.l1HitLatency) + " / " +
                      std::to_string(std_.mem.l1HitLatency) +
                      " cycles"});
    table.addRow({"L2 cache",
                  std::to_string(l2.sizeBytes / (1024 * 1024)) +
                      "MB, " + std::to_string(l2.ways) + "-way, " +
                      std::to_string(l2.lineBytes) + "B/line, " +
                      std::to_string(std_.mem.l2HitLatency) +
                      " cycles latency"});
    table.addRow({"Memory",
                  std::to_string(std_.mem.memLatency) +
                      " cycles latency"});
    table.addSeparator();
    table.addRow({"MaxNTPathLength",
                  std::to_string(defaults.maxNtPathLength) +
                      " instructions (200 for Siemens apps)"});
    table.addRow({"NTPathCounterThreshold",
                  std::to_string(defaults.ntPathCounterThreshold)});
    table.addRow({"MaxNumNTPaths (CMP)",
                  std::to_string(defaults.maxNumNtPaths)});
    table.addRow({"CounterResetInterval",
                  std::to_string(defaults.counterResetInterval) +
                      " instructions"});
    table.print(std::cout);

    std::cout << "\nMatches the paper's Table 2 (2.4GHz 4-core CMP, "
                 "2K 2-way BTB, 16KB/1MB caches, 20/10-cycle "
                 "spawn/squash) with our in-order core cost model; "
                 "see DESIGN.md.\n";
    return 0;
}
