/**
 * @file
 * Benchmarks for the two extensions the paper itself proposes:
 *
 *  - Section 7.1: "adding random factor into PathExpander's NT-Path
 *    selection" to recover hot-entry-edge misses;
 *  - Section 3.2: OS-assisted sandboxing of unsafe events, predicted
 *    to let "more than 90% of NT-Paths potentially execute up to
 *    1000 instructions".
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Extensions proposed by the paper\n\n";

    // ---- random-factor NT-Path selection (Section 7.1) ----
    {
        std::cout << "Random spawn factor vs the hot-entry-edge "
                     "misses (schedule 305, schedule2 405):\n";
        Table table({"Fraction", "schedule NT-Paths", "bug 305",
                     "schedule2 NT-Paths", "bug 405",
                     "Std overhead (schedule)"});
        App sched = loadApp("schedule");
        App sched2 = loadApp("schedule2");
        auto base = runApp(sched, core::PeMode::Off, Tool::None);

        for (double f : {0.0, 0.05, 0.2, 0.5}) {
            auto run = [&](App &app, const char *bugId, bool &hit,
                           uint64_t &spawns) -> core::RunResult {
                auto cfg = appConfig(app, core::PeMode::Standard);
                cfg.randomSpawnFraction = f;
                auto r = runAppCfg(app, cfg, Tool::Assertions);
                auto analysis = analyze(app, r, Tool::Assertions);
                for (const auto &o : analysis.outcomes) {
                    if (o.bug->id == bugId)
                        hit = o.detected;
                }
                spawns = r.ntPathsSpawned;
                return r;
            };
            bool hit305 = false;
            bool hit405 = false;
            uint64_t s1 = 0;
            uint64_t s2 = 0;
            auto r1 = run(sched, "sched-a305", hit305, s1);
            run(sched2, "sched2-a405", hit405, s2);
            double overhead =
                (static_cast<double>(r1.cycles) -
                 static_cast<double>(base.cycles)) /
                static_cast<double>(base.cycles);
            table.addRow({fmtDouble(f, 2), std::to_string(s1),
                          hit305 ? "DETECTED" : "missed",
                          std::to_string(s2),
                          hit405 ? "DETECTED" : "missed",
                          fmtPercent(overhead)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- speculative I/O sandboxing (Section 3.2) ----
    {
        std::cout << "Speculative I/O sandboxing vs NT-Path survival "
                     "(Figure-3 setup):\n";
        Table table({"Application", "sandboxIo", "NT-Paths",
                     "crash", "unsafe", "survive >= cap"});
        for (const char *name : {"pe_go", "pe_gzip", "pe_vpr"}) {
            App app = loadApp(name);
            for (bool sandbox : {false, true}) {
                auto cfg = appConfig(app, core::PeMode::Standard);
                cfg.maxNtPathLength = 1000;
                cfg.ntPathCounterThreshold = 1;
                cfg.variableFixing = false;
                cfg.sandboxIo = sandbox;
                auto r = runAppCfg(app, cfg, Tool::None);
                double crash =
                    r.ntFraction(core::NtStopCause::Crash);
                double unsafe =
                    r.ntFraction(core::NtStopCause::UnsafeEvent);
                table.addRow({name, sandbox ? "on" : "off",
                              std::to_string(r.ntRecords.size()),
                              fmtPercent(crash), fmtPercent(unsafe),
                              fmtPercent(1.0 - crash - unsafe)});
            }
            table.addSeparator();
        }
        table.print(std::cout);
        std::cout << "\nPaper's prediction (Section 3.2): with OS "
                     "support for unsafe events, more than 90% of "
                     "NT-Paths can run the full 1000 instructions.\n";
    }
    return 0;
}
