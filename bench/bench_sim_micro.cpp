/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator substrate:
 * interpreter dispatch, cache model, BTB, versioned-buffer access and
 * whole-engine throughput.  These are performance baselines for the
 * simulator itself (host-side), not paper results.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_util.hh"
#include "src/branch/btb.hh"
#include "src/core/engine.hh"
#include "src/coverage/coverage.hh"
#include "src/isa/assembler.hh"
#include "src/mem/cache.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/minic/compiler.hh"
#include "src/support/rng.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

const char *loopSource = R"(
int acc = 0;
int main() {
    int i = 0;
    while (i < 20000) {
        if (i % 3 == 0) {
            acc = acc + i;
        } else {
            acc = acc - 1;
        }
        i = i + 1;
    }
    print_int(acc);
    return 0;
}
)";

void
BM_InterpreterThroughput(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    uint64_t instructions = 0;
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        instructions += r.takenInstructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void
BM_InterpreterThroughputLegacy(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    cfg.legacyStepLoop = true;
    uint64_t instructions = 0;
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        instructions += r.takenInstructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughputLegacy)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineStandardMode(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        benchmark::DoNotOptimize(r.ntPathsSpawned);
    }
}
BENCHMARK(BM_EngineStandardMode)->Unit(benchmark::kMillisecond);

void
BM_EngineCmpMode(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        benchmark::DoNotOptimize(r.ntPathsSpawned);
    }
}
BENCHMARK(BM_EngineCmpMode)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::defaultL1Geometry());
    Rng rng(42);
    std::vector<uint32_t> addrs(4096);
    for (auto &a : addrs)
        a = static_cast<uint32_t>(rng.nextBelow(1 << 16));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    branch::Btb btb;
    Rng rng(7);
    std::vector<uint32_t> pcs(1024);
    for (auto &pc : pcs)
        pc = static_cast<uint32_t>(rng.nextBelow(1 << 14));
    size_t i = 0;
    for (auto _ : state) {
        uint32_t pc = pcs[i & 1023];
        benchmark::DoNotOptimize(btb.count(pc, false));
        btb.increment(pc, (i & 1) != 0);
        ++i;
    }
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_VersionedBufferChain(benchmark::State &state)
{
    mem::MainMemory memory(1 << 16);
    mem::VersionedBuffer a(1);
    mem::VersionedBuffer b(2);
    b.setParent(&a);
    Rng rng(99);
    for (int i = 0; i < 256; ++i)
        a.write(static_cast<uint32_t>(rng.nextBelow(1 << 12)), i);
    mem::MemCtx ctx(memory, &b);
    size_t i = 0;
    for (auto _ : state) {
        uint32_t addr = static_cast<uint32_t>(i * 97 % (1 << 12));
        ctx.write(addr, static_cast<int32_t>(i));
        benchmark::DoNotOptimize(ctx.read(addr ^ 1));
        ++i;
    }
}
BENCHMARK(BM_VersionedBufferChain);

void
BM_VersionedBufferWrite(benchmark::State &state)
{
    // The NT-Path store hot path: buffered writes over a working set
    // whose size is the sweep parameter (line reuse at the small end,
    // table growth pressure at the large end).
    const uint32_t span = static_cast<uint32_t>(state.range(0));
    Rng rng(11);
    std::vector<uint32_t> addrs(4096);
    for (auto &a : addrs)
        a = static_cast<uint32_t>(rng.nextBelow(span));
    mem::VersionedBuffer buf(1);
    size_t i = 0;
    for (auto _ : state) {
        buf.write(addrs[i & 4095], static_cast<int32_t>(i));
        ++i;
        if ((i & 0xffff) == 0)
            buf.clear();    // bound the table like a real squash does
    }
    benchmark::DoNotOptimize(buf.numWords());
}
BENCHMARK(BM_VersionedBufferWrite)->Arg(64)->Arg(1 << 10)->Arg(1 << 14);

void
BM_VersionedBufferSquash(benchmark::State &state)
{
    // Fill-then-squash cycle: the gang-invalidate cost the paper's
    // Vtag flash-clear models, proportional to table capacity.
    const int64_t writes = state.range(0);
    Rng rng(12);
    mem::VersionedBuffer buf(1);
    for (auto _ : state) {
        for (int64_t i = 0; i < writes; ++i) {
            buf.write(static_cast<uint32_t>(rng.nextBelow(1 << 14)),
                      static_cast<int32_t>(i));
        }
        buf.clear();
    }
    state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_VersionedBufferSquash)->Arg(64)->Arg(1024);

void
BM_VersionedBufferCommit(benchmark::State &state)
{
    // Drain a pre-filled write set into main memory (CMP segment
    // commit).  The buffer is rebuilt once outside the timed region
    // and commitTo is const, so each iteration commits the same set.
    const int64_t writes = state.range(0);
    mem::MainMemory memory(1 << 16);
    mem::VersionedBuffer buf(1);
    Rng rng(13);
    for (int64_t i = 0; i < writes; ++i) {
        buf.write(static_cast<uint32_t>(rng.nextBelow(1 << 14)),
                  static_cast<int32_t>(i));
    }
    for (auto _ : state) {
        buf.commitTo(memory);
        benchmark::DoNotOptimize(memory.words().data());
    }
    state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_VersionedBufferCommit)->Arg(64)->Arg(1024);

void
BM_BranchCoverageMerge(benchmark::State &state)
{
    // Campaign merge-reduce: OR one run's bitmap into the cumulative
    // one for a synthetic program of range(0) branches.
    const int64_t branches = state.range(0);
    isa::Program p;
    p.code.push_back(isa::makeLi(8, 1));
    for (int64_t b = 0; b < branches; ++b)
        p.code.push_back(isa::makeBranch(isa::Opcode::Beq, 8, 0, 0));
    coverage::BranchCoverage run(p);
    Rng rng(14);
    for (int64_t b = 1; b <= branches; ++b) {
        if (rng.nextBool(0.5))
            run.onTakenEdge(static_cast<uint32_t>(b), rng.nextBool());
    }
    coverage::BranchCoverage cum(p);
    for (auto _ : state) {
        cum.mergeFrom(run);
        benchmark::DoNotOptimize(cum.combinedCovered());
    }
}
BENCHMARK(BM_BranchCoverageMerge)->Arg(1 << 10)->Arg(1 << 14);

void
BM_MiniCCompile(benchmark::State &state)
{
    const auto &w = workloads::getWorkload("print_tokens2");
    for (auto _ : state) {
        auto program = minic::compile(w.source, w.name);
        benchmark::DoNotOptimize(program.code.size());
    }
}
BENCHMARK(BM_MiniCCompile)->Unit(benchmark::kMillisecond);

/**
 * A long straight-line kernel: iterations of ~250 ALU/immediate
 * instructions ended by one backward branch.  The best case for the
 * block-stepped loop (one surfacing instruction per 250), and close
 * to the interpreter's intrinsic dispatch ceiling.
 */
isa::Program
straightLineProgram(int iterations)
{
    std::ostringstream out;
    out << "li r8, 1\nli r9, 2\nli r10, 3\nli r11, 4\n"
        << "li r20, " << iterations << "\n"
        << "loop:\n";
    for (int i = 0; i < 62; ++i) {
        out << "add r8, r8, r9\n"
            << "xor r9, r9, r10\n"
            << "addi r10, r10, 3\n"
            << "slt r11, r8, r10\n";
    }
    out << "addi r20, r20, -1\n"
        << "bgt r20, r0, loop\n"
        << "sys print_int r8\n"
        << "sys exit\n";
    return isa::assemble(out.str(), "straightline");
}

/**
 * Simulated MIPS of @p program under @p cfg: total simulated (taken)
 * instructions per host wall-clock second, over @p reps engine runs.
 */
double
simulatedMips(const isa::Program &program, const core::PeConfig &cfg,
              int reps)
{
    uint64_t instructions = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        instructions += r.takenInstructions + r.ntInstructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return static_cast<double>(instructions) / 1e6 /
           elapsed.count();
}

/**
 * The interpreter-throughput record: simulated MIPS of the legacy
 * per-step loop vs the block-stepped loop on the straight-line
 * kernel and on the branchy mixed loop, landing in the bench's JSON
 * artifact so the speedup trajectory is tracked across revisions.
 */
void
recordInterpreterMips(bench::BenchJson &json)
{
    auto offCfg = core::PeConfig::forMode(core::PeMode::Off);
    auto legacyCfg = offCfg;
    legacyCfg.legacyStepLoop = true;

    auto straight = straightLineProgram(60000);
    double straightLegacy = simulatedMips(straight, legacyCfg, 3);
    double straightBlock = simulatedMips(straight, offCfg, 3);

    auto mixed = minic::compile(loopSource, "loop");
    double mixedLegacy = simulatedMips(mixed, legacyCfg, 20);
    double mixedBlock = simulatedMips(mixed, offCfg, 20);

    json.set("mips_legacy_straightline", straightLegacy);
    json.set("mips_block_straightline", straightBlock);
    json.set("mips_speedup_straightline",
             straightBlock / straightLegacy);
    json.set("mips_legacy_mixed", mixedLegacy);
    json.set("mips_block_mixed", mixedBlock);
    json.set("mips_speedup_mixed", mixedBlock / mixedLegacy);

    printf("\nSimulated-MIPS (legacy -> block-stepped):\n"
           "  straight-line: %.1f -> %.1f MIPS (%.2fx)\n"
           "  mixed loop:    %.1f -> %.1f MIPS (%.2fx)\n",
           straightLegacy, straightBlock,
           straightBlock / straightLegacy, mixedLegacy, mixedBlock,
           mixedBlock / mixedLegacy);
}

/**
 * A kernel built to saturate: an outer counted loop around a short
 * inner loop whose conditional branches all alternate direction, so
 * every taken-path coverage bit records within the first outer
 * iterations and (with threshold == counter cap) every exercise
 * counter climbs to its cap shortly after.  From then on the whole
 * inner loop — branches included — is one superblock per outer
 * iteration, broken only by the outer loop-back branch (whose exit
 * direction stays cold until the very end, the usual fate of a
 * run-once edge).
 */
isa::Program
saturatedProgram(int iterations)
{
    std::ostringstream out;
    out << "li r8, 0\n"
        << "li r20, " << iterations << "\n"
        << "li r21, 4\nli r9, 1\nli r10, 3\n"
        << "outer:\n"
        << "li r12, 0\n"
        << "inner:\n"
        // Branch 1: direction flips every inner iteration.
        << "andi r13, r12, 1\n"
        << "beq r13, r0, even\n"
        << "add r9, r9, r10\n"
        << "jmp join1\n"
        << "even:\n"
        << "sub r9, r9, r10\n"
        << "join1:\n"
        // Branch 2: direction flips every second inner iteration.
        << "andi r13, r12, 2\n"
        << "bne r13, r0, skip2\n"
        << "xor r10, r10, r9\n"
        << "skip2:\n";
    // A little ALU meat between branches — kept short so the kernel
    // stays branch-dense: the pruned path's win is the elided
    // per-branch surface/re-dispatch plus the instrumentation, and
    // long straight-line runs stream at the same speed either way.
    for (int i = 0; i < 2; ++i) {
        out << "add r9, r9, r10\n"
            << "xori r10, r10, 21\n"
            << "slt r14, r9, r10\n";
    }
    out << "addi r12, r12, 1\n"
        // Branch 3: the inner loop-back, taken 3 of 4 times.
        << "blt r12, r21, inner\n"
        << "addi r8, r8, 1\n"
        << "blt r8, r20, outer\n"
        << "sys print_int r9\n"
        << "sys exit\n";
    return isa::assemble(out.str(), "saturated");
}

/**
 * The self-pruning record: simulated MIPS of Standard mode on the
 * saturating kernel with cfg.selfPrune off vs on, after asserting
 * the two configurations produce identical results (the superblock
 * contract) and that the pruned path actually engaged.  The spawn
 * threshold is raised to the counter cap so "below threshold" and
 * "below cap" coincide: the spawn-entry bumps then drive each
 * non-taken edge's counter all the way to saturation, which is what
 * lets the saturation predicate retire the branch.
 */
void
recordSaturatedMips(bench::BenchJson &json)
{
    auto program = saturatedProgram(30000);
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.maxNtPathLength = 100;
    cfg.ntPathCounterThreshold = 15;    // == 4-bit counter cap
    auto prunedCfg = cfg;
    prunedCfg.selfPrune = true;

    {
        core::PathExpanderEngine plain(program, cfg);
        core::PathExpanderEngine pruned(program, prunedCfg);
        auto a = plain.run({});
        auto b = pruned.run({});
        if (a.cycles != b.cycles ||
            a.takenInstructions != b.takenInstructions ||
            a.ntInstructions != b.ntInstructions ||
            a.ntPathsSpawned != b.ntPathsSpawned ||
            a.memoryDigest != b.memoryDigest ||
            a.coverage.combinedCovered() !=
                b.coverage.combinedCovered() ||
            a.ntRecords.size() != b.ntRecords.size()) {
            fprintf(stderr, "FATAL: selfPrune run diverged from the "
                            "instrumented run on the saturated kernel\n");
            exit(1);
        }
        if (b.prunedInstructions == 0) {
            fprintf(stderr, "FATAL: selfPrune never engaged on the "
                            "saturated kernel\n");
            exit(1);
        }
        json.set("pruned_instruction_fraction",
                 static_cast<double>(b.prunedInstructions) /
                     static_cast<double>(b.takenInstructions));
    }

    double instrumented = simulatedMips(program, cfg, 10);
    double prunedMips = simulatedMips(program, prunedCfg, 10);

    json.set("mips_instrumented_saturated", instrumented);
    json.set("mips_pruned_saturated", prunedMips);
    json.set("mips_selfprune_speedup", prunedMips / instrumented);

    printf("\nSimulated-MIPS (instrumented -> self-pruned, saturated "
           "kernel):\n  %.1f -> %.1f MIPS (%.2fx)\n",
           instrumented, prunedMips, prunedMips / instrumented);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::BenchJson json("bench_sim_micro");
    recordInterpreterMips(json);
    recordSaturatedMips(json);
    json.write();
    return 0;
}
