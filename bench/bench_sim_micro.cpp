/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator substrate:
 * interpreter dispatch, cache model, BTB, versioned-buffer access and
 * whole-engine throughput.  These are performance baselines for the
 * simulator itself (host-side), not paper results.
 */

#include <benchmark/benchmark.h>

#include "src/branch/btb.hh"
#include "src/core/engine.hh"
#include "src/mem/cache.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/minic/compiler.hh"
#include "src/support/rng.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

const char *loopSource = R"(
int acc = 0;
int main() {
    int i = 0;
    while (i < 20000) {
        if (i % 3 == 0) {
            acc = acc + i;
        } else {
            acc = acc - 1;
        }
        i = i + 1;
    }
    print_int(acc);
    return 0;
}
)";

void
BM_InterpreterThroughput(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Off);
    uint64_t instructions = 0;
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        instructions += r.takenInstructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void
BM_EngineStandardMode(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        benchmark::DoNotOptimize(r.ntPathsSpawned);
    }
}
BENCHMARK(BM_EngineStandardMode)->Unit(benchmark::kMillisecond);

void
BM_EngineCmpMode(benchmark::State &state)
{
    auto program = minic::compile(loopSource, "loop");
    auto cfg = core::PeConfig::forMode(core::PeMode::Cmp);
    for (auto _ : state) {
        core::PathExpanderEngine engine(program, cfg);
        auto r = engine.run({});
        benchmark::DoNotOptimize(r.ntPathsSpawned);
    }
}
BENCHMARK(BM_EngineCmpMode)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::defaultL1Geometry());
    Rng rng(42);
    std::vector<uint32_t> addrs(4096);
    for (auto &a : addrs)
        a = static_cast<uint32_t>(rng.nextBelow(1 << 16));
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    branch::Btb btb;
    Rng rng(7);
    std::vector<uint32_t> pcs(1024);
    for (auto &pc : pcs)
        pc = static_cast<uint32_t>(rng.nextBelow(1 << 14));
    size_t i = 0;
    for (auto _ : state) {
        uint32_t pc = pcs[i & 1023];
        benchmark::DoNotOptimize(btb.count(pc, false));
        btb.increment(pc, (i & 1) != 0);
        ++i;
    }
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_VersionedBufferChain(benchmark::State &state)
{
    mem::MainMemory memory(1 << 16);
    mem::VersionedBuffer a(1);
    mem::VersionedBuffer b(2);
    b.setParent(&a);
    Rng rng(99);
    for (int i = 0; i < 256; ++i)
        a.write(static_cast<uint32_t>(rng.nextBelow(1 << 12)), i);
    mem::MemCtx ctx(memory, &b);
    size_t i = 0;
    for (auto _ : state) {
        uint32_t addr = static_cast<uint32_t>(i * 97 % (1 << 12));
        ctx.write(addr, static_cast<int32_t>(i));
        benchmark::DoNotOptimize(ctx.read(addr ^ 1));
        ++i;
    }
}
BENCHMARK(BM_VersionedBufferChain);

void
BM_MiniCCompile(benchmark::State &state)
{
    const auto &w = workloads::getWorkload("print_tokens2");
    for (auto _ : state) {
        auto program = minic::compile(w.source, w.name);
        benchmark::DoNotOptimize(program.code.size());
    }
}
BENCHMARK(BM_MiniCCompile)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
