/**
 * @file
 * Reproduces Table 4: "Bug detection results of PathExpander".
 *
 * Every buggy application runs with non-bug-triggering inputs under
 * its detection tools, baseline (no PathExpander) vs. PathExpander
 * standard configuration.  The paper reports 0/38 bugs detected in
 * the baseline and 21/38 with PathExpander.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

struct Row
{
    Tool tool;
    const char *app;
};

const Row rows[] = {
    {Tool::Ccured, "pe_go"},
    {Tool::Ccured, "pe_bc"},
    {Tool::Ccured, "pe_man"},
    {Tool::Ccured, "print_tokens2"},
    {Tool::Iwatcher, "pe_go"},
    {Tool::Iwatcher, "pe_bc"},
    {Tool::Iwatcher, "pe_man"},
    {Tool::Iwatcher, "print_tokens2"},
    {Tool::Assertions, "print_tokens"},
    {Tool::Assertions, "print_tokens2"},
    {Tool::Assertions, "schedule"},
    {Tool::Assertions, "schedule2"},
};

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Table 4: Bug detection results of PathExpander\n"
              << "(non-bug-triggering inputs; baseline = dynamic tool "
                 "without PathExpander)\n\n";

    Table table({"Dynamic Tool", "Application", "#Bug Tested",
                 "Baseline", "PathExpander"});

    int totalTested = 0;
    int totalBaseline = 0;
    int totalPe = 0;
    Tool lastTool = Tool::None;

    for (const auto &row : rows) {
        App app = loadApp(row.app);

        auto baseline = runApp(app, core::PeMode::Off, row.tool);
        auto withPe = runApp(app, core::PeMode::Standard, row.tool);
        auto ab = analyze(app, baseline, row.tool);
        auto ap = analyze(app, withPe, row.tool);

        int tested = static_cast<int>(ap.outcomes.size());
        totalTested += tested;
        totalBaseline += ab.numDetected;
        totalPe += ap.numDetected;

        if (row.tool != lastTool && lastTool != Tool::None)
            table.addSeparator();
        lastTool = row.tool;

        table.addRow({toolName(row.tool), row.app,
                      std::to_string(tested),
                      std::to_string(ab.numDetected),
                      std::to_string(ap.numDetected)});
    }
    table.addSeparator();
    table.addRow({"Total", "", std::to_string(totalTested),
                  std::to_string(totalBaseline),
                  std::to_string(totalPe)});
    table.print(std::cout);

    std::cout << "\nPaper: 38 tested, 0 detected baseline, 21 "
                 "detected with PathExpander.\n"
              << "Measured: " << totalTested << " tested, "
              << totalBaseline << " baseline, " << totalPe
              << " with PathExpander.\n";
    return 0;
}
