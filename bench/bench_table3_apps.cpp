/**
 * @file
 * Reproduces Table 3: "Applications and bugs evaluated" — the seven
 * buggy applications, their original sizes, seeded bug counts and
 * detection tools, plus the compiled size of our re-creations.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Table 3: Applications and bugs evaluated\n\n";

    Table table({"Application", "Orig. LOC", "#Bugs", "Detection Tool",
                 "PE-RISC instrs", "Branches"});

    int totalBugs = 0;
    for (const auto &name : workloads::buggyWorkloadNames()) {
        App app = loadApp(name);
        const auto &w = *app.workload;
        std::string tool = w.tools == "memory"
                               ? "CCured and iWatcher"
                               : "Assertions";
        totalBugs += static_cast<int>(w.bugs.size());
        table.addRow({name, std::to_string(w.paperLoc),
                      std::to_string(w.bugs.size()), tool,
                      std::to_string(app.program.code.size()),
                      std::to_string(app.program.numBranches())});
    }
    table.print(std::cout);

    std::cout << "\nDistinct seeded bugs: " << totalBugs
              << "; memory bugs are each tested under both memory "
                 "checkers, giving the 38 tool-bug combinations of "
                 "Table 4.\n";
    return 0;
}
