/**
 * @file
 * Reproduces Table 3: "Applications and bugs evaluated" — the seven
 * buggy applications, their original sizes, seeded bug counts and
 * detection tools, plus the compiled size of our re-creations and the
 * dynamic instruction count of each app's default monitored run.  The
 * per-app baseline runs execute as one parallel campaign.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/core/campaign.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Table 3: Applications and bugs evaluated\n\n";

    auto names = workloads::buggyWorkloadNames();
    std::vector<App> apps;
    apps.reserve(names.size());
    std::vector<core::CampaignJob> jobs;
    std::vector<core::CampaignJob> legacyJobs;
    for (const auto &name : names) {
        apps.push_back(loadApp(name));
        jobs.push_back(makeJob(apps.back(), core::PeMode::Off,
                               Tool::None));
        auto legacyCfg = jobs.back().config;
        legacyCfg.legacyStepLoop = true;
        legacyJobs.push_back(
            makeJobCfg(apps.back(), legacyCfg, Tool::None));
    }
    // The same campaign through the legacy per-step loop and the
    // block-stepped loop: the wall-clock ratio is this bench's
    // tracked interpreter speedup, and the results must agree
    // bit-for-bit.  The campaign is short, so each arm runs three
    // times interleaved and the best wall time represents it —
    // the standard noise floor for a sub-100ms measurement.
    auto legacyCampaign = core::runCampaign(legacyJobs);
    auto campaign = core::runCampaign(jobs);
    double legacyWall = legacyCampaign.wallSeconds;
    double blockWall = campaign.wallSeconds;
    for (int rep = 1; rep < 3; ++rep) {
        auto lc = core::runCampaign(legacyJobs);
        legacyWall = std::min(legacyWall, lc.wallSeconds);
        auto bc = core::runCampaign(jobs);
        blockWall = std::min(blockWall, bc.wallSeconds);
    }
    bool bitIdentical = true;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const auto &a = campaign.results[i];
        const auto &b = legacyCampaign.results[i];
        bitIdentical = bitIdentical &&
                       a.takenInstructions == b.takenInstructions &&
                       a.cycles == b.cycles &&
                       a.memoryDigest == b.memoryDigest;
    }

    Table table({"Application", "Orig. LOC", "#Bugs", "Detection Tool",
                 "PE-RISC instrs", "Branches", "Dyn. instrs"});

    int totalBugs = 0;
    for (size_t i = 0; i < apps.size(); ++i) {
        const App &app = apps[i];
        const auto &w = *app.workload;
        std::string tool = w.tools == "memory"
                               ? "CCured and iWatcher"
                               : "Assertions";
        totalBugs += static_cast<int>(w.bugs.size());
        table.addRow({names[i], std::to_string(w.paperLoc),
                      std::to_string(w.bugs.size()), tool,
                      std::to_string(app.program.code.size()),
                      std::to_string(app.program.numBranches()),
                      std::to_string(
                          campaign.results[i].takenInstructions)});
    }
    table.print(std::cout);

    std::cout << "\nDistinct seeded bugs: " << totalBugs
              << "; memory bugs are each tested under both memory "
                 "checkers, giving the 38 tool-bug combinations of "
                 "Table 4.\n"
              << "Baseline campaign: " << jobs.size() << " runs in "
              << fmtDouble(blockWall, 2) << "s on "
              << campaign.threadsUsed << " threads ("
              << fmtDouble(jobs.size() / blockWall, 2)
              << " runs/s; legacy step loop "
              << fmtDouble(legacyWall, 2) << "s, "
              << fmtDouble(legacyWall / blockWall, 2)
              << "x slower, results "
              << (bitIdentical ? "bit-identical" : "DIVERGENT")
              << ").\n";

    BenchJson json("bench_table3_apps");
    json.setInt("jobs", jobs.size());
    json.setInt("threads", campaign.threadsUsed);
    json.set("wall_seconds", blockWall);
    json.set("runs_per_second", jobs.size() / blockWall);
    json.set("wall_seconds_legacy", legacyWall);
    json.set("runs_per_second_legacy", legacyJobs.size() / legacyWall);
    json.set("wall_speedup_block_vs_legacy", legacyWall / blockWall);
    json.setInt("block_bit_identical", bitIdentical ? 1 : 0);
    json.setInt("total_bugs", static_cast<uint64_t>(totalBugs));
    json.write();
    return 0;
}
