/**
 * @file
 * Shared helpers for the benchmark harnesses: compile-and-run
 * plumbing for the evaluation workloads under each PathExpander
 * configuration and detection tool, campaign-job builders for the
 * parallel runner, and the JSON metrics emitter that records each
 * bench's wall-time / speedup trajectory.
 */

#ifndef PE_BENCH_BENCH_UTIL_HH
#define PE_BENCH_BENCH_UTIL_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/campaign.hh"
#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/swpe/software_pe.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

namespace pe::bench
{

/** Detection tools evaluated in the paper (Section 6.2). */
enum class Tool
{
    None,
    Ccured,     //!< software-only checker -> BoundsChecker
    Iwatcher,   //!< hardware-assisted checker -> WatchChecker
    Assertions, //!< AssertChecker
};

const char *toolName(Tool tool);

/** Instantiate the detector for @p tool (nullptr for None). */
std::unique_ptr<detect::Detector> makeDetector(Tool tool);

/** A compiled workload ready to run. */
struct App
{
    const workloads::Workload *workload;
    isa::Program program;
};

/** Compile workload @p name. */
App loadApp(const std::string &name);

/** Paper-default config for @p mode, adjusted to the workload. */
core::PeConfig appConfig(const App &app, core::PeMode mode);

/**
 * Run @p app's input @p inputIdx under @p mode with @p tool.
 * @param fixing arm the NT-entry predicate (Section 4.4 fixes).
 * @param software use the Section-5 software cost model.
 */
core::RunResult runApp(const App &app, core::PeMode mode, Tool tool,
                       size_t inputIdx = 0, bool fixing = true,
                       bool software = false);

/** Run with a fully caller-specified configuration. */
core::RunResult runAppCfg(const App &app, const core::PeConfig &cfg,
                          Tool tool, size_t inputIdx = 0);

/**
 * Campaign job equivalent of runApp, for the parallel runner.  The
 * job references @p app's program: the App must outlive the campaign.
 */
core::CampaignJob makeJob(const App &app, core::PeMode mode, Tool tool,
                          size_t inputIdx = 0, bool fixing = true,
                          bool software = false);

/** Campaign job equivalent of runAppCfg. */
core::CampaignJob makeJobCfg(const App &app, const core::PeConfig &cfg,
                             Tool tool, size_t inputIdx = 0);

/** Convenience: detection analysis of @p result for @p tool. */
workloads::DetectionAnalysis analyze(const App &app,
                                     const core::RunResult &result,
                                     Tool tool);

/**
 * Per-bench JSON metrics file: <PE_BENCH_JSON_DIR or .>/<name>.json,
 * a flat object of numbers and strings.  The growth trajectory
 * (wall times, parallel speedups, microbench summaries) is compared
 * across revisions from these artifacts.
 *
 * Every file carries provenance so trajectories from different
 * machines and revisions are comparable: the worker count the
 * campaign runner would use (`workers`, the PE_JOBS/hardware
 * default) and the hash of the paper-default engine configuration
 * (`default_config_hash`, core::configHash).  A bench that sweeps a
 * non-default config should additionally stamp it via setConfig().
 */
class BenchJson
{
  public:
    explicit BenchJson(const std::string &benchName);
    ~BenchJson();   //!< writes the file if write() was not called

    void set(const std::string &key, double value);
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, uint64_t value);

    /** Stamp @p key (default "config_hash") with @p cfg's hash. */
    void setConfig(const core::PeConfig &cfg,
                   const std::string &key = "config_hash");

    /** Emit the file now (provenance keys included). */
    void write();

  private:
    std::string path;
    std::vector<std::pair<std::string, std::string>> entries;
    bool written = false;
};

} // namespace pe::bench

#endif // PE_BENCH_BENCH_UTIL_HH
