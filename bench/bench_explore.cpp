/**
 * @file
 * Coverage-per-run: guided exploration vs the paper's static suite.
 *
 * Section 7.4 replays a fixed 50-input suite per application and
 * reports the cumulative coverage PathExpander adds.  This bench asks
 * the next question: under an *equal run budget*, does choosing the
 * inputs (coverage-guided exploration over src/explore/) beat
 * replaying the static suite?  Three arms per workload, all with PE
 * on (Standard mode) plus a PE-off ablation of the guided arm:
 *
 *   static   — the workload's benign suite replayed, coverage unioned
 *              (exactly the Section-7.4 experiment);
 *   uniform  — greedy-random exploration: corpus seeded with a few
 *              suite inputs, parents picked uniformly;
 *   rare     — the same, but rare-edge-weighted scheduling;
 *   path     — the rare arm plus the prime-path cover objective
 *              (ExploreOptions::pathObjective): scheduler energy is
 *              tilted toward corpus entries adjacent to incomplete
 *              cover paths.  Judged against a `rare+trace` twin (the
 *              rare arm with the edge trace on but the objective
 *              off), so both sides measure completion with the same
 *              config hash semantics: the gate is cover completion
 *              >= the twin's on most apps with edge coverage within
 *              5% of the plain rare arm;
 *   sharded  — the rare arm distributed over a worker-process fleet
 *              (src/fleet/) at the *same total budget*, recording
 *              wall time and the merged frontier/corpus digests so
 *              CI can (a) compare sharded vs single-process wall
 *              time on multi-core runners and (b) assert the merge
 *              is bit-reproducible.
 *   tcp      — the sharded arm again, but over the TCP transport on
 *              loopback (coordinator binds an ephemeral port, the
 *              workers dial in, exactly as a multi-host deployment
 *              would).  Identical digests to the sharded arm are
 *              the cross-transport reproducibility witness; the
 *              wall-time delta prices the framing + socket tax.
 *
 * The headline claim: the guided explorer matches or beats the
 * static suite's cumulative coverage at <= the same number of runs.
 * Progress streams to bench_explore.jsonl (one JSONL stream, all
 * arms) for coverage-vs-budget curves.
 *
 * PE_EXPLORE_RUNS overrides the per-arm run budget (CI smoke runs a
 * tiny budget; the suite-parity gate only applies at the default).
 * PE_EXPLORE_SHARDS overrides the fleet width (default 4).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>

#include <unistd.h>

#include "bench_util.hh"
#include "src/coverage/pathcov.hh"
#include "src/explore/explorer.hh"
#include "src/fleet/coordinator.hh"
#include "src/fleet/transport.hh"
#include "src/fleet/worker.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/subprocess.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

const char *const kWorkloads[] = {"schedule", "schedule2",
                                  "print_tokens"};

struct Arm
{
    uint64_t runs = 0;
    size_t edges = 0;       //!< frontier combined edges
    size_t corpus = 0;
    double wallSeconds = 0;
    uint64_t frontierDigest = 0;    //!< sharded arm only
    uint64_t corpusDigest = 0;      //!< sharded arm only
    uint64_t planDigest = 0;        //!< sharded arm only
    // Prime-path tracker readout (arms run with the edge trace on).
    uint64_t primePaths = 0;
    uint64_t coverSize = 0;
    uint64_t pathsCompleted = 0;
    uint64_t coverCompleted = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start;
    return d.count();
}

Arm
runExplorer(const App &app, explore::SchedulePolicy policy,
            core::PeMode mode, uint64_t budget, std::ostream *jsonl,
            bool staticPriors = false, bool recordTrace = false,
            bool pathObjective = false)
{
    explore::ExploreOptions opts;
    opts.config = appConfig(app, mode);
    opts.config.recordEdgeTrace = recordTrace;
    opts.policy = policy;
    opts.pathObjective = pathObjective;
    opts.budget.maxRuns = budget;
    opts.batchSize = 8;
    opts.jsonl = jsonl;
    opts.useStaticPriors = staticPriors;
    opts.label = app.workload->name + "/" +
                 explore::schedulePolicyName(policy) + "/" +
                 core::peModeName(mode) +
                 (staticPriors ? "/priors" : "") +
                 (pathObjective ? "/path"
                                : (recordTrace ? "/trace" : ""));

    // Seed with a few suite inputs only: the explorer must *find*
    // the rest of the behavior the full static suite was given.
    std::vector<std::vector<int32_t>> seeds(
        app.workload->benignInputs.begin(),
        app.workload->benignInputs.begin() +
            std::min<size_t>(
                {app.workload->benignInputs.size(), 5, budget}));

    explore::Explorer explorer(app.program, seeds, opts);
    auto start = std::chrono::steady_clock::now();
    auto result = explorer.run();
    Arm arm;
    arm.runs = result.runs;
    arm.edges = explorer.corpus().frontier().combinedCovered();
    arm.corpus = explorer.corpus().size();
    arm.wallSeconds = secondsSince(start);
    if (const coverage::PathCoverage *pt = explorer.pathTracker()) {
        arm.primePaths = pt->numPaths();
        arm.coverSize = pt->coverSize();
        arm.pathsCompleted = pt->completedCount();
        arm.coverCompleted = pt->coverCompleted();
    }
    return arm;
}

/**
 * The rare arm again, but spread over a process fleet at the same
 * total run budget.  On a single core this pays the fork/IPC tax; on
 * a multi-core runner the shards overlap and the wall time should
 * drop below the single-process rare arm — which is exactly what the
 * recorded `*_sharded_wall_seconds` vs `*_rare_wall_seconds` pairs
 * let CI trend.  The digests witness that the merged result is a
 * deterministic function of the plan, not of host scheduling.
 */
Arm
runSharded(const App &app, unsigned shards, uint64_t budget,
           std::ostream *jsonl)
{
    fleet::FleetOptions fopts;
    fopts.base.config = appConfig(app, core::PeMode::Standard);
    fopts.base.policy = explore::SchedulePolicy::RareEdgeWeighted;
    fopts.base.budget.maxRuns = budget;
    fopts.base.batchSize = 8;
    fopts.base.jsonl = jsonl;
    fopts.base.label = app.workload->name + "/sharded";
    fopts.shards = shards;

    std::vector<std::vector<int32_t>> seeds(
        app.workload->benignInputs.begin(),
        app.workload->benignInputs.begin() +
            std::min<size_t>(
                {app.workload->benignInputs.size(), 5, budget}));

    auto start = std::chrono::steady_clock::now();
    auto result = fleet::runFleet(app.program, seeds, fopts);
    Arm arm;
    arm.runs = result.runs;
    arm.edges = result.edgesCombined;
    arm.corpus = result.corpusSize;
    arm.wallSeconds = secondsSince(start);
    arm.frontierDigest = result.frontierDigest;
    arm.corpusDigest = result.corpusDigest;
    arm.planDigest = result.planDigest;
    return arm;
}

/**
 * The sharded arm over TCP loopback: bind an ephemeral port, fork
 * the same number of worker processes, but have each one *dial in*
 * and run remoteWorkerMain — the exact code path a worker on
 * another machine takes (src/fleet/transport.hh).  Same plan, same
 * budget, so the digests must match the socketpair fleet's
 * byte-for-byte.
 */
Arm
runTcp(const App &app, unsigned shards, uint64_t budget,
       std::ostream *jsonl)
{
    fleet::FleetOptions fopts;
    fopts.base.config = appConfig(app, core::PeMode::Standard);
    fopts.base.policy = explore::SchedulePolicy::RareEdgeWeighted;
    fopts.base.budget.maxRuns = budget;
    fopts.base.batchSize = 8;
    fopts.base.jsonl = jsonl;
    fopts.base.label = app.workload->name + "/tcp";
    fopts.shards = shards;
    fopts.roundDeadlineMs = 60000;

    std::vector<std::vector<int32_t>> seeds(
        app.workload->benignInputs.begin(),
        app.workload->benignInputs.begin() +
            std::min<size_t>(
                {app.workload->benignInputs.size(), 5, budget}));

    auto transport =
        std::make_shared<fleet::TcpTransport>("127.0.0.1:0");
    const std::string addr =
        "127.0.0.1:" + std::to_string(transport->port());
    fopts.transport = transport;

    std::vector<proc::ChildProcess> workers;
    for (unsigned i = 0; i < shards; ++i) {
        workers.push_back(proc::spawnChild([&](int pairFd) {
            close(pairFd);  // dialing worker; the pair is unused
            fleet::RemoteWorkerOptions ro;
            ro.connect = addr;
            ro.shards = shards;
            ro.base = fopts.base;
            ro.seeds = seeds;
            return fleet::remoteWorkerMain(app.program, ro);
        }));
    }

    auto start = std::chrono::steady_clock::now();
    auto result = fleet::runFleet(app.program, seeds, fopts);
    Arm arm;
    arm.runs = result.runs;
    arm.edges = result.edgesCombined;
    arm.corpus = result.corpusSize;
    arm.wallSeconds = secondsSince(start);
    arm.frontierDigest = result.frontierDigest;
    arm.corpusDigest = result.corpusDigest;
    arm.planDigest = result.planDigest;
    for (proc::ChildProcess &worker : workers)
        worker.wait();
    return arm;
}

Arm
runStatic(const App &app, uint64_t budget)
{
    std::vector<core::CampaignJob> jobs;
    size_t n = std::min<uint64_t>(app.workload->benignInputs.size(),
                                  budget);
    for (size_t i = 0; i < n; ++i)
        jobs.push_back(makeJob(app, core::PeMode::Standard,
                               Tool::None, i));
    auto outcome = core::runCampaign(jobs);
    auto merged = core::mergeCoverage(app.program, outcome.results);
    return Arm{jobs.size(), merged.combinedCovered(), n};
}

} // namespace

int
main()
{
    setQuiet(true);

    uint64_t budget = 0;
    bool customBudget = false;
    if (const char *env = std::getenv("PE_EXPLORE_RUNS");
        env && *env) {
        budget = std::strtoull(env, nullptr, 10);
        customBudget = true;
    }
    unsigned shardCount = 4;
    if (const char *env = std::getenv("PE_EXPLORE_SHARDS");
        env && *env)
        shardCount = static_cast<unsigned>(
            std::strtoul(env, nullptr, 10));
    if (shardCount < 2)
        shardCount = 2;

    const char *dir = std::getenv("PE_BENCH_JSON_DIR");
    std::string jsonlPath =
        std::string(dir && *dir ? dir : ".") + "/bench_explore.jsonl";
    std::ofstream jsonl(jsonlPath);

    std::cout << "Coverage-guided exploration vs the static "
                 "Section-7.4 suite (equal run budget, PE on)\n\n";

    BenchJson json("bench_explore");
    json.setConfig(
        core::PeConfig::forMode(core::PeMode::Standard));

    Table table({"App", "Budget", "Static suite", "Uniform-random",
                 "Rare-edge", "Rare+priors", "Path-objective",
                 "Rare-edge (PE off)",
                 "Sharded x" + std::to_string(shardCount),
                 "TCP x" + std::to_string(shardCount)});
    bool guidedMatches = true;
    int priorWins = 0;      //!< apps where prior-seeded >= uniform
    int pathWins = 0;       //!< apps where path cover >= rare+trace
    bool pathEdgesOk = true; //!< path edges within 5% of rare, always
    uint64_t totalRuns = 0;
    auto wallStart = std::chrono::steady_clock::now();
    for (const char *name : kWorkloads) {
        App app = loadApp(name);
        uint64_t armBudget =
            customBudget ? budget
                         : app.workload->benignInputs.size();

        Arm stat = runStatic(app, armBudget);
        Arm uniform = runExplorer(
            app, explore::SchedulePolicy::UniformRandom,
            core::PeMode::Standard, armBudget, &jsonl);
        Arm rare = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl);
        // Cold-start comparison: identical configuration to `rare`
        // except the scheduler's initial energy distribution comes
        // from the static branch priors (analysis::BranchPriors).
        Arm prior = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl,
            /*staticPriors=*/true);
        // Path-objective arm vs its measurement twin: both carry the
        // edge trace (so completion is observable on both sides);
        // only the arm under test folds it into scheduling energy.
        Arm rareTrace = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl,
            /*staticPriors=*/false, /*recordTrace=*/true);
        Arm path = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl,
            /*staticPriors=*/false, /*recordTrace=*/true,
            /*pathObjective=*/true);
        Arm rareOff = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Off, armBudget, &jsonl);
        // Equal total budget, split over a worker-process fleet.
        Arm sharded = runSharded(app, shardCount, armBudget, &jsonl);
        // The same fleet once more, over TCP loopback.
        Arm tcp = runTcp(app, shardCount, armBudget, &jsonl);

        auto cell = [](const Arm &a) {
            return std::to_string(a.edges) + " edges / " +
                   std::to_string(a.runs) + " runs";
        };
        table.addRow({name, std::to_string(armBudget), cell(stat),
                      cell(uniform), cell(rare), cell(prior),
                      cell(path) + " / cover " +
                          std::to_string(path.coverCompleted) + "/" +
                          std::to_string(path.coverSize),
                      cell(rareOff),
                      cell(sharded) + " / " +
                          fmtDouble(sharded.wallSeconds, 2) + "s",
                      cell(tcp) + " / " +
                          fmtDouble(tcp.wallSeconds, 2) + "s"});

        guidedMatches = guidedMatches && rare.edges >= stat.edges &&
                        rare.runs <= stat.runs;
        if (prior.edges >= uniform.edges)
            ++priorWins;
        if (path.coverCompleted >= rareTrace.coverCompleted)
            ++pathWins;
        // The objective must not trade away edge coverage: within 5%
        // of the plain rare arm, on every app.
        pathEdgesOk =
            pathEdgesOk && path.edges * 100 >= rare.edges * 95;

        totalRuns += stat.runs + uniform.runs + rare.runs +
                     prior.runs + rareTrace.runs + path.runs +
                     rareOff.runs + sharded.runs + tcp.runs;

        std::string prefix = std::string(name) + "_";
        json.setInt(prefix + "budget", armBudget);
        json.setInt(prefix + "static_edges", stat.edges);
        json.setInt(prefix + "uniform_edges", uniform.edges);
        json.setInt(prefix + "rare_edges", rare.edges);
        json.setInt(prefix + "prior_edges", prior.edges);
        json.setInt(prefix + "rare_edges_pe_off", rareOff.edges);
        json.setInt(prefix + "rare_runs", rare.runs);
        json.setInt(prefix + "rare_corpus", rare.corpus);
        json.set(prefix + "rare_wall_seconds", rare.wallSeconds);
        json.setInt(prefix + "prime_paths", path.primePaths);
        json.setInt(prefix + "path_cover_size", path.coverSize);
        json.setInt(prefix + "path_edges", path.edges);
        json.setInt(prefix + "path_paths_completed",
                    path.pathsCompleted);
        json.setInt(prefix + "path_cover_completed",
                    path.coverCompleted);
        json.setInt(prefix + "rare_cover_completed",
                    rareTrace.coverCompleted);
        json.setInt(prefix + "sharded_edges", sharded.edges);
        json.setInt(prefix + "sharded_runs", sharded.runs);
        json.setInt(prefix + "sharded_corpus", sharded.corpus);
        json.set(prefix + "sharded_wall_seconds",
                 sharded.wallSeconds);
        json.set(prefix + "sharded_frontier_digest",
                 fmtHex(sharded.frontierDigest));
        json.set(prefix + "sharded_corpus_digest",
                 fmtHex(sharded.corpusDigest));
        json.set(prefix + "sharded_plan_digest",
                 fmtHex(sharded.planDigest));
        json.setInt(prefix + "tcp_edges", tcp.edges);
        json.setInt(prefix + "tcp_runs", tcp.runs);
        json.set(prefix + "tcp_wall_seconds", tcp.wallSeconds);
        json.set(prefix + "tcp_frontier_digest",
                 fmtHex(tcp.frontierDigest));
        json.set(prefix + "tcp_corpus_digest",
                 fmtHex(tcp.corpusDigest));
        // The cross-transport witness: same plan, same bytes.
        json.setInt(prefix + "tcp_matches_sharded",
                    (tcp.frontierDigest == sharded.frontierDigest &&
                     tcp.corpusDigest == sharded.corpusDigest)
                        ? 1
                        : 0);
    }
    table.print(std::cout);

    std::cout << "\nGuided (rare-edge, PE on) "
              << (guidedMatches ? "matches or beats"
                                : "DOES NOT match")
              << " the static suite on every app at <= the same "
                 "number of runs.\n"
              << "Prior-seeded cold start matches or beats uniform "
                 "on "
              << priorWins << "/" << std::size(kWorkloads)
              << " apps.\n"
              << "Path-objective matches or beats rare-edge cover "
                 "completion on "
              << pathWins << "/" << std::size(kWorkloads)
              << " apps (edge coverage within 5%: "
              << (pathEdgesOk ? "yes" : "NO") << ").\n"
              << "JSONL stream: " << jsonlPath << "\n";

    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wallStart;
    std::cout << "Throughput: " << totalRuns << " monitored runs in "
              << fmtDouble(wall.count(), 2) << "s ("
              << fmtDouble(totalRuns / wall.count(), 2)
              << " runs/s).\n";

    json.setInt("sharded_shards", shardCount);
    json.setInt("guided_matches_static", guidedMatches ? 1 : 0);
    json.setInt("prior_beats_uniform_apps", priorWins);
    json.setInt("path_beats_rare_apps", pathWins);
    json.setInt("path_edges_within_5pct", pathEdgesOk ? 1 : 0);
    json.setInt("custom_budget", customBudget ? 1 : 0);
    json.setInt("total_runs", totalRuns);
    json.set("wall_seconds", wall.count());
    json.set("runs_per_second", totalRuns / wall.count());
    json.write();

    // The suite-parity, prior-vs-uniform and path-vs-rare gates are
    // part of the bench contract only at the default budget; tiny
    // smoke budgets just record numbers.
    return (!customBudget &&
            (!guidedMatches || priorWins < 2 || pathWins < 2 ||
             !pathEdgesOk))
               ? 1
               : 0;
}
