/**
 * @file
 * Coverage-per-run: guided exploration vs the paper's static suite.
 *
 * Section 7.4 replays a fixed 50-input suite per application and
 * reports the cumulative coverage PathExpander adds.  This bench asks
 * the next question: under an *equal run budget*, does choosing the
 * inputs (coverage-guided exploration over src/explore/) beat
 * replaying the static suite?  Three arms per workload, all with PE
 * on (Standard mode) plus a PE-off ablation of the guided arm:
 *
 *   static   — the workload's benign suite replayed, coverage unioned
 *              (exactly the Section-7.4 experiment);
 *   uniform  — greedy-random exploration: corpus seeded with a few
 *              suite inputs, parents picked uniformly;
 *   rare     — the same, but rare-edge-weighted scheduling.
 *
 * The headline claim: the guided explorer matches or beats the
 * static suite's cumulative coverage at <= the same number of runs.
 * Progress streams to bench_explore.jsonl (one JSONL stream, all
 * arms) for coverage-vs-budget curves.
 *
 * PE_EXPLORE_RUNS overrides the per-arm run budget (CI smoke runs a
 * tiny budget; the suite-parity gate only applies at the default).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>

#include "bench_util.hh"
#include "src/explore/explorer.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

const char *const kWorkloads[] = {"schedule", "schedule2",
                                  "print_tokens"};

struct Arm
{
    uint64_t runs = 0;
    size_t edges = 0;       //!< frontier combined edges
    size_t corpus = 0;
};

Arm
runExplorer(const App &app, explore::SchedulePolicy policy,
            core::PeMode mode, uint64_t budget, std::ostream *jsonl,
            bool staticPriors = false)
{
    explore::ExploreOptions opts;
    opts.config = appConfig(app, mode);
    opts.policy = policy;
    opts.budget.maxRuns = budget;
    opts.batchSize = 8;
    opts.jsonl = jsonl;
    opts.useStaticPriors = staticPriors;
    opts.label = app.workload->name + "/" +
                 explore::schedulePolicyName(policy) + "/" +
                 core::peModeName(mode) +
                 (staticPriors ? "/priors" : "");

    // Seed with a few suite inputs only: the explorer must *find*
    // the rest of the behavior the full static suite was given.
    std::vector<std::vector<int32_t>> seeds(
        app.workload->benignInputs.begin(),
        app.workload->benignInputs.begin() +
            std::min<size_t>(
                {app.workload->benignInputs.size(), 5, budget}));

    explore::Explorer explorer(app.program, seeds, opts);
    auto result = explorer.run();
    return Arm{result.runs,
               explorer.corpus().frontier().combinedCovered(),
               explorer.corpus().size()};
}

Arm
runStatic(const App &app, uint64_t budget)
{
    std::vector<core::CampaignJob> jobs;
    size_t n = std::min<uint64_t>(app.workload->benignInputs.size(),
                                  budget);
    for (size_t i = 0; i < n; ++i)
        jobs.push_back(makeJob(app, core::PeMode::Standard,
                               Tool::None, i));
    auto outcome = core::runCampaign(jobs);
    auto merged = core::mergeCoverage(app.program, outcome.results);
    return Arm{jobs.size(), merged.combinedCovered(), n};
}

} // namespace

int
main()
{
    setQuiet(true);

    uint64_t budget = 0;
    bool customBudget = false;
    if (const char *env = std::getenv("PE_EXPLORE_RUNS");
        env && *env) {
        budget = std::strtoull(env, nullptr, 10);
        customBudget = true;
    }

    const char *dir = std::getenv("PE_BENCH_JSON_DIR");
    std::string jsonlPath =
        std::string(dir && *dir ? dir : ".") + "/bench_explore.jsonl";
    std::ofstream jsonl(jsonlPath);

    std::cout << "Coverage-guided exploration vs the static "
                 "Section-7.4 suite (equal run budget, PE on)\n\n";

    BenchJson json("bench_explore");
    json.setConfig(
        core::PeConfig::forMode(core::PeMode::Standard));

    Table table({"App", "Budget", "Static suite", "Uniform-random",
                 "Rare-edge", "Rare+priors", "Rare-edge (PE off)"});
    bool guidedMatches = true;
    int priorWins = 0;      //!< apps where prior-seeded >= uniform
    uint64_t totalRuns = 0;
    auto wallStart = std::chrono::steady_clock::now();
    for (const char *name : kWorkloads) {
        App app = loadApp(name);
        uint64_t armBudget =
            customBudget ? budget
                         : app.workload->benignInputs.size();

        Arm stat = runStatic(app, armBudget);
        Arm uniform = runExplorer(
            app, explore::SchedulePolicy::UniformRandom,
            core::PeMode::Standard, armBudget, &jsonl);
        Arm rare = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl);
        // Cold-start comparison: identical configuration to `rare`
        // except the scheduler's initial energy distribution comes
        // from the static branch priors (analysis::BranchPriors).
        Arm prior = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Standard, armBudget, &jsonl,
            /*staticPriors=*/true);
        Arm rareOff = runExplorer(
            app, explore::SchedulePolicy::RareEdgeWeighted,
            core::PeMode::Off, armBudget, &jsonl);

        auto cell = [](const Arm &a) {
            return std::to_string(a.edges) + " edges / " +
                   std::to_string(a.runs) + " runs";
        };
        table.addRow({name, std::to_string(armBudget), cell(stat),
                      cell(uniform), cell(rare), cell(prior),
                      cell(rareOff)});

        guidedMatches = guidedMatches && rare.edges >= stat.edges &&
                        rare.runs <= stat.runs;
        if (prior.edges >= uniform.edges)
            ++priorWins;

        totalRuns += stat.runs + uniform.runs + rare.runs +
                     prior.runs + rareOff.runs;

        std::string prefix = std::string(name) + "_";
        json.setInt(prefix + "budget", armBudget);
        json.setInt(prefix + "static_edges", stat.edges);
        json.setInt(prefix + "uniform_edges", uniform.edges);
        json.setInt(prefix + "rare_edges", rare.edges);
        json.setInt(prefix + "prior_edges", prior.edges);
        json.setInt(prefix + "rare_edges_pe_off", rareOff.edges);
        json.setInt(prefix + "rare_runs", rare.runs);
        json.setInt(prefix + "rare_corpus", rare.corpus);
    }
    table.print(std::cout);

    std::cout << "\nGuided (rare-edge, PE on) "
              << (guidedMatches ? "matches or beats"
                                : "DOES NOT match")
              << " the static suite on every app at <= the same "
                 "number of runs.\n"
              << "Prior-seeded cold start matches or beats uniform "
                 "on "
              << priorWins << "/" << std::size(kWorkloads)
              << " apps.\n"
              << "JSONL stream: " << jsonlPath << "\n";

    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wallStart;
    std::cout << "Throughput: " << totalRuns << " monitored runs in "
              << fmtDouble(wall.count(), 2) << "s ("
              << fmtDouble(totalRuns / wall.count(), 2)
              << " runs/s).\n";

    json.setInt("guided_matches_static", guidedMatches ? 1 : 0);
    json.setInt("prior_beats_uniform_apps", priorWins);
    json.setInt("custom_budget", customBudget ? 1 : 0);
    json.setInt("total_runs", totalRuns);
    json.set("wall_seconds", wall.count());
    json.set("runs_per_second", totalRuns / wall.count());
    json.write();

    // The suite-parity and prior-vs-uniform gates are part of the
    // bench contract only at the default budget; tiny smoke budgets
    // just record numbers.
    return (!customBudget && (!guidedMatches || priorWins < 2)) ? 1
                                                                : 0;
}
