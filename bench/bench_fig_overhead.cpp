/**
 * @file
 * Reproduces the Section-7.5 overhead results: execution overhead of
 * PathExpander relative to the native (baseline) run, for
 *
 *  - the standard (single-core checkpoint/rollback) configuration,
 *  - the CMP optimization (paper: < 9.9%),
 *  - the pure-software PIN-based implementation (paper: 3-4 orders
 *    of magnitude more overhead than the hardware design).
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.5: execution overhead vs native baseline\n"
              << "(default PathExpander parameters, no detector)\n\n";

    Table table({"Application", "Base Mcycles", "Standard", "CMP",
                 "Idle-core util", "Software", "SW/CMP ratio"});

    double cmpSum = 0;
    double stdSum = 0;
    double swSum = 0;
    int n = 0;

    for (const auto &name : workloads::workloadNames()) {
        App app = loadApp(name);
        auto base = runApp(app, core::PeMode::Off, Tool::None);
        auto std_ = runApp(app, core::PeMode::Standard, Tool::None);
        auto cmp = runApp(app, core::PeMode::Cmp, Tool::None);
        auto sw = runApp(app, core::PeMode::Standard, Tool::None, 0,
                         true, /*software=*/true);

        // The CMP option runs on the 4-core machine (Table 2: 3-cycle
        // L1), so its overhead is measured against a baseline on the
        // same hardware.
        auto cmpBaseCfg = appConfig(app, core::PeMode::Off);
        cmpBaseCfg.timing = sim::TimingConfig::cmpConfig();
        auto baseCmp = runAppCfg(app, cmpBaseCfg, Tool::None);

        auto overheadVs = [](const core::RunResult &r,
                             const core::RunResult &b) {
            return (static_cast<double>(r.cycles) -
                    static_cast<double>(b.cycles)) /
                   static_cast<double>(b.cycles);
        };
        double oStd = overheadVs(std_, base);
        double oCmp = overheadVs(cmp, baseCmp);
        double oSw = overheadVs(sw, base);
        stdSum += oStd;
        cmpSum += oCmp;
        swSum += oSw;
        ++n;

        // How much of the idle cores' time the NT work used (mean of
        // cores 1..3 relative to the primary's completion time).
        double util = 0;
        if (cmp.coreCycles.size() > 1 && cmp.cycles > 0) {
            for (size_t c = 1; c < cmp.coreCycles.size(); ++c)
                util += static_cast<double>(cmp.coreCycles[c]);
            util /= static_cast<double>(cmp.coreCycles.size() - 1) *
                    static_cast<double>(cmp.cycles);
        }

        table.addRow({name,
                      fmtDouble(static_cast<double>(base.cycles) / 1e6,
                                2),
                      fmtPercent(oStd), fmtPercent(oCmp),
                      fmtPercent(util), fmtPercent(oSw),
                      fmtDouble(oCmp > 0 ? oSw / oCmp : 0.0, 0) + "x"});
    }
    table.addSeparator();
    table.addRow({"Average", "", fmtPercent(stdSum / n),
                  fmtPercent(cmpSum / n), "", fmtPercent(swSum / n),
                  fmtDouble(cmpSum > 0 ? swSum / cmpSum : 0.0, 0) +
                      "x"});
    table.print(std::cout);

    std::cout << "\nPaper: CMP overhead < 9.9%; the software "
                 "implementation is 3-4 orders of magnitude worse "
                 "than the hardware design.\n"
              << "Measured averages: standard "
              << fmtPercent(stdSum / n) << ", CMP "
              << fmtPercent(cmpSum / n) << ", software "
              << fmtPercent(swSum / n) << " (ratio "
              << fmtDouble(cmpSum > 0 ? swSum / cmpSum : 0.0, 0)
              << "x).\n";
    return 0;
}
