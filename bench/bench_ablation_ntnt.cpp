/**
 * @file
 * Reproduces the Section-4.2 design-choice experiment: should an
 * NT-Path explore non-taken edges at the branches *it* encounters?
 *
 * The paper's experiment on 164.gzip: following non-taken edges
 * inside NT-Paths enlarges branch coverage only slightly (about 2%)
 * but raises the fraction of NT-Paths that crash before 1000
 * instructions from 5% to 16% — much worse state consistency — so
 * PathExpander follows only the actual branch outcomes inside an
 * NT-Path.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Section 4.2 ablation: following non-taken edges "
                 "inside NT-Paths\n\n";

    Table table({"Application", "Variant", "Coverage", "Crash ratio",
                 "Stopped early"});

    for (const char *name : {"pe_gzip", "pe_go", "pe_vpr"}) {
        App app = loadApp(name);
        for (bool follow : {false, true}) {
            auto cfg = appConfig(app, core::PeMode::Standard);
            cfg.maxNtPathLength = 1000;
            cfg.followNonTakenInNt = follow;
            auto r = runAppCfg(app, cfg, Tool::None);

            double crash = r.ntFraction(core::NtStopCause::Crash);
            double early =
                crash + r.ntFraction(core::NtStopCause::UnsafeEvent);
            table.addRow({name,
                          follow ? "flip cold edges" : "actual outcome",
                          fmtPercent(r.coverage.combinedFraction()),
                          fmtPercent(crash), fmtPercent(early)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper (gzip): flipping non-taken edges inside "
                 "NT-Paths gains ~2% coverage but raises the crash "
                 "ratio from 5% to 16%; PathExpander therefore "
                 "follows actual outcomes.\n";
    return 0;
}
