/**
 * @file
 * Reproduces the Section-7.6 parameter studies: the effect of
 * MaxNTPathLength, NTPathCounterThreshold and MaxNumNTPaths on
 * coverage and overhead.
 *
 * Representative applications: pe_go (compute-bound, long NT-Paths
 * useful), print_tokens2 (Siemens), pe_gzip (unsafe-event-bound).
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

const char *appNames[] = {"pe_go", "print_tokens2", "pe_gzip"};

double
overheadOf(const core::RunResult &r, uint64_t baseCycles)
{
    return (static_cast<double>(r.cycles) -
            static_cast<double>(baseCycles)) /
           static_cast<double>(baseCycles);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.6: parameter sensitivity\n\n";

    for (const char *name : appNames) {
        App app = loadApp(name);
        auto base = runApp(app, core::PeMode::Off, Tool::None);

        std::cout << "== " << name << " ==\n";

        // -- MaxNTPathLength sweep (standard configuration) --
        {
            Table table({"MaxNTPathLength", "Coverage", "NT instrs",
                         "Std overhead"});
            for (uint32_t len : {50u, 100u, 200u, 500u, 1000u, 2000u}) {
                auto cfg = appConfig(app, core::PeMode::Standard);
                cfg.maxNtPathLength = len;
                auto r = runAppCfg(app, cfg, Tool::None);
                table.addRow({std::to_string(len),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntInstructions),
                              fmtPercent(overheadOf(r, base.cycles))});
            }
            table.print(std::cout);
        }

        // -- NTPathCounterThreshold sweep --
        {
            Table table({"NTPathCounterThreshold", "Coverage",
                         "NT-Paths", "Std overhead"});
            for (uint8_t thr : {1, 2, 5, 10, 15}) {
                auto cfg = appConfig(app, core::PeMode::Standard);
                cfg.ntPathCounterThreshold = thr;
                auto r = runAppCfg(app, cfg, Tool::None);
                table.addRow({std::to_string(thr),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSpawned),
                              fmtPercent(overheadOf(r, base.cycles))});
            }
            table.print(std::cout);
        }

        // -- BTB geometry sweep (hardware-cost knob; the paper fixes
        //    a 2K-entry 2-way BTB with 4-bit counters) --
        {
            Table table({"BTB entries x bits", "Coverage", "NT-Paths",
                         "Std overhead"});
            struct Geo
            {
                uint32_t entries;
                uint8_t bits;
            };
            for (Geo g : {Geo{256, 4}, Geo{1024, 4}, Geo{2048, 2},
                          Geo{2048, 4}, Geo{4096, 8}}) {
                auto cfg = appConfig(app, core::PeMode::Standard);
                cfg.btbParams.entries = g.entries;
                cfg.btbParams.counterBits = g.bits;
                auto r = runAppCfg(app, cfg, Tool::None);
                table.addRow({std::to_string(g.entries) + " x " +
                                  std::to_string(g.bits) + "b",
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSpawned),
                              fmtPercent(overheadOf(r, base.cycles))});
            }
            table.print(std::cout);
        }

        // -- MaxNumNTPaths sweep (CMP option) --
        {
            auto cmpBaseCfg = appConfig(app, core::PeMode::Off);
            cmpBaseCfg.timing = sim::TimingConfig::cmpConfig();
            auto cmpBase = runAppCfg(app, cmpBaseCfg, Tool::None);

            Table table({"MaxNumNTPaths", "Coverage", "Skipped busy",
                         "CMP overhead"});
            for (uint32_t cap : {1u, 2u, 4u, 8u, 16u, 32u}) {
                auto cfg = appConfig(app, core::PeMode::Cmp);
                cfg.maxNumNtPaths = cap;
                auto r = runAppCfg(app, cfg, Tool::None);
                table.addRow({std::to_string(cap),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSkippedBusy),
                              fmtPercent(overheadOf(r,
                                                    cmpBase.cycles))});
            }
            table.print(std::cout);
        }
        std::cout << "\n";
    }

    std::cout << "Paper: longer NT-Paths and lower thresholds raise "
                 "coverage at higher cost; the defaults (1000/5/32) "
                 "balance the two.\n";
    return 0;
}
