/**
 * @file
 * Reproduces the Section-7.6 parameter studies: the effect of
 * MaxNTPathLength, NTPathCounterThreshold and MaxNumNTPaths on
 * coverage and overhead.
 *
 * Representative applications: pe_go (compute-bound, long NT-Paths
 * useful), print_tokens2 (Siemens), pe_gzip (unsafe-event-bound).
 *
 * All sweep points of one application are independent monitored runs,
 * so each app's whole grid executes as one parallel campaign; the
 * tables are then printed from the results in job order.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/core/campaign.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

const char *appNames[] = {"pe_go", "print_tokens2", "pe_gzip"};

const uint32_t lenSweep[] = {50, 100, 200, 500, 1000, 2000};
const uint8_t thrSweep[] = {1, 2, 5, 10, 15};

struct Geo
{
    uint32_t entries;
    uint8_t bits;
};
const Geo btbSweep[] = {{256, 4}, {1024, 4}, {2048, 2}, {2048, 4},
                        {4096, 8}};

const uint32_t capSweep[] = {1, 2, 4, 8, 16, 32};

double
overheadOf(const core::RunResult &r, uint64_t baseCycles)
{
    return (static_cast<double>(r.cycles) -
            static_cast<double>(baseCycles)) /
           static_cast<double>(baseCycles);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.6: parameter sensitivity\n\n";

    double totalWall = 0;
    uint64_t totalJobs = 0;
    unsigned threadsUsed = 1;

    for (const char *name : appNames) {
        App app = loadApp(name);

        // One campaign per app: the two baselines, then each sweep's
        // points in order.
        std::vector<core::CampaignJob> jobs;
        jobs.push_back(makeJob(app, core::PeMode::Off, Tool::None));

        auto cmpBaseCfg = appConfig(app, core::PeMode::Off);
        cmpBaseCfg.timing = sim::TimingConfig::cmpConfig();
        jobs.push_back(makeJobCfg(app, cmpBaseCfg, Tool::None));

        for (uint32_t len : lenSweep) {
            auto cfg = appConfig(app, core::PeMode::Standard);
            cfg.maxNtPathLength = len;
            jobs.push_back(makeJobCfg(app, cfg, Tool::None));
        }
        for (uint8_t thr : thrSweep) {
            auto cfg = appConfig(app, core::PeMode::Standard);
            cfg.ntPathCounterThreshold = thr;
            jobs.push_back(makeJobCfg(app, cfg, Tool::None));
        }
        for (Geo g : btbSweep) {
            auto cfg = appConfig(app, core::PeMode::Standard);
            cfg.btbParams.entries = g.entries;
            cfg.btbParams.counterBits = g.bits;
            jobs.push_back(makeJobCfg(app, cfg, Tool::None));
        }
        for (uint32_t cap : capSweep) {
            auto cfg = appConfig(app, core::PeMode::Cmp);
            cfg.maxNumNtPaths = cap;
            jobs.push_back(makeJobCfg(app, cfg, Tool::None));
        }

        auto campaign = core::runCampaign(jobs);
        totalWall += campaign.wallSeconds;
        totalJobs += jobs.size();
        threadsUsed = campaign.threadsUsed;

        const auto &res = campaign.results;
        uint64_t baseCycles = res[0].cycles;
        uint64_t cmpBaseCycles = res[1].cycles;
        size_t at = 2;

        std::cout << "== " << name << " ==\n";

        {
            Table table({"MaxNTPathLength", "Coverage", "NT instrs",
                         "Std overhead"});
            for (uint32_t len : lenSweep) {
                const auto &r = res[at++];
                table.addRow({std::to_string(len),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntInstructions),
                              fmtPercent(overheadOf(r, baseCycles))});
            }
            table.print(std::cout);
        }

        {
            Table table({"NTPathCounterThreshold", "Coverage",
                         "NT-Paths", "Std overhead"});
            for (uint8_t thr : thrSweep) {
                const auto &r = res[at++];
                table.addRow({std::to_string(thr),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSpawned),
                              fmtPercent(overheadOf(r, baseCycles))});
            }
            table.print(std::cout);
        }

        // BTB geometry sweep (hardware-cost knob; the paper fixes a
        // 2K-entry 2-way BTB with 4-bit counters).
        {
            Table table({"BTB entries x bits", "Coverage", "NT-Paths",
                         "Std overhead"});
            for (Geo g : btbSweep) {
                const auto &r = res[at++];
                table.addRow({std::to_string(g.entries) + " x " +
                                  std::to_string(g.bits) + "b",
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSpawned),
                              fmtPercent(overheadOf(r, baseCycles))});
            }
            table.print(std::cout);
        }

        {
            Table table({"MaxNumNTPaths", "Coverage", "Skipped busy",
                         "CMP overhead"});
            for (uint32_t cap : capSweep) {
                const auto &r = res[at++];
                table.addRow({std::to_string(cap),
                              fmtPercent(r.coverage.combinedFraction()),
                              std::to_string(r.ntPathsSkippedBusy),
                              fmtPercent(overheadOf(r,
                                                    cmpBaseCycles))});
            }
            table.print(std::cout);
        }
        std::cout << "\n";
    }

    std::cout << "Paper: longer NT-Paths and lower thresholds raise "
                 "coverage at higher cost; the defaults (1000/5/32) "
                 "balance the two.\n"
              << "Sweep campaigns: " << totalJobs << " runs in "
              << fmtDouble(totalWall, 2) << "s on " << threadsUsed
              << " threads.\n";

    BenchJson json("bench_fig_params");
    json.setInt("jobs", totalJobs);
    json.setInt("threads", threadsUsed);
    json.set("wall_seconds", totalWall);
    json.write();
    return 0;
}
