/**
 * @file
 * Reproduces Table 5: "False-positive pruning by key variable value
 * fix" — false positives and bugs detected before/after the
 * Section-4.4 consistency fixing, for the memory checkers.
 *
 * The paper reports the fixes cutting false positives from 13 to 4
 * on average, and enabling detection of the man bug.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Table 5: False positives and bugs detected before/"
                 "after key-variable consistency fixing\n\n";

    const char *apps[] = {"pe_go", "pe_bc", "pe_man", "print_tokens2"};
    const Tool tools[] = {Tool::Ccured, Tool::Iwatcher};

    Table table({"Detection Method", "Application", "FP Before",
                 "FP After", "Bugs Before", "Bugs After"});

    double fpBeforeSum = 0;
    double fpAfterSum = 0;
    int rows = 0;

    for (Tool tool : tools) {
        for (const char *name : apps) {
            App app = loadApp(name);
            auto before = runApp(app, core::PeMode::Standard, tool, 0,
                                 /*fixing=*/false);
            auto after = runApp(app, core::PeMode::Standard, tool, 0,
                                /*fixing=*/true);
            auto ab = analyze(app, before, tool);
            auto aa = analyze(app, after, tool);

            fpBeforeSum += ab.falsePositiveSites;
            fpAfterSum += aa.falsePositiveSites;
            ++rows;

            table.addRow({toolName(tool), name,
                          std::to_string(ab.falsePositiveSites),
                          std::to_string(aa.falsePositiveSites),
                          std::to_string(ab.numDetected),
                          std::to_string(aa.numDetected)});
        }
        if (tool == Tool::Ccured)
            table.addSeparator();
    }
    table.addSeparator();
    table.addRow({"Average", "",
                  fmtDouble(fpBeforeSum / rows, 1),
                  fmtDouble(fpAfterSum / rows, 1), "", ""});
    table.print(std::cout);

    std::cout << "\nPaper: fixing prunes false positives from 13 to 4 "
                 "on average and enables detecting the man bug.\n";
    return 0;
}
