/**
 * @file
 * Reproduces the Section-7.4 result: cumulative branch coverage as
 * test cases accumulate, baseline vs PathExpander ("Even when
 * multiple inputs are used for each application, the cumulative
 * branch coverage improvement by PathExpander is still significant,
 * by 19% on average").
 *
 * Each application runs its 50 generated inputs; coverage sets are
 * unioned across runs.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/coverage/coverage.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.4: cumulative branch coverage over 50 "
                 "inputs, baseline vs PathExpander\n\n";

    const size_t checkpoints[] = {1, 5, 10, 25, 50};

    double finalBaseSum = 0;
    double finalPeSum = 0;
    int napps = 0;

    for (const auto &name : workloads::workloadNames()) {
        App app = loadApp(name);
        size_t inputs = app.workload->benignInputs.size();

        coverage::BranchCoverage cumBase(app.program);
        coverage::BranchCoverage cumPe(app.program);

        std::cout << "== " << name << " ==\n";
        Table table({"Inputs", "Baseline (cumulative)",
                     "PathExpander (cumulative)", "Improvement"});

        size_t next = 0;
        for (size_t i = 0; i < inputs; ++i) {
            auto base = runApp(app, core::PeMode::Off, Tool::None, i);
            auto pe = runApp(app, core::PeMode::Standard, Tool::None,
                             i);
            cumBase.mergeFrom(base.coverage);
            cumPe.mergeFrom(pe.coverage);

            if (next < std::size(checkpoints) &&
                i + 1 == checkpoints[next]) {
                double b = cumBase.takenFraction();
                double p = cumPe.combinedFraction();
                table.addRow({std::to_string(i + 1), fmtPercent(b),
                              fmtPercent(p),
                              "+" + fmtDouble((p - b) * 100, 1) +
                                  "pp"});
                ++next;
            }
        }
        table.print(std::cout);
        std::cout << "\n";

        finalBaseSum += cumBase.takenFraction();
        finalPeSum += cumPe.combinedFraction();
        ++napps;
    }

    double b = finalBaseSum / napps;
    double p = finalPeSum / napps;
    std::cout << "Average cumulative coverage with 50 inputs: "
              << fmtPercent(b) << " baseline vs " << fmtPercent(p)
              << " with PathExpander (improvement "
              << fmtDouble((p - b) * 100, 1) << "pp).\n"
              << "Paper: cumulative improvement of 19% on average.\n";
    return 0;
}
