/**
 * @file
 * Reproduces the Section-7.4 result: cumulative branch coverage as
 * test cases accumulate, baseline vs PathExpander ("Even when
 * multiple inputs are used for each application, the cumulative
 * branch coverage improvement by PathExpander is still significant,
 * by 19% on average").
 *
 * Each application runs its 50 generated inputs; coverage sets are
 * unioned across runs.  The whole experiment — every (app, input,
 * mode) triple — is one campaign: it runs once serially and once on
 * the worker pool, verifies the two are bit-identical (digest,
 * cycles, coverage), and reports the parallel speedup.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/core/campaign.hh"
#include "src/coverage/coverage.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

namespace
{

bool
identicalRuns(const core::RunResult &a, const core::RunResult &b)
{
    return a.memoryDigest == b.memoryDigest && a.cycles == b.cycles &&
           a.takenInstructions == b.takenInstructions &&
           a.ntInstructions == b.ntInstructions &&
           a.coverage.takenCovered() == b.coverage.takenCovered() &&
           a.coverage.combinedCovered() == b.coverage.combinedCovered();
}

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.4: cumulative branch coverage over 50 "
                 "inputs, baseline vs PathExpander\n\n";

    const size_t checkpoints[] = {1, 5, 10, 25, 50};

    // Compile every app up front, then lay out one job vector:
    // per app, all baseline runs followed by all PathExpander runs.
    auto names = workloads::workloadNames();
    std::vector<App> apps;
    apps.reserve(names.size());
    std::vector<size_t> firstJob;   //!< app -> index of its first job
    std::vector<core::CampaignJob> jobs;
    for (const auto &name : names) {
        apps.push_back(loadApp(name));
        const App &app = apps.back();
        firstJob.push_back(jobs.size());
        size_t inputs = app.workload->benignInputs.size();
        for (size_t i = 0; i < inputs; ++i)
            jobs.push_back(makeJob(app, core::PeMode::Off, Tool::None,
                                   i));
        for (size_t i = 0; i < inputs; ++i)
            jobs.push_back(makeJob(app, core::PeMode::Standard,
                                   Tool::None, i));
    }

    auto serial = core::runCampaign(jobs, core::campaignThreads(1));
    auto parallel = core::runCampaign(jobs, {});

    bool identical = true;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (!identicalRuns(serial.results[i], parallel.results[i])) {
            identical = false;
            std::cout << "MISMATCH: job " << i
                      << " differs between serial and parallel runs\n";
        }
    }

    double finalBaseSum = 0;
    double finalPeSum = 0;
    int napps = 0;

    for (size_t a = 0; a < apps.size(); ++a) {
        const App &app = apps[a];
        size_t inputs = app.workload->benignInputs.size();
        const core::RunResult *base = &parallel.results[firstJob[a]];
        const core::RunResult *pe = base + inputs;

        coverage::BranchCoverage cumBase(app.program);
        coverage::BranchCoverage cumPe(app.program);

        std::cout << "== " << names[a] << " ==\n";
        Table table({"Inputs", "Baseline (cumulative)",
                     "PathExpander (cumulative)", "Improvement"});

        size_t next = 0;
        for (size_t i = 0; i < inputs; ++i) {
            cumBase.mergeFrom(base[i].coverage);
            cumPe.mergeFrom(pe[i].coverage);

            if (next < std::size(checkpoints) &&
                i + 1 == checkpoints[next]) {
                double b = cumBase.takenFraction();
                double p = cumPe.combinedFraction();
                table.addRow({std::to_string(i + 1), fmtPercent(b),
                              fmtPercent(p),
                              "+" + fmtDouble((p - b) * 100, 1) +
                                  "pp"});
                ++next;
            }
        }
        table.print(std::cout);
        std::cout << "\n";

        finalBaseSum += cumBase.takenFraction();
        finalPeSum += cumPe.combinedFraction();
        ++napps;
    }

    double b = finalBaseSum / napps;
    double p = finalPeSum / napps;
    double speedup = parallel.wallSeconds > 0
                         ? serial.wallSeconds / parallel.wallSeconds
                         : 0.0;
    std::cout << "Average cumulative coverage with 50 inputs: "
              << fmtPercent(b) << " baseline vs " << fmtPercent(p)
              << " with PathExpander (improvement "
              << fmtDouble((p - b) * 100, 1) << "pp).\n"
              << "Paper: cumulative improvement of 19% on average.\n\n"
              << "Campaign: " << jobs.size() << " runs; serial "
              << fmtDouble(serial.wallSeconds, 2) << "s vs parallel "
              << fmtDouble(parallel.wallSeconds, 2) << "s on "
              << parallel.threadsUsed << " threads (speedup "
              << fmtDouble(speedup, 2) << "x), results "
              << (identical ? "bit-identical" : "DIVERGENT") << ".\n";

    BenchJson json("bench_fig_cumulative");
    json.setInt("jobs", jobs.size());
    json.setInt("threads", parallel.threadsUsed);
    json.set("wall_seconds_serial", serial.wallSeconds);
    json.set("wall_seconds_parallel", parallel.wallSeconds);
    json.set("parallel_speedup", speedup);
    json.setInt("bit_identical", identical ? 1 : 0);
    json.set("cumulative_coverage_baseline", b);
    json.set("cumulative_coverage_pe", p);
    json.write();

    return identical ? 0 : 1;
}
