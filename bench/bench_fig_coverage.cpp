/**
 * @file
 * Reproduces the Section-7.3 coverage result: branch coverage of one
 * monitored run, baseline vs. PathExpander ("PathExpander increases
 * the code coverage of each test case from 40% to 65% on average").
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Section 7.3: single-input branch coverage, baseline "
                 "vs PathExpander\n\n";

    Table table({"Application", "Edges", "Baseline", "PathExpander",
                 "NT-Paths", "NT-only edges"});

    double baseSum = 0;
    double peSum = 0;
    int n = 0;

    for (const auto &name : workloads::workloadNames()) {
        App app = loadApp(name);
        auto base = runApp(app, core::PeMode::Off, Tool::None);
        auto pe = runApp(app, core::PeMode::Standard, Tool::None);

        baseSum += base.coverage.takenFraction();
        peSum += pe.coverage.combinedFraction();
        ++n;

        table.addRow({name,
                      std::to_string(pe.coverage.totalEdges()),
                      fmtPercent(base.coverage.takenFraction()),
                      fmtPercent(pe.coverage.combinedFraction()),
                      std::to_string(pe.ntPathsSpawned),
                      std::to_string(pe.coverage.ntOnlyCovered())});
    }
    table.addSeparator();
    table.addRow({"Average", "", fmtPercent(baseSum / n),
                  fmtPercent(peSum / n), "", ""});
    table.print(std::cout);

    std::cout << "\nPaper: coverage rises from 40% to 65% on average "
                 "(single input).\n"
              << "Measured: " << fmtPercent(baseSum / n) << " -> "
              << fmtPercent(peSum / n) << ".\n";
    return 0;
}
