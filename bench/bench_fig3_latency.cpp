/**
 * @file
 * Reproduces Figure 3: Crash-Latency and Unsafe-Latency cumulative
 * distributions for 099.go, 164.gzip and 175.vpr.
 *
 * Per the paper's setup (Section 3.2): an NT-Path is spawned at every
 * non-taken branch edge with a zero exercise count, executed without
 * any variable fixing, until it crashes, reaches an unsafe event,
 * reaches the end of the program, or has executed 1000 instructions.
 * The figure plots the fraction of NT-Paths stopped (by crash or
 * unsafe event) before executing a given number of instructions.
 *
 * The paper observes: 65-99% of NT-Paths run the full 1000
 * instructions; go stops early almost never (0.5%), while gzip and
 * vpr stop early mostly on unsafe events.
 */

#include <iostream>

#include "bench_util.hh"
#include "src/support/stats.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/table.hh"

using namespace pe;
using namespace pe::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 3: Crash-Latency and Unsafe-Latency CDFs\n"
              << "(spawn at every zero-count non-taken edge, no "
                 "variable fixing, 1000-instruction cap)\n\n";

    const uint64_t marks[] = {10, 50, 100, 200, 500, 999};

    for (const char *name : {"pe_go", "pe_gzip", "pe_vpr"}) {
        App app = loadApp(name);
        auto cfg = appConfig(app, core::PeMode::Standard);
        cfg.maxNtPathLength = 1000;
        cfg.ntPathCounterThreshold = 1;   // zero-count edges only
        cfg.variableFixing = false;
        core::PathExpanderEngine engine(app.program, cfg, nullptr);
        auto r = engine.run(app.workload->benignInputs[0]);

        Cdf crashCdf;
        Cdf unsafeCdf;
        uint64_t crashes = 0;
        uint64_t unsafes = 0;
        uint64_t ends = 0;
        for (const auto &rec : r.ntRecords) {
            if (rec.cause == core::NtStopCause::Crash) {
                crashCdf.add(rec.length);
                ++crashes;
            } else if (rec.cause == core::NtStopCause::UnsafeEvent) {
                unsafeCdf.add(rec.length);
                ++unsafes;
            } else if (rec.cause == core::NtStopCause::ProgramEnd) {
                ++ends;
            }
        }
        uint64_t total = r.ntRecords.size();
        auto frac = [&](const Cdf &cdf, uint64_t x) {
            if (total == 0)
                return std::string("0.0%");
            double f = static_cast<double>(cdf.count()) *
                       cdf.fractionAtOrBelow(x) /
                       static_cast<double>(total);
            return fmtPercent(f);
        };

        std::cout << "== " << name << " ==  (" << total
                  << " NT-Paths; " << crashes << " crashed, " << unsafes
                  << " unsafe, " << ends << " reached program end)\n";
        Table table({"Stopped before N instr", "Crash", "UnsafeEvents",
                     "Either"});
        for (uint64_t m : marks) {
            double both =
                (total == 0)
                    ? 0.0
                    : (static_cast<double>(crashCdf.count()) *
                           crashCdf.fractionAtOrBelow(m) +
                       static_cast<double>(unsafeCdf.count()) *
                           unsafeCdf.fractionAtOrBelow(m)) /
                          static_cast<double>(total);
            table.addRow({"N = " + std::to_string(m),
                          frac(crashCdf, m), frac(unsafeCdf, m),
                          fmtPercent(both)});
        }
        table.print(std::cout);
        double survive =
            total == 0
                ? 1.0
                : 1.0 - static_cast<double>(crashes + unsafes) /
                            static_cast<double>(total);
        std::cout << "NT-Paths not stopped by crash/unsafe events: "
                  << fmtPercent(survive) << "\n\n";
    }

    std::cout << "Paper: 65-99% of NT-Paths execute at least 1000 "
                 "instructions; only 0.5% of go's NT-Paths stop "
                 "early; gzip/vpr stop early mostly on unsafe "
                 "events.\n";
    return 0;
}
