/**
 * @file
 * Bench helper implementation.
 */

#include "bench_util.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/support/thread_pool.hh"

namespace pe::bench
{

const char *
toolName(Tool tool)
{
    switch (tool) {
      case Tool::None: return "none";
      case Tool::Ccured: return "CCured-like";
      case Tool::Iwatcher: return "iWatcher-like";
      case Tool::Assertions: return "assertions";
    }
    return "?";
}

std::unique_ptr<detect::Detector>
makeDetector(Tool tool)
{
    switch (tool) {
      case Tool::None:
        return nullptr;
      case Tool::Ccured:
        return std::make_unique<detect::BoundsChecker>();
      case Tool::Iwatcher:
        return std::make_unique<detect::WatchChecker>();
      case Tool::Assertions:
        return std::make_unique<detect::AssertChecker>();
    }
    return nullptr;
}

App
loadApp(const std::string &name)
{
    const auto &workload = workloads::getWorkload(name);
    return App{&workload, minic::compile(workload.source, name)};
}

core::PeConfig
appConfig(const App &app, core::PeMode mode)
{
    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = app.workload->maxNtPathLength;
    return cfg;
}

core::RunResult
runApp(const App &app, core::PeMode mode, Tool tool, size_t inputIdx,
       bool fixing, bool software)
{
    pe_assert(inputIdx < app.workload->benignInputs.size(),
              "input index out of range");
    auto cfg = appConfig(app, mode);
    cfg.variableFixing = fixing;
    if (software)
        cfg.costModel = core::CostModelKind::Software;
    auto detector = makeDetector(tool);
    core::PathExpanderEngine engine(app.program, cfg, detector.get());
    return engine.run(app.workload->benignInputs[inputIdx]);
}

core::RunResult
runAppCfg(const App &app, const core::PeConfig &cfg, Tool tool,
          size_t inputIdx)
{
    pe_assert(inputIdx < app.workload->benignInputs.size(),
              "input index out of range");
    auto detector = makeDetector(tool);
    core::PathExpanderEngine engine(app.program, cfg, detector.get());
    return engine.run(app.workload->benignInputs[inputIdx]);
}

core::CampaignJob
makeJob(const App &app, core::PeMode mode, Tool tool, size_t inputIdx,
        bool fixing, bool software)
{
    auto cfg = appConfig(app, mode);
    cfg.variableFixing = fixing;
    if (software)
        cfg.costModel = core::CostModelKind::Software;
    return makeJobCfg(app, cfg, tool, inputIdx);
}

core::CampaignJob
makeJobCfg(const App &app, const core::PeConfig &cfg, Tool tool,
           size_t inputIdx)
{
    pe_assert(inputIdx < app.workload->benignInputs.size(),
              "input index out of range");
    core::CampaignJob job;
    job.program = &app.program;
    job.input = app.workload->benignInputs[inputIdx];
    job.config = cfg;
    if (tool != Tool::None)
        job.detectorFactory = [tool] { return makeDetector(tool); };
    return job;
}

workloads::DetectionAnalysis
analyze(const App &app, const core::RunResult &result, Tool tool)
{
    bool memory = tool == Tool::Ccured || tool == Tool::Iwatcher;
    return workloads::analyzeReports(*app.workload, app.program,
                                     result.monitor, memory);
}

BenchJson::BenchJson(const std::string &benchName)
{
    const char *dir = std::getenv("PE_BENCH_JSON_DIR");
    path = std::string(dir && *dir ? dir : ".") + "/" + benchName +
           ".json";
}

BenchJson::~BenchJson()
{
    if (!written)
        write();
}

void
BenchJson::set(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(9);
    oss << value;
    entries.emplace_back(key, oss.str());
}

void
BenchJson::set(const std::string &key, const std::string &value)
{
    entries.emplace_back(key, "\"" + value + "\"");
}

void
BenchJson::setInt(const std::string &key, uint64_t value)
{
    entries.emplace_back(key, std::to_string(value));
}

void
BenchJson::setConfig(const core::PeConfig &cfg, const std::string &key)
{
    set(key, fmtHex(core::configHash(cfg)));
}

void
BenchJson::write()
{
    written = true;
    // Provenance: what machine parallelism and engine configuration
    // produced these numbers (see the class comment).
    setInt("workers", defaultWorkerCount());
    setConfig(core::PeConfig::forMode(core::PeMode::Standard),
              "default_config_hash");
    std::ofstream out(path);
    if (!out) {
        warn("cannot write bench JSON to ", path);
        return;
    }
    out << "{\n";
    for (size_t i = 0; i < entries.size(); ++i) {
        out << "  \"" << entries[i].first << "\": "
            << entries[i].second
            << (i + 1 < entries.size() ? ",\n" : "\n");
    }
    out << "}\n";
}

} // namespace pe::bench
