/**
 * @file
 * Bench helper implementation.
 */

#include "bench_util.hh"

#include "src/support/status.hh"

namespace pe::bench
{

const char *
toolName(Tool tool)
{
    switch (tool) {
      case Tool::None: return "none";
      case Tool::Ccured: return "CCured-like";
      case Tool::Iwatcher: return "iWatcher-like";
      case Tool::Assertions: return "assertions";
    }
    return "?";
}

std::unique_ptr<detect::Detector>
makeDetector(Tool tool)
{
    switch (tool) {
      case Tool::None:
        return nullptr;
      case Tool::Ccured:
        return std::make_unique<detect::BoundsChecker>();
      case Tool::Iwatcher:
        return std::make_unique<detect::WatchChecker>();
      case Tool::Assertions:
        return std::make_unique<detect::AssertChecker>();
    }
    return nullptr;
}

App
loadApp(const std::string &name)
{
    const auto &workload = workloads::getWorkload(name);
    return App{&workload, minic::compile(workload.source, name)};
}

core::PeConfig
appConfig(const App &app, core::PeMode mode)
{
    auto cfg = core::PeConfig::forMode(mode);
    cfg.maxNtPathLength = app.workload->maxNtPathLength;
    return cfg;
}

core::RunResult
runApp(const App &app, core::PeMode mode, Tool tool, size_t inputIdx,
       bool fixing, bool software)
{
    pe_assert(inputIdx < app.workload->benignInputs.size(),
              "input index out of range");
    auto cfg = appConfig(app, mode);
    cfg.variableFixing = fixing;
    if (software)
        cfg.costModel = core::CostModelKind::Software;
    auto detector = makeDetector(tool);
    core::PathExpanderEngine engine(app.program, cfg, detector.get());
    return engine.run(app.workload->benignInputs[inputIdx]);
}

core::RunResult
runAppCfg(const App &app, const core::PeConfig &cfg, Tool tool,
          size_t inputIdx)
{
    pe_assert(inputIdx < app.workload->benignInputs.size(),
              "input index out of range");
    auto detector = makeDetector(tool);
    core::PathExpanderEngine engine(app.program, cfg, detector.get());
    return engine.run(app.workload->benignInputs[inputIdx]);
}

workloads::DetectionAnalysis
analyze(const App &app, const core::RunResult &result, Tool tool)
{
    bool memory = tool == Tool::Ccured || tool == Tool::Iwatcher;
    return workloads::analyzeReports(*app.workload, app.program,
                                     result.monitor, memory);
}

} // namespace pe::bench
