/**
 * @file
 * The paper's Figure-1 story, end to end: the print_tokens2 v10
 * buffer overrun (an unterminated-quote scan) is invisible to a
 * dynamic memory checker on ordinary inputs, because the buggy path
 * needs a token that starts with a quotation mark.  PathExpander
 * executes that non-taken path in the sandbox and both memory
 * checkers catch the overrun — with the same ordinary input.
 *
 *   $ ./examples/bug_hunt
 */

#include <iostream>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/workloads/analysis.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

void
report(const char *label, const core::RunResult &result,
       const workloads::Workload &workload, const isa::Program &program)
{
    auto analysis =
        workloads::analyzeReports(workload, program, result.monitor,
                                  /*memoryTools=*/true);
    std::cout << "  " << label << ": ";
    if (analysis.numDetected > 0) {
        std::cout << "BUG DETECTED";
        for (const auto &r : result.monitor.distinctReports()) {
            if (program.funcOf(r.pc) == "classify_quoted") {
                std::cout << " (" << detect::reportKindName(r.kind)
                          << " at " << r.site << ")";
                break;
            }
        }
    } else {
        std::cout << "missed";
    }
    std::cout << "  [" << result.ntPathsSpawned << " NT-Paths, "
              << analysis.falsePositiveSites << " false positives]\n";
}

} // namespace

int
main()
{
    std::cout << "Hunting the Figure-1 bug in print_tokens2\n"
              << "=========================================\n\n";

    const auto &workload = workloads::getWorkload("print_tokens2");
    auto program = minic::compile(workload.source, workload.name);

    std::cout << "The bug (print_tokens2 v10, paper Figure 1):\n"
              << "    int classify_quoted() {\n"
              << "        int i = 1;\n"
              << "        while (tok[i] != '\"') {  // no bound "
                 "check\n"
              << "            i = i + 1;\n"
              << "        }\n"
              << "        ...\n\n"
              << "Input: an ordinary token stream with no "
                 "quote-initial tokens.\n\n";

    const auto &input = workload.benignInputs[0];

    for (auto tool : {0, 1}) {
        std::cout << (tool == 0 ? "CCured-like software checker:\n"
                                : "iWatcher-like hardware checker:\n");
        for (auto mode : {core::PeMode::Off, core::PeMode::Standard}) {
            std::unique_ptr<detect::Detector> det;
            if (tool == 0)
                det = std::make_unique<detect::BoundsChecker>();
            else
                det = std::make_unique<detect::WatchChecker>();
            auto cfg = core::PeConfig::forMode(mode);
            cfg.maxNtPathLength = workload.maxNtPathLength;
            core::PathExpanderEngine engine(program, cfg, det.get());
            auto r = engine.run(input);
            report(mode == core::PeMode::Off ? "baseline    "
                                             : "PathExpander",
                   r, workload, program);
        }
        std::cout << "\n";
    }

    std::cout << "As in the paper, the bug needs a special input to "
                 "manifest on the taken\npath -- but PathExpander "
                 "exposes it with the general input by executing\n"
                 "the quote-handling path as an NT-Path.\n";
    return 0;
}
