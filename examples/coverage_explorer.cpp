/**
 * @file
 * Coverage explorer: watch cumulative branch coverage grow as test
 * cases accumulate, with and without PathExpander, on the schedule
 * workload — the Section-7.4 experiment as an interactive-style tool.
 *
 *   $ ./examples/coverage_explorer [workload]
 */

#include <iostream>
#include <string>

#include "src/core/engine.hh"
#include "src/coverage/coverage.hh"
#include "src/minic/compiler.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

std::string
bar(double fraction, int width = 40)
{
    int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(filled, '#') +
           std::string(width - filled, '.');
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "schedule";
    const auto &workload = workloads::getWorkload(name);
    auto program = minic::compile(workload.source, workload.name);

    std::cout << "Cumulative branch coverage on '" << name << "' ("
              << program.numBranches() << " branches, "
              << 2 * program.numBranches() << " edges)\n\n";

    coverage::BranchCoverage cumBase(program);
    coverage::BranchCoverage cumPe(program);

    size_t inputs = std::min<size_t>(workload.benignInputs.size(), 20);
    for (size_t i = 0; i < inputs; ++i) {
        {
            core::PathExpanderEngine engine(
                program, core::PeConfig::forMode(core::PeMode::Off));
            cumBase.mergeFrom(
                engine.run(workload.benignInputs[i]).coverage);
        }
        {
            auto cfg = core::PeConfig::forMode(core::PeMode::Standard);
            cfg.maxNtPathLength = workload.maxNtPathLength;
            core::PathExpanderEngine engine(program, cfg);
            cumPe.mergeFrom(
                engine.run(workload.benignInputs[i]).coverage);
        }
        if (i == 0 || (i + 1) % 5 == 0) {
            std::cout << "after " << (i + 1 < 10 ? " " : "") << i + 1
                      << " input(s):\n"
                      << "  baseline      ["
                      << bar(cumBase.takenFraction()) << "] "
                      << fmtPercent(cumBase.takenFraction()) << "\n"
                      << "  +PathExpander ["
                      << bar(cumPe.combinedFraction()) << "] "
                      << fmtPercent(cumPe.combinedFraction()) << "\n";
        }
    }

    double gap =
        cumPe.combinedFraction() - cumBase.takenFraction();
    std::cout << "\nPathExpander keeps a "
              << fmtDouble(gap * 100, 1)
              << "pp cumulative-coverage lead: the edges it reaches "
                 "need inputs the\ngenerator never produces "
                 "(error handling, rare modes, deep states).\n";
    return 0;
}
