/**
 * @file
 * Coverage explorer: watch cumulative branch coverage grow as test
 * cases accumulate, with and without PathExpander, on the schedule
 * workload — the Section-7.4 experiment as an interactive-style tool.
 *
 * All runs execute as one parallel campaign (core::runCampaign); the
 * accumulation table below merges the job-ordered results, so the
 * output is identical at any worker count.
 *
 *   $ ./examples/coverage_explorer [workload] [--jobs N]
 */

#include <iostream>
#include <string>

#include "src/core/campaign.hh"
#include "src/coverage/coverage.hh"
#include "src/minic/compiler.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

std::string
bar(double fraction, int width = 40)
{
    int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(filled, '#') +
           std::string(width - filled, '.');
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = "schedule";
    unsigned jobsFlag = 0;      // 0 = PE_JOBS / hardware default
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::cerr << "coverage_explorer: --jobs needs a "
                             "value\n";
                return 2;
            }
            jobsFlag = static_cast<unsigned>(std::stoul(argv[++i]));
        } else {
            name = arg;
        }
    }

    const auto &workload = workloads::getWorkload(name);
    auto program = minic::compile(workload.source, workload.name);

    std::cout << "Cumulative branch coverage on '" << name << "' ("
              << program.numBranches() << " branches, "
              << 2 * program.numBranches() << " edges)\n\n";

    // One campaign: per input a baseline job, then its PE twin.
    size_t inputs = std::min<size_t>(workload.benignInputs.size(), 20);
    std::vector<core::CampaignJob> jobs;
    for (size_t i = 0; i < inputs; ++i) {
        core::CampaignJob base;
        base.program = &program;
        base.input = workload.benignInputs[i];
        base.config = core::PeConfig::forMode(core::PeMode::Off);
        jobs.push_back(base);

        core::CampaignJob pe = base;
        pe.config = core::PeConfig::forMode(core::PeMode::Standard);
        pe.config.maxNtPathLength = workload.maxNtPathLength;
        jobs.push_back(pe);
    }
    auto outcome = core::runCampaign(jobs, core::campaignThreads(jobsFlag));

    coverage::BranchCoverage cumBase(program);
    coverage::BranchCoverage cumPe(program);
    for (size_t i = 0; i < inputs; ++i) {
        cumBase.mergeFrom(outcome.results[2 * i].coverage);
        cumPe.mergeFrom(outcome.results[2 * i + 1].coverage);
        if (i == 0 || (i + 1) % 5 == 0) {
            std::cout << "after " << (i + 1 < 10 ? " " : "") << i + 1
                      << " input(s):\n"
                      << "  baseline      ["
                      << bar(cumBase.takenFraction()) << "] "
                      << fmtPercent(cumBase.takenFraction()) << "\n"
                      << "  +PathExpander ["
                      << bar(cumPe.combinedFraction()) << "] "
                      << fmtPercent(cumPe.combinedFraction()) << "\n";
        }
    }

    double gap =
        cumPe.combinedFraction() - cumBase.takenFraction();
    std::cout << "\nPathExpander keeps a "
              << fmtDouble(gap * 100, 1)
              << "pp cumulative-coverage lead: the edges it reaches "
                 "need inputs the\ngenerator never produces "
                 "(error handling, rare modes, deep states).\n"
              << "(campaign: " << jobs.size() << " runs on "
              << outcome.threadsUsed << " worker(s), "
              << fmtDouble(outcome.wallSeconds, 2) << "s)\n";
    return 0;
}
