/**
 * @file
 * pelint — static linter for PE-RISC programs: runs the analysis
 * verifier and the Section-4.4 fix-set checker and reports every
 * finding.
 *
 *   pelint [options] [program.s|program.mc|program.po ...]
 *
 * With no program arguments every registered workload is checked —
 * the CI smoke configuration, expected to report zero errors.
 *
 * Options:
 *   --json        one JSON object on stdout instead of text lines
 *   --no-fixcheck verifier only (skip the fix-set cross-check)
 *   --verbose     also print per-program audit counters in text mode
 *
 * Exit status: 0 when no error-severity finding was produced, 1 when
 * at least one was, 2 on usage/compile errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/cfg.hh"
#include "src/analysis/fixcheck.hh"
#include "src/analysis/primepaths.hh"
#include "src/analysis/regions.hh"
#include "src/analysis/verify.hh"
#include "src/branch/btb.hh"
#include "src/isa/assembler.hh"
#include "src/isa/objfile.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "pelint: " << msg << "\n";
    std::cerr << "usage: pelint [--json] [--no-fixcheck] [--verbose]\n"
                 "              [program.s|program.mc|program.po ...]\n"
                 "With no programs, all registered workloads are "
                 "checked.\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open '" + path + "'").c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Findings and audit counters for one checked program. */
struct LintResult
{
    std::string name;
    std::vector<analysis::Diagnostic> diagnostics;
    size_t errors = 0;
    size_t warnings = 0;
    uint32_t checkedBranches = 0;
    uint32_t derivedSlices = 0;
    uint32_t matchedFixes = 0;
    // Self-pruning eligibility audit (src/analysis/regions.hh),
    // against the paper-default BTB geometry.
    uint32_t condBranches = 0;
    uint32_t eligibleBranches = 0;
    size_t saturableRegions = 0;
    // Prime-path structure (src/analysis/primepaths.hh): how many
    // maximal simple paths the CFG holds, how few of them suffice to
    // cover every intraprocedural edge, and whether the enumeration
    // hit its cap (counts below a truncated enumeration are floors).
    size_t primePaths = 0;
    size_t pathCover = 0;
    bool pathsTruncated = false;
};

LintResult
lint(const isa::Program &program, bool fixcheck)
{
    LintResult res;
    res.name = program.name;
    const analysis::VerifyReport &report =
        analysis::verifyProgram(program);
    res.diagnostics = report.diagnostics;
    if (fixcheck) {
        analysis::FixCheckResult fc = analysis::checkFixSets(program);
        res.checkedBranches = fc.checkedBranches;
        res.derivedSlices = fc.derivedSlices;
        res.matchedFixes = fc.matchedFixes;
        res.diagnostics.insert(res.diagnostics.end(),
                               fc.diagnostics.begin(),
                               fc.diagnostics.end());
    }
    for (const auto &d : res.diagnostics) {
        if (d.severity == analysis::Severity::Error)
            ++res.errors;
        else
            ++res.warnings;
    }

    // How much of the program the self-pruning superblock cache could
    // ever retire: statically eligible branches (conflict-free BTB
    // sets under the default geometry) and the CFG regions they end.
    const branch::BtbParams btb;
    const analysis::SaturationEligibility elig =
        analysis::computeSaturationEligibility(
            program, btb.entries / btb.ways, btb.ways);
    res.condBranches = elig.condBranches;
    res.eligibleBranches = elig.eligibleBranches;
    const analysis::Cfg cfg(program);
    res.saturableRegions = analysis::countEligibleRegions(cfg, elig);

    const analysis::PrimePathSet pathSet =
        analysis::enumeratePrimePaths(cfg);
    res.primePaths = pathSet.paths.size();
    res.pathCover = analysis::computePathCover(cfg, pathSet).size();
    res.pathsTruncated = pathSet.truncated;
    return res;
}

void
printText(const isa::Program &program, const LintResult &res,
          bool verbose)
{
    for (const auto &d : res.diagnostics) {
        std::cout << res.name << ": "
                  << analysis::formatDiagnostic(program, d) << "\n";
    }
    if (verbose || !res.diagnostics.empty()) {
        std::cout << res.name << ": " << res.errors << " error(s), "
                  << res.warnings << " warning(s), "
                  << res.checkedBranches << " branch(es) checked, "
                  << res.matchedFixes << " fix(es) matched\n";
    }
    if (verbose) {
        std::cout << res.name << ": " << res.eligibleBranches << "/"
                  << res.condBranches
                  << " branch(es) saturation-eligible, "
                  << res.saturableRegions << " saturable region(s)\n";
        std::cout << res.name << ": " << res.primePaths
                  << " prime path(s), cover " << res.pathCover
                  << (res.pathsTruncated ? " (truncated)" : "")
                  << "\n";
    }
}

void
printJson(std::ostream &os, const isa::Program &program,
          const LintResult &res, bool first)
{
    if (!first)
        os << ",";
    os << "\n  {\"program\":\"" << jsonEscape(res.name)
       << "\",\"errors\":" << res.errors
       << ",\"warnings\":" << res.warnings
       << ",\"checked_branches\":" << res.checkedBranches
       << ",\"derived_slices\":" << res.derivedSlices
       << ",\"matched_fixes\":" << res.matchedFixes
       << ",\"cond_branches\":" << res.condBranches
       << ",\"eligible_branches\":" << res.eligibleBranches
       << ",\"saturable_regions\":" << res.saturableRegions
       << ",\"prime_paths\":" << res.primePaths
       << ",\"path_cover\":" << res.pathCover
       << ",\"paths_truncated\":"
       << (res.pathsTruncated ? "true" : "false")
       << ",\"diagnostics\":[";
    for (size_t i = 0; i < res.diagnostics.size(); ++i) {
        const auto &d = res.diagnostics[i];
        if (i)
            os << ",";
        os << "\n    {\"code\":\"" << analysis::diagCodeName(d.code)
           << "\",\"severity\":\""
           << analysis::severityName(d.severity)
           << "\",\"pc\":" << d.pc << ",\"where\":\""
           << jsonEscape(program.describePc(d.pc))
           << "\",\"message\":\"" << jsonEscape(d.message) << "\"}";
    }
    if (!res.diagnostics.empty())
        os << "\n  ";
    os << "]}";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool fixcheck = true;
    bool verbose = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--no-fixcheck")
            fixcheck = false;
        else if (arg == "--verbose")
            verbose = true;
        else if (startsWith(arg, "--"))
            usage(("unknown option '" + arg + "'").c_str());
        else
            paths.push_back(arg);
    }

    // Collect (name, program) pairs: explicit files, or every
    // registered workload when none were given.
    std::vector<isa::Program> programs;
    try {
        if (paths.empty()) {
            for (const auto &name : workloads::workloadNames()) {
                const auto &w = workloads::getWorkload(name);
                programs.push_back(minic::compile(w.source, name));
            }
        } else {
            for (const auto &path : paths) {
                auto endsWith = [&](const char *suffix) {
                    size_t n = std::string(suffix).size();
                    return path.size() > n &&
                           path.compare(path.size() - n, n, suffix) ==
                               0;
                };
                if (endsWith(".po"))
                    programs.push_back(isa::loadObjectFile(path));
                else if (endsWith(".mc"))
                    programs.push_back(
                        minic::compile(readFile(path), path));
                else
                    programs.push_back(
                        isa::assemble(readFile(path), path));
            }
        }
    } catch (const FatalError &e) {
        std::cerr << "pelint: " << e.what() << "\n";
        return 2;
    }

    size_t totalErrors = 0;
    size_t totalWarnings = 0;
    if (json)
        std::cout << "{\"programs\":[";
    bool first = true;
    for (const auto &program : programs) {
        LintResult res = lint(program, fixcheck);
        totalErrors += res.errors;
        totalWarnings += res.warnings;
        if (json)
            printJson(std::cout, program, res, first);
        else
            printText(program, res, verbose);
        first = false;
    }
    if (json) {
        std::cout << "\n ],\"total_errors\":" << totalErrors
                  << ",\"total_warnings\":" << totalWarnings << "}\n";
    } else {
        std::cout << programs.size() << " program(s): " << totalErrors
                  << " error(s), " << totalWarnings
                  << " warning(s)\n";
    }
    return totalErrors > 0 ? 1 : 0;
}
