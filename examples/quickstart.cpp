/**
 * @file
 * Quickstart: compile a small MiniC program with a latent bug, run it
 * under a dynamic checker with and without PathExpander, and print
 * what each saw.
 *
 *   $ ./examples/quickstart
 *
 * The bug hides on a path the input never takes; the baseline
 * monitored run misses it, PathExpander's NT-Path exploration finds
 * it — without changing the program's output.
 */

#include <iostream>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"
#include "src/support/strutil.hh"

using namespace pe;

namespace
{

// A tiny log rotator: the "rotate" branch only runs when the log
// fills up (it never does with this input), and its copy loop has a
// classic off-by-one overrun.
const char *source = R"(
int log[16];
int log_len = 0;
int rotated = 0;

int rotate() {
    int i = 0;
    while (i <= 16) {           // BUG: should be i < 16
        log[i] = 0;
        i = i + 1;
    }
    log_len = 0;
    rotated = rotated + 1;
    return 0;
}

int append(int v) {
    if (log_len > 15) {
        rotate();
    }
    log[log_len] = v;
    log_len = log_len + 1;
    return log_len;
}

int main() {
    int v = read_int();
    while (v != -1) {
        append(v);
        v = read_int();
    }
    print_str("entries=");
    print_int(log_len);
    print_char(10);
    return 0;
}
)";

} // namespace

int
main()
{
    std::cout << "PathExpander quickstart\n=======================\n\n";

    // 1. Compile MiniC to PE-RISC.  The compiler inserts the
    //    predicated consistency fixes and object registrations.
    isa::Program program = minic::compile(source, "quickstart");
    std::cout << "compiled " << program.code.size()
              << " instructions, " << program.numBranches()
              << " branches\n\n";

    // 2. A benign input: only five entries, the log never fills.
    std::vector<int32_t> input = {10, 20, 30, 40, 50, -1};

    // 3. Baseline: the dynamic checker alone.
    detect::WatchChecker baselineChecker;
    core::PathExpanderEngine baseline(
        program, core::PeConfig::forMode(core::PeMode::Off),
        &baselineChecker);
    auto base = baseline.run(input);
    std::cout << "baseline run:     output \"" << base.io.charOutput
              << "\", " << base.monitor.reports().size()
              << " reports, coverage "
              << fmtPercent(base.coverage.takenFraction()) << "\n";

    // 4. The same checker with PathExpander (standard configuration).
    detect::WatchChecker peChecker;
    core::PathExpanderEngine pe(
        program, core::PeConfig::forMode(core::PeMode::Standard),
        &peChecker);
    auto withPe = pe.run(input);
    std::cout << "PathExpander run: output \"" << withPe.io.charOutput
              << "\", " << withPe.monitor.distinctReports().size()
              << " distinct report(s), coverage "
              << fmtPercent(withPe.coverage.combinedFraction())
              << " (explored " << withPe.ntPathsSpawned
              << " NT-Paths)\n\n";

    for (const auto &r : withPe.monitor.distinctReports()) {
        std::cout << "  report: " << detect::reportKindName(r.kind)
                  << " at " << r.site
                  << (r.fromNtPath ? "  [found on an NT-Path]" : "")
                  << "\n";
    }

    std::cout << "\nThe overrun in rotate() is invisible to the "
                 "baseline because the\nrotate branch is never taken "
                 "with this input; PathExpander executed it\nin the "
                 "sandbox and the checker caught the guard-zone "
                 "write.\n";
    return 0;
}
