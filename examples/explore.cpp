/**
 * @file
 * Coverage-guided exploration CLI: grow a test corpus for a workload
 * instead of replaying its static suite.
 *
 *   $ ./examples/explore [workload] [options]
 *       --policy rare|uniform   scheduling policy (default rare)
 *       --mode off|standard|cmp engine mode (default standard)
 *       --runs N                total run budget (default 200)
 *       --batch N               mutants per batch (default 8)
 *       --plateau K             stop after K dry batches (default 8)
 *       --jobs N                campaign workers (default PE_JOBS)
 *       --seed S                exploration seed
 *       --jsonl PATH            write the JSONL progress stream
 *       --checkpoint PATH       write a resumable checkpoint file
 *       --checkpoint-every K    batches between checkpoints (default 1)
 *       --resume PATH           resume from a checkpoint file
 *       --verbose               print a dot per finished run
 *
 * SIGINT/SIGTERM raise the explorer's cooperative stop flag: the
 * session finishes its current batch, writes a final checkpoint (when
 * --checkpoint is set) and exits cleanly with stop cause
 * "interrupted".  A second signal kills the process the default way.
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "src/explore/explorer.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

int
usage(const char *msg)
{
    std::cerr << "explore: " << msg << "\n"
              << "usage: explore [workload] [--policy rare|uniform] "
                 "[--mode off|standard|cmp]\n"
              << "               [--runs N] [--batch N] [--plateau K] "
                 "[--jobs N] [--seed S]\n"
              << "               [--jsonl PATH] [--checkpoint PATH] "
                 "[--checkpoint-every K]\n"
              << "               [--resume PATH] [--verbose]\n";
    return 2;
}

std::atomic<bool> stopRequested{false};

extern "C" void
onStopSignal(int)
{
    // First signal: cooperative shutdown at the next batch boundary.
    // Second signal: restore the default disposition so it kills.
    stopRequested.store(true);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = "schedule";
    std::string jsonlPath;
    explore::ExploreOptions opts;
    opts.budget.maxRuns = 200;
    opts.budget.plateauBatches = 8;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (arg == "--policy") {
            const char *v = next();
            if (!v)
                return usage("--policy needs a value");
            if (std::string(v) == "uniform")
                opts.policy = explore::SchedulePolicy::UniformRandom;
            else if (std::string(v) == "rare")
                opts.policy = explore::SchedulePolicy::RareEdgeWeighted;
            else
                return usage("unknown policy");
        } else if (arg == "--mode") {
            const char *v = next();
            if (!v)
                return usage("--mode needs a value");
            std::string m = v;
            if (m == "off")
                opts.config = core::PeConfig::forMode(core::PeMode::Off);
            else if (m == "standard")
                opts.config =
                    core::PeConfig::forMode(core::PeMode::Standard);
            else if (m == "cmp")
                opts.config = core::PeConfig::forMode(core::PeMode::Cmp);
            else
                return usage("unknown mode");
        } else if (arg == "--runs") {
            const char *v = next();
            if (!v)
                return usage("--runs needs a value");
            opts.budget.maxRuns = std::stoull(v);
        } else if (arg == "--batch") {
            const char *v = next();
            if (!v)
                return usage("--batch needs a value");
            opts.batchSize = std::stoull(v);
        } else if (arg == "--plateau") {
            const char *v = next();
            if (!v)
                return usage("--plateau needs a value");
            opts.budget.plateauBatches =
                static_cast<uint32_t>(std::stoul(v));
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v)
                return usage("--jobs needs a value");
            opts.threads = static_cast<unsigned>(std::stoul(v));
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return usage("--seed needs a value");
            opts.seed = std::stoull(v);
        } else if (arg == "--jsonl") {
            const char *v = next();
            if (!v)
                return usage("--jsonl needs a value");
            jsonlPath = v;
        } else if (arg == "--checkpoint") {
            const char *v = next();
            if (!v)
                return usage("--checkpoint needs a value");
            opts.checkpointPath = v;
        } else if (arg == "--checkpoint-every") {
            const char *v = next();
            if (!v)
                return usage("--checkpoint-every needs a value");
            opts.checkpointEvery = std::stoull(v);
        } else if (arg == "--resume") {
            const char *v = next();
            if (!v)
                return usage("--resume needs a value");
            opts.resumeFrom = v;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(("unknown option " + arg).c_str());
        } else {
            name = arg;
        }
    }

    auto names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "explore: unknown workload '" << name
                  << "'; available:";
        for (const auto &n : names)
            std::cerr << " " << n;
        std::cerr << "\n";
        return 2;
    }
    const auto &workload = workloads::getWorkload(name);
    auto program = minic::compile(workload.source, name);
    opts.label = name;
    opts.config.maxNtPathLength = workload.maxNtPathLength;

    std::ofstream jsonlFile;
    if (!jsonlPath.empty()) {
        jsonlFile.open(jsonlPath);
        if (!jsonlFile) {
            std::cerr << "explore: cannot write " << jsonlPath << "\n";
            return 1;
        }
        opts.jsonl = &jsonlFile;
    }
    if (verbose) {
        opts.onRun = [](const core::RunResult &) {
            std::cout << "." << std::flush;
        };
    }

    opts.stopFlag = &stopRequested;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    std::cout << "exploring '" << name << "' ("
              << program.numBranches() << " branches, policy "
              << explore::schedulePolicyName(opts.policy) << ", mode "
              << core::peModeName(opts.config.mode) << ", budget "
              << opts.budget.maxRuns << " runs)\n";

    explore::Explorer explorer(program, workload.benignInputs, opts);
    auto result = explorer.run();
    if (verbose)
        std::cout << "\n";

    for (const auto &b : result.history) {
        std::cout << "batch " << padLeft(std::to_string(b.batch), 3)
                  << ": runs " << padLeft(std::to_string(b.totalRuns), 5)
                  << "  corpus " << padLeft(std::to_string(b.corpusSize), 4)
                  << "  edges "
                  << padLeft(std::to_string(b.combinedEdges), 5) << "/"
                  << explorer.corpus().frontier().totalEdges()
                  << (b.newEdges ? "  (+" + std::to_string(b.newEdges) + ")"
                                 : "")
                  << "\n";
    }

    const auto &frontier = explorer.corpus().frontier();
    std::cout << "\nstopped: " << explore::exploreStopName(result.stop)
              << " after " << result.runs << " runs / "
              << result.batches << " batches\n"
              << "corpus:  " << explorer.corpus().size()
              << " inputs (admitted by coverage delta)\n"
              << "coverage: " << fmtPercent(frontier.takenFraction())
              << " taken, " << fmtPercent(frontier.combinedFraction())
              << " with NT-Paths (" << frontier.combinedCovered()
              << "/" << frontier.totalEdges() << " edges)\n"
              << "NT-Paths: " << result.ntSpawned << " spawned over "
              << result.instructions << " simulated instructions\n";
    return 0;
}
