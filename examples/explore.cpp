/**
 * @file
 * Coverage-guided exploration CLI: grow a test corpus for a workload
 * instead of replaying its static suite.
 *
 *   $ ./examples/explore [workload] [options]
 *       --policy rare|uniform   scheduling policy (default rare)
 *       --path-objective        weight scheduling toward corpus
 *                               entries adjacent to incomplete
 *                               prime-path cover paths (enables the
 *                               per-run edge trace; identity-bearing)
 *       --mode off|standard|cmp engine mode (default standard)
 *       --runs N                total run budget (default 200)
 *       --batch N               mutants per batch (default 8)
 *       --plateau K             stop after K dry batches (default 8)
 *       --jobs N                campaign workers (default PE_JOBS)
 *       --seed S                exploration seed
 *       --jsonl PATH            write the JSONL progress stream
 *                               ("-" = stdout)
 *       --checkpoint PATH       write a resumable checkpoint file
 *       --checkpoint-every K    batches between checkpoints (default 1)
 *       --resume PATH           resume from a checkpoint file
 *       --shards N              distribute over N worker processes
 *       --round-runs N          fleet runs per round (default
 *                               shards * batch)
 *       --listen HOST:PORT      with --shards: wait for N TCP workers
 *                               instead of forking (port 0 = pick)
 *       --connect HOST:PORT     worker mode: dial a --listen
 *                               coordinator and serve one shard
 *                               (requires matching --shards and
 *                               identical exploration flags)
 *       --round-deadline-ms N   coordinator: mark a shard dead when
 *                               its round delta is N ms late
 *                               (default 30000 with --listen, off
 *                               otherwise; 0 = wait forever)
 *       --dial-attempts N       worker: dial/redial retries before
 *                               giving up (default 40; consecutive
 *                               failures back off exponentially)
 *       --fleet-checkpoint PATH coordinator: persist the session
 *                               after every round (atomic rename)
 *       --fleet-resume PATH     coordinator: resume a session from a
 *                               fleet checkpoint (requires --listen;
 *                               the workers redial and continue)
 *       --heartbeat-ms N        coordinator: mid-round worker
 *                               liveness; silent > N ms = suspect,
 *                               > 2N ms = dead (default off)
 *       --min-quorum K          coordinator: pause dispatch below K
 *                               attached shards, stop (quorum_lost)
 *                               below K live shards (default off)
 *       --print-worker-cmd      with --listen + --shards: print the
 *                               worker command line for each shard
 *                               and exit (consumed by
 *                               scripts/fleet-ssh.sh)
 *       --serve [SPOOLDIR]      service mode: run job specs from the
 *                               spool directory (or stdin), one JSON
 *                               result per job on stdout
 *       --drain                 with --serve: process the queued jobs
 *                               and exit instead of polling
 *       --verbose               print a dot per finished run
 *
 * Human-readable status goes to stderr; stdout carries only
 * machine-parseable output (the JSONL stream under `--jsonl -`, job
 * results under --serve), so `explore --serve | jq .` just works.
 *
 * SIGINT/SIGTERM raise the cooperative stop flag: the session (or
 * fleet, or service) finishes its current batch/round/job, writes a
 * final checkpoint (when --checkpoint is set) and exits cleanly.  A
 * second signal kills the process the default way.
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "src/explore/explorer.hh"
#include "src/fleet/coordinator.hh"
#include "src/fleet/service.hh"
#include "src/fleet/transport.hh"
#include "src/fleet/worker.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

using namespace pe;

namespace
{

int
usage(const char *msg)
{
    std::cerr << "explore: " << msg << "\n"
              << "usage: explore [workload] [--policy rare|uniform] "
                 "[--mode off|standard|cmp]\n"
              << "               [--runs N] [--batch N] [--plateau K] "
                 "[--jobs N] [--seed S]\n"
              << "               [--jsonl PATH|-] [--checkpoint PATH] "
                 "[--checkpoint-every K]\n"
              << "               [--resume PATH] [--shards N] "
                 "[--round-runs N]\n"
              << "               [--listen HOST:PORT] "
                 "[--connect HOST:PORT]\n"
              << "               [--round-deadline-ms N] "
                 "[--dial-attempts N]\n"
              << "               [--fleet-checkpoint PATH] "
                 "[--fleet-resume PATH]\n"
              << "               [--heartbeat-ms N] [--min-quorum K] "
                 "[--print-worker-cmd]\n"
              << "               [--serve [SPOOLDIR]] [--drain] "
                 "[--verbose]\n";
    return 2;
}

std::atomic<bool> stopRequested{false};

extern "C" void
onStopSignal(int)
{
    // First signal: cooperative shutdown at the next batch boundary.
    // Second signal: restore the default disposition so it kills.
    stopRequested.store(true);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = "schedule";
    std::string jsonlPath;
    explore::ExploreOptions opts;
    opts.budget.maxRuns = 200;
    opts.budget.plateauBatches = 8;
    unsigned shards = 1;
    uint64_t roundRuns = 0;
    std::string listenSpec;
    std::string connectSpec;
    int roundDeadlineMs = -1;   // -1 = pick a default per transport
    int dialAttempts = 40;
    std::string fleetCheckpoint;
    std::string fleetResume;
    int heartbeatMs = 0;
    uint32_t minQuorum = 0;
    bool printWorkerCmd = false;
    // The raw --policy/--mode tokens, re-emitted by
    // --print-worker-cmd so the worker command round-trips exactly.
    std::string policyArg = "rare";
    std::string modeArg = "standard";
    bool pathObjective = false;
    bool serve = false;
    bool drain = false;
    std::string spoolDir;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (arg == "--policy") {
            const char *v = next();
            if (!v)
                return usage("--policy needs a value");
            if (std::string(v) == "uniform")
                opts.policy = explore::SchedulePolicy::UniformRandom;
            else if (std::string(v) == "rare")
                opts.policy = explore::SchedulePolicy::RareEdgeWeighted;
            else
                return usage("unknown policy");
            policyArg = v;
        } else if (arg == "--path-objective") {
            pathObjective = true;
        } else if (arg == "--mode") {
            const char *v = next();
            if (!v)
                return usage("--mode needs a value");
            std::string m = v;
            if (m == "off")
                opts.config = core::PeConfig::forMode(core::PeMode::Off);
            else if (m == "standard")
                opts.config =
                    core::PeConfig::forMode(core::PeMode::Standard);
            else if (m == "cmp")
                opts.config = core::PeConfig::forMode(core::PeMode::Cmp);
            else
                return usage("unknown mode");
            modeArg = m;
        } else if (arg == "--runs") {
            const char *v = next();
            if (!v)
                return usage("--runs needs a value");
            opts.budget.maxRuns = std::stoull(v);
        } else if (arg == "--batch") {
            const char *v = next();
            if (!v)
                return usage("--batch needs a value");
            opts.batchSize = std::stoull(v);
        } else if (arg == "--plateau") {
            const char *v = next();
            if (!v)
                return usage("--plateau needs a value");
            opts.budget.plateauBatches =
                static_cast<uint32_t>(std::stoul(v));
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v)
                return usage("--jobs needs a value");
            opts.threads = static_cast<unsigned>(std::stoul(v));
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return usage("--seed needs a value");
            opts.seed = std::stoull(v);
        } else if (arg == "--jsonl") {
            const char *v = next();
            if (!v)
                return usage("--jsonl needs a value");
            jsonlPath = v;
        } else if (arg == "--checkpoint") {
            const char *v = next();
            if (!v)
                return usage("--checkpoint needs a value");
            opts.checkpointPath = v;
        } else if (arg == "--checkpoint-every") {
            const char *v = next();
            if (!v)
                return usage("--checkpoint-every needs a value");
            opts.checkpointEvery = std::stoull(v);
        } else if (arg == "--resume") {
            const char *v = next();
            if (!v)
                return usage("--resume needs a value");
            opts.resumeFrom = v;
        } else if (arg == "--shards") {
            const char *v = next();
            if (!v)
                return usage("--shards needs a value");
            shards = static_cast<unsigned>(std::stoul(v));
            if (shards < 1)
                return usage("--shards must be >= 1");
        } else if (arg == "--round-runs") {
            const char *v = next();
            if (!v)
                return usage("--round-runs needs a value");
            roundRuns = std::stoull(v);
        } else if (arg == "--listen") {
            const char *v = next();
            if (!v)
                return usage("--listen needs HOST:PORT");
            listenSpec = v;
        } else if (arg == "--connect") {
            const char *v = next();
            if (!v)
                return usage("--connect needs HOST:PORT");
            connectSpec = v;
        } else if (arg == "--round-deadline-ms") {
            const char *v = next();
            if (!v)
                return usage("--round-deadline-ms needs a value");
            roundDeadlineMs = static_cast<int>(std::stol(v));
        } else if (arg == "--dial-attempts") {
            const char *v = next();
            if (!v)
                return usage("--dial-attempts needs a value");
            dialAttempts = static_cast<int>(std::stol(v));
        } else if (arg == "--fleet-checkpoint") {
            const char *v = next();
            if (!v)
                return usage("--fleet-checkpoint needs a value");
            fleetCheckpoint = v;
        } else if (arg == "--fleet-resume") {
            const char *v = next();
            if (!v)
                return usage("--fleet-resume needs a value");
            fleetResume = v;
        } else if (arg == "--heartbeat-ms") {
            const char *v = next();
            if (!v)
                return usage("--heartbeat-ms needs a value");
            heartbeatMs = static_cast<int>(std::stol(v));
        } else if (arg == "--min-quorum") {
            const char *v = next();
            if (!v)
                return usage("--min-quorum needs a value");
            minQuorum = static_cast<uint32_t>(std::stoul(v));
        } else if (arg == "--print-worker-cmd") {
            printWorkerCmd = true;
        } else if (arg == "--serve") {
            serve = true;
            // Optional value: a spool directory; omitted = stdin.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                spoolDir = argv[++i];
        } else if (arg == "--drain") {
            drain = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(("unknown option " + arg).c_str());
        } else {
            name = arg;
        }
    }

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    // --- Service mode: jobs in, JSONL results on stdout ------------
    if (serve) {
        fleet::ServiceOptions svc;
        svc.spoolDir = spoolDir;
        svc.out = &std::cout;
        svc.status = &std::cerr;
        svc.drainOnce = drain;
        svc.workerThreads = opts.threads;
        svc.stopFlag = &stopRequested;
        try {
            fleet::runService(svc);
        } catch (const FatalError &err) {
            std::cerr << "explore: " << err.what() << "\n";
            return 1;
        }
        return 0;
    }

    auto names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::cerr << "explore: unknown workload '" << name
                  << "'; available:";
        for (const auto &n : names)
            std::cerr << " " << n;
        std::cerr << "\n";
        return 2;
    }
    const auto &workload = workloads::getWorkload(name);
    auto program = minic::compile(workload.source, name);
    opts.label = name;
    opts.config.maxNtPathLength = workload.maxNtPathLength;
    // After --mode: forMode() rebuilt the config, and the trace flag
    // must land in the final one (it is part of the config hash).
    if (pathObjective) {
        opts.pathObjective = true;
        opts.config.recordEdgeTrace = true;
    }

    std::ofstream jsonlFile;
    if (jsonlPath == "-") {
        opts.jsonl = &std::cout;
    } else if (!jsonlPath.empty()) {
        jsonlFile.open(jsonlPath);
        if (!jsonlFile) {
            std::cerr << "explore: cannot write " << jsonlPath << "\n";
            return 1;
        }
        opts.jsonl = &jsonlFile;
    }
    if (verbose) {
        opts.onRun = [](const core::RunResult &) {
            std::cerr << "." << std::flush;
        };
    }
    opts.stopFlag = &stopRequested;

    // --- TCP worker mode: dial a coordinator, serve one shard ------
    if (!connectSpec.empty()) {
        if (!listenSpec.empty())
            return usage("--connect and --listen are exclusive");
        if (shards < 2)
            return usage("--connect needs the coordinator's --shards "
                         "value (the fleet width is part of the "
                         "identity handshake)");
        if (!opts.checkpointPath.empty() || !opts.resumeFrom.empty())
            return usage("--checkpoint/--resume do not combine with "
                         "--connect");
        if (!fleetCheckpoint.empty() || !fleetResume.empty())
            return usage("--fleet-checkpoint/--fleet-resume are "
                         "coordinator flags; workers keep no durable "
                         "state");
        fleet::RemoteWorkerOptions ro;
        ro.connect = connectSpec;
        ro.shards = shards;
        ro.base = opts;
        ro.seeds = workload.benignInputs;
        ro.workerThreads = opts.threads;
        ro.dialAttempts = dialAttempts;
        ro.status = &std::cerr;
        try {
            return fleet::remoteWorkerMain(program, ro);
        } catch (const FatalError &err) {
            std::cerr << "explore: " << err.what() << "\n";
            return 1;
        }
    }

    // --- Worker-command printer: the ssh launcher's source of truth -
    if (printWorkerCmd) {
        if (listenSpec.empty() || shards < 2)
            return usage("--print-worker-cmd needs --listen and "
                         "--shards >= 2");
        size_t colon = listenSpec.rfind(':');
        std::string host =
            colon == std::string::npos ? ""
                                       : listenSpec.substr(0, colon);
        std::string port =
            colon == std::string::npos ? ""
                                       : listenSpec.substr(colon + 1);
        if (port.empty() || port == "0")
            return usage("--print-worker-cmd needs an explicit "
                         "--listen port (workers must know where to "
                         "dial)");
        if (host.empty())
            host = "127.0.0.1";
        // One line per shard; Joins are wildcard, so the commands
        // are identical and any worker may take any shard.  Only
        // identity-bearing flags are repeated: workload, policy,
        // mode, batch, and seed all feed the Join handshake.
        for (unsigned s = 0; s < shards; ++s) {
            std::cout << argv[0] << " " << name << " --connect "
                      << host << ":" << port << " --shards " << shards
                      << " --policy " << policyArg << " --mode "
                      << modeArg
                      << (pathObjective ? " --path-objective" : "")
                      << " --batch " << opts.batchSize
                      << " --seed " << opts.seed
                      << " --dial-attempts 400\n";
        }
        return 0;
    }

    // --- Fleet mode: shard the exploration over N processes --------
    if (shards > 1 || !listenSpec.empty()) {
        if (!opts.checkpointPath.empty() || !opts.resumeFrom.empty())
            return usage("--checkpoint/--resume do not combine with "
                         "--shards (checkpointing is per-process; "
                         "use --fleet-checkpoint/--fleet-resume)");
        if (!fleetResume.empty() && listenSpec.empty())
            return usage("--fleet-resume needs --listen: only TCP "
                         "workers outlive the coordinator and can "
                         "redial");
        fleet::FleetOptions fopts;
        fopts.base = opts;
        fopts.shards = shards;
        fopts.roundRuns = roundRuns;
        fopts.plateauRounds = opts.budget.plateauBatches;
        fopts.status = &std::cerr;
        fopts.stopFlag = &stopRequested;
        fopts.heartbeatMs = heartbeatMs;
        fopts.minQuorum = minQuorum;
        fopts.checkpointPath = fleetCheckpoint;
        fopts.resumeFrom = fleetResume;
        if (!listenSpec.empty()) {
            try {
                fopts.transport = std::make_shared<fleet::TcpTransport>(
                    listenSpec, &std::cerr);
            } catch (const FatalError &err) {
                std::cerr << "explore: " << err.what() << "\n";
                return 1;
            }
        }
        // TCP workers can vanish without an EOF; a late shard must
        // not park the fleet forever, so the deadline defaults on.
        fopts.roundDeadlineMs =
            roundDeadlineMs >= 0 ? roundDeadlineMs
                                 : (listenSpec.empty() ? 0 : 30000);

        std::cerr << "exploring '" << name << "' ("
                  << program.numBranches() << " branches, "
                  << shards << " shards, policy "
                  << explore::schedulePolicyName(opts.policy)
                  << ", mode " << core::peModeName(opts.config.mode)
                  << ", budget " << opts.budget.maxRuns << " runs)\n";

        auto result =
            fleet::runFleet(program, workload.benignInputs, fopts);

        std::cerr << "\nstopped: " << fleet::fleetStopName(result.stop)
                  << " after " << result.runs << " runs / "
                  << result.rounds << " rounds\n"
                  << "corpus:  " << result.corpusSize
                  << " inputs (merged across shards)\n"
                  << "coverage: " << result.edgesCombined << "/"
                  << result.totalEdges << " edges with NT-Paths\n"
                  << "fleet:   " << result.lostWorkers
                  << " lost worker(s), " << result.reconnects
                  << " reconnect(s), " << result.stolenRuns
                  << " stolen runs\n"
                  << "plan:     " << fmtHex(result.planDigest)
                  << "\nfrontier: " << fmtHex(result.frontierDigest)
                  << "\ncorpus:   " << fmtHex(result.corpusDigest)
                  << "\n";
        return 0;
    }

    if (!fleetCheckpoint.empty() || !fleetResume.empty() ||
        heartbeatMs > 0 || minQuorum > 0)
        return usage("--fleet-checkpoint/--fleet-resume/"
                     "--heartbeat-ms/--min-quorum need fleet mode "
                     "(--shards >= 2 or --listen)");

    std::cerr << "exploring '" << name << "' ("
              << program.numBranches() << " branches, policy "
              << explore::schedulePolicyName(opts.policy) << ", mode "
              << core::peModeName(opts.config.mode) << ", budget "
              << opts.budget.maxRuns << " runs)\n";

    explore::Explorer explorer(program, workload.benignInputs, opts);
    auto result = explorer.run();
    if (verbose)
        std::cerr << "\n";

    for (const auto &b : result.history) {
        std::cerr << "batch " << padLeft(std::to_string(b.batch), 3)
                  << ": runs " << padLeft(std::to_string(b.totalRuns), 5)
                  << "  corpus " << padLeft(std::to_string(b.corpusSize), 4)
                  << "  edges "
                  << padLeft(std::to_string(b.combinedEdges), 5) << "/"
                  << explorer.corpus().frontier().totalEdges()
                  << (b.newEdges ? "  (+" + std::to_string(b.newEdges) + ")"
                                 : "")
                  << "\n";
    }

    const auto &frontier = explorer.corpus().frontier();
    std::cerr << "\nstopped: " << explore::exploreStopName(result.stop)
              << " after " << result.runs << " runs / "
              << result.batches << " batches\n"
              << "corpus:  " << explorer.corpus().size()
              << " inputs (admitted by coverage delta)\n"
              << "coverage: " << fmtPercent(frontier.takenFraction())
              << " taken, " << fmtPercent(frontier.combinedFraction())
              << " with NT-Paths (" << frontier.combinedCovered()
              << "/" << frontier.totalEdges() << " edges)\n"
              << "NT-Paths: " << result.ntSpawned << " spawned over "
              << result.instructions << " simulated instructions\n";
    return 0;
}
