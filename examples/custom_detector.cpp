/**
 * @file
 * Custom-detector example: PathExpander's generality claim (paper
 * Section 1.4: "PathExpander makes no assumption about bug types or
 * dynamic bug detection methods") demonstrated by plugging a
 * user-written checker into the engine.
 *
 * The TaintedStoreChecker below flags any store of a "tainted" magic
 * constant to memory — a toy taint-tracking tool.  Nothing in
 * PathExpander changes: detector reports raised on NT-Paths land in
 * the monitor area and survive the squash.
 *
 *   $ ./examples/custom_detector
 */

#include <iostream>

#include "src/core/engine.hh"
#include "src/minic/compiler.hh"

using namespace pe;

namespace
{

/**
 * A user-defined dynamic tool: reports every store whose address
 * falls inside the "secret" global's object.  Integration needs only
 * the Detector interface — exactly the paper's "simple integration
 * with dynamic checkers" property.
 */
class SecretWriteChecker : public detect::Detector
{
  public:
    SecretWriteChecker(uint32_t lo, uint32_t hi) : lo(lo), hi(hi) {}

    const char *name() const override { return "secret-writes"; }

    void
    onMemAccess(const detect::DetectCtx &ctx, uint32_t addr,
                bool isWrite) override
    {
        if (!isWrite || addr < lo || addr >= hi)
            return;
        detect::Report r;
        r.kind = detect::ReportKind::WildAccess;   // reuse a kind
        r.pc = ctx.pc;
        r.addr = addr;
        r.fromNtPath = ctx.fromNtPath;
        r.ntSpawnPc = ctx.ntSpawnPc;
        r.site = ctx.program->describePc(ctx.pc);
        ctx.monitor->add(r);
    }

  private:
    uint32_t lo;
    uint32_t hi;
};

// The audit path (never taken with this input) writes into the
// secret region -- a policy violation only an NT-Path can expose.
const char *source = R"(
int secret[4];
int audit_mode = 0;
int checksum = 0;

int audit() {
    secret[0] = checksum;       // policy violation: secret written
    return secret[0];
}

int main() {
    int v = read_int();
    while (v != -1) {
        checksum = checksum + v;
        if (audit_mode == 1) {
            audit();
        }
        v = read_int();
    }
    print_int(checksum);
    return 0;
}
)";

} // namespace

int
main()
{
    std::cout << "Custom detector under PathExpander\n"
              << "==================================\n\n";

    auto program = minic::compile(source, "custom");

    // Locate the secret array: the startup stub registers every
    // global array (li base; li size; regobj), so scan it for the
    // first GlobalArray registration.
    uint32_t lo = 0;
    uint32_t hi = 0;
    for (uint32_t pc = program.entry; pc + 2 < program.code.size();
         ++pc) {
        const auto &a = program.code[pc];
        const auto &b = program.code[pc + 1];
        const auto &c = program.code[pc + 2];
        if (a.op == isa::Opcode::Li && b.op == isa::Opcode::Li &&
            c.op == isa::Opcode::Regobj &&
            c.imm == static_cast<int32_t>(
                         isa::ObjectKind::GlobalArray)) {
            lo = static_cast<uint32_t>(a.imm);
            hi = lo + static_cast<uint32_t>(b.imm);
            break;
        }
    }
    std::cout << "watching the secret region: words [" << lo << ", "
              << hi << ")\n\n";
    SecretWriteChecker checker(lo, hi);

    std::vector<int32_t> input = {1, 2, 3, -1};

    core::PathExpanderEngine baseline(
        program, core::PeConfig::forMode(core::PeMode::Off), &checker);
    auto base = baseline.run(input);
    std::cout << "baseline:     " << base.monitor.reports().size()
              << " policy reports\n";

    SecretWriteChecker checker2(lo, hi);
    core::PathExpanderEngine pe(
        program, core::PeConfig::forMode(core::PeMode::Standard),
        &checker2);
    auto withPe = pe.run(input);
    std::cout << "PathExpander: "
              << withPe.monitor.distinctReports().size()
              << " distinct policy report(s)\n\n";

    for (const auto &r : withPe.monitor.distinctReports()) {
        std::cout << "  write into the protected region at " << r.site
                  << (r.fromNtPath ? "  [on an NT-Path]" : "") << "\n";
    }

    std::cout << "\nOutput unchanged by exploration: \""
              << withPe.io.charOutput << "\" vs baseline \""
              << base.io.charOutput << "\".\n"
              << "Any tool written against the Detector interface "
                 "gains path coverage for free.\n";
    return 0;
}
