/**
 * @file
 * pe_run — the command-line driver: compile a MiniC (.mc) or PE-RISC
 * assembly (.s) file and run it under PathExpander.
 *
 *   pe_run [options] <program.mc|program.s> [input words...]
 *
 * Options:
 *   --mode=off|standard|cmp     PathExpander configuration (standard)
 *   --tool=none|ccured|iwatcher|assert   dynamic checker (iwatcher)
 *   --max-nt-len=N              MaxNTPathLength (1000)
 *   --threshold=N               NTPathCounterThreshold (5)
 *   --no-fixing                 disable the Section-4.4 fixes
 *   --sandbox-io                speculative I/O sandboxing extension
 *   --random-spawn=F            random spawn fraction extension
 *   --software                  Section-5 software cost model
 *   --stdin-text                read program input as text bytes from
 *                               stdin instead of argv words
 *   --disasm                    dump the compiled program and exit
 *   --emit-obj=FILE             write the compiled program as a .po
 *                               object file and exit (.po files are
 *                               accepted as program inputs too)
 *
 * Example:
 *   echo '3+4*2' | ./pe_run --tool=ccured --stdin-text calc.mc
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/engine.hh"
#include "src/isa/assembler.hh"
#include "src/isa/objfile.hh"
#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

using namespace pe;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "pe_run: " << msg << "\n";
    std::cerr
        << "usage: pe_run [--mode=off|standard|cmp] "
           "[--tool=none|ccured|iwatcher|assert]\n"
           "              [--max-nt-len=N] [--threshold=N] "
           "[--no-fixing] [--sandbox-io]\n"
           "              [--random-spawn=F] [--software] "
           "[--stdin-text] [--disasm]\n"
           "              <program.mc|program.s> [input words...]\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open '" + path + "'").c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    core::PeConfig cfg = core::PeConfig::forMode(
        core::PeMode::Standard);
    std::string toolName = "iwatcher";
    std::string path;
    std::string emitObj;
    std::vector<int32_t> input;
    bool stdinText = false;
    bool disasm = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (startsWith(arg, "--mode=")) {
            std::string m = arg.substr(7);
            if (m == "off")
                cfg = core::PeConfig::forMode(core::PeMode::Off);
            else if (m == "standard")
                cfg = core::PeConfig::forMode(core::PeMode::Standard);
            else if (m == "cmp")
                cfg = core::PeConfig::forMode(core::PeMode::Cmp);
            else
                usage("unknown mode");
        } else if (startsWith(arg, "--tool=")) {
            toolName = arg.substr(7);
        } else if (startsWith(arg, "--max-nt-len=")) {
            cfg.maxNtPathLength =
                static_cast<uint32_t>(std::stoul(arg.substr(13)));
        } else if (startsWith(arg, "--threshold=")) {
            cfg.ntPathCounterThreshold =
                static_cast<uint8_t>(std::stoul(arg.substr(12)));
        } else if (arg == "--no-fixing") {
            cfg.variableFixing = false;
        } else if (arg == "--sandbox-io") {
            cfg.sandboxIo = true;
        } else if (startsWith(arg, "--random-spawn=")) {
            cfg.randomSpawnFraction = std::stod(arg.substr(15));
        } else if (arg == "--software") {
            cfg.costModel = core::CostModelKind::Software;
        } else if (arg == "--stdin-text") {
            stdinText = true;
        } else if (arg == "--disasm") {
            disasm = true;
        } else if (startsWith(arg, "--emit-obj=")) {
            emitObj = arg.substr(11);
        } else if (startsWith(arg, "--")) {
            usage(("unknown option '" + arg + "'").c_str());
        } else if (path.empty()) {
            path = arg;
        } else {
            input.push_back(std::stoi(arg));
        }
    }
    if (path.empty())
        usage("no program file");

    auto endsWith = [&](const char *suffix) {
        size_t n = std::string(suffix).size();
        return path.size() > n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    isa::Program program;
    try {
        if (endsWith(".po")) {
            program = isa::loadObjectFile(path);
        } else if (endsWith(".s")) {
            program = isa::assemble(readFile(path), path);
        } else {
            program = minic::compile(readFile(path), path);
        }
        if (!emitObj.empty()) {
            isa::saveObjectFile(program, emitObj);
            std::cerr << "wrote " << emitObj << " ("
                      << program.code.size() << " instructions)\n";
            return 0;
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }

    if (disasm) {
        for (uint32_t pc = 0; pc < program.code.size(); ++pc) {
            std::cout << padLeft(std::to_string(pc), 5) << "  "
                      << padRight(program.describePc(pc), 24)
                      << isa::disassemble(program.code[pc]) << "\n";
        }
        return 0;
    }

    if (stdinText) {
        int c;
        while ((c = std::cin.get()) != EOF)
            input.push_back(static_cast<int32_t>(c));
    }

    std::unique_ptr<detect::Detector> detector;
    if (toolName == "ccured")
        detector = std::make_unique<detect::BoundsChecker>();
    else if (toolName == "iwatcher")
        detector = std::make_unique<detect::WatchChecker>();
    else if (toolName == "assert")
        detector = std::make_unique<detect::AssertChecker>();
    else if (toolName != "none")
        usage("unknown tool");

    core::PathExpanderEngine engine(program, cfg, detector.get());
    auto r = engine.run(input);

    std::cout << r.io.charOutput;
    if (!r.io.charOutput.empty() && r.io.charOutput.back() != '\n')
        std::cout << "\n";

    std::cerr << "---\n";
    r.printSummary(std::cerr);
    return r.programCrashed ? 1 : 0;
}
