#!/usr/bin/env bash
# Launch a multi-host exploration fleet over ssh.
#
# Usage:
#   scripts/fleet-ssh.sh [--remote-bin PATH] HOST [HOST...] -- \
#       <explore coordinator command>
#
# Example:
#   scripts/fleet-ssh.sh worker-a worker-b -- \
#       build/examples/explore schedule --listen 10.0.0.1:7777 \
#       --shards 4 --runs 20000 --heartbeat-ms 2000 \
#       --fleet-checkpoint /var/tmp/fleet.ckpt
#
# The coordinator command runs locally, in the foreground.  The
# worker commands are not hand-written: they are derived from the
# coordinator command via `--print-worker-cmd` (the single source of
# truth for the identity-bearing flags — workload, policy, mode,
# batch, seed, shards) and dealt round-robin over the HOSTs via ssh.
# Workers dial back to the --listen address, so pass an address the
# worker hosts can actually reach (not 0.0.0.0 or 127.0.0.1).
#
#   --remote-bin PATH   explore binary path on the worker hosts
#                       (default: the same path as in the local
#                       command — fine for shared filesystems).
#
# FLEET_SSH_CMD overrides the ssh client (tests use a local shim).

set -euo pipefail

: "${FLEET_SSH_CMD:=ssh}"

usage() {
    echo "usage: fleet-ssh.sh [--remote-bin PATH] HOST [HOST...]" \
         "-- <explore coordinator command>" >&2
    exit 2
}

remote_bin=""
hosts=()
while [ $# -gt 0 ]; do
    case "$1" in
    --remote-bin)
        [ $# -ge 2 ] || usage
        remote_bin="$2"
        shift 2
        ;;
    --)
        shift
        break
        ;;
    -*)
        echo "fleet-ssh: unknown option $1" >&2
        usage
        ;;
    *)
        hosts+=("$1")
        shift
        ;;
    esac
done

[ ${#hosts[@]} -ge 1 ] || usage
[ $# -ge 1 ] || usage

# One worker command per shard, from the coordinator's own mouth.
mapfile -t worker_cmds < <("$@" --print-worker-cmd)
if [ ${#worker_cmds[@]} -eq 0 ]; then
    echo "fleet-ssh: '$1 ... --print-worker-cmd' produced no" \
         "worker commands" >&2
    exit 1
fi

pids=()
cleanup() {
    local pid
    for pid in ${pids[@]+"${pids[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

i=0
for cmd in "${worker_cmds[@]}"; do
    host="${hosts[$((i % ${#hosts[@]}))]}"
    if [ -n "$remote_bin" ]; then
        cmd="$remote_bin ${cmd#* }"
    fi
    echo "[fleet-ssh] worker $i on $host: $cmd" >&2
    $FLEET_SSH_CMD "$host" "$cmd" &
    pids+=("$!")
    i=$((i + 1))
done

# The coordinator's exit status is the session's.  Workers exit on
# their own after the Stop -> Goodbye shutdown; the EXIT trap only
# mops up if the coordinator dies early.
status=0
"$@" || status=$?

for pid in ${pids[@]+"${pids[@]}"}; do
    wait "$pid" || status=$?
done
pids=()
trap - EXIT
exit "$status"
