/**
 * @file
 * Fix-set checker implementation.
 */

#include "src/analysis/fixcheck.hh"

#include <limits>
#include <optional>
#include <sstream>

#include "src/analysis/dataflow.hh"
#include "src/isa/instruction.hh"
#include "src/isa/regs.hh"
#include "src/support/status.hh"

namespace pe::analysis
{

namespace
{

using isa::Opcode;
namespace reg = isa::reg;

constexpr int64_t intMin = std::numeric_limits<int32_t>::min();
constexpr int64_t intMax = std::numeric_limits<int32_t>::max();

/** A condition variable's home slot, as a Pfixst would address it. */
struct Home
{
    bool global = false;
    int32_t off = 0;        //!< fp offset or absolute word address

    bool operator==(const Home &o) const = default;
};

/** The derived slice: `var REL literal` with var living in home. */
struct Slice
{
    Home home;
    Opcode rel = Opcode::Beq;   //!< relation as the branch evaluates it
    int32_t lit = 0;
};

/** One operand resolved through reaching definitions. */
struct Operand
{
    enum class Kind { Unknown, HomeLoad, Literal };
    Kind kind = Kind::Unknown;
    Home home;
    int32_t lit = 0;
};

/** Swap the operand order of a relation: `a REL b` -> `b REL' a`. */
Opcode
mirrorBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq: return Opcode::Beq;
      case Opcode::Bne: return Opcode::Bne;
      case Opcode::Blt: return Opcode::Bgt;
      case Opcode::Ble: return Opcode::Bge;
      case Opcode::Bgt: return Opcode::Blt;
      case Opcode::Bge: return Opcode::Ble;
      default:
        pe_panic("mirrorBranch: not a branch");
    }
}

/** Negate a relation: the fall-through edge's condition. */
Opcode
negateBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq: return Opcode::Bne;
      case Opcode::Bne: return Opcode::Beq;
      case Opcode::Blt: return Opcode::Bge;
      case Opcode::Bge: return Opcode::Blt;
      case Opcode::Ble: return Opcode::Bgt;
      case Opcode::Bgt: return Opcode::Ble;
      default:
        pe_panic("negateBranch: not a branch");
    }
}

bool
relationHolds(int32_t v, Opcode rel, int32_t c)
{
    switch (rel) {
      case Opcode::Beq: return v == c;
      case Opcode::Bne: return v != c;
      case Opcode::Blt: return v < c;
      case Opcode::Bge: return v >= c;
      case Opcode::Ble: return v <= c;
      case Opcode::Bgt: return v > c;
      default:
        pe_panic("relationHolds: not a branch");
    }
}

/**
 * Whether any int32 value satisfies `v REL c`.  Mirrors minic's
 * boundary-value overflow suppression: `v < INT32_MIN` and
 * `v > INT32_MAX` have no witness, so no fix is emitted there.
 */
bool
relationSatisfiable(Opcode rel, int32_t c)
{
    switch (rel) {
      case Opcode::Blt: return c > intMin;
      case Opcode::Bgt: return c < intMax;
      default: return true;
    }
}

const char *
relName(Opcode rel)
{
    switch (rel) {
      case Opcode::Beq: return "==";
      case Opcode::Bne: return "!=";
      case Opcode::Blt: return "<";
      case Opcode::Bge: return ">=";
      case Opcode::Ble: return "<=";
      case Opcode::Bgt: return ">";
      default: return "?";
    }
}

std::string
homeName(const Home &h)
{
    std::ostringstream oss;
    if (h.global)
        oss << "mem[" << h.off << "]";
    else
        oss << "mem[fp" << (h.off >= 0 ? "+" : "") << h.off << "]";
    return oss.str();
}

/** One observed Pfix/Pfixst pair at an edge start. */
struct ObservedFix
{
    uint32_t pc = 0;        //!< pc of the Pfix
    Home home;
    int32_t value = 0;
};

class FixChecker
{
  public:
    explicit FixChecker(const isa::Program &program)
        : prog(program), cfg(program), defs(cfg)
    {}

    FixCheckResult run();

  private:
    void add(DiagCode code, uint32_t pc, std::string msg);
    Operand resolve(uint32_t branchPc, uint8_t r) const;
    std::optional<Slice> deriveSlice(uint32_t pc) const;
    std::vector<ObservedFix> scanEdge(uint32_t start);
    void checkEdge(uint32_t branchPc, const char *edgeName,
                   const std::optional<Slice> &slice, Opcode edgeRel,
                   const std::vector<ObservedFix> &fixes,
                   bool companionHasFix);

    const isa::Program &prog;
    Cfg cfg;
    ReachingDefs defs;
    FixCheckResult result;
};

void
FixChecker::add(DiagCode code, uint32_t pc, std::string msg)
{
    result.diagnostics.push_back(
        Diagnostic{code, Severity::Error, pc, std::move(msg)});
}

Operand
FixChecker::resolve(uint32_t branchPc, uint8_t r) const
{
    Operand op;
    if (r == reg::zero) {
        op.kind = Operand::Kind::Literal;
        op.lit = 0;
        return op;
    }
    const uint32_t def = defs.uniqueRegDef(branchPc, r);
    if (def == ReachingDefs::noPc)
        return op;
    const isa::Instruction &inst = prog.code[def];
    if (inst.op == Opcode::Li) {
        op.kind = Operand::Kind::Literal;
        op.lit = inst.imm;
    } else if (inst.op == Opcode::Ld && inst.rs1 == reg::fp) {
        op.kind = Operand::Kind::HomeLoad;
        op.home = Home{false, inst.imm};
    } else if (inst.op == Opcode::Ld && inst.rs1 == reg::zero) {
        op.kind = Operand::Kind::HomeLoad;
        op.home = Home{true, inst.imm};
    }
    return op;
}

std::optional<Slice>
FixChecker::deriveSlice(uint32_t pc) const
{
    const isa::Instruction &br = prog.code[pc];
    const Operand a = resolve(pc, br.rs1);
    const Operand b = resolve(pc, br.rs2);
    Slice s;
    if (a.kind == Operand::Kind::HomeLoad &&
        b.kind == Operand::Kind::Literal) {
        s.home = a.home;
        s.rel = br.op;
        s.lit = b.lit;
        return s;
    }
    if (a.kind == Operand::Kind::Literal &&
        b.kind == Operand::Kind::HomeLoad) {
        s.home = b.home;
        s.rel = mirrorBranch(br.op);
        s.lit = a.lit;
        return s;
    }
    return std::nullopt;
}

std::vector<ObservedFix>
FixChecker::scanEdge(uint32_t start)
{
    std::vector<ObservedFix> fixes;
    const auto &code = prog.code;
    uint32_t q = start;
    while (q < code.size() && code[q].op == Opcode::Pfix) {
        const isa::Instruction &pfix = code[q];
        if (q + 1 >= code.size() ||
            code[q + 1].op != Opcode::Pfixst ||
            code[q + 1].rs2 != pfix.rd) {
            add(DiagCode::MalformedFixPair, q,
                "pfix is not followed by a pfixst storing its value");
            break;
        }
        const isa::Instruction &pst = code[q + 1];
        ObservedFix f;
        f.pc = q;
        f.value = pfix.imm;
        if (pst.rs1 == reg::fp) {
            f.home = Home{false, pst.imm};
        } else if (pst.rs1 == reg::zero) {
            f.home = Home{true, pst.imm};
        } else {
            add(DiagCode::MalformedFixPair, q + 1,
                "pfixst base register is neither fp nor r0");
            break;
        }
        fixes.push_back(f);
        q += 2;
    }
    return fixes;
}

void
FixChecker::checkEdge(uint32_t branchPc, const char *edgeName,
                      const std::optional<Slice> &slice,
                      Opcode edgeRel,
                      const std::vector<ObservedFix> &fixes,
                      bool companionHasFix)
{
    if (!fixes.empty()) {
        if (!slice) {
            std::ostringstream oss;
            oss << "fix on the " << edgeName << " edge of branch pc "
                << branchPc
                << " has no derivable condition-variable slice";
            add(DiagCode::ExtraFix, fixes[0].pc, oss.str());
            return;
        }
        const ObservedFix &f = fixes[0];
        if (f.home != slice->home) {
            std::ostringstream oss;
            oss << edgeName << " edge of branch pc " << branchPc
                << " fixes " << homeName(f.home)
                << " but the condition variable lives in "
                << homeName(slice->home);
            add(DiagCode::WrongFixHome, f.pc, oss.str());
        } else if (!relationHolds(f.value, edgeRel, slice->lit)) {
            std::ostringstream oss;
            oss << edgeName << " edge of branch pc " << branchPc
                << " fixes " << homeName(slice->home) << " to "
                << f.value << ", which does not satisfy v "
                << relName(edgeRel) << " " << slice->lit;
            add(DiagCode::WrongFixValue, f.pc, oss.str());
        } else {
            ++result.matchedFixes;
        }
        for (size_t i = 1; i < fixes.size(); ++i) {
            std::ostringstream oss;
            oss << "surplus fix pair on the " << edgeName
                << " edge of branch pc " << branchPc;
            add(DiagCode::ExtraFix, fixes[i].pc, oss.str());
        }
        return;
    }

    // No fix on this edge.  Expected only when the slice is fixable,
    // the edge's relation has an int32 witness, and the companion
    // edge carries a fix (one-sided emission means minic chose not
    // to fix this shape at all — e.g. short-circuit internals).
    if (slice && companionHasFix &&
        relationSatisfiable(edgeRel, slice->lit)) {
        std::ostringstream oss;
        oss << edgeName << " edge of branch pc " << branchPc
            << " should fix " << homeName(slice->home)
            << " to satisfy v " << relName(edgeRel) << " "
            << slice->lit << " but has no fix pair";
        add(DiagCode::MissingFix, branchPc, oss.str());
    }
}

FixCheckResult
FixChecker::run()
{
    const auto &code = prog.code;
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
        const isa::Instruction &br = code[pc];
        if (!isa::isConditionalBranch(br.op))
            continue;
        const uint32_t b = cfg.blockOf(pc);
        if (b == noBlock || !cfg.reachable()[b])
            continue;
        if (!staticTargetValid(br, code.size()) ||
            pc + 1 >= code.size()) {
            continue;   // the verifier reports these
        }
        ++result.checkedBranches;

        const std::optional<Slice> slice = deriveSlice(pc);
        if (slice)
            ++result.derivedSlices;

        const std::vector<ObservedFix> takenFixes =
            scanEdge(static_cast<uint32_t>(br.imm));
        const std::vector<ObservedFix> fallFixes = scanEdge(pc + 1);

        // Relations are expressed variable-first: when the literal
        // sits in rs1 the slice already mirrored the opcode.
        const Opcode takenRel = slice ? slice->rel : br.op;
        const Opcode fallRel = negateBranch(takenRel);
        checkEdge(pc, "taken", slice, takenRel, takenFixes,
                  !fallFixes.empty());
        checkEdge(pc, "fall-through", slice, fallRel, fallFixes,
                  !takenFixes.empty());
    }
    return std::move(result);
}

} // namespace

FixCheckResult
checkFixSets(const isa::Program &program)
{
    return FixChecker(program).run();
}

} // namespace pe::analysis
