/**
 * @file
 * Static program verifier (linter) over the CFG/dataflow framework.
 *
 * The verifier runs at engine load and inside the `pelint` tool.  It
 * never aborts: malformed programs are legal inputs to the simulator
 * (the interpreter raises BadJump and friends at runtime), so every
 * finding is reported as a structured Diagnostic and the caller
 * decides what to do with error-severity ones.
 *
 * Diagnostic classes:
 *
 *   InvalidTarget    (error)  branch/jump/call immediate outside code
 *   FallOffEnd       (error)  execution can run off the program end
 *   UnreachableBlock (warn)   code the entry can never reach
 *   DefBeforeUse     (warn)   register read before any definition
 *   UnbalancedStack  (warn)   `jr ra` with a nonzero net sp offset
 *   UnpairedObj      (warn)   stack-array Regobj never Unregobj'd
 *   SplitFixPair     (warn)   control enters a Pfix/Pfixst pair at
 *                             the Pfixst (targeting the Pfix is the
 *                             normal false-edge fix label)
 */

#ifndef PE_ANALYSIS_VERIFY_HH
#define PE_ANALYSIS_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/isa/program.hh"

namespace pe::analysis
{

enum class DiagCode : uint8_t
{
    // Verifier findings.
    InvalidTarget,
    FallOffEnd,
    UnreachableBlock,
    DefBeforeUse,
    UnbalancedStack,
    UnpairedObj,
    SplitFixPair,
    // Fix-set checker findings (src/analysis/fixcheck.hh).
    MalformedFixPair,
    MissingFix,
    ExtraFix,
    WrongFixValue,
    WrongFixHome,

    NumDiagCodes
};

enum class Severity : uint8_t { Warning, Error };

const char *diagCodeName(DiagCode code);
const char *severityName(Severity sev);

/** One verifier (or fix-set checker) finding. */
struct Diagnostic
{
    DiagCode code = DiagCode::InvalidTarget;
    Severity severity = Severity::Warning;
    uint32_t pc = 0;
    std::string message;
};

struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;

    size_t errorCount() const;
    size_t warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }
};

/** Render "error: <msg> at pc N (func:line)" for a finding. */
std::string formatDiagnostic(const isa::Program &program,
                             const Diagnostic &diag);

/** Run every verifier pass over @p program. */
VerifyReport verifyProgram(const isa::Program &program);

/**
 * Fingerprint of a program image (FNV-1a over the encoded
 * instructions, entry and data layout).  Used to memoise verifier
 * reports across the engine instances a campaign constructs.
 */
uint64_t programFingerprint(const isa::Program &program);

/**
 * verifyProgram() memoised process-wide by programFingerprint().
 * Thread-safe; the cache is bounded, evicting oldest entries.  The
 * returned reference stays valid for the process lifetime.
 */
const VerifyReport &verifyCached(const isa::Program &program);

} // namespace pe::analysis

#endif // PE_ANALYSIS_VERIFY_HH
