/**
 * @file
 * CFG construction, reverse postorder and dominators.
 */

#include "src/analysis/cfg.hh"

#include <algorithm>

#include "src/support/status.hh"

namespace pe::analysis
{

namespace
{

using isa::Opcode;

/** True when the instruction at @p pc never falls through to pc+1. */
bool
isTerminator(const isa::Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Jmp:
      case Opcode::Jr:
        return true;
      case Opcode::Sys:
        return static_cast<isa::Syscall>(inst.imm) ==
               isa::Syscall::Exit;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
        // A conditional branch ends its block but still falls
        // through on the not-taken direction.
        return false;
      default:
        return false;
    }
}

/** True when the instruction at @p pc ends a basic block. */
bool
endsBlock(const isa::Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
      case Opcode::Jmp:
      case Opcode::Jal:
      case Opcode::Jr:
        return true;
      case Opcode::Sys:
        return static_cast<isa::Syscall>(inst.imm) ==
               isa::Syscall::Exit;
      default:
        return false;
    }
}

} // namespace

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::FallThrough: return "fall-through";
      case EdgeKind::BranchTaken: return "branch-taken";
      case EdgeKind::BranchNotTaken: return "branch-not-taken";
      case EdgeKind::Jump: return "jump";
      case EdgeKind::Call: return "call";
      case EdgeKind::CallReturn: return "call-return";
    }
    return "?";
}

Cfg::Cfg(const isa::Program &program)
    : prog(&program)
{
    const auto &code = program.code;
    const size_t n = code.size();
    if (n == 0)
        return;

    // Leaders: pc 0, the entry, function starts, every statically
    // valid branch/jump/call target, and the instruction after any
    // block-ending instruction.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    if (program.entry < n)
        leader[program.entry] = true;
    for (const auto &f : program.funcs) {
        if (f.startPc < n)
            leader[f.startPc] = true;
    }
    for (size_t pc = 0; pc < n; ++pc) {
        const isa::Instruction &inst = code[pc];
        switch (inst.op) {
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
          case Opcode::Jmp:
          case Opcode::Jal:
            if (staticTargetValid(inst, n))
                leader[static_cast<size_t>(inst.imm)] = true;
            break;
          default:
            break;
        }
        if (endsBlock(inst) && pc + 1 < n)
            leader[pc + 1] = true;
    }

    // Blocks tile [0, n).
    pcBlock.assign(n, noBlock);
    for (size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            BasicBlock b;
            b.firstPc = static_cast<uint32_t>(pc);
            b.lastPc = static_cast<uint32_t>(pc);
            blockList.push_back(b);
        }
        pcBlock[pc] = static_cast<uint32_t>(blockList.size() - 1);
        blockList.back().lastPc = static_cast<uint32_t>(pc);
    }

    // Edges.
    auto addEdge = [&](uint32_t fromBlock, uint32_t toPc,
                       EdgeKind kind) {
        CfgEdge e;
        e.from = fromBlock;
        e.to = pcBlock[toPc];
        e.kind = kind;
        uint32_t idx = static_cast<uint32_t>(edgeList.size());
        edgeList.push_back(e);
        blockList[e.from].succs.push_back(idx);
        blockList[e.to].preds.push_back(idx);
    };
    for (uint32_t id = 0; id < blockList.size(); ++id) {
        const uint32_t last = blockList[id].lastPc;
        const isa::Instruction &inst = code[last];
        const bool validTarget = staticTargetValid(inst, n);
        switch (inst.op) {
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
            // An invalid target crashes before either edge; a
            // fall-through off the program end is flagged by the
            // verifier, not edged.
            if (validTarget) {
                addEdge(id, static_cast<uint32_t>(inst.imm),
                        EdgeKind::BranchTaken);
                if (last + 1 < n)
                    addEdge(id, last + 1, EdgeKind::BranchNotTaken);
            }
            break;
          case Opcode::Jmp:
            if (validTarget) {
                addEdge(id, static_cast<uint32_t>(inst.imm),
                        EdgeKind::Jump);
            }
            break;
          case Opcode::Jal:
            if (validTarget) {
                addEdge(id, static_cast<uint32_t>(inst.imm),
                        EdgeKind::Call);
                if (last + 1 < n)
                    addEdge(id, last + 1, EdgeKind::CallReturn);
            }
            break;
          case Opcode::Jr:
            break;
          default:
            if (!isTerminator(inst) && last + 1 < n)
                addEdge(id, last + 1, EdgeKind::FallThrough);
            break;
        }
    }

    // Deterministic successor order: sort each block's outgoing
    // edges by target firstPc (edge index breaks the tie for
    // parallel edges).  Construction order above depends on the
    // opcode cases — BranchTaken before BranchNotTaken, Call before
    // CallReturn — which is stable today but an accident of the
    // switch layout; prime-path ids and every order-sensitive
    // consumer (reversePostOrder, the simple-path worklist) key off
    // succession order, so it is pinned here instead
    // (tests/primepath_test.cpp holds the pin).
    for (BasicBlock &b : blockList) {
        std::sort(b.succs.begin(), b.succs.end(),
                  [&](uint32_t ea, uint32_t eb) {
                      uint32_t pa = blockList[edgeList[ea].to].firstPc;
                      uint32_t pb = blockList[edgeList[eb].to].firstPc;
                      if (pa != pb)
                          return pa < pb;
                      return ea < eb;
                  });
    }

    // Reachability from the entry, across every edge kind.
    reach.assign(blockList.size(), false);
    if (program.entry < n) {
        std::vector<uint32_t> stack{pcBlock[program.entry]};
        reach[stack.back()] = true;
        while (!stack.empty()) {
            uint32_t b = stack.back();
            stack.pop_back();
            for (uint32_t e : blockList[b].succs) {
                uint32_t to = edgeList[e].to;
                if (!reach[to]) {
                    reach[to] = true;
                    stack.push_back(to);
                }
            }
        }
    }
}

std::vector<uint32_t>
Cfg::reversePostOrder(uint32_t rootBlock, bool intraprocedural) const
{
    pe_assert(rootBlock < blockList.size(), "rpo root out of range");
    std::vector<uint32_t> post;
    post.reserve(blockList.size());
    std::vector<uint8_t> state(blockList.size(), 0);   // 0/1/2

    // Iterative DFS with an explicit (block, next-succ) stack.
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(rootBlock, 0);
    state[rootBlock] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &succs = blockList[b].succs;
        bool descended = false;
        while (next < succs.size()) {
            const CfgEdge &e = edgeList[succs[next++]];
            if (intraprocedural && e.kind == EdgeKind::Call)
                continue;
            if (state[e.to] == 0) {
                state[e.to] = 1;
                stack.emplace_back(e.to, 0);
                descended = true;
                break;
            }
        }
        if (!descended && !stack.empty() &&
            stack.back().first == b && stack.back().second >=
                succs.size()) {
            state[b] = 2;
            post.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

std::vector<uint32_t>
Cfg::dominators(uint32_t rootBlock) const
{
    // Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm":
    // iterate intersect() over the reverse postorder to fixpoint.
    std::vector<uint32_t> rpo =
        reversePostOrder(rootBlock, /*intraprocedural=*/true);
    std::vector<uint32_t> rpoIndex(blockList.size(), noBlock);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;

    std::vector<uint32_t> idom(blockList.size(), noBlock);
    idom[rootBlock] = rootBlock;

    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (b == rootBlock)
                continue;
            uint32_t newIdom = noBlock;
            for (uint32_t e : blockList[b].preds) {
                const CfgEdge &edge = edgeList[e];
                if (edge.kind == EdgeKind::Call)
                    continue;
                uint32_t p = edge.from;
                if (rpoIndex[p] == noBlock || idom[p] == noBlock)
                    continue;   // pred not reachable from the root
                newIdom = newIdom == noBlock ? p
                                             : intersect(newIdom, p);
            }
            if (newIdom != noBlock && idom[b] != newIdom) {
                idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
Cfg::dominates(const std::vector<uint32_t> &idom, uint32_t a,
               uint32_t b)
{
    if (b >= idom.size() || idom[b] == noBlock)
        return false;
    while (true) {
        if (b == a)
            return true;
        uint32_t up = idom[b];
        if (up == b)
            return false;   // reached the root without meeting a
        b = up;
    }
}

} // namespace pe::analysis
