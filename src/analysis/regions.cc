/**
 * @file
 * Static saturation eligibility (see regions.hh for the LRU-safety
 * argument this computes).
 */

#include "src/analysis/regions.hh"

#include "src/analysis/cfg.hh"
#include "src/support/status.hh"

namespace pe::analysis
{

SaturationEligibility
computeSaturationEligibility(const isa::Program &program,
                             uint32_t btbSets, uint32_t btbWays)
{
    pe_assert(btbSets > 0 && btbWays > 0, "degenerate BTB geometry");

    SaturationEligibility out;
    out.branchEligible.assign(program.code.size(), false);

    // Pass 1: population of each BTB set.  Only statically valid
    // conditional branches ever reach Btb::increment — an invalid
    // target raises BadJump before any bookkeeping — so only those
    // count toward a set.
    std::vector<uint32_t> setPop(btbSets, 0);
    for (uint32_t pc = 0; pc < program.code.size(); ++pc) {
        const isa::Instruction &inst = program.code[pc];
        if (!isa::isConditionalBranch(inst.op) ||
            !staticTargetValid(inst, program.code.size())) {
            continue;
        }
        ++out.condBranches;
        ++setPop[pc % btbSets];
    }

    // Pass 2: a branch is eligible iff its set can never evict.
    for (uint32_t pc = 0; pc < program.code.size(); ++pc) {
        const isa::Instruction &inst = program.code[pc];
        if (!isa::isConditionalBranch(inst.op) ||
            !staticTargetValid(inst, program.code.size())) {
            continue;
        }
        if (setPop[pc % btbSets] <= btbWays) {
            out.branchEligible[pc] = true;
            ++out.eligibleBranches;
        }
    }
    return out;
}

size_t
countEligibleRegions(const Cfg &cfg, const SaturationEligibility &elig)
{
    size_t n = 0;
    for (const BasicBlock &block : cfg.blocks()) {
        if (block.lastPc < elig.branchEligible.size() &&
            elig.branchEligible[block.lastPc]) {
            ++n;
        }
    }
    return n;
}

} // namespace pe::analysis
