/**
 * @file
 * Static saturation eligibility for the self-pruning instrumentation.
 *
 * The engine's superblock cache may stop instrumenting a conditional
 * branch once it is *saturated*: both taken-coverage bits set and, in
 * every direction the spawn predicate would still consult, the BTB
 * exercise counter at its cap.  Eliding the per-execution
 * `Btb::increment` is only bit-identical if the skipped bookkeeping
 * could never have changed an observable decision — and one piece of
 * that bookkeeping is the LRU `lastUse` stamp, which feeds eviction.
 * A promoted branch whose BTB set could overflow might be chosen as
 * the LRU victim differently in the pruned and instrumented runs,
 * changing which counters survive and therefore which NT-Paths spawn.
 *
 * The static eligibility computed here closes that hole: a branch pc
 * is eligible only when its BTB set is *conflict-free* — the number
 * of conditional-branch pcs mapping to the set (only branch pcs are
 * ever inserted into the BTB) is at most the associativity, so every
 * one of them can be resident simultaneously and eviction can never
 * occur there.  Frozen LRU stamps in such a set are unobservable, and
 * skipped `useClock` ticks preserve the relative recency order every
 * other set's eviction decisions are based on.
 *
 * Branches with statically invalid targets are excluded from both the
 * set population and eligibility: executing one raises BadJump before
 * any BTB update, so they never enter the table.
 */

#ifndef PE_ANALYSIS_REGIONS_HH
#define PE_ANALYSIS_REGIONS_HH

#include <cstdint>
#include <vector>

#include "src/isa/program.hh"

namespace pe::analysis
{

class Cfg;

/** Per-pc static eligibility for superblock promotion. */
struct SaturationEligibility
{
    /** True at pcs holding an eligible conditional branch. */
    std::vector<bool> branchEligible;

    uint32_t condBranches = 0;      //!< statically valid cond branches
    uint32_t eligibleBranches = 0;  //!< of those, in conflict-free sets
};

/**
 * Compute eligibility of every conditional branch of @p program
 * against a BTB of @p btbSets sets of @p btbWays ways (the engine
 * passes its `BtbParams` geometry: sets = entries / ways).
 */
SaturationEligibility
computeSaturationEligibility(const isa::Program &program,
                             uint32_t btbSets, uint32_t btbWays);

/**
 * Number of CFG regions (basic blocks) that end in an eligible
 * conditional branch — the regions runtime saturation could ever
 * promote into superblock form.  The pelint per-workload report.
 */
size_t countEligibleRegions(const Cfg &cfg,
                            const SaturationEligibility &elig);

} // namespace pe::analysis

#endif // PE_ANALYSIS_REGIONS_HH
