/**
 * @file
 * Bounded-DFS spawn-prior computation.
 */

#include "src/analysis/priors.hh"

#include <algorithm>
#include <deque>
#include <vector>

#include "src/analysis/cfg.hh"
#include "src/isa/regs.hh"

namespace pe::analysis
{

namespace
{

using isa::Opcode;
using isa::Syscall;

bool
isUnsafeSys(const isa::Instruction &inst)
{
    return inst.op == Opcode::Sys &&
           static_cast<Syscall>(inst.imm) != Syscall::Exit;
}

/** True for instructions a doomed-edge scan may step over: pure
 *  register/fix work that neither touches checked memory nor
 *  branches on data. */
bool
inertForDoom(const isa::Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sle: case Opcode::Seq: case Opcode::Sne:
      case Opcode::Sgt: case Opcode::Sge:
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Shli: case Opcode::Shri:
      case Opcode::Slti: case Opcode::Li:
      case Opcode::Pfix: case Opcode::Pfixst:
        return true;
      default:
        return false;
    }
}

/**
 * Straight-line scan: the edge is doomed when, stepping only over
 * inert instructions and unconditional valid jumps, the very first
 * eventful instruction is an unsafe Sys.
 */
bool
immediateDoom(const isa::Program &prog, uint32_t start)
{
    const auto &code = prog.code;
    uint32_t pc = start;
    for (int steps = 0; steps < 32 && pc < code.size(); ++steps) {
        const isa::Instruction &inst = code[pc];
        if (isUnsafeSys(inst))
            return true;
        if (inst.op == Opcode::Jmp) {
            if (!staticTargetValid(inst, code.size()))
                return false;
            pc = static_cast<uint32_t>(inst.imm);
            continue;
        }
        if (!inertForDoom(inst))
            return false;
        ++pc;
    }
    return false;
}

EdgePrior
explore(const isa::Program &prog, uint32_t start, uint32_t maxLen)
{
    EdgePrior prior;
    const auto &code = prog.code;
    if (start >= code.size())
        return prior;

    // BFS over instruction pcs, distances in instructions.
    std::vector<uint32_t> dist(code.size(), EdgePrior::noDistance);
    std::deque<uint32_t> queue;
    dist[start] = 0;
    queue.push_back(start);
    uint32_t visited = 0;

    auto enqueue = [&](uint32_t to, uint32_t d) {
        if (to < code.size() && d < maxLen &&
            dist[to] == EdgePrior::noDistance) {
            dist[to] = d;
            queue.push_back(to);
        }
    };

    while (!queue.empty()) {
        const uint32_t pc = queue.front();
        queue.pop_front();
        const uint32_t d = dist[pc];
        ++visited;
        const isa::Instruction &inst = code[pc];

        if (inst.op == Opcode::St || inst.op == Opcode::Pfixst)
            ++prior.storeUpperBound;

        if (isUnsafeSys(inst)) {
            // The NT path is squashed here: terminal.
            prior.unsafeDistance =
                std::min(prior.unsafeDistance, d);
            continue;
        }

        switch (inst.op) {
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
            if (staticTargetValid(inst, code.size()))
                enqueue(static_cast<uint32_t>(inst.imm), d + 1);
            enqueue(pc + 1, d + 1);
            break;
          case Opcode::Jmp:
            if (staticTargetValid(inst, code.size()))
                enqueue(static_cast<uint32_t>(inst.imm), d + 1);
            break;
          case Opcode::Jal:
            // Follow the call; the matching Jr stops the walk, so
            // post-return code is (conservatively) not counted.
            if (staticTargetValid(inst, code.size()))
                enqueue(static_cast<uint32_t>(inst.imm), d + 1);
            break;
          case Opcode::Jr:
            break;        // indirect: needs dynamic state
          case Opcode::Sys:
            break;        // Exit: terminal
          default:
            enqueue(pc + 1, d + 1);
            break;
        }
    }

    prior.pathLenBound = std::min(visited, maxLen);
    prior.doomed = immediateDoom(prog, start);
    return prior;
}

} // namespace

BranchPriors
computeBranchPriors(const isa::Program &program,
                    uint32_t maxNtPathLength)
{
    BranchPriors priors;
    priors.maxLen = std::max<uint32_t>(1, maxNtPathLength);
    const auto &code = program.code;
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
        const isa::Instruction &inst = code[pc];
        if (!isa::isConditionalBranch(inst.op))
            continue;
        std::array<EdgePrior, 2> e;
        if (pc + 1 < code.size())
            e[0] = explore(program, pc + 1, priors.maxLen);
        if (staticTargetValid(inst, code.size())) {
            e[1] = explore(program,
                           static_cast<uint32_t>(inst.imm),
                           priors.maxLen);
        }
        priors.branches.emplace(pc, e);
    }
    return priors;
}

double
edgePotential(const EdgePrior &prior, uint32_t maxNtPathLength)
{
    if (prior.doomed || maxNtPathLength == 0)
        return 0.0;
    const double cap = maxNtPathLength;
    const double len =
        std::min<double>(prior.pathLenBound, cap) / cap;
    const double stores =
        1.0 + std::min<double>(prior.storeUpperBound, 16.0) / 16.0;
    double unsafe = 1.0;
    if (prior.unsafeDistance != EdgePrior::noDistance) {
        unsafe = 0.5 +
                 0.5 * std::min<double>(prior.unsafeDistance, cap) /
                     cap;
    }
    return len * stores * unsafe;
}

} // namespace pe::analysis
