/**
 * @file
 * Dataflow passes over the CFG: per-instruction register effects,
 * must-defined registers, liveness, and reaching definitions over
 * "cells" (the 32 registers plus the fp-relative and global memory
 * slots a Pfixst can address).
 *
 * The reaching-definitions pass is deliberately conservative where
 * the machine is dynamic:
 *
 *  - a call (Jal) may define *every* cell (the callee is opaque), so
 *    it poisons each cell's def set with an "unknown" marker instead
 *    of a concrete site;
 *  - a store through a non-fp, non-zero base register may hit any
 *    memory slot, so it poisons every tracked memory cell;
 *  - Pfix/Pfixst execute only under the NT-entry predicate, so they
 *    are weak (may) definitions that never kill earlier ones.
 *
 * Consumers that need a *unique* definition (the fix-set checker)
 * therefore only trust a cell whose reaching set is exactly one
 * concrete site with the unknown marker clear.
 */

#ifndef PE_ANALYSIS_DATAFLOW_HH
#define PE_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/analysis/cfg.hh"

namespace pe::analysis
{

/** Bitmask of registers @p inst reads (architecturally, r0 included). */
uint32_t regReadMask(const isa::Instruction &inst);

/**
 * Bitmask of registers @p inst writes.  r0 is never reported (writes
 * to it are dropped by the register file).  Pfix reports its rd even
 * though the write is predicated; Jal reports only its link register —
 * callers that must model the callee's clobbers (the must-defined
 * pass, reaching defs) special-case Jal themselves.
 */
uint32_t regWriteMask(const isa::Instruction &inst);

/**
 * Forward must-analysis: the set of registers guaranteed to have been
 * written on every path from the entry, per block (value at block
 * entry).  @p entryDefined seeds the program-entry block; a Jal is
 * assumed to define every register (the MiniC ABI initialises rv and
 * scratch in the callee).  Unreachable blocks report all-ones
 * (vacuously defined).
 */
std::vector<uint32_t> definedRegsIn(const Cfg &cfg,
                                    uint32_t entryDefined);

/** Backward may-analysis results: live registers per block. */
struct Liveness
{
    std::vector<uint32_t> liveIn;   //!< live at block entry
    std::vector<uint32_t> liveOut;  //!< live at block exit
};

/** Registers live at each block boundary, over every edge kind. */
Liveness liveness(const Cfg &cfg);

/** Registers live immediately before executing @p pc. */
uint32_t liveBefore(const Cfg &cfg, const Liveness &live, uint32_t pc);

/** A storage location trackable by reaching definitions. */
struct Cell
{
    enum class Kind : uint8_t
    {
        Reg,            //!< index = register number
        FpSlot,         //!< index = word offset from fp
        GlobalSlot,     //!< index = absolute word address (zero base)
    };
    Kind kind = Kind::Reg;
    int32_t index = 0;

    static Cell regCell(uint8_t r)
    {
        return {Kind::Reg, static_cast<int32_t>(r)};
    }
    static Cell fpSlot(int32_t off) { return {Kind::FpSlot, off}; }
    static Cell globalSlot(int32_t addr)
    {
        return {Kind::GlobalSlot, addr};
    }
};

class ReachingDefs
{
  public:
    explicit ReachingDefs(const Cfg &cfg);

    static constexpr uint32_t noPc = UINT32_MAX;

    /** Definitions of @p cell reaching the start of @p pc. */
    struct Defs
    {
        std::vector<uint32_t> pcs;  //!< concrete def sites, sorted
        bool unknown = false;       //!< poisoned by a call/wild store
    };

    Defs defsBefore(uint32_t pc, Cell cell) const;

    /**
     * The single concrete instruction that defines register @p r on
     * every path into @p pc, or noPc when there is none, more than
     * one, or an opaque (call) definition may intervene.
     */
    uint32_t uniqueRegDef(uint32_t pc, uint8_t r) const;

  private:
    /** How one instruction affects one cell. */
    enum class Effect : uint8_t { None, Strong, Weak, Unknown };

    Effect effectOn(const isa::Instruction &inst, uint32_t cellId) const;
    uint32_t cellIdOf(Cell cell) const;     //!< noPc when untracked

    struct CellSet
    {
        std::vector<uint32_t> sites;    //!< sorted def pcs
        bool unknown = false;
    };

    const Cfg *cfg;
    uint32_t numCells = 0;
    std::unordered_map<int32_t, uint32_t> fpSlotId;
    std::unordered_map<int32_t, uint32_t> globalSlotId;
    std::vector<bool> isMemCell;            //!< cell id -> memory cell
    /** in[block * numCells + cell] */
    std::vector<CellSet> in;
};

} // namespace pe::analysis

#endif // PE_ANALYSIS_DATAFLOW_HH
