/**
 * @file
 * Prime-path enumeration and minimum path cover over the CFG.
 *
 * A *prime path* (Ammann & Offutt; the structural metric GCC 15's
 * prime-path coverage computes) is a maximal simple path: a path that
 * repeats no block — except that the last block may equal the first,
 * a *cycle* — and that is not a proper subpath of any other simple
 * path.  Prime paths are the smallest set of paths whose coverage
 * implies coverage of every simple path, which makes "prime paths
 * completed" the tractable stand-in for the path coverage the paper's
 * Section 2 names as the real target but cannot measure.
 *
 * Two departures from the textbook formulation, both deliberate:
 *
 *  - Paths are *edge* sequences, not node sequences.  A conditional
 *    branch whose taken target equals its fall-through produces two
 *    parallel CFG edges between the same blocks; a node-sequence path
 *    cannot say which direction it exercised, but the runtime fold
 *    (coverage::PathCoverage) sees the direction in the branch event
 *    stream and the path cover wants both.  Simplicity is still
 *    defined on blocks; maximality is contiguous containment of the
 *    edge sequence.
 *
 *  - Enumeration is intraprocedural, per function root, following the
 *    CallReturn edge across calls (the MiniC calling convention
 *    guarantees the return lands at pc+1).  Interprocedural prime
 *    paths would multiply the path count by the call graph for no
 *    extra decision coverage.
 *
 * Enumeration is the standard worklist algorithm: seed every
 * subgraph block as a length-0 path, extend each path along every
 * successor edge that keeps it simple (a successor equal to the
 * path's first block closes a cycle and finalizes), finalize paths
 * with no extension, then discard finals that are proper subpaths of
 * another final.  Path explosion is bounded by a hard cap: when the
 * generated-path budget is exhausted the enumeration stops, keeps
 * what it has, reports the truncation through PrimePathSet::truncated
 * and a warn() log line, and every consumer (pelint, the explorer's
 * tracker) carries the flag so a truncated metric is never mistaken
 * for a complete one.
 *
 * The *minimum path cover* is the Empc-style small target set: the
 * fewest prime paths whose union touches every CFG edge that appears
 * in any prime path.  Exact minimization is set cover (NP-hard), and
 * the classic polynomial bipartite-matching construction (Dilworth /
 * Fulkerson) only applies to vertex-disjoint covers of DAGs — our
 * CFGs have cycles and our paths share blocks by design.  So the
 * cover is the deterministic greedy approximation (pick the path
 * covering the most uncovered edges, lowest path id on ties), which
 * is the standard ln(n)-factor bound and, at the sizes the cap
 * allows, indistinguishable from optimal for scheduling purposes.
 */

#ifndef PE_ANALYSIS_PRIMEPATHS_HH
#define PE_ANALYSIS_PRIMEPATHS_HH

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.hh"

namespace pe::analysis
{

struct PrimePathOptions
{
    /** Hard cap on the prime paths kept (ids are stable under it). */
    uint32_t maxPaths = 4096;

    /**
     * Budget on *generated* candidate simple paths (worklist volume);
     * 0 derives 32 * maxPaths.  Exhausting either bound sets
     * PrimePathSet::truncated.
     */
    uint64_t maxGenerated = 0;
};

/**
 * One prime path: the start block plus the Cfg edge-index sequence —
 * the compact encoding the runtime matcher walks.  A path of a single
 * block has an empty edge list.
 */
struct PrimePath
{
    uint32_t startBlock = 0;
    std::vector<uint32_t> edges;
};

struct PrimePathSet
{
    /**
     * Prime paths in canonical order (start block, then the edge-id
     * sequence lexicographically, prefixes first); the index is the
     * path id every consumer shares.
     * Stable across runs because Cfg successor order is pinned to
     * target-pc order.
     */
    std::vector<PrimePath> paths;

    /** Enumeration hit a cap; paths is a prefix of the truth. */
    bool truncated = false;

    /** Candidate simple paths materialized (diagnostic). */
    uint64_t generated = 0;

    /** Function-root subgraphs enumerated (diagnostic). */
    uint32_t roots = 0;
};

/** Block sequence of @p path under @p cfg (startBlock included). */
std::vector<uint32_t> primePathBlocks(const Cfg &cfg,
                                      const PrimePath &path);

PrimePathSet enumeratePrimePaths(const Cfg &cfg,
                                 const PrimePathOptions &opts = {});

/**
 * Greedy minimum path cover: ids of @p set's paths, in selection
 * order, whose union covers every edge any prime path covers (see
 * file comment for why greedy set cover and not bipartite matching).
 */
std::vector<uint32_t> computePathCover(const Cfg &cfg,
                                       const PrimePathSet &set);

} // namespace pe::analysis

#endif // PE_ANALYSIS_PRIMEPATHS_HH
