/**
 * @file
 * Verifier pass implementations.
 */

#include "src/analysis/verify.hh"

#include <deque>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/analysis/dataflow.hh"
#include "src/isa/instruction.hh"
#include "src/isa/regs.hh"

namespace pe::analysis
{

namespace
{

using isa::Opcode;
using isa::Syscall;
namespace reg = isa::reg;

/** Per-class diagnostic cap so a broken program can't flood reports. */
constexpr size_t diagCap = 64;

bool
isDirectJump(Opcode op)
{
    return isa::isConditionalBranch(op) || op == Opcode::Jmp ||
           op == Opcode::Jal;
}

class Verifier
{
  public:
    explicit Verifier(const isa::Program &program)
        : prog(program), cfg(program)
    {}

    VerifyReport run();

  private:
    void add(DiagCode code, Severity sev, uint32_t pc,
             std::string msg);
    void checkTargets();
    void checkFallOffEnd();
    void checkUnreachable();
    void checkDefBeforeUse();
    void checkStackBalance();
    void checkObjPairing();

    const isa::Program &prog;
    Cfg cfg;
    VerifyReport report;
    size_t classCount[static_cast<size_t>(DiagCode::NumDiagCodes)] =
        {};
};

void
Verifier::add(DiagCode code, Severity sev, uint32_t pc,
              std::string msg)
{
    size_t &count = classCount[static_cast<size_t>(code)];
    if (count++ >= diagCap)
        return;
    report.diagnostics.push_back(
        Diagnostic{code, sev, pc, std::move(msg)});
}

void
Verifier::checkTargets()
{
    const auto &code = prog.code;
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
        const isa::Instruction &inst = code[pc];
        if (!isDirectJump(inst.op))
            continue;
        if (!staticTargetValid(inst, code.size())) {
            std::ostringstream oss;
            oss << "target " << inst.imm << " of '"
                << isa::disassemble(inst) << "' is outside the "
                << code.size() << "-instruction program";
            add(DiagCode::InvalidTarget, Severity::Error, pc,
                oss.str());
            continue;
        }
        // Control entering a fix pair at the Pfixst skips the Pfix
        // that loads the value it stores.
        const uint32_t target = static_cast<uint32_t>(inst.imm);
        if (code[target].op == Opcode::Pfixst) {
            std::ostringstream oss;
            oss << "'" << isa::disassemble(inst)
                << "' targets the pfixst half of a fix pair at pc "
                << target;
            add(DiagCode::SplitFixPair, Severity::Warning, pc,
                oss.str());
        }
    }
}

void
Verifier::checkFallOffEnd()
{
    const auto &code = prog.code;
    if (code.empty())
        return;
    const isa::Instruction &last = code.back();
    bool falls = true;
    switch (last.op) {
      case Opcode::Jmp:
      case Opcode::Jr:
        falls = false;
        break;
      case Opcode::Sys:
        falls = static_cast<Syscall>(last.imm) != Syscall::Exit;
        break;
      default:
        break;
    }
    if (falls) {
        add(DiagCode::FallOffEnd, Severity::Error,
            static_cast<uint32_t>(code.size() - 1),
            "execution can fall through off the end of the program");
    }
}

void
Verifier::checkUnreachable()
{
    // One diagnostic per maximal run of contiguous unreachable
    // blocks, so dead regions don't flood the report.
    const auto &reach = cfg.reachable();
    uint32_t runStart = noBlock;
    uint32_t runEnd = 0;
    auto flush = [&]() {
        if (runStart == noBlock)
            return;
        const uint32_t firstPc = cfg.block(runStart).firstPc;
        const uint32_t lastPc = cfg.block(runEnd).lastPc;
        std::ostringstream oss;
        oss << "instructions [" << firstPc << ", " << lastPc
            << "] are unreachable from the entry";
        add(DiagCode::UnreachableBlock, Severity::Warning, firstPc,
            oss.str());
        runStart = noBlock;
    };
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (!reach[b]) {
            if (runStart == noBlock)
                runStart = b;
            runEnd = b;
        } else {
            flush();
        }
    }
    flush();
}

void
Verifier::checkDefBeforeUse()
{
    const uint32_t entryDefined = (1u << reg::zero) | (1u << reg::sp) |
                                  (1u << reg::fp) | (1u << reg::ra) |
                                  (1u << reg::rv);
    const std::vector<uint32_t> in = definedRegsIn(cfg, entryDefined);
    const auto &code = prog.code;
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (!cfg.reachable()[b])
            continue;
        uint32_t defined = in[b];
        const BasicBlock &blk = cfg.block(b);
        for (uint32_t pc = blk.firstPc; pc <= blk.lastPc; ++pc) {
            const isa::Instruction &inst = code[pc];
            uint32_t undef = regReadMask(inst) & ~defined;
            while (undef) {
                const int r = __builtin_ctz(undef);
                undef &= undef - 1;
                std::ostringstream oss;
                oss << "'" << isa::disassemble(inst) << "' reads r"
                    << r << " before any definition reaches it";
                add(DiagCode::DefBeforeUse, Severity::Warning, pc,
                    oss.str());
            }
            defined |= inst.op == Opcode::Jal ? 0xFFFFFFFFu
                                              : regWriteMask(inst);
        }
    }
}

void
Verifier::checkStackBalance()
{
    // Symbolic sp/fp offsets relative to the sp at function entry.
    // `jr ra` must see sp back at offset 0.  Offsets go unknown on
    // any write we can't model; unknown never warns.
    struct Off
    {
        bool known = false;
        int32_t val = 0;
        bool operator==(const Off &o) const = default;
    };
    struct State
    {
        bool visited = false;
        Off sp, fp;
        bool operator==(const State &o) const = default;
    };
    const auto &code = prog.code;

    auto step = [&](State st, const isa::Instruction &inst) {
        auto src = [&](uint8_t r) -> Off {
            if (r == reg::sp)
                return st.sp;
            if (r == reg::fp)
                return st.fp;
            return Off{};
        };
        // Calls preserve sp/fp under the MiniC ABI.
        if (inst.op == Opcode::Jal)
            return st;
        const uint32_t writes = regWriteMask(inst);
        if (writes & (1u << reg::sp)) {
            Off n;
            if (inst.op == Opcode::Addi) {
                Off base = src(inst.rs1);
                if (base.known)
                    n = Off{true, base.val + inst.imm};
            }
            st.sp = n;
        }
        if (writes & (1u << reg::fp)) {
            Off n;
            if (inst.op == Opcode::Addi) {
                Off base = src(inst.rs1);
                if (base.known)
                    n = Off{true, base.val + inst.imm};
            }
            st.fp = n;
        }
        return st;
    };

    for (const isa::FuncInfo &f : prog.funcs) {
        const uint32_t entryBlock = cfg.blockOf(f.startPc);
        if (entryBlock == noBlock)
            continue;
        std::vector<State> states(cfg.numBlocks());
        states[entryBlock].visited = true;
        states[entryBlock].sp = Off{true, 0};
        std::vector<uint32_t> work{entryBlock};
        while (!work.empty()) {
            const uint32_t b = work.back();
            work.pop_back();
            State st = states[b];
            const BasicBlock &blk = cfg.block(b);
            for (uint32_t pc = blk.firstPc; pc <= blk.lastPc; ++pc)
                st = step(st, code[pc]);
            for (uint32_t e : cfg.block(b).succs) {
                const CfgEdge &edge = cfg.edges()[e];
                if (edge.kind == EdgeKind::Call)
                    continue;
                const BasicBlock &to = cfg.block(edge.to);
                if (to.firstPc < f.startPc || to.firstPc >= f.endPc)
                    continue;
                State merged = st;
                merged.visited = true;
                if (states[edge.to].visited) {
                    State &old = states[edge.to];
                    if (old.sp != merged.sp)
                        merged.sp = Off{};
                    if (old.fp != merged.fp)
                        merged.fp = Off{};
                    if (merged == old)
                        continue;
                }
                states[edge.to] = merged;
                work.push_back(edge.to);
            }
        }
        // Check every return the walk reached.
        for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
            if (!states[b].visited)
                continue;
            const BasicBlock &blk = cfg.block(b);
            const isa::Instruction &lastInst = code[blk.lastPc];
            if (lastInst.op != Opcode::Jr || lastInst.rs1 != reg::ra)
                continue;
            State st = states[b];
            for (uint32_t pc = blk.firstPc; pc < blk.lastPc; ++pc)
                st = step(st, code[pc]);
            if (st.sp.known && st.sp.val != 0) {
                std::ostringstream oss;
                oss << "function '" << f.name
                    << "' returns with sp offset " << st.sp.val
                    << " (expected 0)";
                add(DiagCode::UnbalancedStack, Severity::Warning,
                    blk.lastPc, oss.str());
            }
        }
    }
}

void
Verifier::checkObjPairing()
{
    // A stack array registered in a function body must be
    // unregistered before return (minic's epilogue does this).  Heap
    // Regobjs pair with free() anywhere, so only StackArray counts.
    const auto &code = prog.code;
    for (const isa::FuncInfo &f : prog.funcs) {
        int stackRegs = 0;
        int unregs = 0;
        for (uint32_t pc = f.startPc;
             pc < f.endPc && pc < code.size(); ++pc) {
            const isa::Instruction &inst = code[pc];
            if (inst.op == Opcode::Regobj &&
                static_cast<isa::ObjectKind>(inst.imm) ==
                    isa::ObjectKind::StackArray) {
                ++stackRegs;
            } else if (inst.op == Opcode::Unregobj) {
                ++unregs;
            }
        }
        if (stackRegs > unregs) {
            std::ostringstream oss;
            oss << "function '" << f.name << "' registers "
                << stackRegs << " stack array(s) but unregisters only "
                << unregs;
            add(DiagCode::UnpairedObj, Severity::Warning, f.startPc,
                oss.str());
        }
    }
}

VerifyReport
Verifier::run()
{
    checkTargets();
    checkFallOffEnd();
    checkUnreachable();
    checkDefBeforeUse();
    checkStackBalance();
    checkObjPairing();
    return std::move(report);
}

} // namespace

const char *
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::InvalidTarget: return "invalid-target";
      case DiagCode::FallOffEnd: return "fall-off-end";
      case DiagCode::UnreachableBlock: return "unreachable-block";
      case DiagCode::DefBeforeUse: return "def-before-use";
      case DiagCode::UnbalancedStack: return "unbalanced-stack";
      case DiagCode::UnpairedObj: return "unpaired-obj";
      case DiagCode::SplitFixPair: return "split-fix-pair";
      case DiagCode::MalformedFixPair: return "malformed-fix-pair";
      case DiagCode::MissingFix: return "missing-fix";
      case DiagCode::ExtraFix: return "extra-fix";
      case DiagCode::WrongFixValue: return "wrong-fix-value";
      case DiagCode::WrongFixHome: return "wrong-fix-home";
      case DiagCode::NumDiagCodes: break;
    }
    return "?";
}

const char *
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

size_t
VerifyReport::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        n += d.severity == Severity::Error;
    return n;
}

size_t
VerifyReport::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
formatDiagnostic(const isa::Program &program, const Diagnostic &diag)
{
    std::ostringstream oss;
    oss << severityName(diag.severity) << " ["
        << diagCodeName(diag.code) << "] pc " << diag.pc << " ("
        << program.describePc(diag.pc) << "): " << diag.message;
    return oss.str();
}

VerifyReport
verifyProgram(const isa::Program &program)
{
    return Verifier(program).run();
}

uint64_t
programFingerprint(const isa::Program &program)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001b3ull;
        }
    };
    for (const isa::Instruction &inst : program.code)
        mix(isa::encode(inst));
    mix(program.entry);
    mix(program.dataBase);
    mix(program.heapBase);
    mix(program.dataInit.size());
    return h;
}

const VerifyReport &
verifyCached(const isa::Program &program)
{
    // Engines are constructed per campaign job — thousands per
    // exploration session — so the verifier memoises on the program
    // image.  Bounded FIFO: campaigns cycle through very few
    // distinct programs.
    static std::mutex mtx;
    static std::deque<std::pair<uint64_t,
                                std::unique_ptr<VerifyReport>>> cache;
    // Evicted reports are parked here so returned references stay
    // valid for the process lifetime.
    static std::vector<std::unique_ptr<VerifyReport>> retired;
    constexpr size_t maxEntries = 32;

    const uint64_t fp = programFingerprint(program);
    std::unique_lock<std::mutex> lock(mtx);
    for (const auto &entry : cache) {
        if (entry.first == fp)
            return *entry.second;
    }
    lock.unlock();
    auto report = std::make_unique<VerifyReport>(
        verifyProgram(program));
    lock.lock();
    for (const auto &entry : cache) {
        if (entry.first == fp)
            return *entry.second;    // raced: keep the first insert
    }
    cache.emplace_back(fp, std::move(report));
    if (cache.size() > maxEntries) {
        retired.push_back(std::move(cache.front().second));
        cache.pop_front();
    }
    return *cache.back().second;
}

} // namespace pe::analysis
