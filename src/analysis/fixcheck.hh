/**
 * @file
 * Fix-set checker: derives, per conditional-branch edge, the
 * condition-variable slice PathExpander's compiler support must fix
 * (paper Section 4.4) and cross-checks it against the Pfix/Pfixst
 * sequence actually present in the program.
 *
 * Derivation works from the machine code alone, through reaching
 * definitions:
 *
 *  - a branch is *fixable* when one operand traces to a unique
 *    `Ld rd, off(fp)` / `Ld rd, addr(zero)` (the condition variable's
 *    home slot) and the other is r0 or traces to a unique `Li`
 *    literal — exactly the `var RELOP literal` shapes minic fixes;
 *  - a fix is *expected* on an edge iff the edge's relation
 *    `var REL c` is satisfiable in int32 arithmetic (minic suppresses
 *    boundary values that would overflow) — and, to stay silent on
 *    shapes minic legitimately leaves unfixed (short-circuit
 *    internal branches look identical to `if (var)`), only when the
 *    *companion* edge carries a fix;
 *  - an observed fix must store to the derived home slot a value
 *    satisfying the edge relation.
 *
 * Clean on every registered workload by construction; any finding
 * means minic's emitted fix set and the paper's derivation rule
 * disagree.
 */

#ifndef PE_ANALYSIS_FIXCHECK_HH
#define PE_ANALYSIS_FIXCHECK_HH

#include <cstdint>
#include <vector>

#include "src/analysis/verify.hh"

namespace pe::analysis
{

/** Outcome of checkFixSets(), with audit counters for reporting. */
struct FixCheckResult
{
    std::vector<Diagnostic> diagnostics;
    uint32_t checkedBranches = 0;   //!< reachable conditional branches
    uint32_t derivedSlices = 0;     //!< branches with a fixable slice
    uint32_t matchedFixes = 0;      //!< edge fixes that checked out

    bool clean() const { return diagnostics.empty(); }
};

FixCheckResult checkFixSets(const isa::Program &program);

} // namespace pe::analysis

#endif // PE_ANALYSIS_FIXCHECK_HH
