/**
 * @file
 * Prime-path enumeration and greedy minimum path cover.
 */

#include "src/analysis/primepaths.hh"

#include <algorithm>

#include "src/support/status.hh"

namespace pe::analysis
{

namespace
{

/**
 * A candidate simple path on the worklist: the visited block
 * sequence (for the simplicity test; paths are short, a linear scan
 * beats a set) plus the edge-id sequence that is the path's
 * canonical encoding.
 */
struct Candidate
{
    std::vector<uint32_t> nodes;
    std::vector<uint32_t> edges;
};

bool
containsNode(const std::vector<uint32_t> &nodes, uint32_t b)
{
    return std::find(nodes.begin(), nodes.end(), b) != nodes.end();
}

/** Canonical order: start block, then edge ids, prefixes first. */
bool
canonicalLess(const PrimePath &a, const PrimePath &b)
{
    if (a.startBlock != b.startBlock)
        return a.startBlock < b.startBlock;
    return std::lexicographical_compare(a.edges.begin(), a.edges.end(),
                                        b.edges.begin(), b.edges.end());
}

bool
canonicalEqual(const PrimePath &a, const PrimePath &b)
{
    return a.startBlock == b.startBlock && a.edges == b.edges;
}

} // namespace

std::vector<uint32_t>
primePathBlocks(const Cfg &cfg, const PrimePath &path)
{
    std::vector<uint32_t> nodes{path.startBlock};
    for (uint32_t e : path.edges)
        nodes.push_back(cfg.edges()[e].to);
    return nodes;
}

PrimePathSet
enumeratePrimePaths(const Cfg &cfg, const PrimePathOptions &opts)
{
    PrimePathSet set;
    const auto &blocks = cfg.blocks();
    const auto &edges = cfg.edges();
    if (blocks.empty())
        return set;

    const uint64_t maxGenerated =
        opts.maxGenerated != 0 ? opts.maxGenerated
                               : 32ull * opts.maxPaths;

    // Enumeration roots: the entry block plus every function start,
    // ascending, restricted to blocks reachable from the entry.  A
    // block first reached through an earlier root's subgraph is not
    // re-seeded — the intraprocedural edge relation is static, so
    // every simple path from it was already generated.
    std::vector<uint32_t> rootList;
    const isa::Program &program = cfg.program();
    if (program.entry < program.code.size())
        rootList.push_back(cfg.blockOf(program.entry));
    for (const auto &f : program.funcs) {
        if (f.startPc < program.code.size())
            rootList.push_back(cfg.blockOf(f.startPc));
    }
    std::sort(rootList.begin(), rootList.end());
    rootList.erase(std::unique(rootList.begin(), rootList.end()),
                   rootList.end());

    std::vector<bool> seeded(blocks.size(), false);
    std::vector<PrimePath> finals;
    bool budgetHit = false;

    for (uint32_t root : rootList) {
        if (root == noBlock || !cfg.reachable()[root])
            continue;
        if (budgetHit)
            break;

        // Intraprocedural closure of the root (skip Call edges).
        std::vector<uint32_t> subNodes;
        {
            std::vector<bool> inSub(blocks.size(), false);
            std::vector<uint32_t> stack{root};
            inSub[root] = true;
            while (!stack.empty()) {
                uint32_t b = stack.back();
                stack.pop_back();
                subNodes.push_back(b);
                for (uint32_t e : blocks[b].succs) {
                    const CfgEdge &edge = edges[e];
                    if (edge.kind == EdgeKind::Call)
                        continue;
                    if (!inSub[edge.to]) {
                        inSub[edge.to] = true;
                        stack.push_back(edge.to);
                    }
                }
            }
        }
        std::sort(subNodes.begin(), subNodes.end());
        set.roots++;

        // FIFO worklist; the vector holds every candidate ever
        // generated, which is exactly what the budget bounds.
        std::vector<Candidate> work;
        for (uint32_t b : subNodes) {
            if (seeded[b])
                continue;
            seeded[b] = true;
            work.push_back(Candidate{{b}, {}});
            set.generated++;
        }

        for (size_t qi = 0; qi < work.size() && !budgetHit; ++qi) {
            // work may reallocate while extending; index, not ref.
            bool extended = false;
            const uint32_t back = work[qi].nodes.back();
            const uint32_t front = work[qi].nodes.front();
            for (uint32_t e : blocks[back].succs) {
                const CfgEdge &edge = edges[e];
                if (edge.kind == EdgeKind::Call)
                    continue;
                if (edge.to == front) {
                    // Closing the cycle finalizes: the cycle cannot
                    // be extended without repeating an inner node.
                    PrimePath p;
                    p.startBlock = front;
                    p.edges = work[qi].edges;
                    p.edges.push_back(e);
                    finals.push_back(std::move(p));
                    extended = true;
                    continue;
                }
                if (containsNode(work[qi].nodes, edge.to))
                    continue;
                if (set.generated >= maxGenerated) {
                    budgetHit = true;
                    break;
                }
                Candidate next = work[qi];
                next.nodes.push_back(edge.to);
                next.edges.push_back(e);
                work.push_back(std::move(next));
                set.generated++;
                extended = true;
            }
            if (!extended) {
                PrimePath p;
                p.startBlock = front;
                p.edges = work[qi].edges;
                finals.push_back(std::move(p));
            }
        }
    }
    if (budgetHit)
        set.truncated = true;

    // Canonical order + dedup (overlapping root subgraphs can emit
    // the same back-extension twice only through seeding races, which
    // the seeded[] guard prevents, but dedup is cheap insurance).
    std::sort(finals.begin(), finals.end(), canonicalLess);
    finals.erase(std::unique(finals.begin(), finals.end(),
                             canonicalEqual),
                 finals.end());

    // Prime filter: drop finals whose edge sequence appears
    // contiguously inside a longer final (a single-block path is a
    // subpath of anything visiting its block with at least one edge).
    // Indexed by start node so each final only scans plausible hosts.
    std::vector<std::vector<uint32_t>> startsAt(blocks.size());
    for (uint32_t i = 0; i < finals.size(); ++i)
        startsAt[finals[i].startBlock].push_back(i);

    std::vector<bool> killed(finals.size(), false);
    for (uint32_t qi = 0; qi < finals.size(); ++qi) {
        const PrimePath &q = finals[qi];
        const std::vector<uint32_t> qNodes = primePathBlocks(cfg, q);
        for (size_t off = 0; off < qNodes.size(); ++off) {
            for (uint32_t pi : startsAt[qNodes[off]]) {
                if (pi == qi || killed[pi])
                    continue;
                const PrimePath &p = finals[pi];
                if (off + p.edges.size() > q.edges.size())
                    continue;
                // Proper subpath: strictly shorter, or a strict
                // suffix/infix of equal-length never happens (equal
                // length at off 0 is identity, deduped above).
                if (off == 0 && p.edges.size() == q.edges.size())
                    continue;
                if (std::equal(p.edges.begin(), p.edges.end(),
                               q.edges.begin() +
                                   static_cast<long>(off)))
                    killed[pi] = true;
            }
        }
    }

    for (uint32_t i = 0; i < finals.size(); ++i) {
        if (!killed[i])
            set.paths.push_back(std::move(finals[i]));
    }

    if (set.paths.size() > opts.maxPaths) {
        set.paths.resize(opts.maxPaths);
        set.truncated = true;
    }
    if (set.truncated) {
        warn("prime-path enumeration truncated: kept ",
             set.paths.size(), " path(s) (cap ", opts.maxPaths,
             ", ", set.generated, " candidate(s) generated)");
    }
    return set;
}

std::vector<uint32_t>
computePathCover(const Cfg &cfg, const PrimePathSet &set)
{
    // Greedy set cover over the edges prime paths touch: repeatedly
    // take the path covering the most still-uncovered edges, lowest
    // path id on ties (see primepaths.hh for why not matching).
    const size_t numEdges = cfg.edges().size();
    std::vector<bool> covered(numEdges, true);
    size_t uncovered = 0;
    for (const PrimePath &p : set.paths) {
        for (uint32_t e : p.edges) {
            if (covered[e]) {
                covered[e] = false;
                uncovered++;
            }
        }
    }

    std::vector<uint32_t> cover;
    std::vector<bool> used(set.paths.size(), false);
    while (uncovered > 0) {
        uint32_t best = noBlock;
        size_t bestGain = 0;
        for (uint32_t i = 0; i < set.paths.size(); ++i) {
            if (used[i])
                continue;
            size_t gain = 0;
            for (uint32_t e : set.paths[i].edges) {
                if (!covered[e])
                    gain++;
            }
            if (gain > bestGain) {
                bestGain = gain;
                best = i;
            }
        }
        if (best == noBlock)
            break;   // unreachable: every uncovered edge has a path
        used[best] = true;
        cover.push_back(best);
        for (uint32_t e : set.paths[best].edges) {
            if (!covered[e]) {
                covered[e] = true;
                uncovered--;
            }
        }
    }
    return cover;
}

} // namespace pe::analysis
