/**
 * @file
 * Static NT-spawn priors: per-branch-edge bounded-DFS estimates of
 * what a non-taken path would do if spawned, computed once per
 * program and consumed by
 *
 *  - the explorer's scheduler, as the cold-start energy distribution
 *    (edgePotential() replaces the uniform initial weights), and
 *  - the engine, as an optional spawn pre-filter for provably-doomed
 *    NT-Paths (edges whose straight-line continuation hits a syscall
 *    before doing any observable work).
 *
 * Estimates follow the interpreter's control flow: fall-through and
 * both branch directions, Jmp and Jal targets; Jr and statically
 * invalid targets stop the walk (indirect returns need dynamic
 * state), and a non-Exit Sys is the paper's unsafe event — it
 * squashes the NT path, so it terminates the walk and records its
 * distance.  All numbers are clamped to MaxNTPathLength, the same
 * bound the engine applies dynamically.
 */

#ifndef PE_ANALYSIS_PRIORS_HH
#define PE_ANALYSIS_PRIORS_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/isa/program.hh"

namespace pe::analysis
{

/** Static estimate for one direction of one conditional branch. */
struct EdgePrior
{
    static constexpr uint32_t noDistance = UINT32_MAX;

    /** Instructions reachable within the bound (NT-length proxy). */
    uint32_t pathLenBound = 0;
    /** Min instruction distance to an unsafe event (noDistance: none). */
    uint32_t unsafeDistance = noDistance;
    /** St/Pfixst instructions reachable within the bound. */
    uint32_t storeUpperBound = 0;
    /** Straight-line continuation hits a Sys before any real work. */
    bool doomed = false;
};

struct BranchPriors
{
    uint32_t maxLen = 0;    //!< the bound the estimates were cut at
    /** branch pc -> {[0]: fall-through edge, [1]: taken edge}. */
    std::unordered_map<uint32_t, std::array<EdgePrior, 2>> branches;

    /** Prior for @p pc's @p takenDir edge (nullptr: not a branch). */
    const EdgePrior *edge(uint32_t pc, bool takenDir) const
    {
        auto it = branches.find(pc);
        if (it == branches.end())
            return nullptr;
        return &it->second[takenDir ? 1 : 0];
    }
};

/** Compute priors for every conditional branch in @p program. */
BranchPriors computeBranchPriors(const isa::Program &program,
                                 uint32_t maxNtPathLength);

/**
 * Scheduler seed weight in [0, 2] for one edge: doomed edges score
 * 0; otherwise longer reachable paths, more reachable stores and a
 * later (or absent) unsafe event score higher.  See INTERNALS.md §12
 * for the exact formula.
 */
double edgePotential(const EdgePrior &prior, uint32_t maxNtPathLength);

} // namespace pe::analysis

#endif // PE_ANALYSIS_PRIORS_HH
