/**
 * @file
 * Control-flow graph over an isa::Program.
 *
 * The CFG is the foundation of the static-analysis layer: basic
 * blocks tile the whole code array (unreachable ones included, so the
 * verifier can flag them), edges carry a kind (fall-through, the two
 * conditional-branch directions, jump, call, call-return), and the
 * usual orders and relations — reverse postorder, dominators — are
 * derived per root on demand.
 *
 * Edge construction mirrors the interpreter exactly:
 *
 *  - a conditional branch with a statically valid target has a
 *    BranchTaken edge to the target and a BranchNotTaken edge to the
 *    fall-through;
 *  - Jmp/Jal with valid targets get Jump / Call edges; a Jal also
 *    gets a CallReturn edge to pc+1, modelling the callee's eventual
 *    return under the MiniC calling convention;
 *  - Jr has no static successors (the return is modelled by the
 *    caller's CallReturn edge);
 *  - `Sys exit` terminates; every other instruction falls through;
 *  - statically invalid branch/jump targets produce *no* edge — the
 *    interpreter raises BadJump there, so the edge can never be
 *    walked.
 *
 * `staticTargetValid` is the single source of truth for "statically
 * valid branch target"; `sim::DecodedProgram` classifies against the
 * same predicate, so decode-time validation and the CFG can never
 * disagree.
 */

#ifndef PE_ANALYSIS_CFG_HH
#define PE_ANALYSIS_CFG_HH

#include <cstdint>
#include <vector>

#include "src/isa/program.hh"

namespace pe::analysis
{

/**
 * True when @p inst's immediate is a statically valid code index for
 * a direct branch/jump in a program of @p codeSize instructions.
 * Shared by the CFG builder and sim::DecodedProgram's classifier.
 */
inline bool
staticTargetValid(const isa::Instruction &inst, size_t codeSize)
{
    return inst.imm >= 0 && static_cast<size_t>(inst.imm) < codeSize;
}

/** How control moves along a CFG edge. */
enum class EdgeKind : uint8_t
{
    FallThrough,        //!< straight-line successor
    BranchTaken,        //!< conditional branch, taken direction
    BranchNotTaken,     //!< conditional branch, fall-through direction
    Jump,               //!< unconditional Jmp
    Call,               //!< Jal into the callee
    CallReturn,         //!< Jal to pc+1: the callee's eventual return
};

const char *edgeKindName(EdgeKind kind);

/** One directed edge between basic blocks. */
struct CfgEdge
{
    uint32_t from = 0;          //!< source block id
    uint32_t to = 0;            //!< destination block id
    EdgeKind kind = EdgeKind::FallThrough;
};

/**
 * A maximal single-entry straight-line run of instructions,
 * [firstPc, lastPc] inclusive.  succs/preds index into Cfg::edges().
 */
struct BasicBlock
{
    uint32_t firstPc = 0;
    uint32_t lastPc = 0;
    std::vector<uint32_t> succs;    //!< outgoing edge indices
    std::vector<uint32_t> preds;    //!< incoming edge indices
};

/** Sentinel block/rpo index for "none". */
constexpr uint32_t noBlock = UINT32_MAX;

class Cfg
{
  public:
    explicit Cfg(const isa::Program &program);

    const isa::Program &program() const { return *prog; }

    size_t numBlocks() const { return blockList.size(); }
    const BasicBlock &block(uint32_t id) const { return blockList[id]; }
    const std::vector<BasicBlock> &blocks() const { return blockList; }
    const std::vector<CfgEdge> &edges() const { return edgeList; }

    /** Block containing @p pc (noBlock when pc is out of range). */
    uint32_t blockOf(uint32_t pc) const
    {
        return pc < pcBlock.size() ? pcBlock[pc] : noBlock;
    }

    /**
     * Per-block reachability from the program entry, following every
     * edge kind (function bodies become reachable through Call
     * edges).  Empty programs have no blocks and an empty vector.
     */
    const std::vector<bool> &reachable() const { return reach; }

    /**
     * Blocks in reverse postorder of the depth-first traversal from
     * @p rootBlock.  @p intraprocedural drops Call edges so the walk
     * stays inside one function (the CallReturn edge keeps the
     * post-call code connected).
     */
    std::vector<uint32_t> reversePostOrder(uint32_t rootBlock,
                                           bool intraprocedural) const;

    /**
     * Immediate dominators of every block reachable from
     * @p rootBlock, over intraprocedural edges (Cooper-Harvey-Kennedy
     * over the reverse postorder).  idom[rootBlock] == rootBlock;
     * unreachable blocks get noBlock.
     */
    std::vector<uint32_t> dominators(uint32_t rootBlock) const;

    /** True when @p a dominates @p b under @p idom from dominators(). */
    static bool dominates(const std::vector<uint32_t> &idom,
                          uint32_t a, uint32_t b);

  private:
    const isa::Program *prog;
    std::vector<BasicBlock> blockList;
    std::vector<CfgEdge> edgeList;
    std::vector<uint32_t> pcBlock;      //!< pc -> block id
    std::vector<bool> reach;
};

} // namespace pe::analysis

#endif // PE_ANALYSIS_CFG_HH
