/**
 * @file
 * Dataflow pass implementations: register effects, must-defined
 * registers, liveness, reaching definitions over cells.
 */

#include "src/analysis/dataflow.hh"

#include <algorithm>

#include "src/isa/regs.hh"
#include "src/support/status.hh"

namespace pe::analysis
{

namespace
{

using isa::Opcode;
using isa::Syscall;

constexpr uint32_t allRegs = 0xFFFFFFFFu;

uint32_t
bit(uint8_t r)
{
    return 1u << r;
}

/** Sorted-vector union of @p add into @p into; true when it grew. */
bool
unionInto(std::vector<uint32_t> &into, const std::vector<uint32_t> &add)
{
    bool grew = false;
    for (uint32_t v : add) {
        auto it = std::lower_bound(into.begin(), into.end(), v);
        if (it == into.end() || *it != v) {
            into.insert(it, v);
            grew = true;
        }
    }
    return grew;
}

bool
insertSite(std::vector<uint32_t> &into, uint32_t v)
{
    auto it = std::lower_bound(into.begin(), into.end(), v);
    if (it != into.end() && *it == v)
        return false;
    into.insert(it, v);
    return true;
}

} // namespace

uint32_t
regReadMask(const isa::Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sle: case Opcode::Seq: case Opcode::Sne:
      case Opcode::Sgt: case Opcode::Sge:
        return bit(inst.rs1) | bit(inst.rs2);
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Shli: case Opcode::Shri:
      case Opcode::Slti:
      case Opcode::Ld:
      case Opcode::Jr:
      case Opcode::Alloc:
      case Opcode::Chkb:
      case Opcode::Assert:
      case Opcode::Unregobj:
        return bit(inst.rs1);
      case Opcode::St:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
      case Opcode::Regobj:
      case Opcode::Pfixst:
        return bit(inst.rs1) | bit(inst.rs2);
      case Opcode::Sys:
        switch (static_cast<Syscall>(inst.imm)) {
          case Syscall::PrintInt:
          case Syscall::PrintChar:
            return bit(inst.rs1);
          default:
            return 0;
        }
      case Opcode::Nop:
      case Opcode::Li:
      case Opcode::Jmp:
      case Opcode::Jal:
      case Opcode::Pfix:
      case Opcode::NumOpcodes:
        return 0;
    }
    return 0;
}

uint32_t
regWriteMask(const isa::Instruction &inst)
{
    uint32_t mask = 0;
    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sle: case Opcode::Seq: case Opcode::Sne:
      case Opcode::Sgt: case Opcode::Sge:
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Shli: case Opcode::Shri:
      case Opcode::Slti: case Opcode::Li:
      case Opcode::Ld:
      case Opcode::Jal:
      case Opcode::Alloc:
      case Opcode::Pfix:
        mask = bit(inst.rd);
        break;
      case Opcode::Sys:
        switch (static_cast<Syscall>(inst.imm)) {
          case Syscall::ReadInt:
          case Syscall::ReadChar:
            mask = bit(inst.rd);
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
    return mask & ~bit(isa::reg::zero);
}

std::vector<uint32_t>
definedRegsIn(const Cfg &cfg, uint32_t entryDefined)
{
    const auto &code = cfg.program().code;
    const size_t nb = cfg.numBlocks();
    std::vector<uint32_t> in(nb, allRegs);
    if (nb == 0)
        return in;

    const uint32_t entryBlock = cfg.blockOf(cfg.program().entry);

    auto transfer = [&](uint32_t b) {
        uint32_t defined = in[b];
        const BasicBlock &blk = cfg.block(b);
        for (uint32_t pc = blk.firstPc; pc <= blk.lastPc; ++pc) {
            const isa::Instruction &inst = code[pc];
            defined |= inst.op == Opcode::Jal ? allRegs
                                              : regWriteMask(inst);
        }
        return defined;
    };

    if (entryBlock != noBlock)
        in[entryBlock] = entryDefined;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = 0; b < nb; ++b) {
            uint32_t meet = allRegs;
            for (uint32_t e : cfg.block(b).preds)
                meet &= transfer(cfg.edges()[e].from);
            if (b == entryBlock)
                meet &= entryDefined;
            else if (cfg.block(b).preds.empty())
                meet = allRegs;     // unreachable: vacuous
            if (meet != in[b]) {
                in[b] = meet;
                changed = true;
            }
        }
    }
    return in;
}

Liveness
liveness(const Cfg &cfg)
{
    const auto &code = cfg.program().code;
    const size_t nb = cfg.numBlocks();
    Liveness live;
    live.liveIn.assign(nb, 0);
    live.liveOut.assign(nb, 0);

    auto transferBack = [&](uint32_t b, uint32_t out) {
        uint32_t v = out;
        const BasicBlock &blk = cfg.block(b);
        for (uint32_t pc = blk.lastPc + 1; pc-- > blk.firstPc;) {
            const isa::Instruction &inst = code[pc];
            // Predicated writes (Pfix) may not execute, so they do
            // not kill liveness.
            if (!isa::isPredicatedFix(inst.op))
                v &= ~regWriteMask(inst);
            v |= regReadMask(inst);
        }
        return v;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = static_cast<uint32_t>(nb); b-- > 0;) {
            uint32_t out = 0;
            for (uint32_t e : cfg.block(b).succs)
                out |= live.liveIn[cfg.edges()[e].to];
            uint32_t inMask = transferBack(b, out);
            if (out != live.liveOut[b] || inMask != live.liveIn[b]) {
                live.liveOut[b] = out;
                live.liveIn[b] = inMask;
                changed = true;
            }
        }
    }
    return live;
}

uint32_t
liveBefore(const Cfg &cfg, const Liveness &live, uint32_t pc)
{
    const uint32_t b = cfg.blockOf(pc);
    pe_assert(b != noBlock, "liveBefore: pc out of range");
    const auto &code = cfg.program().code;
    uint32_t v = live.liveOut[b];
    for (uint32_t q = cfg.block(b).lastPc + 1; q-- > pc;) {
        const isa::Instruction &inst = code[q];
        if (!isa::isPredicatedFix(inst.op))
            v &= ~regWriteMask(inst);
        v |= regReadMask(inst);
    }
    return v;
}

ReachingDefs::ReachingDefs(const Cfg &cfgRef)
    : cfg(&cfgRef)
{
    const auto &code = cfg->program().code;

    // Cell universe: the 32 registers plus every fp-relative and
    // global word slot explicitly named by a Ld/St/Pfixst.
    numCells = isa::numRegs;
    isMemCell.assign(numCells, false);
    auto slotCell = [&](const isa::Instruction &inst) -> void {
        std::unordered_map<int32_t, uint32_t> *table = nullptr;
        if (inst.rs1 == isa::reg::fp)
            table = &fpSlotId;
        else if (inst.rs1 == isa::reg::zero)
            table = &globalSlotId;
        else
            return;
        if (table->emplace(inst.imm, numCells).second) {
            ++numCells;
            isMemCell.push_back(true);
        }
    };
    for (const isa::Instruction &inst : code) {
        if (inst.op == Opcode::Ld || inst.op == Opcode::St ||
            inst.op == Opcode::Pfixst) {
            slotCell(inst);
        }
    }

    const size_t nb = cfg->numBlocks();
    in.assign(nb * numCells, CellSet{});
    if (nb == 0)
        return;

    // Fixpoint: in[b][c] = union over preds of transfer(pred)[c].
    auto transferCell = [&](uint32_t b, uint32_t c) {
        CellSet set = in[b * numCells + c];
        const BasicBlock &blk = cfg->block(b);
        for (uint32_t pc = blk.firstPc; pc <= blk.lastPc; ++pc) {
            switch (effectOn(code[pc], c)) {
              case Effect::Strong:
                set.sites.assign(1, pc);
                set.unknown = false;
                break;
              case Effect::Weak:
                insertSite(set.sites, pc);
                break;
              case Effect::Unknown:
                set.unknown = true;
                break;
              case Effect::None:
                break;
            }
        }
        return set;
    };

    std::vector<bool> queued(nb, true);
    std::vector<uint32_t> worklist;
    worklist.reserve(nb);
    for (uint32_t b = static_cast<uint32_t>(nb); b-- > 0;)
        worklist.push_back(b);

    while (!worklist.empty()) {
        const uint32_t b = worklist.back();
        worklist.pop_back();
        queued[b] = false;
        bool changed = false;
        for (uint32_t c = 0; c < numCells; ++c) {
            CellSet meet;
            for (uint32_t e : cfg->block(b).preds) {
                CellSet o = transferCell(cfg->edges()[e].from, c);
                unionInto(meet.sites, o.sites);
                meet.unknown = meet.unknown || o.unknown;
            }
            CellSet &cur = in[b * numCells + c];
            if (meet.sites != cur.sites ||
                meet.unknown != cur.unknown) {
                cur = std::move(meet);
                changed = true;
            }
        }
        if (changed) {
            for (uint32_t e : cfg->block(b).succs) {
                uint32_t to = cfg->edges()[e].to;
                if (!queued[to]) {
                    queued[to] = true;
                    worklist.push_back(to);
                }
            }
        }
    }
}

ReachingDefs::Effect
ReachingDefs::effectOn(const isa::Instruction &inst, uint32_t cellId)
    const
{
    const bool memCell = isMemCell[cellId];

    // A call is opaque: the callee may define anything.  The link
    // register itself is still a concrete, unconditional write.
    if (inst.op == Opcode::Jal) {
        if (!memCell && cellId == inst.rd &&
            inst.rd != isa::reg::zero) {
            return Effect::Strong;
        }
        return Effect::Unknown;
    }

    if (!memCell) {
        const uint32_t mask = regWriteMask(inst);
        if (!(mask & bit(static_cast<uint8_t>(cellId))))
            return Effect::None;
        return isa::isPredicatedFix(inst.op) ? Effect::Weak
                                             : Effect::Strong;
    }

    // Memory cells: only stores matter.
    if (inst.op != Opcode::St && inst.op != Opcode::Pfixst)
        return Effect::None;
    uint32_t target = noPc;
    if (inst.rs1 == isa::reg::fp) {
        auto it = fpSlotId.find(inst.imm);
        target = it == fpSlotId.end() ? noPc : it->second;
    } else if (inst.rs1 == isa::reg::zero) {
        auto it = globalSlotId.find(inst.imm);
        target = it == globalSlotId.end() ? noPc : it->second;
    } else {
        // Wild store: may hit any memory slot.
        return Effect::Unknown;
    }
    if (target != cellId)
        return Effect::None;
    // Pfixst is predicated, so even a known slot is only may-defined.
    return inst.op == Opcode::Pfixst ? Effect::Weak : Effect::Strong;
}

uint32_t
ReachingDefs::cellIdOf(Cell cell) const
{
    switch (cell.kind) {
      case Cell::Kind::Reg:
        return static_cast<uint32_t>(cell.index);
      case Cell::Kind::FpSlot: {
        auto it = fpSlotId.find(cell.index);
        return it == fpSlotId.end() ? noPc : it->second;
      }
      case Cell::Kind::GlobalSlot: {
        auto it = globalSlotId.find(cell.index);
        return it == globalSlotId.end() ? noPc : it->second;
      }
    }
    return noPc;
}

ReachingDefs::Defs
ReachingDefs::defsBefore(uint32_t pc, Cell cell) const
{
    Defs out;
    const uint32_t c = cellIdOf(cell);
    if (c == noPc) {
        // Untracked slot: nothing names it, but a wild store or call
        // could still write it.
        out.unknown = true;
        return out;
    }
    const uint32_t b = cfg->blockOf(pc);
    pe_assert(b != noBlock, "defsBefore: pc out of range");
    const CellSet &start = in[b * numCells + c];
    out.pcs = start.sites;
    out.unknown = start.unknown;
    const auto &code = cfg->program().code;
    for (uint32_t q = cfg->block(b).firstPc; q < pc; ++q) {
        switch (effectOn(code[q], c)) {
          case Effect::Strong:
            out.pcs.assign(1, q);
            out.unknown = false;
            break;
          case Effect::Weak:
            insertSite(out.pcs, q);
            break;
          case Effect::Unknown:
            out.unknown = true;
            break;
          case Effect::None:
            break;
        }
    }
    return out;
}

uint32_t
ReachingDefs::uniqueRegDef(uint32_t pc, uint8_t r) const
{
    Defs d = defsBefore(pc, Cell::regCell(r));
    if (d.unknown || d.pcs.size() != 1)
        return noPc;
    return d.pcs[0];
}

} // namespace pe::analysis
