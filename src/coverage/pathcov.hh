/**
 * @file
 * Runtime prime-path completion tracking.
 *
 * PathCoverage folds the per-run branch-decision stream
 * (RunResult::branchTrace, recorded under PeConfig::recordEdgeTrace)
 * into completion bits over the program's prime-path set.  The fold
 * replays the taken path symbolically: starting from the entry block
 * it walks the CFG, consuming one (pc << 1) | taken event per
 * conditional branch to pick the BranchTaken/BranchNotTaken edge, and
 * following fall-through/jump edges without consuming anything.
 * Calls use the MiniC convention the CFG already encodes: a Jal
 * pushes a frame and descends into the callee; the matching Jr pops
 * it and lands on the CallReturn edge's target.  Prime paths are
 * intraprocedural, so each frame carries its own set of in-flight
 * path matches — a caller's partial match is suspended across the
 * call and resumes, advanced by the CallReturn edge, when the callee
 * returns.
 *
 * Matching is a multi-pattern automaton over edge ids: a match
 * (path, pos) means the last pos edges walked equal the path's edge
 * prefix; entering a block starts a match for every path that begins
 * there (a one-block path completes on entry).  Memory is bounded
 * everywhere: completion state is one bit per path, the in-flight
 * match set and the call stack are capped (overflow is counted, the
 * fold degrades by dropping new matches, never by growing).
 *
 * Desync policy: traces come from real executions, so the walk should
 * never disagree with the CFG — but crashed runs stop mid-path,
 * invalid jumps stop decoding, and the trace itself may be truncated
 * by the recording cap.  Any disagreement (unexpected branch pc,
 * missing static successor, stack underflow) stops the fold for that
 * run and bumps a counter; completion bits only ever under-approximate.
 * For runs that did not exit cleanly the fold also refuses to walk
 * the straight-line tail past the final recorded branch, so a crash
 * cannot "complete" blocks it never reached.
 *
 * Merging is word-wise OR plus counter addition — commutative and
 * associative, so campaign accumulation, fleet shard-ordered merges,
 * and checkpoint restore all agree bit-for-bit.  Serialization goes
 * through pe_wire (encodeState/decodeState) so explorer checkpoints
 * and fleet frames carry the tracker verbatim.
 */

#ifndef PE_COVERAGE_PATHCOV_HH
#define PE_COVERAGE_PATHCOV_HH

#include <cstdint>
#include <vector>

#include "src/analysis/primepaths.hh"
#include "src/fleet/wire.hh"
#include "src/isa/program.hh"

namespace pe::coverage
{

class PathCoverage
{
  public:
    /** In-flight (path, pos) matches per call frame, hard cap. */
    static constexpr uint32_t kMaxActiveMatches = 4096;

    /** Call-stack depth cap for the fold walker. */
    static constexpr uint32_t kMaxFoldDepth = 1024;

    /**
     * Build the tracker for @p cfg's program from an enumerated
     * @p set and its @p cover (ids into set.paths).  Copies every
     * table it needs; cfg and set may be temporaries.
     */
    PathCoverage(const analysis::Cfg &cfg,
                 const analysis::PrimePathSet &set,
                 const std::vector<uint32_t> &cover);

    /**
     * Convenience: build Cfg, enumerate prime paths (default caps)
     * and compute the cover for @p program in one shot.  This is the
     * constructor the explorer, the fleet coordinator and the workers
     * all use, so every party derives the identical path-id space
     * from the program alone.
     */
    explicit PathCoverage(const isa::Program &program);

    /**
     * Fold one run's branch-decision stream.  @p traceTruncated is
     * RunResult::branchTraceTruncated; @p cleanExit gates walking the
     * straight-line tail after the last recorded branch (see file
     * comment).
     */
    void fold(const std::vector<uint32_t> &trace, bool traceTruncated,
              bool cleanExit);

    /** Merge another tracker (same program): OR bits, add counters. */
    void merge(const PathCoverage &other);

    /** OR a raw completion-word vector in (fleet frames). */
    void mergeWords(const std::vector<uint64_t> &incoming);

    /** Replace the completion words (checkpoint restore). */
    void restoreWords(const std::vector<uint64_t> &saved);

    const std::vector<uint64_t> &words() const { return bits; }

    uint32_t numPaths() const { return pathCount; }
    bool truncated() const { return setTruncated; }
    bool completed(uint32_t pathId) const
    {
        return (bits[pathId >> 6] >> (pathId & 63)) & 1;
    }

    /** Prime paths completed at least once. */
    uint64_t completedCount() const;

    /** Cover paths (the scheduler's target set) completed. */
    uint64_t coverCompleted() const;

    uint32_t coverSize() const
    {
        return static_cast<uint32_t>(coverIds.size());
    }
    const std::vector<uint32_t> &cover() const { return coverIds; }

    /**
     * Cover-adjacency energy for a corpus entry: over the *incomplete*
     * cover paths, the sum of the fraction of each path's decision
     * edges already present in the entry's taken/not-taken bitmaps
     * (BranchCoverage word layout, key = (pc << 1) | taken).  An entry
     * that has walked most of an unfinished cover path scores high —
     * mutating it is the cheapest route to completing the path.
     */
    double coverAdjacency(const std::vector<uint64_t> &takenWords,
                          const std::vector<uint64_t> &ntWords) const;

    /** FNV-1a over the completion words + path count (digests). */
    uint64_t digest() const;

    uint64_t foldedRuns() const { return statFolded; }
    uint64_t truncatedRuns() const { return statTruncated; }
    uint64_t desyncRuns() const { return statDesync; }
    uint64_t overflowedMatches() const { return statOverflow; }

    /** Serialize counters + completion words via pe_wire. */
    void encodeState(wire::Encoder &enc) const;

    /**
     * Restore counters + words; throws WireError{Mismatch} when the
     * word count disagrees with this program's path count.
     */
    void decodeState(wire::Decoder &dec);

  private:
    struct Match
    {
        uint32_t path;
        uint32_t pos;
    };

    void build(const analysis::Cfg &cfg,
               const analysis::PrimePathSet &set,
               const std::vector<uint32_t> &cover);
    void visitBlock(uint32_t block, std::vector<Match> &active);
    void advance(std::vector<Match> &active, uint32_t edgeId);
    void completePath(uint32_t pathId)
    {
        bits[pathId >> 6] |= 1ull << (pathId & 63);
    }

    /** How a block's terminator moves control (fold walker tables). */
    enum class BlockKind : uint8_t
    {
        Exit,       //!< Sys exit or no successor: the walk ends
        Cond,       //!< conditional branch: consume one trace event
        Jump,       //!< unconditional Jmp
        Call,       //!< Jal: push frame, descend
        Ret,        //!< Jr: pop frame, take the CallReturn edge
        Fall,       //!< straight-line fall-through
    };

    uint32_t pathCount = 0;
    bool setTruncated = false;
    uint32_t entryBlock = analysis::noBlock;

    /** Flattened per-path edge sequences: [offsets[i], offsets[i+1]). */
    std::vector<uint32_t> pathEdges;
    std::vector<uint32_t> pathOffsets;

    /** Path ids starting at each block. */
    std::vector<std::vector<uint32_t>> startsAt;

    /** Per-block walker tables (indexed by block id). */
    std::vector<BlockKind> blockKind;
    std::vector<uint32_t> branchPc;     //!< Cond: terminator pc
    std::vector<uint32_t> succBlock;    //!< primary successor block
    std::vector<uint32_t> succEdge;     //!< primary successor edge id
    std::vector<uint32_t> altBlock;     //!< Cond: not-taken block
    std::vector<uint32_t> altEdge;      //!< Cond: not-taken edge id
    std::vector<uint32_t> retBlock;     //!< Call: return-landing block
    std::vector<uint32_t> retEdge;      //!< Call: CallReturn edge id

    /** Per-path decision keys ((pc << 1) | taken), flattened. */
    std::vector<uint32_t> pathDecisions;
    std::vector<uint32_t> decisionOffsets;

    std::vector<uint32_t> coverIds;
    std::vector<uint64_t> bits;

    uint64_t statFolded = 0;
    uint64_t statTruncated = 0;
    uint64_t statDesync = 0;
    uint64_t statOverflow = 0;
};

} // namespace pe::coverage

#endif // PE_COVERAGE_PATHCOV_HH
