/**
 * @file
 * Branch-coverage accounting.
 *
 * The paper evaluates PathExpander with the branch-coverage metric
 * (Section 2/3.1: path coverage is what the design targets but cannot
 * be measured, so branch coverage — the fraction of static branch
 * edges executed — is reported).  We track taken-path edges and
 * NT-Path edges separately so both the baseline coverage and the
 * PE-augmented coverage of a run fall out of one tracker, and support
 * merging across runs for the cumulative-coverage experiment
 * (Section 7.4).
 *
 * The edge universe is static and known at construction (two edges
 * per conditional branch, keyed by 2*pc+taken), so the tracker is a
 * dense bitmap rather than a hash set: recording an edge is one
 * shift/OR on the NT-Path hot path, counting is popcount, and the
 * cumulative merge is a word-wise OR that is independent of the order
 * runs are merged in.
 */

#ifndef PE_COVERAGE_COVERAGE_HH
#define PE_COVERAGE_COVERAGE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "src/isa/program.hh"

namespace pe::coverage
{

/** Tracks which static branch edges a monitored run exercised. */
class BranchCoverage
{
  public:
    explicit BranchCoverage(const isa::Program &program);

    /** Edge (branch at @p pc, direction @p taken) ran on the taken path. */
    void onTakenEdge(uint32_t pc, bool taken)
    {
        setBit(takenBits, key(pc, taken));
    }

    /** Edge ran inside an NT-Path (monitored by the detector). */
    void onNtEdge(uint32_t pc, bool taken)
    {
        setBit(ntBits, key(pc, taken));
    }

    /**
     * True when edge (@p pc, @p taken) has been recorded on the taken
     * path — the coverage leg of the self-pruning saturation
     * predicate.  One shift and one word read; pcs beyond the bitmap
     * read as uncovered.
     */
    bool takenEdgeCovered(uint32_t pc, bool taken) const
    {
        uint64_t bit = key(pc, taken);
        size_t word = static_cast<size_t>(bit >> 6);
        return word < takenBits.size() &&
               (takenBits[word] >> (bit & 63)) & 1;
    }

    /**
     * Dirty counter for consumers caching decisions derived from this
     * tracker's bits: bumped whenever the bit set actually changes —
     * a 0->1 flip in either bitmap, a mergeFrom() that contributes
     * new bits or grows the edge universe, or a restoreWords()
     * overwrite.  Idempotent re-records leave it untouched, so during
     * a run it advances only while coverage is still growing.
     */
    uint64_t generation() const { return gen; }

    size_t totalEdges() const { return total; }
    size_t takenCovered() const { return popcount(takenBits); }
    size_t ntOnlyCovered() const;
    size_t combinedCovered() const;

    /** Baseline branch coverage (taken path only). */
    double takenFraction() const;

    /** Coverage of the PE-monitored run (taken plus NT edges). */
    double combinedFraction() const;

    /**
     * Union @p other's edges into @p this (cumulative coverage).
     * Word-wise OR: associative and commutative, so a campaign may
     * merge per-run trackers in any order and reach the same state.
     * The two trackers may come from programs of different sizes
     * (e.g. variant builds of one workload): the bitmap grows to the
     * larger edge universe, and merging a smaller map ORs its prefix.
     */
    void mergeFrom(const BranchCoverage &other);

    /**
     * Number of combined (taken or NT) edges of @p this that are not
     * yet combined-covered in @p frontier — the coverage delta a run
     * would contribute if merged.  @p frontier may be smaller or
     * larger than @p this; out-of-range edges count as new.
     */
    size_t newEdgesOver(const BranchCoverage &frontier) const;

    const std::vector<uint64_t> &takenWords() const { return takenBits; }
    const std::vector<uint64_t> &ntWords() const { return ntBits; }

    /**
     * Overwrite both bitmaps from checkpointed words (explorer
     * resume).  The word counts must match this tracker's — the
     * caller has already validated the checkpoint against the
     * program.
     */
    void restoreWords(const std::vector<uint64_t> &taken,
                      const std::vector<uint64_t> &nt);

  private:
    static uint64_t key(uint32_t pc, bool taken)
    {
        return (static_cast<uint64_t>(pc) << 1) | (taken ? 1 : 0);
    }

    void setBit(std::vector<uint64_t> &bits, uint64_t bit)
    {
        // Non-branch pcs never reach here; the bitmap spans every pc.
        uint64_t &word = bits[bit >> 6];
        uint64_t mask = uint64_t{1} << (bit & 63);
        gen += (word & mask) == 0;  // only a 0->1 flip is a change
        word |= mask;
    }

    static size_t popcount(const std::vector<uint64_t> &bits)
    {
        size_t n = 0;
        for (uint64_t w : bits)
            n += static_cast<size_t>(std::popcount(w));
        return n;
    }

    size_t total;
    std::vector<uint64_t> takenBits;
    std::vector<uint64_t> ntBits;
    uint64_t gen = 0;
};

/**
 * Per-edge exercise counts accumulated over many runs — the
 * exploration engine's rarity signal.  Where the BTB's 4-bit counters
 * measure *within-run* edge heat (the spawn predicate), this measures
 * *across-run* heat over a whole campaign: an edge most runs reach is
 * common, an edge only a few corpus inputs reach is rare, and inputs
 * holding rare edges are where scheduling energy is best spent
 * (Empc / coverage-guided-tracing style prioritization).
 */
class EdgeExerciseCounts
{
  public:
    explicit EdgeExerciseCounts(const isa::Program &program);

    /** Count one run: ++count for every combined-covered edge. */
    void accumulate(const BranchCoverage &run);

    /**
     * Largest count c such that at most @p percentile of the
     * ever-exercised edges have counts <= c (nearest-rank over the
     * nonzero counts).  0 if nothing has been accumulated.
     */
    uint32_t rarityThreshold(double percentile) const;

    /** Edges of @p run with exercise count <= @p threshold. */
    size_t countRareIn(const BranchCoverage &run,
                       uint32_t threshold) const;

    uint64_t runsAccumulated() const { return runs; }

    const std::vector<uint32_t> &rawCounts() const { return counts; }

    /** Overwrite the counts from a checkpoint (explorer resume). */
    void restoreCounts(const std::vector<uint32_t> &newCounts,
                       uint64_t runsAccumulated);

  private:
    std::vector<uint32_t> counts;   //!< indexed by edge bit 2*pc+taken
    uint64_t runs = 0;
};

} // namespace pe::coverage

#endif // PE_COVERAGE_COVERAGE_HH
