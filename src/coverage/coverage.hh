/**
 * @file
 * Branch-coverage accounting.
 *
 * The paper evaluates PathExpander with the branch-coverage metric
 * (Section 2/3.1: path coverage is what the design targets but cannot
 * be measured, so branch coverage — the fraction of static branch
 * edges executed — is reported).  We track taken-path edges and
 * NT-Path edges separately so both the baseline coverage and the
 * PE-augmented coverage of a run fall out of one tracker, and support
 * merging across runs for the cumulative-coverage experiment
 * (Section 7.4).
 */

#ifndef PE_COVERAGE_COVERAGE_HH
#define PE_COVERAGE_COVERAGE_HH

#include <cstdint>
#include <unordered_set>

#include "src/isa/program.hh"

namespace pe::coverage
{

/** Tracks which static branch edges a monitored run exercised. */
class BranchCoverage
{
  public:
    explicit BranchCoverage(const isa::Program &program);

    /** Edge (branch at @p pc, direction @p taken) ran on the taken path. */
    void onTakenEdge(uint32_t pc, bool taken);

    /** Edge ran inside an NT-Path (monitored by the detector). */
    void onNtEdge(uint32_t pc, bool taken);

    size_t totalEdges() const { return total; }
    size_t takenCovered() const { return takenEdges.size(); }
    size_t ntOnlyCovered() const;
    size_t combinedCovered() const;

    /** Baseline branch coverage (taken path only). */
    double takenFraction() const;

    /** Coverage of the PE-monitored run (taken plus NT edges). */
    double combinedFraction() const;

    /** Union this run's edges into @p this (cumulative coverage). */
    void mergeFrom(const BranchCoverage &other);

    const std::unordered_set<uint64_t> &takenSet() const
    {
        return takenEdges;
    }
    const std::unordered_set<uint64_t> &ntSet() const { return ntEdges; }

  private:
    static uint64_t key(uint32_t pc, bool taken)
    {
        return (static_cast<uint64_t>(pc) << 1) | (taken ? 1 : 0);
    }

    size_t total;
    std::unordered_set<uint64_t> takenEdges;
    std::unordered_set<uint64_t> ntEdges;
};

} // namespace pe::coverage

#endif // PE_COVERAGE_COVERAGE_HH
