/**
 * @file
 * Prime-path completion tracker: build, fold, merge, serialize.
 */

#include "src/coverage/pathcov.hh"

#include <bit>

#include "src/support/status.hh"

namespace pe::coverage
{

namespace
{

/** Fold-walker step bound: replay can never exceed a real run. */
constexpr uint64_t kMaxFoldSteps = 1ull << 22;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

PathCoverage::PathCoverage(const analysis::Cfg &cfg,
                           const analysis::PrimePathSet &set,
                           const std::vector<uint32_t> &cover)
{
    build(cfg, set, cover);
}

PathCoverage::PathCoverage(const isa::Program &program)
{
    const analysis::Cfg cfg(program);
    const analysis::PrimePathSet set =
        analysis::enumeratePrimePaths(cfg);
    build(cfg, set, analysis::computePathCover(cfg, set));
}

void
PathCoverage::build(const analysis::Cfg &cfg,
                    const analysis::PrimePathSet &set,
                    const std::vector<uint32_t> &cover)
{
    const auto &blocks = cfg.blocks();
    const auto &edges = cfg.edges();
    const isa::Program &program = cfg.program();

    pathCount = static_cast<uint32_t>(set.paths.size());
    setTruncated = set.truncated;
    if (program.entry < program.code.size())
        entryBlock = cfg.blockOf(program.entry);
    bits.assign((pathCount + 63) / 64, 0);

    // Flatten the edge sequences and the per-path decision keys.
    pathOffsets.assign(1, 0);
    decisionOffsets.assign(1, 0);
    startsAt.assign(blocks.size(), {});
    for (uint32_t id = 0; id < pathCount; ++id) {
        const analysis::PrimePath &p = set.paths[id];
        startsAt[p.startBlock].push_back(id);
        for (uint32_t e : p.edges) {
            pathEdges.push_back(e);
            const analysis::CfgEdge &edge = edges[e];
            if (edge.kind == analysis::EdgeKind::BranchTaken ||
                edge.kind == analysis::EdgeKind::BranchNotTaken) {
                const uint32_t pc = blocks[edge.from].lastPc;
                const bool taken =
                    edge.kind == analysis::EdgeKind::BranchTaken;
                pathDecisions.push_back((pc << 1) | (taken ? 1u : 0u));
            }
        }
        pathOffsets.push_back(
            static_cast<uint32_t>(pathEdges.size()));
        decisionOffsets.push_back(
            static_cast<uint32_t>(pathDecisions.size()));
    }
    coverIds = cover;

    // Walker tables: classify each block by its successor edge kinds
    // (the CFG already encodes the interpreter's control rules); only
    // the no-successor case needs the opcode, to tell a Jr return
    // from a genuine exit.
    const uint32_t nb = static_cast<uint32_t>(blocks.size());
    blockKind.assign(nb, BlockKind::Exit);
    branchPc.assign(nb, 0);
    succBlock.assign(nb, analysis::noBlock);
    succEdge.assign(nb, 0);
    altBlock.assign(nb, analysis::noBlock);
    altEdge.assign(nb, 0);
    retBlock.assign(nb, analysis::noBlock);
    retEdge.assign(nb, 0);
    for (uint32_t id = 0; id < nb; ++id) {
        BlockKind kind = BlockKind::Exit;
        for (uint32_t e : blocks[id].succs) {
            const analysis::CfgEdge &edge = edges[e];
            switch (edge.kind) {
              case analysis::EdgeKind::BranchTaken:
                kind = BlockKind::Cond;
                branchPc[id] = blocks[id].lastPc;
                succBlock[id] = edge.to;
                succEdge[id] = e;
                break;
              case analysis::EdgeKind::BranchNotTaken:
                kind = BlockKind::Cond;
                branchPc[id] = blocks[id].lastPc;
                altBlock[id] = edge.to;
                altEdge[id] = e;
                break;
              case analysis::EdgeKind::Jump:
                kind = BlockKind::Jump;
                succBlock[id] = edge.to;
                succEdge[id] = e;
                break;
              case analysis::EdgeKind::Call:
                kind = BlockKind::Call;
                succBlock[id] = edge.to;
                succEdge[id] = e;
                break;
              case analysis::EdgeKind::CallReturn:
                kind = BlockKind::Call;
                retBlock[id] = edge.to;
                retEdge[id] = e;
                break;
              case analysis::EdgeKind::FallThrough:
                kind = BlockKind::Fall;
                succBlock[id] = edge.to;
                succEdge[id] = e;
                break;
            }
        }
        if (blocks[id].succs.empty() &&
            program.code[blocks[id].lastPc].op == isa::Opcode::Jr)
            kind = BlockKind::Ret;
        blockKind[id] = kind;
    }
}

void
PathCoverage::visitBlock(uint32_t block, std::vector<Match> &active)
{
    for (uint32_t id : startsAt[block]) {
        if (pathOffsets[id + 1] == pathOffsets[id]) {
            completePath(id);   // one-block path completes on entry
            continue;
        }
        if (active.size() >= kMaxActiveMatches) {
            statOverflow++;
            continue;
        }
        active.push_back(Match{id, 0});
    }
}

void
PathCoverage::advance(std::vector<Match> &active, uint32_t edgeId)
{
    size_t out = 0;
    for (const Match &m : active) {
        const uint32_t off = pathOffsets[m.path];
        if (pathEdges[off + m.pos] != edgeId)
            continue;
        if (off + m.pos + 1 == pathOffsets[m.path + 1]) {
            completePath(m.path);
            continue;
        }
        active[out++] = Match{m.path, m.pos + 1};
    }
    active.resize(out);
}

void
PathCoverage::fold(const std::vector<uint32_t> &trace,
                   bool traceTruncated, bool cleanExit)
{
    statFolded++;
    if (traceTruncated)
        statTruncated++;
    if (entryBlock == analysis::noBlock)
        return;

    struct Frame
    {
        uint32_t retB;
        uint32_t retE;
        std::vector<Match> saved;
    };
    std::vector<Frame> frames;
    std::vector<Match> active;
    uint32_t cur = entryBlock;
    size_t ti = 0;
    bool desync = false;
    uint64_t steps = 0;

    for (;;) {
        if (++steps > kMaxFoldSteps) {
            desync = true;
            break;
        }
        visitBlock(cur, active);

        const BlockKind kind = blockKind[cur];
        if (kind == BlockKind::Exit)
            break;
        if (kind == BlockKind::Cond) {
            if (ti >= trace.size())
                break;   // crash or recording cap hit mid-run
            const uint32_t ev = trace[ti++];
            if ((ev >> 1) != branchPc[cur]) {
                desync = true;
                break;
            }
            const bool taken = (ev & 1) != 0;
            const uint32_t nb = taken ? succBlock[cur] : altBlock[cur];
            if (nb == analysis::noBlock)
                break;   // fell off the program end
            advance(active, taken ? succEdge[cur] : altEdge[cur]);
            cur = nb;
            continue;
        }

        // Non-consuming step.  A run that did not exit cleanly gets
        // no credit for the straight-line tail past its last branch:
        // the crash point is somewhere in there and the walk cannot
        // tell which side of it a block is on.
        if (!cleanExit && ti == trace.size())
            break;
        if (kind == BlockKind::Jump || kind == BlockKind::Fall) {
            if (succBlock[cur] == analysis::noBlock)
                break;
            advance(active, succEdge[cur]);
            cur = succBlock[cur];
            continue;
        }
        if (kind == BlockKind::Call) {
            if (succBlock[cur] == analysis::noBlock)
                break;
            if (frames.size() >= kMaxFoldDepth) {
                desync = true;
                break;
            }
            frames.push_back(Frame{retBlock[cur], retEdge[cur],
                                   std::move(active)});
            active.clear();
            cur = succBlock[cur];
            continue;
        }
        // Ret: resume the caller's suspended matches across the
        // CallReturn edge (intraprocedural path semantics).
        if (frames.empty()) {
            desync = true;
            break;
        }
        Frame f = std::move(frames.back());
        frames.pop_back();
        active = std::move(f.saved);
        if (f.retB == analysis::noBlock)
            break;
        advance(active, f.retE);
        cur = f.retB;
    }
    if (desync)
        statDesync++;
}

void
PathCoverage::merge(const PathCoverage &other)
{
    pe_assert(other.pathCount == pathCount,
              "merging path trackers of different programs");
    for (size_t i = 0; i < bits.size(); ++i)
        bits[i] |= other.bits[i];
    statFolded += other.statFolded;
    statTruncated += other.statTruncated;
    statDesync += other.statDesync;
    statOverflow += other.statOverflow;
}

void
PathCoverage::mergeWords(const std::vector<uint64_t> &incoming)
{
    pe_assert(incoming.size() == bits.size(),
              "merging path words of a different path-id space");
    for (size_t i = 0; i < bits.size(); ++i)
        bits[i] |= incoming[i];
}

void
PathCoverage::restoreWords(const std::vector<uint64_t> &saved)
{
    pe_assert(saved.size() == bits.size(),
              "restoring path words of a different path-id space");
    bits = saved;
}

uint64_t
PathCoverage::completedCount() const
{
    uint64_t n = 0;
    for (uint64_t w : bits)
        n += static_cast<uint64_t>(std::popcount(w));
    return n;
}

uint64_t
PathCoverage::coverCompleted() const
{
    uint64_t n = 0;
    for (uint32_t id : coverIds)
        n += completed(id) ? 1 : 0;
    return n;
}

double
PathCoverage::coverAdjacency(const std::vector<uint64_t> &takenWords,
                             const std::vector<uint64_t> &ntWords) const
{
    auto has = [](const std::vector<uint64_t> &words, uint32_t key) {
        const size_t word = key >> 6;
        return word < words.size() && ((words[word] >> (key & 63)) & 1);
    };
    double energy = 0.0;
    for (uint32_t id : coverIds) {
        if (completed(id))
            continue;
        const uint32_t lo = decisionOffsets[id];
        const uint32_t hi = decisionOffsets[id + 1];
        if (lo == hi)
            continue;
        uint32_t covered = 0;
        for (uint32_t i = lo; i < hi; ++i) {
            const uint32_t key = pathDecisions[i];
            if (has(takenWords, key) || has(ntWords, key))
                covered++;
        }
        energy += static_cast<double>(covered) /
                  static_cast<double>(hi - lo);
    }
    return energy;
}

uint64_t
PathCoverage::digest() const
{
    uint64_t h = 14695981039346656037ull;
    h = fnvMix(h, pathCount);
    for (uint64_t w : bits)
        h = fnvMix(h, w);
    return h;
}

void
PathCoverage::encodeState(wire::Encoder &enc) const
{
    enc.u64(statFolded);
    enc.u64(statTruncated);
    enc.u64(statDesync);
    enc.u64(statOverflow);
    enc.u64vec(bits);
}

void
PathCoverage::decodeState(wire::Decoder &dec)
{
    const uint64_t folded = dec.u64("path folded runs");
    const uint64_t truncatedRuns = dec.u64("path truncated runs");
    const uint64_t desync = dec.u64("path desync runs");
    const uint64_t overflow = dec.u64("path match overflows");
    std::vector<uint64_t> saved = dec.u64vec("path words");
    if (saved.size() != bits.size()) {
        throw wire::WireError(wire::WireErrorKind::Mismatch,
                              "path completion word count mismatch",
                              bits.size(), saved.size());
    }
    statFolded = folded;
    statTruncated = truncatedRuns;
    statDesync = desync;
    statOverflow = overflow;
    bits = std::move(saved);
}

} // namespace pe::coverage
