/**
 * @file
 * Branch-coverage implementation.
 */

#include "src/coverage/coverage.hh"

#include "src/support/status.hh"

namespace pe::coverage
{

BranchCoverage::BranchCoverage(const isa::Program &program)
    : total(2 * program.numBranches())
{
    // Two edge bits per code index; only branch pcs are ever set, but
    // sizing by the code extent makes the key a pure shift with no
    // per-edge lookup table.
    size_t bitsNeeded = 2 * program.code.size();
    takenBits.assign((bitsNeeded + 63) / 64, 0);
    ntBits.assign((bitsNeeded + 63) / 64, 0);
}

size_t
BranchCoverage::ntOnlyCovered() const
{
    size_t n = 0;
    for (size_t i = 0; i < ntBits.size(); ++i)
        n += static_cast<size_t>(std::popcount(ntBits[i] & ~takenBits[i]));
    return n;
}

size_t
BranchCoverage::combinedCovered() const
{
    size_t n = 0;
    for (size_t i = 0; i < ntBits.size(); ++i)
        n += static_cast<size_t>(std::popcount(ntBits[i] | takenBits[i]));
    return n;
}

double
BranchCoverage::takenFraction() const
{
    return total ? static_cast<double>(takenCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
BranchCoverage::combinedFraction() const
{
    return total ? static_cast<double>(combinedCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

void
BranchCoverage::mergeFrom(const BranchCoverage &other)
{
    pe_assert(takenBits.size() == other.takenBits.size(),
              "merging coverage of different programs");
    for (size_t i = 0; i < takenBits.size(); ++i) {
        takenBits[i] |= other.takenBits[i];
        ntBits[i] |= other.ntBits[i];
    }
}

} // namespace pe::coverage
