/**
 * @file
 * Branch-coverage implementation.
 */

#include "src/coverage/coverage.hh"

namespace pe::coverage
{

BranchCoverage::BranchCoverage(const isa::Program &program)
    : total(2 * program.numBranches())
{}

void
BranchCoverage::onTakenEdge(uint32_t pc, bool taken)
{
    takenEdges.insert(key(pc, taken));
}

void
BranchCoverage::onNtEdge(uint32_t pc, bool taken)
{
    ntEdges.insert(key(pc, taken));
}

size_t
BranchCoverage::ntOnlyCovered() const
{
    size_t n = 0;
    for (uint64_t k : ntEdges) {
        if (!takenEdges.count(k))
            ++n;
    }
    return n;
}

size_t
BranchCoverage::combinedCovered() const
{
    return takenEdges.size() + ntOnlyCovered();
}

double
BranchCoverage::takenFraction() const
{
    return total ? static_cast<double>(takenCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
BranchCoverage::combinedFraction() const
{
    return total ? static_cast<double>(combinedCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

void
BranchCoverage::mergeFrom(const BranchCoverage &other)
{
    takenEdges.insert(other.takenEdges.begin(), other.takenEdges.end());
    ntEdges.insert(other.ntEdges.begin(), other.ntEdges.end());
}

} // namespace pe::coverage
