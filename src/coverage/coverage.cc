/**
 * @file
 * Branch-coverage implementation.
 */

#include "src/coverage/coverage.hh"

#include <algorithm>

#include "src/support/status.hh"

namespace pe::coverage
{

BranchCoverage::BranchCoverage(const isa::Program &program)
    : total(2 * program.numBranches())
{
    // Two edge bits per code index; only branch pcs are ever set, but
    // sizing by the code extent makes the key a pure shift with no
    // per-edge lookup table.
    size_t bitsNeeded = 2 * program.code.size();
    takenBits.assign((bitsNeeded + 63) / 64, 0);
    ntBits.assign((bitsNeeded + 63) / 64, 0);
}

size_t
BranchCoverage::ntOnlyCovered() const
{
    size_t n = 0;
    for (size_t i = 0; i < ntBits.size(); ++i)
        n += static_cast<size_t>(std::popcount(ntBits[i] & ~takenBits[i]));
    return n;
}

size_t
BranchCoverage::combinedCovered() const
{
    size_t n = 0;
    for (size_t i = 0; i < ntBits.size(); ++i)
        n += static_cast<size_t>(std::popcount(ntBits[i] | takenBits[i]));
    return n;
}

double
BranchCoverage::takenFraction() const
{
    return total ? static_cast<double>(takenCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
BranchCoverage::combinedFraction() const
{
    return total ? static_cast<double>(combinedCovered()) /
                       static_cast<double>(total)
                 : 0.0;
}

void
BranchCoverage::mergeFrom(const BranchCoverage &other)
{
    bool changed = false;
    if (other.takenBits.size() > takenBits.size()) {
        takenBits.resize(other.takenBits.size(), 0);
        ntBits.resize(other.ntBits.size(), 0);
        changed = true;     // the edge universe itself grew
    }
    total = std::max(total, other.total);
    for (size_t i = 0; i < other.takenBits.size(); ++i) {
        changed |= (other.takenBits[i] & ~takenBits[i]) != 0 ||
                   (other.ntBits[i] & ~ntBits[i]) != 0;
        takenBits[i] |= other.takenBits[i];
        ntBits[i] |= other.ntBits[i];
    }
    gen += changed;
}

void
BranchCoverage::restoreWords(const std::vector<uint64_t> &taken,
                             const std::vector<uint64_t> &nt)
{
    pe_assert(taken.size() == takenBits.size() &&
                  nt.size() == ntBits.size(),
              "coverage restore with mismatched bitmap size");
    takenBits = taken;
    ntBits = nt;
    // An overwrite may clear bits, so derived caches cannot assume
    // monotone growth across it: always count it as a change.
    ++gen;
}

size_t
BranchCoverage::newEdgesOver(const BranchCoverage &frontier) const
{
    size_t common = std::min(takenBits.size(),
                             frontier.takenBits.size());
    size_t n = 0;
    for (size_t i = 0; i < common; ++i) {
        uint64_t mine = takenBits[i] | ntBits[i];
        uint64_t theirs =
            frontier.takenBits[i] | frontier.ntBits[i];
        n += static_cast<size_t>(std::popcount(mine & ~theirs));
    }
    for (size_t i = common; i < takenBits.size(); ++i)
        n += static_cast<size_t>(
            std::popcount(takenBits[i] | ntBits[i]));
    return n;
}

EdgeExerciseCounts::EdgeExerciseCounts(const isa::Program &program)
    : counts(2 * program.code.size(), 0)
{}

void
EdgeExerciseCounts::accumulate(const BranchCoverage &run)
{
    ++runs;
    const auto &taken = run.takenWords();
    const auto &nt = run.ntWords();
    for (size_t w = 0; w < taken.size(); ++w) {
        uint64_t bits = taken[w] | nt[w];
        while (bits) {
            unsigned bit = static_cast<unsigned>(
                std::countr_zero(bits));
            size_t edge = w * 64 + bit;
            if (edge < counts.size())
                ++counts[edge];
            bits &= bits - 1;
        }
    }
}

uint32_t
EdgeExerciseCounts::rarityThreshold(double percentile) const
{
    std::vector<uint32_t> seen;
    for (uint32_t c : counts) {
        if (c > 0)
            seen.push_back(c);
    }
    if (seen.empty())
        return 0;
    percentile = std::clamp(percentile, 0.0, 1.0);
    size_t rank = static_cast<size_t>(
        percentile * static_cast<double>(seen.size() - 1));
    std::nth_element(seen.begin(), seen.begin() + rank, seen.end());
    return seen[rank];
}

void
EdgeExerciseCounts::restoreCounts(const std::vector<uint32_t> &newCounts,
                                  uint64_t runsAccumulated)
{
    pe_assert(newCounts.size() == counts.size(),
              "exercise-count restore with mismatched edge universe");
    counts = newCounts;
    runs = runsAccumulated;
}

size_t
EdgeExerciseCounts::countRareIn(const BranchCoverage &run,
                                uint32_t threshold) const
{
    const auto &taken = run.takenWords();
    const auto &nt = run.ntWords();
    size_t n = 0;
    for (size_t w = 0; w < taken.size(); ++w) {
        uint64_t bits = taken[w] | nt[w];
        while (bits) {
            unsigned bit = static_cast<unsigned>(
                std::countr_zero(bits));
            size_t edge = w * 64 + bit;
            if (edge < counts.size() && counts[edge] <= threshold)
                ++n;
            bits &= bits - 1;
        }
    }
    return n;
}

} // namespace pe::coverage
