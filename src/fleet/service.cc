/**
 * @file
 * Fleet service implementation.
 */

#include "src/fleet/service.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "src/minic/compiler.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"
#include "src/workloads/workload.hh"

namespace pe::fleet
{

namespace fs = std::filesystem;

namespace
{

uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        size_t used = 0;
        uint64_t v = std::stoull(value, &used, 0);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        pe_fatal("job key '", key, "': not a number: '", value, "'");
    }
}

/** JSON string escaping for the few places a job name leaks in. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

void
emitJobResult(std::ostream &out, const JobSpec &job,
              const FleetResult &res, uint64_t wallMs)
{
    out << "{\"event\":\"job\",\"job\":\"" << jsonEscape(job.name)
        << "\",\"workload\":\"" << jsonEscape(job.workload)
        << "\",\"shards\":" << job.shards
        << ",\"seed\":" << job.seed
        << ",\"stop\":\"" << fleetStopName(res.stop)
        << "\",\"rounds\":" << res.rounds
        << ",\"runs\":" << res.runs
        << ",\"corpus\":" << res.corpusSize
        << ",\"edges_combined\":" << res.edgesCombined
        << ",\"total_edges\":" << res.totalEdges
        << ",\"lost_workers\":" << res.lostWorkers
        << ",\"stolen_runs\":" << res.stolenRuns
        << ",\"plan_digest\":\"" << fmtHex(res.planDigest)
        << "\",\"frontier_digest\":\"" << fmtHex(res.frontierDigest)
        << "\",\"corpus_digest\":\"" << fmtHex(res.corpusDigest)
        << "\",\"wall_ms\":" << wallMs << "}\n";
    out.flush();
}

void
emitJobError(std::ostream &out, const std::string &name,
             const std::string &error)
{
    out << "{\"event\":\"job_error\",\"job\":\"" << jsonEscape(name)
        << "\",\"error\":\"" << jsonEscape(error) << "\"}\n";
    out.flush();
}

/** Run one parsed job; throws FatalError on bad specs. */
void
runJob(const JobSpec &job, const ServiceOptions &svc)
{
    auto names = workloads::workloadNames();
    if (std::find(names.begin(), names.end(), job.workload) ==
        names.end())
        pe_fatal("unknown workload '", job.workload, "'");
    const auto &workload = workloads::getWorkload(job.workload);
    auto program = minic::compile(workload.source, job.workload);

    FleetOptions opts;
    opts.base.budget.maxRuns = job.runs;
    opts.base.batchSize = job.batch;
    opts.base.seed = job.seed;
    opts.base.label = job.workload;
    if (job.policy == "uniform")
        opts.base.policy = explore::SchedulePolicy::UniformRandom;
    else if (job.policy != "rare")
        pe_fatal("unknown policy '", job.policy, "'");
    if (job.mode == "off")
        opts.base.config = core::PeConfig::forMode(core::PeMode::Off);
    else if (job.mode == "cmp")
        opts.base.config = core::PeConfig::forMode(core::PeMode::Cmp);
    else if (job.mode != "standard")
        pe_fatal("unknown mode '", job.mode, "'");
    opts.base.config.maxNtPathLength = workload.maxNtPathLength;
    opts.shards = job.shards;
    opts.roundRuns = job.roundRuns;
    opts.plateauRounds = job.plateau;
    opts.workerThreads = svc.workerThreads;
    opts.status = svc.status;
    opts.stopFlag = svc.stopFlag;

    auto begin = std::chrono::steady_clock::now();
    FleetResult res =
        runFleet(program, workload.benignInputs, std::move(opts));
    auto wallMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
    emitJobResult(*svc.out, job, res,
                  static_cast<uint64_t>(wallMs));
}

/** Consume a job: run, report, never throw out of the loop. */
bool
processJob(const std::string &name, const std::string &text,
           const ServiceOptions &svc)
{
    try {
        JobSpec job = parseJobSpec(name, text);
        if (svc.status)
            *svc.status << "[serve] job " << name << ": workload "
                        << job.workload << ", " << job.shards
                        << " shards, " << job.runs << " runs\n";
        runJob(job, svc);
        return true;
    } catch (const FatalError &err) {
        if (svc.status)
            *svc.status << "[serve] job " << name << " failed: "
                        << err.what() << "\n";
        emitJobError(*svc.out, name, err.what());
        return false;
    }
}

std::vector<fs::path>
spooledJobs(const std::string &dir)
{
    std::vector<fs::path> jobs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".job")
            jobs.push_back(entry.path());
    }
    // Name order is the queue order: spoolers control priority by
    // naming (e.g. zero-padded sequence numbers).
    std::sort(jobs.begin(), jobs.end());
    return jobs;
}

uint64_t
serveSpool(const ServiceOptions &opts)
{
    uint64_t processed = 0;
    auto stopped = [&] {
        return opts.stopFlag &&
               opts.stopFlag->load(std::memory_order_relaxed);
    };
    for (;;) {
        std::vector<fs::path> jobs = spooledJobs(opts.spoolDir);
        for (const fs::path &path : jobs) {
            if (stopped())
                return processed;
            std::ifstream in(path);
            std::stringstream text;
            text << in.rdbuf();
            bool ok =
                processJob(path.stem().string(), text.str(), opts);
            std::error_code ec;
            fs::rename(path,
                       fs::path(path).replace_extension(
                           ok ? ".done" : ".failed"),
                       ec);
            if (ec)
                fs::remove(path, ec);
            ++processed;
        }
        if (opts.drainOnce || stopped())
            return processed;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.pollMs));
    }
}

uint64_t
serveStdin(const ServiceOptions &opts)
{
    uint64_t processed = 0;
    std::string line;
    uint64_t lineNo = 0;
    while (std::getline(std::cin, line)) {
        ++lineNo;
        if (opts.stopFlag &&
            opts.stopFlag->load(std::memory_order_relaxed))
            break;
        std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        processJob("stdin:" + std::to_string(lineNo), trimmed, opts);
        ++processed;
    }
    return processed;
}

} // namespace

JobSpec
parseJobSpec(const std::string &name, const std::string &text)
{
    JobSpec job;
    job.name = name;
    bool sawWorkload = false;

    std::istringstream in(text);
    std::string token;
    while (in >> token) {
        if (token[0] == '#') {
            // Comment: drop the rest of the line.
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            pe_fatal("job spec token '", token,
                     "' is not key=value");
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "workload") {
            job.workload = value;
            sawWorkload = true;
        } else if (key == "runs") {
            job.runs = parseU64(key, value);
        } else if (key == "shards") {
            job.shards =
                static_cast<uint32_t>(parseU64(key, value));
            if (job.shards < 1)
                pe_fatal("job key 'shards': must be >= 1");
        } else if (key == "seed") {
            job.seed = parseU64(key, value);
        } else if (key == "batch") {
            job.batch = parseU64(key, value);
            if (job.batch < 1)
                pe_fatal("job key 'batch': must be >= 1");
        } else if (key == "rounds") {
            job.roundRuns = parseU64(key, value);
        } else if (key == "plateau") {
            job.plateau =
                static_cast<uint32_t>(parseU64(key, value));
        } else if (key == "policy") {
            job.policy = value;
        } else if (key == "mode") {
            job.mode = value;
        } else {
            pe_fatal("job spec has unknown key '", key, "'");
        }
    }
    if (!sawWorkload)
        pe_fatal("job spec is missing workload=<name>");
    return job;
}

uint64_t
runService(const ServiceOptions &opts)
{
    pe_assert(opts.out != nullptr, "service needs a result stream");
    if (opts.status)
        *opts.status << "[serve] fleet service up, jobs from "
                     << (opts.spoolDir.empty()
                             ? std::string("stdin")
                             : opts.spoolDir)
                     << "\n";
    uint64_t processed = opts.spoolDir.empty() ? serveStdin(opts)
                                               : serveSpool(opts);

    // Terminal record: consumers tailing the result stream learn the
    // service exited deliberately (and why) instead of having to
    // infer it from silence.  An in-flight job always finishes first
    // — the stop flag is only checked between jobs — so its result
    // (and spool marker rename) precedes this line.
    const char *reason =
        opts.stopFlag &&
                opts.stopFlag->load(std::memory_order_relaxed)
            ? "signal"
            : (opts.spoolDir.empty() ? "eof" : "drained");
    *opts.out << "{\"event\":\"stopped\",\"jobs\":" << processed
              << ",\"reason\":\"" << reason << "\"}\n";
    opts.out->flush();

    if (opts.status)
        *opts.status << "[serve] fleet service down (" << reason
                     << "), " << processed
                     << " job(s) processed\n";
    return processed;
}

} // namespace pe::fleet
