/**
 * @file
 * Versioned binary serialization and length-prefixed framing.
 *
 * One codec for two transports: the explorer's on-disk checkpoints
 * (PR 4's format, extracted here) and the fleet's IPC frames over
 * pipes/socketpairs.  Both need the same guarantees — little-endian
 * fixed-width primitives, explicit versioning, structured rejection
 * of truncated or foreign bytes — so they share one Encoder/Decoder
 * pair instead of two hand-rolled put/get stacks.
 *
 * Errors are *structured*: every decode failure throws WireError
 * carrying a kind (Truncated / BadMagic / BadVersion / Implausible /
 * BadFrame / Io / Mismatch) plus the expected and found values, so a
 * fleet misconfiguration reads "config hash mismatch: expected
 * 0xabc..., found 0xdef..." rather than a bare "mismatch", and tests
 * can assert on the kind rather than grepping message text.
 *
 * Framing: `[u32 magic][u32 payload length][u32 type][payload]` with
 * a sanity cap on the length.  writeFrame/readFrame speak it over
 * raw fds (EINTR-safe, SIGPIPE-suppressed on sockets); a clean EOF
 * at a frame boundary is a normal shutdown (readFrame returns
 * nullopt), EOF inside a frame is WireError{Truncated}.
 */

#ifndef PE_FLEET_WIRE_HH
#define PE_FLEET_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pe::wire
{

/**
 * Protocol revision spoken by this build's coordinator + workers.
 * v2 added the Join frame (TCP workers dialing in, with
 * reconnect/resume); v3 added the Heartbeat/HeartbeatAck liveness
 * frames and the heartbeat interval in Hello; v4 appended the
 * prime-path completion words to RoundStart/RoundDelta (empty when
 * the path tracker is off).  The v1 frame layouts are unchanged.
 */
constexpr uint32_t kWireVersion = 4;

/** Why a decode was refused. */
enum class WireErrorKind : uint8_t
{
    Truncated,      //!< ran out of bytes mid-value or mid-frame
    BadMagic,       //!< leading bytes are not ours
    BadVersion,     //!< version word outside what we speak
    Implausible,    //!< a count/length fails the sanity cap
    BadFrame,       //!< malformed frame header
    Io,             //!< read/write syscall failed
    Mismatch,       //!< header field disagrees with this session
};

const char *wireErrorKindName(WireErrorKind kind);

/** Structured decode/transport failure: kind + expected/found. */
class WireError : public std::runtime_error
{
  public:
    WireError(WireErrorKind kind, const std::string &what,
              uint64_t expected = 0, uint64_t found = 0)
        : std::runtime_error(what), errKind(kind),
          expectedVal(expected), foundVal(found)
    {}

    WireErrorKind kind() const { return errKind; }
    uint64_t expected() const { return expectedVal; }
    uint64_t found() const { return foundVal; }

  private:
    WireErrorKind errKind;
    uint64_t expectedVal;
    uint64_t foundVal;
};

/** Append-only little-endian encoder over a byte buffer. */
class Encoder
{
  public:
    void u8(uint8_t v) { buf.push_back(static_cast<char>(v)); }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

    void bytes(const void *p, size_t n)
    {
        buf.append(static_cast<const char *>(p), n);
    }

    /** u32 length prefix + raw bytes. */
    void str(std::string_view s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf.append(s.data(), s.size());
    }

    void u64vec(const std::vector<uint64_t> &v)
    {
        u32(static_cast<uint32_t>(v.size()));
        for (uint64_t w : v)
            u64(w);
    }

    void u32vec(const std::vector<uint32_t> &v)
    {
        u32(static_cast<uint32_t>(v.size()));
        for (uint32_t w : v)
            u32(w);
    }

    void i32vec(const std::vector<int32_t> &v)
    {
        u32(static_cast<uint32_t>(v.size()));
        for (int32_t w : v)
            i32(w);
    }

    const std::string &buffer() const { return buf; }
    std::string take() { return std::move(buf); }
    size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Bounds-checked little-endian decoder over a byte view.  Every
 * shortfall throws WireError{Truncated} naming the field being read;
 * counts above the sanity cap throw WireError{Implausible} before
 * any allocation is attempted.
 */
class Decoder
{
  public:
    /** Counts/lengths above this are rejected as implausible. */
    static constexpr uint32_t kSanityCap = 1u << 26;

    explicit Decoder(std::string_view data) : data(data) {}

    uint8_t u8(const char *what);
    uint32_t u32(const char *what);
    uint64_t u64(const char *what);
    int32_t i32(const char *what);
    std::string str(const char *what);
    std::vector<uint64_t> u64vec(const char *what);
    std::vector<uint32_t> u32vec(const char *what);
    std::vector<int32_t> i32vec(const char *what);

    /** A u32 count checked against the sanity cap. */
    uint32_t count(const char *what);

    size_t remaining() const { return data.size() - pos; }
    bool atEnd() const { return pos == data.size(); }

    /** Throw WireError{BadFrame} unless all bytes were consumed. */
    void expectEnd(const char *what) const;

  private:
    void need(size_t n, const char *what) const;

    std::string_view data;
    size_t pos = 0;
};

/** IPC frame kinds for the fleet protocol (see coordinator.hh). */
enum class FrameType : uint32_t
{
    Hello = 1,      //!< coordinator -> worker: version + shard plan
    HelloReply,     //!< worker -> coordinator: negotiation accepted
    RoundStart,     //!< coordinator -> worker: budget + merged delta
    RoundDelta,     //!< worker -> coordinator: frontier/corpus delta
    Stop,           //!< coordinator -> worker: shut down cleanly
    Goodbye,        //!< worker -> coordinator: final summary
    Error,          //!< worker -> coordinator: fatal worker error
    Join,           //!< dialing worker -> coordinator: identify/resume
    Heartbeat,      //!< worker -> coordinator: mid-round liveness
    HeartbeatAck,   //!< coordinator -> worker: heartbeat echo
};

const char *frameTypeName(FrameType type);

struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Frames above this payload size are rejected (64 MiB). */
constexpr uint32_t kMaxFramePayload = 64u << 20;

/**
 * Write one `[magic][len][type][payload]` frame to @p fd.  EINTR is
 * retried; on sockets SIGPIPE is suppressed (a dead peer surfaces as
 * WireError{Io} instead of killing the process).
 */
void writeFrame(int fd, FrameType type, std::string_view payload);

/**
 * Read one frame from @p fd.  Returns nullopt on clean EOF at a
 * frame boundary (peer closed); throws WireError{Truncated} on EOF
 * mid-frame, {BadMagic}/{BadFrame} on garbage, {Io} on errno.
 */
std::optional<Frame> readFrame(int fd);

/**
 * Incremental frame reassembly for poll-multiplexed fds.
 *
 * The blocking readFrame() above parks a thread until a whole frame
 * has arrived — fine for a worker with one peer, wrong for a
 * coordinator multiplexing a fleet.  FrameReader is the non-blocking
 * half: feed() it whatever bytes a read() returned (any split, down
 * to one byte at a time) and poll next() for the frames completed so
 * far.  The 12-byte header is validated the moment it completes —
 * bad magic or an implausible length throws the same structured
 * WireError the blocking path would, *before* any payload is
 * buffered, so a garbage peer cannot make the reader allocate or
 * hang.
 */
class FrameReader
{
  public:
    /**
     * Append @p n raw bytes from the peer.  Completed frames queue
     * for next(); throws WireError{BadMagic}/{BadFrame} the moment a
     * malformed header completes.
     */
    void feed(const char *p, size_t n);

    /** Pop the next completed frame, in arrival order. */
    std::optional<Frame> next();

    /**
     * True when a partial frame is buffered — EOF now means the peer
     * died mid-frame (Truncated), not a clean close.
     */
    bool midFrame() const { return fill > 0; }

    /** Completed frames waiting in next()'s queue. */
    size_t pendingFrames() const { return ready.size(); }

    /** Drop all buffered state (a reconnected peer starts clean). */
    void reset();

  private:
    std::deque<Frame> ready;
    /** Partial frame: header then payload, contiguous. */
    std::string buf;
    size_t fill = 0;
    /** Payload length once the header is complete; SIZE_MAX before. */
    size_t payloadLen = SIZE_MAX;
    FrameType type = FrameType::Error;
};

/** Outcome of one drain of a non-blocking fd into a FrameReader. */
enum class FillStatus : uint8_t
{
    Progress,   //!< read at least one byte
    Drained,    //!< nothing available right now (EAGAIN)
    Eof,        //!< peer closed
};

/**
 * Read whatever @p fd has (until EAGAIN or EOF) into @p reader.
 * Intended for O_NONBLOCK fds inside a poll loop; on a blocking fd
 * it reads exactly once (call only after poll reports readable).
 * Throws WireError{Io} on errno, and whatever feed() throws on
 * malformed headers.
 */
FillStatus fillFromFd(int fd, FrameReader &reader);

/**
 * readFrame with a deadline: poll + reassemble until one frame
 * completes, EOF (nullopt), or @p timeoutMs elapses — the timeout
 * throws WireError{Io}, so a wedged peer can never park the caller
 * forever.  Works on blocking and non-blocking fds.  Bytes beyond
 * the first frame are discarded; use only for lockstep exchanges
 * (handshakes, Goodbye).
 */
std::optional<Frame> readFrameTimeout(int fd, int timeoutMs);

/** Set O_NONBLOCK; throws WireError{Io} on failure. */
void setNonBlocking(int fd);

} // namespace pe::wire

#endif // PE_FLEET_WIRE_HH
