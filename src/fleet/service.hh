/**
 * @file
 * Long-running fleet service: jobs in, JSONL results out.
 *
 * The service turns the fleet into infrastructure: instead of one
 * CLI invocation per exploration, a resident process accepts job
 * specs — `key=value` lines naming a workload, a budget and a fleet
 * shape — from a spool directory (one `*.job` file per job, consumed
 * in name order and renamed `*.done` / `*.failed` afterward) or from
 * stdin (one job per line), runs each as a fleet, and appends one
 * JSON object per job to the result stream.  Malformed or failing
 * jobs produce a `job_error` record and never take the service down.
 *
 * Results go to one stream (stdout in the CLI), human logs to
 * another (stderr), so `explore --serve | jq .` composes the obvious
 * way.
 */

#ifndef PE_FLEET_SERVICE_HH
#define PE_FLEET_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/fleet/coordinator.hh"

namespace pe::fleet
{

/** One parsed job spec (see parseJobSpec for the line format). */
struct JobSpec
{
    std::string name;       //!< spool file stem or "stdin:<n>"
    std::string workload;
    uint64_t runs = 200;
    uint32_t shards = 2;
    uint64_t seed = 0x5eedbea7;
    uint64_t batch = 8;
    uint64_t roundRuns = 0;     //!< 0 = shards * batch
    uint32_t plateau = 0;       //!< fleet plateau rounds; 0 = off
    std::string policy = "rare";
    std::string mode = "standard";
};

/**
 * Parse `key=value` tokens (whitespace/newline separated; `#` starts
 * a comment) into a JobSpec.  Unknown keys and malformed values
 * throw FatalError naming the offending token — the service catches
 * this per job and emits a job_error record.
 */
JobSpec parseJobSpec(const std::string &name,
                     const std::string &text);

struct ServiceOptions
{
    /** Spool directory; empty switches to stdin line jobs. */
    std::string spoolDir;

    /** JSONL results (one object per job); must not be null. */
    std::ostream *out = nullptr;

    /** Human-readable log; may be null. */
    std::ostream *status = nullptr;

    /**
     * Process what is queued right now, then return (tests, batch
     * use).  Off = keep polling the spool until stopFlag.
     */
    bool drainOnce = false;

    /** Spool poll interval. */
    unsigned pollMs = 200;

    /** Campaign threads per worker shard; 0 = PE_JOBS default. */
    unsigned workerThreads = 0;

    /** Cooperative stop, checked between jobs and polls. */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * Run the service loop.  Returns the number of jobs processed
 * (job_error records count — the job was consumed).
 */
uint64_t runService(const ServiceOptions &opts);

} // namespace pe::fleet

#endif // PE_FLEET_SERVICE_HH
