/**
 * @file
 * Fleet IPC payloads: what actually crosses a coordinator–worker
 * pipe, and in which direction.
 *
 * The protocol is round-based and delta-sized.  After a Hello /
 * HelloReply negotiation (wire version, shard identity, config hash,
 * plan digest, program fingerprint — every field that would make two
 * processes silently explore different universes), each round is one
 * RoundStart (budget + merged-frontier delta + newly admitted foreign
 * corpus entries) answered by one RoundDelta (runs executed + local
 * frontier delta + locally admitted entries).  Frontier deltas are
 * sparse (wordIndex, takenWord, ntWord) triples over the dense
 * coverage bitmaps: `BranchCoverage::mergeFrom` is a word-wise OR, so
 * shipping only the words that changed since the last exchange is
 * lossless and keeps steady-state frames tiny.
 */

#ifndef PE_FLEET_PROTOCOL_HH
#define PE_FLEET_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "src/explore/corpus.hh"
#include "src/fleet/wire.hh"
#include "src/isa/program.hh"

namespace pe::explore
{
struct ExploreOptions;
}

namespace pe::fleet
{

/** Coordinator -> worker, once, before any round. */
struct Hello
{
    uint32_t wireVersion = wire::kWireVersion;
    uint32_t shard = 0;         //!< receiver's shard id
    uint32_t shards = 0;        //!< fleet width
    uint64_t configHash = 0;    //!< core::configHash of every run
    uint64_t masterSeed = 0;    //!< the fleet-level seed
    uint64_t shardSeed = 0;     //!< this shard's derived seed
    uint64_t planDigest = 0;    //!< ShardPlan identity
    uint64_t programFp = 0;     //!< explore::programFingerprint

    /**
     * Heartbeat interval the coordinator runs its liveness machine
     * at; 0 = heartbeats off.  Negotiation, not identity: the worker
     * adopts whatever the coordinator asks for (validateHello never
     * compares it), so a resumed coordinator may re-tune liveness
     * without perturbing the session's digests.
     */
    uint32_t heartbeatMs = 0;
};

/** Worker -> coordinator: negotiation accepted. */
struct HelloReply
{
    uint32_t wireVersion = wire::kWireVersion;
    uint32_t shard = 0;
    uint64_t totalEdges = 0;    //!< worker's view of the universe
    uint64_t seedCount = 0;
};

/** Join::desiredShard wildcard: "assign me any free shard". */
constexpr uint32_t kAnyShard = 0xffffffffu;

/**
 * Dialing worker -> coordinator, before anything else (TCP transport
 * only; forked workers inherit their identity by memory and skip
 * straight to Hello).  Carries everything a remote process derived
 * on its own — config hash, plan digest, program fingerprint, the
 * session word and the seeds digest — so the coordinator can refuse
 * a peer exploring a different universe before assigning it a shard.
 * On reconnect, desiredShard pins the old slot and lastAckedRound
 * names the last round this worker sent a delta for; the coordinator
 * replays the RoundStart the worker missed.
 */
struct Join
{
    uint32_t wireVersion = wire::kWireVersion;
    uint32_t desiredShard = kAnyShard;
    uint32_t shards = 0;
    uint64_t configHash = 0;
    uint64_t masterSeed = 0;
    uint64_t planDigest = 0;
    uint64_t programFp = 0;
    uint64_t sessionWord = 0;   //!< fleet::sessionWord of the options
    uint64_t seedsDigest = 0;   //!< fleet::seedsDigest of the inputs
    uint64_t lastAckedRound = 0;
};

/**
 * Sparse frontier delta: for each listed word index, the sender's
 * full taken/NT bitmap words.  The receiver ORs them in; resending a
 * word is harmless, omitting an unchanged word is free.
 */
struct SparseWords
{
    std::vector<uint32_t> index;
    std::vector<uint64_t> taken;
    std::vector<uint64_t> nt;

    bool empty() const { return index.empty(); }
    size_t size() const { return index.size(); }
};

/** Coordinator -> worker, one per round. */
struct RoundStart
{
    uint64_t round = 0;
    uint64_t budgetRuns = 0;    //!< runs this shard may execute now
    SparseWords frontier;       //!< global frontier growth

    /**
     * Merged prime-path completion words (wire v4); empty when the
     * tracker is off.  Shipped dense — the capped path-id space is at
     * most 64 words — so no per-word diffing is needed.
     */
    std::vector<uint64_t> pathWords;

    std::vector<explore::CorpusEntry> entries;  //!< foreign admits
};

/** Worker -> coordinator, answering one RoundStart. */
struct RoundDelta
{
    uint64_t round = 0;
    uint64_t runs = 0;          //!< executed this round
    uint64_t failedJobs = 0;
    uint64_t instructions = 0;
    uint64_t ntSpawned = 0;
    uint64_t admittedLocal = 0;
    bool exhausted = false;     //!< cannot make further progress
    SparseWords frontier;       //!< local frontier growth

    /** Local prime-path completion words (wire v4; empty when off). */
    std::vector<uint64_t> pathWords;

    std::vector<explore::CorpusEntry> entries;  //!< local admits
};

/** Worker -> coordinator on Stop: final summary for the logs. */
struct Goodbye
{
    uint64_t runs = 0;
    uint64_t batches = 0;
    uint64_t corpusSize = 0;
    uint64_t edgesCombined = 0;
};

void encodeHello(wire::Encoder &enc, const Hello &h);
Hello decodeHello(wire::Decoder &dec);

void encodeHelloReply(wire::Encoder &enc, const HelloReply &r);
HelloReply decodeHelloReply(wire::Decoder &dec);

void encodeRoundStart(wire::Encoder &enc, const RoundStart &r);
RoundStart decodeRoundStart(wire::Decoder &dec,
                            const isa::Program &program);

void encodeRoundDelta(wire::Encoder &enc, const RoundDelta &r);
RoundDelta decodeRoundDelta(wire::Decoder &dec,
                            const isa::Program &program);

void encodeGoodbye(wire::Encoder &enc, const Goodbye &g);
Goodbye decodeGoodbye(wire::Decoder &dec);

void encodeJoin(wire::Encoder &enc, const Join &j);
Join decodeJoin(wire::Decoder &dec);

/**
 * Everything about the exploration contract that Hello's configHash
 * does *not* cover but that changes worker behavior: the scheduling
 * policy word, the batch size and the rarity percentile.  A TCP
 * worker built from its own command line must agree on these with
 * the coordinator or the merged digests silently diverge — so the
 * Join handshake validates the word instead of trusting the flags.
 */
uint64_t sessionWord(const explore::ExploreOptions &opts);

/**
 * FNV-1a over the fleet's seed inputs (count, lengths, values).  The
 * shard plan deals seed *indices*; this digest is what guarantees a
 * remote worker's seed list holds the same bytes at those indices.
 */
uint64_t seedsDigest(const std::vector<std::vector<int32_t>> &seeds);

/**
 * Compare a dialing peer's Join against this fleet's identity
 * (desiredShard and lastAckedRound are negotiation, not identity,
 * and are checked by the coordinator instead).  Throws
 * wire::WireError — BadVersion / Mismatch — naming the disagreeing
 * field with expected and found values.
 */
void validateJoin(const Join &got, const Join &want);

/**
 * Compare a received Hello against what this worker was forked to
 * expect.  Throws wire::WireError — BadVersion for a protocol
 * revision we do not speak, Mismatch for identity fields — with the
 * expected and found values and the shard id in the message, so a
 * misassembled fleet names the exact disagreeing knob.
 */
void validateHello(const Hello &got, const Hello &want);

/**
 * Words of @p cov (taken or NT) that differ from the @p prevTaken /
 * @p prevNt snapshot.  The snapshot vectors are updated to match
 * @p cov so the next diff starts from here.
 */
SparseWords diffFrontier(const coverage::BranchCoverage &cov,
                         std::vector<uint64_t> &prevTaken,
                         std::vector<uint64_t> &prevNt);

/**
 * OR a sparse delta into full-size word vectors (the receiving
 * side's staging buffers for Corpus::mergeFrontierWords).  Indices
 * beyond the vectors are a protocol violation (WireError{Mismatch}).
 */
void applyFrontier(const SparseWords &delta,
                   std::vector<uint64_t> &taken,
                   std::vector<uint64_t> &nt);

} // namespace pe::fleet

#endif // PE_FLEET_PROTOCOL_HH
