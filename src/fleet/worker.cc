/**
 * @file
 * Fleet worker implementation: the shared round loop (WorkerSession),
 * the forked entry point, and the dialing TCP entry point.
 */

#include "src/fleet/worker.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include <unistd.h>

#include "src/core/config.hh"
#include "src/explore/serialize.hh"
#include "src/fleet/coordinator.hh"
#include "src/fleet/transport.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"

namespace pe::fleet
{

namespace
{

void
sendError(int fd, const std::string &message)
{
    try {
        wire::Encoder enc;
        enc.str(message);
        wire::writeFrame(fd, wire::FrameType::Error, enc.buffer());
    } catch (const wire::WireError &) {
        // The pipe is already gone; the exit code still tells.
    }
}

/**
 * Thrown (only) by the drop-simulation fault sites so a test can
 * force "the connection died here" without killing the process —
 * distinct from FatalError so real failures keep killing the worker.
 */
struct SimulatedDrop
{};

/** Hit a drop site; an armed Throw plan becomes a SimulatedDrop. */
void
dropSite(const std::string &name)
{
    if (name.empty())
        return;
    try {
        fault::site(name.c_str());
    } catch (const FatalError &) {
        throw SimulatedDrop{};
    }
}

/**
 * Worker-side liveness beacon.  The campaign's onRun hook calls
 * beat() once per finished run (already serialized under the
 * campaign's result mutex, and always while the serve thread is
 * parked inside explorer.step() — so a beat never races the serve
 * thread's own frame writes on the fd).  Beats are rate-limited to
 * half the negotiated interval: enough margin that one delayed beat
 * never trips the coordinator's suspect edge.
 */
class HeartbeatPump
{
  public:
    void configure(uint32_t intervalMs)
    {
        std::lock_guard<std::mutex> lock(mu);
        interval = intervalMs;
    }

    void attach(int newFd)
    {
        std::lock_guard<std::mutex> lock(mu);
        fd = newFd;
        lastSend = std::chrono::steady_clock::now();
    }

    void detach()
    {
        std::lock_guard<std::mutex> lock(mu);
        fd = -1;
    }

    void beat()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (fd < 0 || interval == 0)
            return;
        auto now = std::chrono::steady_clock::now();
        auto since =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - lastSend)
                .count();
        if (since < std::max<int64_t>(1, interval / 2))
            return;
        try {
            wire::writeFrame(fd, wire::FrameType::Heartbeat, {});
            lastSend = now;
        } catch (const wire::WireError &) {
            fd = -1;   // dying channel; serve() finds out on read
        }
    }

  private:
    std::mutex mu;
    int fd = -1;
    uint32_t interval = 0;
    std::chrono::steady_clock::time_point lastSend{};
};

/**
 * The round-serving loop shared by forked and dialing workers.  Owns
 * everything that must survive a reconnect: the frontier snapshot
 * last reported upstream, the last executed round number, and that
 * round's encoded delta — so a replayed RoundStart is answered from
 * storage instead of re-executed (idempotent resume).
 */
class WorkerSession
{
  public:
    /** Why serve() returned. */
    enum class Exit : uint8_t
    {
        Stopped,    //!< Stop received, Goodbye sent: clean shutdown
        Eof,        //!< coordinator closed the channel
        Dropped,    //!< connection-level failure (reconnectable)
        Protocol,   //!< the conversation itself is broken
    };

    WorkerSession(const isa::Program &program,
                  explore::Explorer &explorer, uint32_t shard,
                  bool remote)
        : program(program), explorer(explorer),
          roundSite("fleet.worker_round." + std::to_string(shard)),
          stopSite("fleet.worker_stop." + std::to_string(shard))
    {
        if (remote) {
            dropPreSite =
                "fleet.remote_drop_pre." + std::to_string(shard);
            dropPostSite =
                "fleet.remote_drop_post." + std::to_string(shard);
        }
        sentTaken.assign(
            explorer.corpus().frontier().takenWords().size(), 0);
        sentNt.assign(sentTaken.size(), 0);
    }

    /** Last round executed (and whose delta is stored). */
    uint64_t lastRound() const { return round; }

    /** Serve frames on @p fd until the conversation ends. */
    Exit serve(int fd)
    {
        for (;;) {
            std::optional<wire::Frame> frame;
            try {
                frame = wire::readFrame(fd);
            } catch (const wire::WireError &err) {
                return err.kind() == wire::WireErrorKind::Io ||
                               err.kind() ==
                                   wire::WireErrorKind::Truncated
                           ? Exit::Dropped
                           : Exit::Protocol;
            }
            if (!frame)
                return Exit::Eof;

            switch (frame->type) {
            case wire::FrameType::Stop:
                return handleStop(fd);
            case wire::FrameType::Error:
                return Exit::Protocol;
            case wire::FrameType::HeartbeatAck:
                continue;   // coordinator echoing our liveness beat
            case wire::FrameType::RoundStart:
                break;
            default:
                sendError(fd, detail::concat(
                                  "expected round-start, got ",
                                  wire::frameTypeName(frame->type)));
                return Exit::Protocol;
            }

            wire::Decoder dec(frame->payload);
            RoundStart start = decodeRoundStart(dec, program);
            dec.expectEnd("round-start");

            if (start.round == round && !deltaPayload.empty()) {
                // Replay after a reconnect: the coordinator never
                // got our delta.  Resend it; re-executing would run
                // the round's RNG draws twice and fork the universe.
                try {
                    wire::writeFrame(fd, wire::FrameType::RoundDelta,
                                     deltaPayload);
                } catch (const wire::WireError &) {
                    return Exit::Dropped;
                }
                continue;
            }
            if (start.round != round + 1) {
                sendError(fd, detail::concat(
                                  "round out of sequence: expected ",
                                  round + 1, ", got ", start.round));
                return Exit::Protocol;
            }

            // Deterministic chaos hook: a plan armed on this site
            // (the shard id is part of the name) kills exactly this
            // worker mid-round, which is what the fleet
            // fault-tolerance test exercises.
            fault::site(roundSite.c_str());

            try {
                dropSite(dropPreSite);
                executeRound(start);
                dropSite(dropPostSite);
                wire::writeFrame(fd, wire::FrameType::RoundDelta,
                                 deltaPayload);
            } catch (const SimulatedDrop &) {
                return Exit::Dropped;
            } catch (const wire::WireError &) {
                return Exit::Dropped;
            }
        }
    }

  private:
    Exit handleStop(int fd)
    {
        explorer.finish();
        // Chaos hook for the bounded-shutdown path: a Stall plan
        // here delays the Goodbye past the coordinator's timeout.
        fault::site(stopSite.c_str());
        Goodbye bye;
        bye.runs = explorer.progress().runs;
        bye.batches = explorer.progress().batches;
        bye.corpusSize = explorer.corpus().size();
        bye.edgesCombined =
            explorer.corpus().frontier().combinedCovered();
        wire::Encoder enc;
        encodeGoodbye(enc, bye);
        try {
            wire::writeFrame(fd, wire::FrameType::Goodbye,
                             enc.buffer());
        } catch (const wire::WireError &) {
            // The coordinator may have stopped waiting; still a
            // clean shutdown from our side.
        }
        return Exit::Stopped;
    }

    /** Import, run, and store the round's encoded delta. */
    void executeRound(RoundStart &start)
    {
        // Import before running: this round's mutations see the
        // fleet's merged knowledge.
        if (!start.frontier.empty()) {
            std::vector<uint64_t> taken =
                explorer.corpus().frontier().takenWords();
            std::vector<uint64_t> nt =
                explorer.corpus().frontier().ntWords();
            applyFrontier(start.frontier, taken, nt);
            explorer.importFrontierWords(taken, nt);
        }
        if (!start.entries.empty())
            explorer.importForeignEntries(std::move(start.entries));
        explorer.importPathWords(start.pathWords);

        uint64_t before = explorer.progress().failedJobs;
        uint64_t beforeInst = explorer.progress().instructions;
        uint64_t beforeNt = explorer.progress().ntSpawned;
        uint64_t ran = explorer.step(start.budgetRuns);

        RoundDelta delta;
        delta.round = start.round;
        delta.runs = ran;
        delta.failedJobs = explorer.progress().failedJobs - before;
        delta.instructions =
            explorer.progress().instructions - beforeInst;
        delta.ntSpawned = explorer.progress().ntSpawned - beforeNt;
        delta.exhausted = ran == 0 && start.budgetRuns > 0;
        delta.frontier = diffFrontier(explorer.corpus().frontier(),
                                      sentTaken, sentNt);
        // Dense and tiny (<= 64 words at the enumeration cap), so no
        // diffing: the coordinator's merge is an idempotent OR.
        if (const coverage::PathCoverage *pt = explorer.pathTracker())
            delta.pathWords = pt->words();
        for (const explore::CorpusEntry *e :
             explorer.drainNewLocalEntries())
            delta.entries.push_back(*e);
        delta.admittedLocal = delta.entries.size();

        wire::Encoder enc;
        encodeRoundDelta(enc, delta);
        deltaPayload = enc.buffer();
        round = start.round;
    }

    const isa::Program &program;
    explore::Explorer &explorer;
    std::string roundSite;
    std::string stopSite;
    std::string dropPreSite;
    std::string dropPostSite;
    /** Frontier words last reported upstream (survives reconnects). */
    std::vector<uint64_t> sentTaken;
    std::vector<uint64_t> sentNt;
    /** Last executed round and its encoded RoundDelta. */
    uint64_t round = 0;
    std::string deltaPayload;
};

} // namespace

int
dialBackoffMs(uint64_t seedWord, uint64_t attempt, int baseMs,
              int maxMs)
{
    if (baseMs < 1)
        baseMs = 1;
    if (maxMs < baseMs)
        maxMs = baseMs;
    uint64_t shift = attempt < 20 ? attempt : 20;
    uint64_t raw = uint64_t(baseMs) << shift;
    if (raw > uint64_t(maxMs))
        raw = uint64_t(maxMs);

    // FNV-1a over (seedWord, attempt) picks the jitter: up to half
    // the raw wait is shaved off, so the delay lands in
    // [raw/2, raw] and two workers with different seeds desynchronize
    // while reruns stay byte-identical.
    uint64_t h = 1469598103934665603ull;
    for (uint64_t v : {seedWord, attempt}) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    uint64_t delay = raw - h % (raw / 2 + 1);
    if (delay < 1)
        delay = 1;
    return static_cast<int>(delay);
}

explore::ExploreOptions
shardWorkerOptions(const explore::ExploreOptions &base,
                   uint64_t shardSeed, uint32_t shard,
                   unsigned workerThreads)
{
    // The worker's explorer is the fleet's base options minus
    // everything the coordinator owns: budgets are metered per
    // round, checkpoints/JSONL/stop flags stay with the coordinating
    // process, and the seed becomes the derived shard seed so
    // sibling shards explore different universes.
    explore::ExploreOptions o = base;
    o.seed = shardSeed;
    o.budget.maxRuns = kUnboundedRuns;
    o.budget.maxInstructions = 0;
    o.budget.plateauBatches = 0;
    o.jsonl = nullptr;
    o.onRun = nullptr;
    o.checkpointPath.clear();
    o.resumeFrom.clear();
    o.stopFlag = nullptr;
    o.threads = workerThreads;
    o.label = base.label + "/shard" + std::to_string(shard);
    return o;
}

int
workerMain(int fd, const isa::Program &program,
           const WorkerConfig &config)
{
    // --- Negotiation -------------------------------------------------
    auto first = wire::readFrame(fd);
    if (!first)
        return 0;   // coordinator vanished before Hello; nothing to do
    if (first->type != wire::FrameType::Hello) {
        sendError(fd, detail::concat("expected hello frame, got ",
                                     wire::frameTypeName(first->type)));
        return 1;
    }
    Hello hello;
    try {
        wire::Decoder dec(first->payload);
        hello = decodeHello(dec);
        dec.expectEnd("hello");
        validateHello(hello, config.expect);
    } catch (const wire::WireError &err) {
        sendError(fd, err.what());
        return 1;
    }

    // The Hello negotiates the heartbeat interval; a nonzero value
    // hooks the liveness pump into the explorer's per-run callback.
    HeartbeatPump pump;
    explore::ExploreOptions opts = config.opts;
    if (hello.heartbeatMs > 0) {
        pump.configure(hello.heartbeatMs);
        opts.onRun = [&pump](const core::RunResult &) {
            pump.beat();
        };
    }

    explore::Explorer explorer(program, config.seeds, opts);

    {
        HelloReply reply;
        reply.shard = config.expect.shard;
        reply.totalEdges = explorer.corpus().frontier().totalEdges();
        reply.seedCount = config.seeds.size();
        wire::Encoder enc;
        encodeHelloReply(enc, reply);
        wire::writeFrame(fd, wire::FrameType::HelloReply,
                         enc.buffer());
    }

    WorkerSession session(program, explorer, config.expect.shard,
                          /*remote=*/false);
    pump.attach(fd);
    WorkerSession::Exit exit = session.serve(fd);
    pump.detach();
    switch (exit) {
    case WorkerSession::Exit::Stopped:
    case WorkerSession::Exit::Eof:
    case WorkerSession::Exit::Dropped:
        return 0;   // socketpair gone = coordinator gone; no retry
    case WorkerSession::Exit::Protocol:
        return 1;
    }
    return 1;
}

int
remoteWorkerMain(const isa::Program &program,
                 const RemoteWorkerOptions &options)
{
    pe_assert(options.shards >= 1,
              "remote worker needs the fleet width");

    // Derive the fleet identity locally: the shard plan is a pure
    // function of (configHash, masterSeed, shards, seedCount), so a
    // worker on another host computes the same plan — and the Join
    // handshake proves it did.
    const uint64_t cfgHash = core::configHash(options.base.config);
    const ShardPlan plan =
        makeShardPlan(cfgHash, options.base.seed, options.shards,
                      options.seeds.size());

    Join join;
    join.desiredShard = kAnyShard;
    join.shards = options.shards;
    join.configHash = cfgHash;
    join.masterSeed = options.base.seed;
    join.planDigest = plan.planDigest;
    join.programFp = explore::programFingerprint(program);
    join.sessionWord = sessionWord(options.base);
    join.seedsDigest = seedsDigest(options.seeds);

    // Declared before the explorer so the onRun lambda capturing it
    // never outlives it.
    HeartbeatPump pump;
    std::unique_ptr<explore::Explorer> explorer;
    std::unique_ptr<WorkerSession> session;
    uint32_t shard = kAnyShard;

    // Backoff is seeded off the session identity: every worker of
    // one fleet jitters differently, every rerun identically.
    const uint64_t backoffSeed = cfgHash ^ options.base.seed;
    uint64_t failStreak = 0;
    int dialsLeft = options.dialAttempts;
    uint64_t lastDropRound = ~0ull;
    int sameRoundDrops = 0;

    for (;;) {
        int fd = -1;
        try {
            fd = tcpDial(options.connect);
        } catch (const FatalError &err) {
            if (--dialsLeft <= 0) {
                if (options.status)
                    *options.status << "[worker] giving up: "
                                    << err.what() << "\n";
                return 1;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                dialBackoffMs(backoffSeed, failStreak++,
                              options.redialDelayMs,
                              options.redialMaxMs)));
            continue;
        }
        dialsLeft = options.dialAttempts;
        failStreak = 0;

        join.desiredShard = shard;
        join.lastAckedRound = session ? session->lastRound() : 0;
        try {
            wire::Encoder enc;
            encodeJoin(enc, join);
            wire::writeFrame(fd, wire::FrameType::Join,
                             enc.buffer());

            if (!session) {
                // First attach: the coordinator answers the Join
                // with a Hello assigning our shard (or an Error
                // refusing us — identity refusals are not
                // retryable).
                auto frame = wire::readFrame(fd);
                if (!frame)
                    throw wire::WireError(
                        wire::WireErrorKind::Truncated,
                        "coordinator closed before hello");
                if (frame->type == wire::FrameType::Error) {
                    wire::Decoder dec(frame->payload);
                    pe_fatal("coordinator refused join: ",
                             dec.str("error message"));
                }
                if (frame->type != wire::FrameType::Hello)
                    throw wire::WireError(
                        wire::WireErrorKind::BadFrame,
                        detail::concat(
                            "expected hello, got ",
                            wire::frameTypeName(frame->type)));

                wire::Decoder dec(frame->payload);
                Hello hello = decodeHello(dec);
                dec.expectEnd("hello");
                if (hello.shard >= options.shards)
                    throw wire::WireError(
                        wire::WireErrorKind::Mismatch,
                        detail::concat("assigned shard ",
                                       hello.shard, " out of range"),
                        options.shards, hello.shard);

                Hello want;
                want.shard = hello.shard;
                want.shards = options.shards;
                want.configHash = cfgHash;
                want.masterSeed = options.base.seed;
                want.shardSeed =
                    plan.specs[hello.shard].shardSeed;
                want.planDigest = plan.planDigest;
                want.programFp = join.programFp;
                validateHello(hello, want);

                shard = hello.shard;
                std::vector<std::vector<int32_t>> slice;
                for (uint32_t idx : plan.specs[shard].seedIndices)
                    slice.push_back(options.seeds[idx]);
                explore::ExploreOptions shardOpts =
                    shardWorkerOptions(options.base,
                                       plan.specs[shard].shardSeed,
                                       shard,
                                       options.workerThreads);
                if (hello.heartbeatMs > 0) {
                    pump.configure(hello.heartbeatMs);
                    shardOpts.onRun =
                        [&pump](const core::RunResult &) {
                            pump.beat();
                        };
                }
                explorer = std::make_unique<explore::Explorer>(
                    program, slice, shardOpts);
                session = std::make_unique<WorkerSession>(
                    program, *explorer, shard, /*remote=*/true);

                HelloReply reply;
                reply.shard = shard;
                reply.totalEdges =
                    explorer->corpus().frontier().totalEdges();
                reply.seedCount = slice.size();
                wire::Encoder replyEnc;
                encodeHelloReply(replyEnc, reply);
                wire::writeFrame(fd, wire::FrameType::HelloReply,
                                 replyEnc.buffer());
                if (options.status)
                    *options.status << "[worker] joined as shard "
                                    << shard << "\n";
            } else if (options.status) {
                *options.status << "[worker] shard " << shard
                                << " reconnected (last round "
                                << session->lastRound() << ")\n";
            }
        } catch (const wire::WireError &err) {
            // Handshake-level connection trouble: treat like a drop
            // and redial (the coordinator may not have noticed the
            // old connection dying yet).
            ::close(fd);
            if (options.status)
                *options.status << "[worker] handshake retry: "
                                << err.what() << "\n";
            if (--dialsLeft <= 0)
                return 1;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                dialBackoffMs(backoffSeed, failStreak++,
                              options.redialDelayMs,
                              options.redialMaxMs)));
            continue;
        }

        pump.attach(fd);
        WorkerSession::Exit exit = session->serve(fd);
        pump.detach();
        ::close(fd);
        switch (exit) {
        case WorkerSession::Exit::Stopped:
            return 0;
        case WorkerSession::Exit::Protocol:
            return 1;
        case WorkerSession::Exit::Eof:
            // A clean shutdown always ends Stop -> Goodbye (Stopped);
            // a bare EOF means the coordinator died — possibly
            // kill -9'd mid-session, in which case a resumed
            // coordinator will take this worker back.  Redial like a
            // drop; a coordinator that is gone for good burns the
            // dial attempts and exits nonzero.
        case WorkerSession::Exit::Dropped:
            // Guard against a round that drops every attempt (a
            // deterministic failure would redial forever).
            if (session->lastRound() == lastDropRound) {
                if (++sameRoundDrops > 8) {
                    if (options.status)
                        *options.status
                            << "[worker] shard " << shard
                            << " dropping repeatedly at round "
                            << lastDropRound << "; giving up\n";
                    return 1;
                }
            } else {
                lastDropRound = session->lastRound();
                sameRoundDrops = 1;
            }
            if (options.status)
                *options.status << "[worker] shard " << shard
                                << " lost connection; redialing\n";
            break;
        }
    }
}

} // namespace pe::fleet
