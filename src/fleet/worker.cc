/**
 * @file
 * Fleet worker implementation.
 */

#include "src/fleet/worker.hh"

#include <string>

#include "src/explore/serialize.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"

namespace pe::fleet
{

namespace
{

void
sendError(int fd, const std::string &message)
{
    try {
        wire::Encoder enc;
        enc.str(message);
        wire::writeFrame(fd, wire::FrameType::Error, enc.buffer());
    } catch (const wire::WireError &) {
        // The pipe is already gone; the exit code still tells.
    }
}

} // namespace

int
workerMain(int fd, const isa::Program &program,
           const WorkerConfig &config)
{
    // --- Negotiation -------------------------------------------------
    auto first = wire::readFrame(fd);
    if (!first)
        return 0;   // coordinator vanished before Hello; nothing to do
    if (first->type != wire::FrameType::Hello) {
        sendError(fd, detail::concat("expected hello frame, got ",
                                     wire::frameTypeName(first->type)));
        return 1;
    }
    try {
        wire::Decoder dec(first->payload);
        Hello hello = decodeHello(dec);
        dec.expectEnd("hello");
        validateHello(hello, config.expect);
    } catch (const wire::WireError &err) {
        sendError(fd, err.what());
        return 1;
    }

    explore::Explorer explorer(program, config.seeds, config.opts);

    {
        HelloReply reply;
        reply.shard = config.expect.shard;
        reply.totalEdges = explorer.corpus().frontier().totalEdges();
        reply.seedCount = config.seeds.size();
        wire::Encoder enc;
        encodeHelloReply(enc, reply);
        wire::writeFrame(fd, wire::FrameType::HelloReply,
                         enc.buffer());
    }

    // Snapshot of the frontier words last reported upstream; the
    // per-round report is the diff against it.
    std::vector<uint64_t> sentTaken(
        explorer.corpus().frontier().takenWords().size(), 0);
    std::vector<uint64_t> sentNt(sentTaken.size(), 0);

    const std::string roundSite =
        "fleet.worker_round." + std::to_string(config.expect.shard);

    // --- Rounds ------------------------------------------------------
    for (;;) {
        std::optional<wire::Frame> frame;
        try {
            frame = wire::readFrame(fd);
        } catch (const wire::WireError &) {
            return 0;   // coordinator died; exit quietly
        }
        if (!frame)
            return 0;   // clean EOF: coordinator closed the pipe

        if (frame->type == wire::FrameType::Stop) {
            explorer.finish();
            Goodbye bye;
            bye.runs = explorer.progress().runs;
            bye.batches = explorer.progress().batches;
            bye.corpusSize = explorer.corpus().size();
            bye.edgesCombined =
                explorer.corpus().frontier().combinedCovered();
            wire::Encoder enc;
            encodeGoodbye(enc, bye);
            wire::writeFrame(fd, wire::FrameType::Goodbye,
                             enc.buffer());
            return 0;
        }
        if (frame->type != wire::FrameType::RoundStart) {
            sendError(fd,
                      detail::concat("expected round-start, got ",
                                     wire::frameTypeName(frame->type)));
            return 1;
        }

        wire::Decoder dec(frame->payload);
        RoundStart start = decodeRoundStart(dec, program);
        dec.expectEnd("round-start");

        // Deterministic chaos hook: a plan armed on this site (the
        // shard id is part of the name) kills exactly this worker
        // mid-round, which is what the fleet fault-tolerance test
        // exercises.
        fault::site(roundSite.c_str());

        // Import before running: this round's mutations see the
        // fleet's merged knowledge.
        if (!start.frontier.empty()) {
            std::vector<uint64_t> taken =
                explorer.corpus().frontier().takenWords();
            std::vector<uint64_t> nt =
                explorer.corpus().frontier().ntWords();
            applyFrontier(start.frontier, taken, nt);
            explorer.importFrontierWords(taken, nt);
        }
        if (!start.entries.empty())
            explorer.importForeignEntries(std::move(start.entries));

        uint64_t before = explorer.progress().failedJobs;
        uint64_t beforeInst = explorer.progress().instructions;
        uint64_t beforeNt = explorer.progress().ntSpawned;
        uint64_t ran = explorer.step(start.budgetRuns);

        RoundDelta delta;
        delta.round = start.round;
        delta.runs = ran;
        delta.failedJobs = explorer.progress().failedJobs - before;
        delta.instructions =
            explorer.progress().instructions - beforeInst;
        delta.ntSpawned = explorer.progress().ntSpawned - beforeNt;
        delta.exhausted = ran == 0 && start.budgetRuns > 0;
        delta.frontier = diffFrontier(explorer.corpus().frontier(),
                                      sentTaken, sentNt);
        for (const explore::CorpusEntry *e :
             explorer.drainNewLocalEntries())
            delta.entries.push_back(*e);
        delta.admittedLocal = delta.entries.size();

        wire::Encoder enc;
        encodeRoundDelta(enc, delta);
        wire::writeFrame(fd, wire::FrameType::RoundDelta,
                         enc.buffer());
    }
}

} // namespace pe::fleet
