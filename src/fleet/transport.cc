/**
 * @file
 * Fleet transport implementations: fork/socketpair and TCP.
 */

#include "src/fleet/transport.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <thread>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::fleet
{

namespace
{

/** How long a freshly accepted peer gets to produce its Join. */
constexpr int kJoinTimeoutMs = 5000;

/** Poll slice while waiting for the fleet to form (stopFlag checks). */
constexpr int kEstablishPollMs = 200;

/** `host:port` -> (host, service); empty host = every interface. */
std::pair<std::string, std::string>
splitHostPort(const std::string &spec)
{
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
        pe_fatal("tcp address '", spec, "' is not host:port");
    }
    return {spec.substr(0, colon), spec.substr(colon + 1)};
}

void
sendErrorBestEffort(int fd, const std::string &message)
{
    try {
        wire::Encoder enc;
        enc.str(message);
        wire::writeFrame(fd, wire::FrameType::Error, enc.buffer());
    } catch (const wire::WireError &) {
        // The peer is already gone; nothing to tell it.
    }
}

} // namespace

Join
FleetIdentity::asJoin() const
{
    Join j;
    j.shards = shards;
    j.configHash = configHash;
    j.masterSeed = masterSeed;
    j.planDigest = planDigest;
    j.programFp = programFp;
    j.sessionWord = sessionWord;
    j.seedsDigest = seedsDigest;
    return j;
}

// --- ForkTransport ---------------------------------------------------

std::vector<int>
ForkTransport::establish(const FleetIdentity &id,
                         const std::vector<WorkerConfig> &configs,
                         const std::atomic<bool> *stopFlag)
{
    (void)id;
    (void)stopFlag;   // fork is immediate; nothing to wait for
    pe_assert(children.empty(), "fork transport establishes once");
    std::vector<int> fds;
    fds.reserve(configs.size());
    for (const WorkerConfig &cfg : configs) {
        children.push_back(proc::spawnChild([this, cfg](int fd) {
            return workerMain(fd, program, cfg);
        }));
        fds.push_back(children.back().fd());
    }
    return fds;
}

void
ForkTransport::closeChannel(uint32_t shard)
{
    if (shard < children.size())
        children[shard].closeFd();
}

void
ForkTransport::shutdown(int reapTimeoutMs)
{
    // Two passes: give every child the EOF + grace period first, then
    // reap — so N stragglers share one timeout instead of serializing
    // N of them.
    for (proc::ChildProcess &child : children)
        child.closeFd();
    for (proc::ChildProcess &child : children) {
        if (!child.valid())
            continue;
        if (!child.waitFor(reapTimeoutMs)) {
            child.kill(SIGKILL);
            child.wait();
        }
    }
    children.clear();
}

// --- TcpTransport ----------------------------------------------------

TcpTransport::TcpTransport(const std::string &listenSpec,
                           std::ostream *status)
    : status(status)
{
    auto [host, service] = splitHostPort(listenSpec);

    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                           service.c_str(), &hints, &res);
    if (rc != 0) {
        pe_fatal("cannot resolve listen address '", listenSpec,
                 "': ", ::gai_strerror(rc));
    }

    std::string lastErr = "no usable address";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family, ai->ai_socktype,
                          ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, SOMAXCONN) != 0) {
            lastErr = std::strerror(errno);
            ::close(fd);
            continue;
        }
        listenSock = fd;
        break;
    }
    ::freeaddrinfo(res);
    if (listenSock < 0) {
        pe_fatal("cannot listen on '", listenSpec, "': ", lastErr);
    }
    // Non-blocking: acceptOne() is drained in a loop after poll()
    // reports the listener readable, and the call that finds the
    // backlog empty must return nullopt (EAGAIN), not park the
    // reactor in accept(2) forever.
    wire::setNonBlocking(listenSock);

    struct sockaddr_storage addr = {};
    socklen_t len = sizeof(addr);
    if (::getsockname(listenSock,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) == 0) {
        if (addr.ss_family == AF_INET) {
            boundPort = ntohs(
                reinterpret_cast<struct sockaddr_in *>(&addr)
                    ->sin_port);
        } else if (addr.ss_family == AF_INET6) {
            boundPort = ntohs(
                reinterpret_cast<struct sockaddr_in6 *>(&addr)
                    ->sin6_port);
        }
    }
}

TcpTransport::~TcpTransport()
{
    shutdown(0);
}

std::optional<PeerJoin>
TcpTransport::acceptOne(
    const std::function<bool(uint32_t, bool)> &mayJoin)
{
    int fd = ::accept(listenSock, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == ECONNABORTED)
            return std::nullopt;
        pe_fatal("accept failed: ", std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Join got;
    try {
        auto frame = wire::readFrameTimeout(fd, kJoinTimeoutMs);
        if (!frame || frame->type != wire::FrameType::Join) {
            throw wire::WireError(
                wire::WireErrorKind::BadFrame,
                detail::concat(
                    "expected join frame, got ",
                    frame ? wire::frameTypeName(frame->type)
                          : "eof"));
        }
        wire::Decoder dec(frame->payload);
        got = decodeJoin(dec);
        dec.expectEnd("join");
        validateJoin(got, identity.asJoin());
    } catch (const wire::WireError &err) {
        if (status)
            *status << "[fleet] refused tcp peer: " << err.what()
                    << "\n";
        sendErrorBestEffort(fd, err.what());
        ::close(fd);
        return std::nullopt;
    }

    // Resolve the shard slot: a wildcard takes the lowest
    // never-assigned slot, an explicit id takes exactly that slot.
    uint32_t shard = got.desiredShard;
    if (shard == kAnyShard) {
        for (uint32_t s = 0; s < identity.shards; ++s) {
            if (!assigned[s]) {
                shard = s;
                break;
            }
        }
    }
    std::string refusal;
    if (shard >= identity.shards)
        refusal = "no free shard slot";
    else if (slots[shard] >= 0)
        refusal = detail::concat("shard ", shard,
                                 " is already connected");
    else if (!mayJoin(shard, assigned[shard]))
        refusal = detail::concat("shard ", shard,
                                 " is not accepting peers");
    if (!refusal.empty()) {
        if (status)
            *status << "[fleet] refused tcp peer: " << refusal
                    << "\n";
        sendErrorBestEffort(fd, refusal);
        ::close(fd);
        return std::nullopt;
    }

    PeerJoin peer;
    peer.shard = shard;
    peer.fd = fd;
    peer.lastAckedRound = got.lastAckedRound;
    peer.rejoin = assigned[shard];
    slots[shard] = fd;
    assigned[shard] = true;
    if (status)
        *status << "[fleet] shard " << shard << " "
                << (peer.rejoin ? "reconnected" : "connected")
                << " over tcp\n";
    return peer;
}

std::vector<int>
TcpTransport::establish(const FleetIdentity &id,
                        const std::vector<WorkerConfig> &configs,
                        const std::atomic<bool> *stopFlag)
{
    (void)configs;   // remote workers bring their own options
    identity = id;
    slots.assign(id.shards, -1);
    assigned.assign(id.shards, false);

    if (status)
        *status << "[fleet] waiting for " << id.shards
                << " worker(s) on tcp port " << boundPort << "\n";

    size_t joined = 0;
    while (joined < id.shards) {
        if (stopFlag &&
            stopFlag->load(std::memory_order_relaxed)) {
            pe_fatal("interrupted while waiting for tcp workers (",
                     joined, "/", id.shards, " joined)");
        }
        struct pollfd pfd = {listenSock, POLLIN, 0};
        int rc = ::poll(&pfd, 1, kEstablishPollMs);
        if (rc < 0 && errno != EINTR)
            pe_fatal("poll failed: ", std::strerror(errno));
        if (rc <= 0)
            continue;
        // During formation every unattached slot may join (first
        // attach only; nothing has ever disconnected yet).
        if (acceptOne([](uint32_t, bool) { return true; }))
            ++joined;
    }
    return slots;
}

void
TcpTransport::prepareResume(const FleetIdentity &id)
{
    identity = id;
    // Every slot was held by the dead coordinator's session; the
    // workers are still out there redialing.  Marking the slots
    // assigned-but-detached routes their Joins through the same
    // accept path a mid-session reconnect takes.
    slots.assign(id.shards, -1);
    assigned.assign(id.shards, true);
    if (status)
        *status << "[fleet] resuming: waiting for workers to redial "
                   "on tcp port "
                << boundPort << "\n";
}

std::optional<PeerJoin>
TcpTransport::acceptPeer(
    const std::function<bool(uint32_t, bool)> &mayJoin)
{
    return acceptOne(mayJoin);
}

void
TcpTransport::closeChannel(uint32_t shard)
{
    if (shard < slots.size() && slots[shard] >= 0) {
        ::close(slots[shard]);
        slots[shard] = -1;
    }
}

void
TcpTransport::shutdown(int reapTimeoutMs)
{
    (void)reapTimeoutMs;   // remote processes reap themselves
    for (int &fd : slots) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    if (listenSock >= 0) {
        ::close(listenSock);
        listenSock = -1;
    }
}

// --- Worker-side dialing ---------------------------------------------

int
tcpDial(const std::string &hostPort)
{
    auto [host, service] = splitHostPort(hostPort);

    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                           service.c_str(), &hints, &res);
    if (rc != 0) {
        pe_fatal("cannot resolve '", hostPort,
                 "': ", ::gai_strerror(rc));
    }

    int fd = -1;
    std::string lastErr = "no usable address";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastErr = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        pe_fatal("cannot connect to '", hostPort, "': ", lastErr);
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

} // namespace pe::fleet
