/**
 * @file
 * Durable fleet sessions: the coordinator's checkpoint format.
 *
 * The fleet's bit-reproducibility contract says the merged frontier
 * and corpus after round R are pure functions of the shard plan and
 * the round count.  That makes the coordinator checkpointable with
 * the same guarantee PR 4 gave the single-process explorer: persist
 * everything round R's future depends on — the merged corpus +
 * frontier + exercise counts, the aggregate counters, and each
 * shard's broadcast bookkeeping — and a restarted coordinator
 * continues byte-identically while the TCP workers redial through
 * the ordinary reconnect path.
 *
 * Two shard-side fields deserve their exact-bytes treatment:
 *
 *  - `sentTaken`/`sentNt`/`entryMark` are the per-shard broadcast
 *    cursors.  sendRoundStart *consumes* them (diffFrontier advances
 *    the snapshot, entryMark moves past the entries shipped), so the
 *    next round's RoundStart payload is a function of these cursors
 *    plus the merged state.  Restoring them post-merge of round R
 *    makes the resumed coordinator's round-R+1 payload byte-equal to
 *    what the dead coordinator would have sent — which is what lets
 *    a worker that already executed R+1 answer from its stored delta
 *    instead of re-executing (re-running would draw the round's RNG
 *    twice and fork the universe).
 *
 *  - `replayPayload` is round R's RoundStart, exact encoded bytes.
 *    It cannot be re-encoded on resume: payload generation advances
 *    the cursors above, so a second encoding would diff against the
 *    *post*-R snapshot and produce different (wrong) bytes.  The
 *    checkpoint therefore stores the encoded string verbatim, same
 *    as the in-memory replay buffer it restores.
 *
 * Layout: magic + version + identity header (validated field by
 * field on resume, mismatches fatal with expected/found values),
 * then the body in serialize.hh vocabulary.  Writes go temp +
 * atomic-rename so a crash mid-write leaves the previous checkpoint
 * intact; the `fleet.checkpoint_write` fault site lets chaos tests
 * pin that invariant.
 */

#ifndef PE_FLEET_CHECKPOINT_HH
#define PE_FLEET_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/explore/corpus.hh"
#include "src/fleet/coordinator.hh"
#include "src/isa/program.hh"

namespace pe::fleet
{

/** One shard's persisted coordinator-side state. */
struct ShardCheckpoint
{
    ShardSummary summary;
    /** Broadcast cursors (see file comment). */
    std::vector<uint64_t> sentTaken;
    std::vector<uint64_t> sentNt;
    uint64_t entryMark = 0;
    bool gotForeign = false;
    /** Last RoundStart sent, exact encoded bytes. */
    uint64_t replayRound = 0;
    std::string replayPayload;
};

/** Everything a restarted coordinator needs to continue a session. */
struct FleetCheckpoint
{
    /** Identity: a resume refuses a checkpoint from another session. */
    uint64_t configHash = 0;
    uint64_t masterSeed = 0;
    uint32_t shards = 0;
    uint64_t planDigest = 0;
    uint64_t programFp = 0;
    uint64_t sessionWord = 0;
    uint64_t seedsDigest = 0;

    /** Aggregate counters (FleetResult so far). */
    uint64_t rounds = 0;
    uint64_t runs = 0;
    uint64_t instructions = 0;
    uint64_t ntSpawned = 0;
    uint64_t failedJobs = 0;
    uint64_t stolenRuns = 0;
    uint32_t lostWorkers = 0;
    uint32_t reconnects = 0;
    uint32_t globalDryRounds = 0;

    /** Merged global state (frontier, exercise counts, corpus). */
    std::vector<uint64_t> frontierTaken;
    std::vector<uint64_t> frontierNt;
    std::vector<uint32_t> exerciseCounts;
    uint64_t exerciseRuns = 0;
    std::vector<explore::CorpusEntry> entries;
    /** Origin shard per entry (echo-free rebroadcast needs it). */
    std::vector<uint32_t> origins;

    /**
     * Merged prime-path completion words (version 2); empty when the
     * session ran without the tracker (config.recordEdgeTrace off).
     */
    std::vector<uint64_t> pathWords;

    std::vector<ShardCheckpoint> shardStates;
};

/**
 * Atomically persist @p ckpt to @p path (temp + rename).  Hits the
 * `fleet.checkpoint_write` fault site first and throws FatalError on
 * any write failure — the coordinator downgrades that to a warning,
 * because a failed checkpoint must cost durability, never the
 * session.
 */
void saveFleetCheckpoint(const std::string &path,
                         const FleetCheckpoint &ckpt);

/**
 * Load a checkpoint written by saveFleetCheckpoint.  Validates the
 * magic and version and decodes against @p program's edge universe;
 * throws FatalError naming what is wrong.  Identity fields are
 * returned, not judged — the resuming coordinator compares them
 * against its own session and reports expected/found itself.
 */
FleetCheckpoint loadFleetCheckpoint(const std::string &path,
                                    const isa::Program &program);

} // namespace pe::fleet

#endif // PE_FLEET_CHECKPOINT_HH
