/**
 * @file
 * Fleet coordinator: N worker shards, one merged frontier.
 *
 * The coordinator scales the exploration loop horizontally without
 * giving up the repo's core invariant — bit-reproducibility.  The
 * shard plan (per-shard seeds derived from configHash + master seed,
 * seed inputs dealt round-robin) is a pure function of the options;
 * rounds are lockstep (every worker gets a RoundStart, every reply
 * is merged in shard-id order); and the frontier merge is a word-OR,
 * so the merged frontier and the globally-admitted corpus after
 * round R depend only on the plan, never on host scheduling.  Two
 * fleets with the same plan produce byte-identical frontier and
 * corpus digests, which is what the fleet-smoke CI job asserts.
 *
 * Work stealing re-partitions the per-round run budget: a shard that
 * stopped contributing new global edges (shardPlateau dry rounds) is
 * wound down to a floor share — unless the fleet just handed it
 * foreign entries it has not chewed through yet, in which case it
 * *steals* extra budget from the steady shards (stealBoost) to work
 * the fresh material.  Both triggers are integer arithmetic over
 * merged round stats, so the re-partitioning is as deterministic as
 * everything else.
 *
 * Worker loss is survivable: a shard whose pipe breaks is marked
 * dead, its already-merged contributions stay, and its budget share
 * flows to the survivors from the next round on.
 *
 * Collection is a poll(2) reactor, not a blocking sweep: every
 * worker fd is non-blocking, frames reassemble into per-shard
 * FrameReaders as bytes arrive, and a slow shard never blocks the
 * coordinator from *reading* the others (no head-of-line blocking).
 * Merging still happens in shard-id order once every pending shard
 * has resolved — delta arrived, or shard died — because the merge
 * order, not the arrival order, is what keeps the digests pure
 * functions of the plan.  An optional per-round deadline converts a
 * stalled shard into a dead one so its budget flows on.
 *
 * Channels come from a pluggable Transport (fork/socketpair or TCP;
 * see transport.hh).  On a transport with reconnect support, a
 * broken channel first *detaches* the shard: the coordinator keeps a
 * one-round replay buffer (the exact RoundStart bytes last sent), and
 * a worker redialing with its shard id + last acked round gets the
 * missed frame resent.  Only the deadline turns a detached shard
 * into a dead one.
 */

#ifndef PE_FLEET_COORDINATOR_HH
#define PE_FLEET_COORDINATOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/explore/explorer.hh"
#include "src/fleet/protocol.hh"

namespace pe::fleet
{

class Transport;

struct FleetOptions
{
    /**
     * Shared exploration options.  budget.maxRuns is the *global*
     * run budget across all shards; seed is the fleet master seed;
     * jsonl receives the coordinator's own round stream.  Worker
     * copies get derived seeds and neutralized budgets/checkpoints.
     */
    explore::ExploreOptions base;

    /** Worker process count (>= 1). */
    unsigned shards = 2;

    /**
     * Total runs handed out per round across the fleet; 0 derives
     * shards * base.batchSize (one classic batch per shard).
     */
    uint64_t roundRuns = 0;

    /**
     * Global stop: rounds in a row with zero new merged edges.
     * 0 disables (the run budget is then the only bound).
     */
    uint32_t plateauRounds = 0;

    /** Dry rounds before one shard counts as plateaued (>= 1). */
    uint32_t shardPlateau = 2;

    /**
     * Budget multiplier (in percent of a fair share, added on top)
     * a plateaued shard steals when it has fresh foreign entries to
     * work: 100 = double share.  0 disables stealing.
     */
    uint32_t stealBoostPct = 100;

    /**
     * Share (percent of fair) a plateaued shard without fresh
     * material keeps — wind-down, not starvation, so it can revive
     * when the next broadcast reaches it.
     */
    uint32_t idleFloorPct = 25;

    /** Campaign worker threads per shard; 0 = PE_JOBS default. */
    unsigned workerThreads = 0;

    /** Human-readable status stream (CLI: stderr); may be null. */
    std::ostream *status = nullptr;

    /** Checked between rounds; true stops the fleet cleanly. */
    const std::atomic<bool> *stopFlag = nullptr;

    /**
     * Channel factory; null = fork/socketpair workers on this host.
     * Supply a TcpTransport to run the fleet across machines.
     */
    std::shared_ptr<Transport> transport;

    /**
     * Per-round collection deadline, ms: a shard whose delta has not
     * arrived (and which has not reconnected) by the deadline is
     * marked dead and its budget flows to the survivors from the
     * next round.  0 waits forever (fork workers die loudly, so the
     * deadline mainly matters for TCP fleets).
     */
    int roundDeadlineMs = 0;

    /** Longest wait for each worker's Goodbye at shutdown, ms. */
    int goodbyeTimeoutMs = 2000;

    /** Grace before SIGKILL when reaping forked workers, ms. */
    int reapTimeoutMs = 5000;

    /**
     * Heartbeat interval, ms; 0 = off.  Workers send progress beats
     * mid-round (rate-limited to half this interval) and the
     * coordinator runs a per-shard health machine over them: a shard
     * silent for longer than this turns *suspect* (fleet_degraded
     * event), silent for twice this is marked dead — well before the
     * round deadline, so a stalled worker's budget flows to the
     * survivors within 2x heartbeatMs instead of a full deadline.
     */
    int heartbeatMs = 0;

    /**
     * Minimum live shards the session insists on; 0 = off.  When the
     * live count drops below this, the coordinator first waits (on a
     * reconnectable transport, up to the round deadline) for
     * detached workers to rejoin instead of dispatching degraded
     * rounds, then stops with FleetStop::QuorumLost rather than
     * grinding on below quorum.
     */
    uint32_t minQuorum = 0;

    /**
     * Durable sessions: persist the full coordinator state here
     * after every round's merge (temp + atomic rename).  A failed
     * write is a warning (fleet_warning event), never a session
     * abort.  Empty = off.
     */
    std::string checkpointPath;

    /**
     * Resume a session from a checkpoint written by a previous
     * coordinator.  Requires a reconnectable transport (TCP): the
     * session's workers redial and continue, and the final digests
     * are byte-identical to an uninterrupted run.  Empty = off.
     */
    std::string resumeFrom;
};

/** One shard's slice of the deterministic plan. */
struct ShardSpec
{
    uint32_t shard = 0;
    uint64_t shardSeed = 0;
    std::vector<uint32_t> seedIndices;
};

/**
 * The partition of seed/energy space: pure function of (configHash,
 * masterSeed, shards, seedCount).  planDigest names it — it goes
 * into the Hello handshake and the result record, and reruns with
 * equal digests are bit-comparable.
 */
struct ShardPlan
{
    uint32_t shards = 0;
    uint64_t planDigest = 0;
    std::vector<ShardSpec> specs;
};

ShardPlan makeShardPlan(uint64_t configHash, uint64_t masterSeed,
                        uint32_t shards, size_t seedCount);

/** Why the fleet stopped. */
enum class FleetStop : uint8_t
{
    RunBudget,      //!< global maxRuns spent
    Plateau,        //!< plateauRounds dry rounds (or all exhausted)
    Interrupted,    //!< stopFlag raised
    WorkersLost,    //!< every worker died
    QuorumLost,     //!< live shards fell below minQuorum
};

const char *fleetStopName(FleetStop stop);

struct ShardSummary
{
    uint32_t shard = 0;
    uint64_t runs = 0;          //!< runs this shard executed
    uint64_t assigned = 0;      //!< budget it was handed
    uint64_t admittedGlobal = 0; //!< its entries the fleet admitted
    uint64_t newEdges = 0;      //!< global edges it contributed
    uint32_t dryRounds = 0;     //!< current plateau streak
    bool alive = false;
    bool exhausted = false;
};

struct FleetResult
{
    FleetStop stop = FleetStop::RunBudget;
    uint64_t rounds = 0;
    uint64_t runs = 0;
    uint64_t instructions = 0;
    uint64_t ntSpawned = 0;
    uint64_t failedJobs = 0;
    size_t corpusSize = 0;
    size_t edgesTaken = 0;
    size_t edgesCombined = 0;
    size_t totalEdges = 0;
    uint64_t planDigest = 0;

    /** Reproducibility witnesses (explore::coverageDigest et al.). */
    uint64_t frontierDigest = 0;
    uint64_t corpusDigest = 0;

    /** Prime-path tracker totals (0 when recordEdgeTrace is off). */
    uint64_t primePaths = 0;
    uint64_t pathCoverSize = 0;
    uint64_t pathsCompleted = 0;
    uint64_t pathCoverCompleted = 0;
    uint64_t pathDigest = 0;

    /** Runs re-partitioned away from fair shares by stealing. */
    uint64_t stolenRuns = 0;
    uint32_t lostWorkers = 0;
    /** Successful worker re-attachments after a dropped channel. */
    uint32_t reconnects = 0;
    std::vector<ShardSummary> shards;
};

/** Spawns the fleet, runs rounds to a bound, reaps the workers. */
class Coordinator
{
  public:
    Coordinator(const isa::Program &program,
                std::vector<std::vector<int32_t>> seeds,
                FleetOptions opts);

    /** Run the fleet to completion; call once. */
    FleetResult run();

    const ShardPlan &plan() const { return shardPlan; }

    /** Globally admitted corpus (valid after run()). */
    const explore::Corpus &corpus() const { return global; }

  private:
    struct Shard
    {
        ShardSpec spec;
        ShardSummary summary;
        /** Current channel fd; -1 = detached (awaiting rejoin). */
        int fd = -1;
        /** Per-shard reassembly buffer for the poll reactor. */
        wire::FrameReader reader;
        /** RoundStart sent this round, delta not merged yet. */
        bool pendingDelta = false;
        /** Delta arrived, parked until the in-order merge. */
        std::optional<RoundDelta> stashed;
        /** One-round replay buffer: last RoundStart, exact bytes. */
        uint64_t replayRound = 0;
        std::string replayPayload;
        /** Global-frontier words last broadcast to this shard. */
        std::vector<uint64_t> sentTaken;
        std::vector<uint64_t> sentNt;
        /** Global corpus entries already broadcast. */
        size_t entryMark = 0;
        /** Broadcast delivered fresh foreign material last round. */
        bool gotForeign = false;
        /** Liveness: last frame (heartbeat or delta) or dispatch. */
        std::chrono::steady_clock::time_point lastActivity{};
        /** Health machine: silent past heartbeatMs, not yet dead. */
        bool suspect = false;
    };

    void establishFleet(FleetResult &res);
    bool handshake(Shard &shard);
    /** Restore state from opts.resumeFrom; fatal on any mismatch. */
    void resumeState(FleetResult &res);
    /** Wait (bounded) for the session's workers to redial. */
    void reattachFleet(FleetResult &res);
    /** Persist after a merge; failure = warning, never abort. */
    void maybeCheckpoint(const FleetResult &res);
    /** Stop condition shared by the round loop and the resume path. */
    std::optional<FleetStop> checkStop(const FleetResult &res) const;
    /** Quorum gate: pause for rejoins, then QuorumLost or nullopt. */
    std::optional<FleetStop> enforceQuorum(FleetResult &res);
    /** A frame arrived from shard: reset the health machine. */
    void noteShardActivity(Shard &shard, uint64_t round);
    /** Advance live/suspect/dead; returns ms until the next edge. */
    int updateHealth(FleetResult &res, uint64_t round);
    void emitHealth(const char *event, uint32_t shard,
                    uint64_t round, const char *state,
                    const std::string &detail);
    std::vector<uint64_t> allocateBudgets(uint64_t roundTotal,
                                          FleetResult &res);
    void sendRoundStart(Shard &shard, uint64_t round,
                        uint64_t budget);
    void collectRound(FleetResult &res, uint64_t round,
                      uint64_t &roundRuns, uint64_t &roundNewEdges);
    void pumpShard(Shard &shard, FleetResult &res, uint64_t round);
    void acceptReconnects(FleetResult &res, uint64_t round);
    void mergeRoundDelta(Shard &shard, const RoundDelta &delta,
                         FleetResult &res, uint64_t &roundNewEdges);
    void disconnectShard(Shard &shard, FleetResult &res,
                         const std::string &why);
    void markDead(Shard &shard, FleetResult &res,
                  const std::string &why);
    std::optional<wire::Frame> readShardFrame(Shard &shard,
                                              int timeoutMs);
    void shutdownWorkers();
    void emitRound(const FleetResult &res, uint64_t round,
                   uint64_t roundRuns, uint64_t roundNewEdges);
    void emitDone(const FleetResult &res);

    const isa::Program &program;
    std::vector<std::vector<int32_t>> seeds;
    FleetOptions opts;
    std::shared_ptr<Transport> transport;
    ShardPlan shardPlan;
    explore::Corpus global;

    /**
     * Merged prime-path completion tracker, built from the program
     * alone (same enumeration every worker performs) when
     * base.config.recordEdgeTrace is on; null otherwise.  Shard
     * deltas OR into it, RoundStart broadcasts it back.
     */
    std::unique_ptr<coverage::PathCoverage> pathTracker;

    /** Origin shard of every globally admitted corpus entry. */
    std::vector<uint32_t> origins;
    std::vector<Shard> fleet;
    uint32_t globalDryRounds = 0;
};

/** One-call convenience wrapper. */
FleetResult runFleet(const isa::Program &program,
                     std::vector<std::vector<int32_t>> seeds,
                     FleetOptions opts);

} // namespace pe::fleet

#endif // PE_FLEET_COORDINATOR_HH
