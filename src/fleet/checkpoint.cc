/**
 * @file
 * Fleet checkpoint serialization (see checkpoint.hh for the why).
 */

#include "src/fleet/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/explore/serialize.hh"
#include "src/fleet/wire.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::fleet
{

namespace
{

constexpr char magic[8] = {'P', 'E', 'F', 'C', 'K', 'P', '1', '\0'};

/**
 * Version 1: the PR 9 durable-session format.  Version 2: the merged
 * prime-path completion words follow the entry origins (empty vector
 * when the tracker is off).  Older files are refused with both
 * numbers reported.
 */
constexpr uint32_t checkpointVersion = 2;

void
encodeShard(wire::Encoder &enc, const ShardCheckpoint &s)
{
    enc.u32(s.summary.shard);
    enc.u64(s.summary.runs);
    enc.u64(s.summary.assigned);
    enc.u64(s.summary.admittedGlobal);
    enc.u64(s.summary.newEdges);
    enc.u32(s.summary.dryRounds);
    enc.u8(s.summary.alive ? 1 : 0);
    enc.u8(s.summary.exhausted ? 1 : 0);
    enc.u64vec(s.sentTaken);
    enc.u64vec(s.sentNt);
    enc.u64(s.entryMark);
    enc.u8(s.gotForeign ? 1 : 0);
    enc.u64(s.replayRound);
    enc.str(s.replayPayload);
}

ShardCheckpoint
decodeShard(wire::Decoder &dec)
{
    ShardCheckpoint s;
    s.summary.shard = dec.u32("shard id");
    s.summary.runs = dec.u64("shard runs");
    s.summary.assigned = dec.u64("shard assigned");
    s.summary.admittedGlobal = dec.u64("shard admitted");
    s.summary.newEdges = dec.u64("shard new edges");
    s.summary.dryRounds = dec.u32("shard dry rounds");
    s.summary.alive = dec.u8("shard alive") != 0;
    s.summary.exhausted = dec.u8("shard exhausted") != 0;
    s.sentTaken = dec.u64vec("shard sent taken words");
    s.sentNt = dec.u64vec("shard sent nt words");
    s.entryMark = dec.u64("shard entry mark");
    s.gotForeign = dec.u8("shard got foreign") != 0;
    s.replayRound = dec.u64("shard replay round");
    s.replayPayload = dec.str("shard replay payload");
    return s;
}

} // namespace

void
saveFleetCheckpoint(const std::string &path,
                    const FleetCheckpoint &ckpt)
{
    fault::site("fleet.checkpoint_write");

    wire::Encoder enc;
    enc.bytes(magic, sizeof(magic));
    enc.u32(checkpointVersion);
    enc.u64(ckpt.configHash);
    enc.u64(ckpt.masterSeed);
    enc.u32(ckpt.shards);
    enc.u64(ckpt.planDigest);
    enc.u64(ckpt.programFp);
    enc.u64(ckpt.sessionWord);
    enc.u64(ckpt.seedsDigest);

    enc.u64(ckpt.rounds);
    enc.u64(ckpt.runs);
    enc.u64(ckpt.instructions);
    enc.u64(ckpt.ntSpawned);
    enc.u64(ckpt.failedJobs);
    enc.u64(ckpt.stolenRuns);
    enc.u32(ckpt.lostWorkers);
    enc.u32(ckpt.reconnects);
    enc.u32(ckpt.globalDryRounds);

    enc.u64vec(ckpt.frontierTaken);
    enc.u64vec(ckpt.frontierNt);
    enc.u32vec(ckpt.exerciseCounts);
    enc.u64(ckpt.exerciseRuns);

    pe_assert(ckpt.origins.size() == ckpt.entries.size(),
              "fleet checkpoint: origins out of step with entries");
    enc.u32(static_cast<uint32_t>(ckpt.entries.size()));
    for (const explore::CorpusEntry &e : ckpt.entries)
        explore::encodeEntry(enc, e);
    enc.u32vec(ckpt.origins);
    enc.u64vec(ckpt.pathWords);

    enc.u32(static_cast<uint32_t>(ckpt.shardStates.size()));
    for (const ShardCheckpoint &s : ckpt.shardStates)
        encodeShard(enc, s);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            pe_fatal("cannot write fleet checkpoint '", tmp, "'");
        os.write(enc.buffer().data(),
                 static_cast<std::streamsize>(enc.size()));
        os.flush();
        if (!os)
            pe_fatal("write to fleet checkpoint '", tmp, "' failed");
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        pe_fatal("cannot rename fleet checkpoint '", tmp, "' to '",
                 path, "'");
    }
}

FleetCheckpoint
loadFleetCheckpoint(const std::string &path,
                    const isa::Program &program)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        pe_fatal("cannot open fleet checkpoint '", path, "'");
    std::ostringstream raw;
    raw << is.rdbuf();
    const std::string bytes = raw.str();

    FleetCheckpoint ckpt;
    try {
        wire::Decoder dec(bytes);

        char m[8];
        for (size_t i = 0; i < sizeof(m); ++i)
            m[i] = static_cast<char>(dec.u8("checkpoint magic"));
        if (std::string(m, sizeof(m)) !=
            std::string(magic, sizeof(magic))) {
            pe_fatal("'", path, "' is not a fleet checkpoint");
        }
        uint32_t version = dec.u32("checkpoint version");
        if (version != checkpointVersion) {
            pe_fatal("fleet checkpoint '", path,
                     "' version mismatch: expected ",
                     checkpointVersion, ", found ", version);
        }
        ckpt.configHash = dec.u64("config hash");
        ckpt.masterSeed = dec.u64("master seed");
        ckpt.shards = dec.u32("shards");
        ckpt.planDigest = dec.u64("plan digest");
        ckpt.programFp = dec.u64("program fingerprint");
        ckpt.sessionWord = dec.u64("session word");
        ckpt.seedsDigest = dec.u64("seeds digest");

        ckpt.rounds = dec.u64("rounds");
        ckpt.runs = dec.u64("runs");
        ckpt.instructions = dec.u64("instructions");
        ckpt.ntSpawned = dec.u64("nt spawned");
        ckpt.failedJobs = dec.u64("failed jobs");
        ckpt.stolenRuns = dec.u64("stolen runs");
        ckpt.lostWorkers = dec.u32("lost workers");
        ckpt.reconnects = dec.u32("reconnects");
        ckpt.globalDryRounds = dec.u32("global dry rounds");

        ckpt.frontierTaken = dec.u64vec("frontier taken words");
        ckpt.frontierNt = dec.u64vec("frontier nt words");
        ckpt.exerciseCounts = dec.u32vec("exercise counts");
        ckpt.exerciseRuns = dec.u64("exercise runs");

        uint32_t nEntries = dec.count("corpus entries");
        ckpt.entries.reserve(nEntries);
        for (uint32_t i = 0; i < nEntries; ++i)
            ckpt.entries.push_back(
                explore::decodeEntry(dec, program));
        ckpt.origins = dec.u32vec("entry origins");
        ckpt.pathWords = dec.u64vec("path completion words");
        if (ckpt.origins.size() != ckpt.entries.size()) {
            pe_fatal("fleet checkpoint '", path,
                     "' is inconsistent: ", ckpt.entries.size(),
                     " entries but ", ckpt.origins.size(),
                     " origins");
        }

        uint32_t nShards = dec.count("shard states");
        ckpt.shardStates.reserve(nShards);
        for (uint32_t i = 0; i < nShards; ++i)
            ckpt.shardStates.push_back(decodeShard(dec));

        dec.expectEnd("fleet checkpoint");
    } catch (const wire::WireError &err) {
        pe_fatal("fleet checkpoint '", path, "' unreadable (",
                 wireErrorKindName(err.kind()), "): ", err.what());
    }
    return ckpt;
}

} // namespace pe::fleet
