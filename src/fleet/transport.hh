/**
 * @file
 * Pluggable fleet transports: how coordinator and workers get wired.
 *
 * The wire layer speaks versioned 'PEF1' frames over any fd; the
 * protocol layer defines what crosses them.  What remained pinned to
 * one machine was the *channel establishment*: PR 7's coordinator
 * forked its workers over socketpairs inline.  Transport extracts
 * that step behind an interface with two implementations:
 *
 *  - ForkTransport — the original fork-without-exec socketpair
 *    channel.  Workers inherit the program image and options by
 *    memory; nothing but deltas crosses the pipe.  No reconnect:
 *    a broken socketpair means the process is gone.
 *
 *  - TcpTransport — the coordinator binds a listening socket and
 *    remote `explore --connect host:port` processes dial in.  Each
 *    dialing peer opens with a Join frame carrying everything it
 *    derived on its own (config hash, plan digest, program
 *    fingerprint, session word, seeds digest); the transport refuses
 *    mismatched peers before a shard is assigned.  Reconnect is
 *    first-class: a worker whose connection drops dials again with
 *    its shard id and last acked round, and the coordinator replays
 *    the RoundStart it missed.
 *
 * Either way the coordinator ends up holding one fd per shard and
 * runs the identical Hello/HelloReply handshake and round protocol
 * over it — the transport never interprets rounds, only channels.
 */

#ifndef PE_FLEET_TRANSPORT_HH
#define PE_FLEET_TRANSPORT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/fleet/protocol.hh"
#include "src/fleet/worker.hh"
#include "src/support/status.hh"
#include "src/support/subprocess.hh"

namespace pe::fleet
{

/**
 * What every peer must agree on before it may hold a shard — the
 * coordinator's side of Join validation.
 */
struct FleetIdentity
{
    uint32_t shards = 0;
    uint64_t configHash = 0;
    uint64_t masterSeed = 0;
    uint64_t planDigest = 0;
    uint64_t programFp = 0;
    uint64_t sessionWord = 0;
    uint64_t seedsDigest = 0;

    /** The Join frame a matching peer would send. */
    Join asJoin() const;
};

/** A peer (re)attached to a shard slot by acceptPeer(). */
struct PeerJoin
{
    uint32_t shard = 0;
    int fd = -1;
    uint64_t lastAckedRound = 0;
    bool rejoin = false;    //!< slot was held before (reconnect)
};

/**
 * Coordinator-side channel factory.  The coordinator owns the
 * protocol; the transport owns fd lifetimes (creation, per-shard
 * close, teardown) and nothing else.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    virtual const char *name() const = 0;

    /**
     * Bring up the initial channel for every shard and return the
     * per-shard fds.  Fork: spawns the children from @p configs.
     * TCP: accepts dialing peers and validates their Join against
     * @p id (configs are unused — remote workers bring their own).
     * Blocks until the fleet is complete; honors @p stopFlag;
     * throws FatalError if the fleet cannot form.
     */
    virtual std::vector<int>
    establish(const FleetIdentity &id,
              const std::vector<WorkerConfig> &configs,
              const std::atomic<bool> *stopFlag) = 0;

    /** fd to include in poll() for reconnecting peers; -1 = none. */
    virtual int acceptFd() const { return -1; }

    /** Whether a lost channel may ever come back. */
    virtual bool supportsReconnect() const { return false; }

    /**
     * Accept one pending peer on acceptFd(): read + validate its
     * Join, resolve the shard slot, ask @p mayJoin(shard, rejoin)
     * whether the coordinator will take it (a dead or still-connected
     * shard refuses).  Refused or invalid peers get a best-effort
     * Error frame and a close.  Returns the attachment, or nullopt.
     */
    virtual std::optional<PeerJoin>
    acceptPeer(const std::function<bool(uint32_t, bool)> &mayJoin)
    {
        (void)mayJoin;
        return std::nullopt;
    }

    /**
     * Prepare for a resumed session instead of establish(): adopt
     * @p id as the fleet identity and mark every shard slot as
     * previously assigned but detached, so the session's workers can
     * redial through acceptPeer() as reconnects.  Only meaningful on
     * transports with reconnect support — the default refuses,
     * because fork workers die with the coordinator and there is
     * nothing left to re-attach.
     */
    virtual void prepareResume(const FleetIdentity &id)
    {
        (void)id;
        pe_fatal("fleet resume requires a transport with reconnect "
                 "support (tcp), not ", name());
    }

    /** Close shard's channel; the slot may rejoin if supported. */
    virtual void closeChannel(uint32_t shard) = 0;

    /**
     * Tear down everything.  Fork: reap children, escalating to
     * SIGKILL after @p reapTimeoutMs per straggler so a wedged
     * worker cannot hang shutdown.  TCP: close sockets.
     */
    virtual void shutdown(int reapTimeoutMs) = 0;
};

/** PR 7's fork + socketpair channel, behind the interface. */
class ForkTransport final : public Transport
{
  public:
    explicit ForkTransport(const isa::Program &program)
        : program(program)
    {}

    const char *name() const override { return "fork"; }
    std::vector<int>
    establish(const FleetIdentity &id,
              const std::vector<WorkerConfig> &configs,
              const std::atomic<bool> *stopFlag) override;
    void closeChannel(uint32_t shard) override;
    void shutdown(int reapTimeoutMs) override;

  private:
    const isa::Program &program;
    std::vector<proc::ChildProcess> children;
};

/** Coordinator listens; `explore --connect` workers dial in. */
class TcpTransport final : public Transport
{
  public:
    /**
     * Bind + listen immediately (so port() is answerable before any
     * worker exists).  @p listenSpec is `host:port`; an empty host
     * means every interface, port 0 picks an ephemeral port.
     * @p status receives human progress lines; may be null.
     */
    TcpTransport(const std::string &listenSpec,
                 std::ostream *status = nullptr);
    ~TcpTransport() override;

    /** The bound TCP port (resolves port 0). */
    uint16_t port() const { return boundPort; }

    const char *name() const override { return "tcp"; }
    std::vector<int>
    establish(const FleetIdentity &id,
              const std::vector<WorkerConfig> &configs,
              const std::atomic<bool> *stopFlag) override;
    int acceptFd() const override { return listenSock; }
    bool supportsReconnect() const override { return true; }
    void prepareResume(const FleetIdentity &id) override;
    std::optional<PeerJoin>
    acceptPeer(const std::function<bool(uint32_t, bool)> &mayJoin)
        override;
    void closeChannel(uint32_t shard) override;
    void shutdown(int reapTimeoutMs) override;

  private:
    std::optional<PeerJoin>
    acceptOne(const std::function<bool(uint32_t, bool)> &mayJoin);

    FleetIdentity identity;
    std::ostream *status = nullptr;
    int listenSock = -1;
    uint16_t boundPort = 0;
    /** Per-shard live fd (-1 = unattached). */
    std::vector<int> slots;
    /** Slots that have ever been held (rejoin vs first join). */
    std::vector<bool> assigned;
};

/**
 * Worker side: dial `host:port` (blocking connect).  Returns the
 * connected fd; throws FatalError on resolve/connect failure (the
 * caller owns retry policy).
 */
int tcpDial(const std::string &hostPort);

} // namespace pe::fleet

#endif // PE_FLEET_TRANSPORT_HH
