/**
 * @file
 * Fleet worker: one shard's exploration loop, driven over a pipe.
 *
 * A worker is a forked child that owns a full Explorer for its slice
 * of the seed space.  It never decides anything global: the
 * coordinator tells it how many runs to spend each round
 * (RoundStart), hands it the merged frontier delta and foreign
 * corpus entries to import, and the worker answers with its own
 * delta (RoundDelta).  Everything else — work stealing, plateaus,
 * global budget — is the coordinator's problem, which keeps the
 * worker simple enough to be obviously deterministic: its only
 * inputs are the shard seed, its seed slice, and the byte-exact
 * frame sequence.
 */

#ifndef PE_FLEET_WORKER_HH
#define PE_FLEET_WORKER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/explore/explorer.hh"
#include "src/fleet/protocol.hh"
#include "src/isa/program.hh"

namespace pe::fleet
{

/**
 * Worker-local run budget the coordinator's metering must beat: the
 * coordinator hands out runs round by round, so the worker's own
 * budget is set to a value it can never reach.
 */
constexpr uint64_t kUnboundedRuns = ~0ull / 2;

/**
 * Derive one shard's explorer options from the fleet's base options:
 * the shard seed replaces the master seed, budgets/checkpoints/output
 * streams stay with the coordinator, and the label gains a /shardN
 * suffix.  Both the forking coordinator and a remote `--connect`
 * worker MUST build their options through this one function — it is
 * the code-level half of the determinism contract (the Join
 * handshake's sessionWord is the wire-level half).
 */
explore::ExploreOptions
shardWorkerOptions(const explore::ExploreOptions &base,
                   uint64_t shardSeed, uint32_t shard,
                   unsigned workerThreads);

/** Everything a forked worker needs besides the fd. */
struct WorkerConfig
{
    /** Hello the coordinator must send for this worker to proceed. */
    Hello expect;

    /** Shard-local explorer options (seed already set to shardSeed). */
    explore::ExploreOptions opts;

    /** This shard's slice of the fleet's seed inputs. */
    std::vector<std::vector<int32_t>> seeds;
};

/**
 * The worker process body: negotiate, then serve rounds until Stop
 * or EOF.  Returns the child's exit code (0 = clean shutdown).
 * Validation failures send an Error frame before exiting nonzero so
 * the coordinator can log *why* the shard refused to start.
 */
int workerMain(int fd, const isa::Program &program,
               const WorkerConfig &config);

/** Everything a dialing (TCP) worker needs. */
struct RemoteWorkerOptions
{
    /** Coordinator address, `host:port`. */
    std::string connect;

    /** Fleet width — must match the coordinator's --shards. */
    uint32_t shards = 0;

    /**
     * Fleet-level base options, exactly as the coordinator sees them
     * (seed = master seed).  The worker derives its own shard options
     * through shardWorkerOptions once the coordinator assigns it a
     * shard.
     */
    explore::ExploreOptions base;

    /** The FULL fleet seed list (the plan deals indices into it). */
    std::vector<std::vector<int32_t>> seeds;

    /** Campaign worker threads; 0 = PE_JOBS default. */
    unsigned workerThreads = 0;

    /** Consecutive dial failures before giving up (coordinator not
     *  up yet, or a dropped connection being re-established). */
    int dialAttempts = 40;

    /** Base delay between dial attempts, ms; consecutive failures
     *  back off exponentially (with seeded jitter) from here. */
    int redialDelayMs = 250;

    /** Ceiling the exponential redial backoff saturates at, ms. */
    int redialMaxMs = 5000;

    /** Human-readable status stream; may be null. */
    std::ostream *status = nullptr;
};

/**
 * Deterministic exponential redial backoff: attempt 0 waits ~baseMs,
 * each further consecutive failure doubles the wait until it
 * saturates at maxMs.  A seeded FNV jitter subtracts up to half the
 * raw wait — per (seedWord, attempt), so a fleet of workers sharing
 * one dead coordinator spreads its redials out instead of thundering
 * in lockstep, while any rerun of the same session reproduces the
 * same schedule byte for byte.  Pure function; always >= 1 ms.
 */
int dialBackoffMs(uint64_t seedWord, uint64_t attempt, int baseMs,
                  int maxMs);

/**
 * The remote worker body: derive the shard plan locally, dial the
 * coordinator, Join (wildcard shard), run the Hello handshake, then
 * serve rounds.  A dropped connection is survivable as long as this
 * process survives: the worker redials with its pinned shard id and
 * last acked round, and the coordinator replays the RoundStart it
 * missed; an already-executed round is answered from the stored
 * delta without re-executing, so reconnects never perturb the
 * deterministic merge.  Returns the process exit code.
 */
int remoteWorkerMain(const isa::Program &program,
                     const RemoteWorkerOptions &options);

} // namespace pe::fleet

#endif // PE_FLEET_WORKER_HH
