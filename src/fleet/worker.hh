/**
 * @file
 * Fleet worker: one shard's exploration loop, driven over a pipe.
 *
 * A worker is a forked child that owns a full Explorer for its slice
 * of the seed space.  It never decides anything global: the
 * coordinator tells it how many runs to spend each round
 * (RoundStart), hands it the merged frontier delta and foreign
 * corpus entries to import, and the worker answers with its own
 * delta (RoundDelta).  Everything else — work stealing, plateaus,
 * global budget — is the coordinator's problem, which keeps the
 * worker simple enough to be obviously deterministic: its only
 * inputs are the shard seed, its seed slice, and the byte-exact
 * frame sequence.
 */

#ifndef PE_FLEET_WORKER_HH
#define PE_FLEET_WORKER_HH

#include <cstdint>
#include <vector>

#include "src/explore/explorer.hh"
#include "src/fleet/protocol.hh"
#include "src/isa/program.hh"

namespace pe::fleet
{

/** Everything a forked worker needs besides the fd. */
struct WorkerConfig
{
    /** Hello the coordinator must send for this worker to proceed. */
    Hello expect;

    /** Shard-local explorer options (seed already set to shardSeed). */
    explore::ExploreOptions opts;

    /** This shard's slice of the fleet's seed inputs. */
    std::vector<std::vector<int32_t>> seeds;
};

/**
 * The worker process body: negotiate, then serve rounds until Stop
 * or EOF.  Returns the child's exit code (0 = clean shutdown).
 * Validation failures send an Error frame before exiting nonzero so
 * the coordinator can log *why* the shard refused to start.
 */
int workerMain(int fd, const isa::Program &program,
               const WorkerConfig &config);

} // namespace pe::fleet

#endif // PE_FLEET_WORKER_HH
