/**
 * @file
 * Fleet payload codec implementation.
 */

#include "src/fleet/protocol.hh"

#include <cstring>

#include "src/explore/explorer.hh"
#include "src/explore/serialize.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::fleet
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvMix64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

void
encodeSparse(wire::Encoder &enc, const SparseWords &w)
{
    pe_assert(w.index.size() == w.taken.size() &&
                  w.index.size() == w.nt.size(),
              "ragged sparse frontier");
    enc.u32vec(w.index);
    for (size_t i = 0; i < w.index.size(); ++i) {
        enc.u64(w.taken[i]);
        enc.u64(w.nt[i]);
    }
}

SparseWords
decodeSparse(wire::Decoder &dec)
{
    SparseWords w;
    w.index = dec.u32vec("sparse frontier indices");
    w.taken.reserve(w.index.size());
    w.nt.reserve(w.index.size());
    for (size_t i = 0; i < w.index.size(); ++i) {
        w.taken.push_back(dec.u64("sparse taken word"));
        w.nt.push_back(dec.u64("sparse nt word"));
    }
    return w;
}

void
encodeEntries(wire::Encoder &enc,
              const std::vector<explore::CorpusEntry> &entries)
{
    enc.u32(static_cast<uint32_t>(entries.size()));
    for (const auto &e : entries)
        explore::encodeEntry(enc, e);
}

std::vector<explore::CorpusEntry>
decodeEntries(wire::Decoder &dec, const isa::Program &program)
{
    uint32_t n = dec.count("frame entries");
    std::vector<explore::CorpusEntry> entries;
    entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        entries.push_back(explore::decodeEntry(dec, program));
    return entries;
}

} // namespace

void
encodeHello(wire::Encoder &enc, const Hello &h)
{
    enc.u32(h.wireVersion);
    enc.u32(h.shard);
    enc.u32(h.shards);
    enc.u64(h.configHash);
    enc.u64(h.masterSeed);
    enc.u64(h.shardSeed);
    enc.u64(h.planDigest);
    enc.u64(h.programFp);
    enc.u32(h.heartbeatMs);
}

Hello
decodeHello(wire::Decoder &dec)
{
    Hello h;
    h.wireVersion = dec.u32("hello wire version");
    h.shard = dec.u32("hello shard");
    h.shards = dec.u32("hello shards");
    h.configHash = dec.u64("hello config hash");
    h.masterSeed = dec.u64("hello master seed");
    h.shardSeed = dec.u64("hello shard seed");
    h.planDigest = dec.u64("hello plan digest");
    h.programFp = dec.u64("hello program fingerprint");
    h.heartbeatMs = dec.u32("hello heartbeat interval");
    return h;
}

void
encodeHelloReply(wire::Encoder &enc, const HelloReply &r)
{
    enc.u32(r.wireVersion);
    enc.u32(r.shard);
    enc.u64(r.totalEdges);
    enc.u64(r.seedCount);
}

HelloReply
decodeHelloReply(wire::Decoder &dec)
{
    HelloReply r;
    r.wireVersion = dec.u32("hello-reply wire version");
    r.shard = dec.u32("hello-reply shard");
    r.totalEdges = dec.u64("hello-reply total edges");
    r.seedCount = dec.u64("hello-reply seed count");
    return r;
}

void
encodeRoundStart(wire::Encoder &enc, const RoundStart &r)
{
    enc.u64(r.round);
    enc.u64(r.budgetRuns);
    encodeSparse(enc, r.frontier);
    enc.u64vec(r.pathWords);
    encodeEntries(enc, r.entries);
}

RoundStart
decodeRoundStart(wire::Decoder &dec, const isa::Program &program)
{
    RoundStart r;
    r.round = dec.u64("round-start round");
    r.budgetRuns = dec.u64("round-start budget");
    r.frontier = decodeSparse(dec);
    r.pathWords = dec.u64vec("round-start path words");
    r.entries = decodeEntries(dec, program);
    return r;
}

void
encodeRoundDelta(wire::Encoder &enc, const RoundDelta &r)
{
    enc.u64(r.round);
    enc.u64(r.runs);
    enc.u64(r.failedJobs);
    enc.u64(r.instructions);
    enc.u64(r.ntSpawned);
    enc.u64(r.admittedLocal);
    enc.u8(r.exhausted ? 1 : 0);
    encodeSparse(enc, r.frontier);
    enc.u64vec(r.pathWords);
    encodeEntries(enc, r.entries);
}

RoundDelta
decodeRoundDelta(wire::Decoder &dec, const isa::Program &program)
{
    RoundDelta r;
    r.round = dec.u64("round-delta round");
    r.runs = dec.u64("round-delta runs");
    r.failedJobs = dec.u64("round-delta failed jobs");
    r.instructions = dec.u64("round-delta instructions");
    r.ntSpawned = dec.u64("round-delta nt spawned");
    r.admittedLocal = dec.u64("round-delta admitted");
    r.exhausted = dec.u8("round-delta exhausted") != 0;
    r.frontier = decodeSparse(dec);
    r.pathWords = dec.u64vec("round-delta path words");
    r.entries = decodeEntries(dec, program);
    return r;
}

void
encodeGoodbye(wire::Encoder &enc, const Goodbye &g)
{
    enc.u64(g.runs);
    enc.u64(g.batches);
    enc.u64(g.corpusSize);
    enc.u64(g.edgesCombined);
}

Goodbye
decodeGoodbye(wire::Decoder &dec)
{
    Goodbye g;
    g.runs = dec.u64("goodbye runs");
    g.batches = dec.u64("goodbye batches");
    g.corpusSize = dec.u64("goodbye corpus");
    g.edgesCombined = dec.u64("goodbye edges");
    return g;
}

void
encodeJoin(wire::Encoder &enc, const Join &j)
{
    enc.u32(j.wireVersion);
    enc.u32(j.desiredShard);
    enc.u32(j.shards);
    enc.u64(j.configHash);
    enc.u64(j.masterSeed);
    enc.u64(j.planDigest);
    enc.u64(j.programFp);
    enc.u64(j.sessionWord);
    enc.u64(j.seedsDigest);
    enc.u64(j.lastAckedRound);
}

Join
decodeJoin(wire::Decoder &dec)
{
    Join j;
    j.wireVersion = dec.u32("join wire version");
    j.desiredShard = dec.u32("join desired shard");
    j.shards = dec.u32("join shards");
    j.configHash = dec.u64("join config hash");
    j.masterSeed = dec.u64("join master seed");
    j.planDigest = dec.u64("join plan digest");
    j.programFp = dec.u64("join program fingerprint");
    j.sessionWord = dec.u64("join session word");
    j.seedsDigest = dec.u64("join seeds digest");
    j.lastAckedRound = dec.u64("join last acked round");
    return j;
}

uint64_t
sessionWord(const explore::ExploreOptions &opts)
{
    uint64_t h = fnvMix64(kFnvOffset, explore::policyWord(opts));
    h = fnvMix64(h, opts.batchSize);
    // The percentile is a double; its bit pattern is what two
    // processes must agree on, not some rounded rendering.
    uint64_t pct;
    static_assert(sizeof(pct) == sizeof(opts.rarePercentile));
    std::memcpy(&pct, &opts.rarePercentile, sizeof(pct));
    return fnvMix64(h, pct);
}

uint64_t
seedsDigest(const std::vector<std::vector<int32_t>> &seeds)
{
    uint64_t h = fnvMix64(kFnvOffset, seeds.size());
    for (const auto &seed : seeds) {
        h = fnvMix64(h, seed.size());
        for (int32_t v : seed)
            h = fnvMix64(h, static_cast<uint32_t>(v));
    }
    return h;
}

void
validateJoin(const Join &got, const Join &want)
{
    if (got.wireVersion != want.wireVersion) {
        throw wire::WireError(
            wire::WireErrorKind::BadVersion,
            detail::concat("fleet join: wire version mismatch: "
                           "expected ", want.wireVersion, ", found ",
                           got.wireVersion),
            want.wireVersion, got.wireVersion);
    }
    auto check = [&](uint64_t wantV, uint64_t gotV,
                     const char *field) {
        if (wantV == gotV)
            return;
        throw wire::WireError(
            wire::WireErrorKind::Mismatch,
            detail::concat("fleet join: ", field,
                           " mismatch: expected 0x", fmtHex(wantV),
                           ", found 0x", fmtHex(gotV)),
            wantV, gotV);
    };
    check(want.shards, got.shards, "fleet width");
    check(want.configHash, got.configHash, "config hash");
    check(want.masterSeed, got.masterSeed, "master seed");
    check(want.planDigest, got.planDigest, "plan digest");
    check(want.programFp, got.programFp, "program fingerprint");
    check(want.sessionWord, got.sessionWord, "session word");
    check(want.seedsDigest, got.seedsDigest, "seeds digest");
}

void
validateHello(const Hello &got, const Hello &want)
{
    auto shardCtx = [&](const char *field) {
        return detail::concat("fleet hello for shard ", want.shard,
                              ": ", field);
    };
    if (got.wireVersion != want.wireVersion) {
        throw wire::WireError(
            wire::WireErrorKind::BadVersion,
            detail::concat(shardCtx("wire version"), " mismatch: "
                           "expected ", want.wireVersion, ", found ",
                           got.wireVersion),
            want.wireVersion, got.wireVersion);
    }
    auto check = [&](uint64_t wantV, uint64_t gotV,
                     const char *field) {
        if (wantV == gotV)
            return;
        throw wire::WireError(
            wire::WireErrorKind::Mismatch,
            detail::concat(shardCtx(field), " mismatch: expected 0x",
                           fmtHex(wantV), ", found 0x", fmtHex(gotV)),
            wantV, gotV);
    };
    check(want.shard, got.shard, "shard id");
    check(want.shards, got.shards, "fleet width");
    check(want.configHash, got.configHash, "config hash");
    check(want.masterSeed, got.masterSeed, "master seed");
    check(want.shardSeed, got.shardSeed, "shard seed");
    check(want.planDigest, got.planDigest, "plan digest");
    check(want.programFp, got.programFp, "program fingerprint");
}

SparseWords
diffFrontier(const coverage::BranchCoverage &cov,
             std::vector<uint64_t> &prevTaken,
             std::vector<uint64_t> &prevNt)
{
    const auto &taken = cov.takenWords();
    const auto &nt = cov.ntWords();
    pe_assert(prevTaken.size() == taken.size() &&
                  prevNt.size() == nt.size(),
              "frontier snapshot sized for a different program");
    SparseWords delta;
    for (size_t i = 0; i < taken.size(); ++i) {
        if (taken[i] != prevTaken[i] || nt[i] != prevNt[i]) {
            delta.index.push_back(static_cast<uint32_t>(i));
            delta.taken.push_back(taken[i]);
            delta.nt.push_back(nt[i]);
            prevTaken[i] = taken[i];
            prevNt[i] = nt[i];
        }
    }
    return delta;
}

void
applyFrontier(const SparseWords &delta, std::vector<uint64_t> &taken,
              std::vector<uint64_t> &nt)
{
    for (size_t i = 0; i < delta.index.size(); ++i) {
        size_t w = delta.index[i];
        if (w >= taken.size() || w >= nt.size()) {
            throw wire::WireError(
                wire::WireErrorKind::Mismatch,
                detail::concat("sparse frontier word index ", w,
                               " beyond this program's ",
                               taken.size(), "-word bitmap"),
                taken.size(), w);
        }
        taken[w] |= delta.taken[i];
        nt[w] |= delta.nt[i];
    }
}

} // namespace pe::fleet
