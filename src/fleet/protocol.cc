/**
 * @file
 * Fleet payload codec implementation.
 */

#include "src/fleet/protocol.hh"

#include "src/explore/serialize.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::fleet
{

namespace
{

void
encodeSparse(wire::Encoder &enc, const SparseWords &w)
{
    pe_assert(w.index.size() == w.taken.size() &&
                  w.index.size() == w.nt.size(),
              "ragged sparse frontier");
    enc.u32vec(w.index);
    for (size_t i = 0; i < w.index.size(); ++i) {
        enc.u64(w.taken[i]);
        enc.u64(w.nt[i]);
    }
}

SparseWords
decodeSparse(wire::Decoder &dec)
{
    SparseWords w;
    w.index = dec.u32vec("sparse frontier indices");
    w.taken.reserve(w.index.size());
    w.nt.reserve(w.index.size());
    for (size_t i = 0; i < w.index.size(); ++i) {
        w.taken.push_back(dec.u64("sparse taken word"));
        w.nt.push_back(dec.u64("sparse nt word"));
    }
    return w;
}

void
encodeEntries(wire::Encoder &enc,
              const std::vector<explore::CorpusEntry> &entries)
{
    enc.u32(static_cast<uint32_t>(entries.size()));
    for (const auto &e : entries)
        explore::encodeEntry(enc, e);
}

std::vector<explore::CorpusEntry>
decodeEntries(wire::Decoder &dec, const isa::Program &program)
{
    uint32_t n = dec.count("frame entries");
    std::vector<explore::CorpusEntry> entries;
    entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        entries.push_back(explore::decodeEntry(dec, program));
    return entries;
}

} // namespace

void
encodeHello(wire::Encoder &enc, const Hello &h)
{
    enc.u32(h.wireVersion);
    enc.u32(h.shard);
    enc.u32(h.shards);
    enc.u64(h.configHash);
    enc.u64(h.masterSeed);
    enc.u64(h.shardSeed);
    enc.u64(h.planDigest);
    enc.u64(h.programFp);
}

Hello
decodeHello(wire::Decoder &dec)
{
    Hello h;
    h.wireVersion = dec.u32("hello wire version");
    h.shard = dec.u32("hello shard");
    h.shards = dec.u32("hello shards");
    h.configHash = dec.u64("hello config hash");
    h.masterSeed = dec.u64("hello master seed");
    h.shardSeed = dec.u64("hello shard seed");
    h.planDigest = dec.u64("hello plan digest");
    h.programFp = dec.u64("hello program fingerprint");
    return h;
}

void
encodeHelloReply(wire::Encoder &enc, const HelloReply &r)
{
    enc.u32(r.wireVersion);
    enc.u32(r.shard);
    enc.u64(r.totalEdges);
    enc.u64(r.seedCount);
}

HelloReply
decodeHelloReply(wire::Decoder &dec)
{
    HelloReply r;
    r.wireVersion = dec.u32("hello-reply wire version");
    r.shard = dec.u32("hello-reply shard");
    r.totalEdges = dec.u64("hello-reply total edges");
    r.seedCount = dec.u64("hello-reply seed count");
    return r;
}

void
encodeRoundStart(wire::Encoder &enc, const RoundStart &r)
{
    enc.u64(r.round);
    enc.u64(r.budgetRuns);
    encodeSparse(enc, r.frontier);
    encodeEntries(enc, r.entries);
}

RoundStart
decodeRoundStart(wire::Decoder &dec, const isa::Program &program)
{
    RoundStart r;
    r.round = dec.u64("round-start round");
    r.budgetRuns = dec.u64("round-start budget");
    r.frontier = decodeSparse(dec);
    r.entries = decodeEntries(dec, program);
    return r;
}

void
encodeRoundDelta(wire::Encoder &enc, const RoundDelta &r)
{
    enc.u64(r.round);
    enc.u64(r.runs);
    enc.u64(r.failedJobs);
    enc.u64(r.instructions);
    enc.u64(r.ntSpawned);
    enc.u64(r.admittedLocal);
    enc.u8(r.exhausted ? 1 : 0);
    encodeSparse(enc, r.frontier);
    encodeEntries(enc, r.entries);
}

RoundDelta
decodeRoundDelta(wire::Decoder &dec, const isa::Program &program)
{
    RoundDelta r;
    r.round = dec.u64("round-delta round");
    r.runs = dec.u64("round-delta runs");
    r.failedJobs = dec.u64("round-delta failed jobs");
    r.instructions = dec.u64("round-delta instructions");
    r.ntSpawned = dec.u64("round-delta nt spawned");
    r.admittedLocal = dec.u64("round-delta admitted");
    r.exhausted = dec.u8("round-delta exhausted") != 0;
    r.frontier = decodeSparse(dec);
    r.entries = decodeEntries(dec, program);
    return r;
}

void
encodeGoodbye(wire::Encoder &enc, const Goodbye &g)
{
    enc.u64(g.runs);
    enc.u64(g.batches);
    enc.u64(g.corpusSize);
    enc.u64(g.edgesCombined);
}

Goodbye
decodeGoodbye(wire::Decoder &dec)
{
    Goodbye g;
    g.runs = dec.u64("goodbye runs");
    g.batches = dec.u64("goodbye batches");
    g.corpusSize = dec.u64("goodbye corpus");
    g.edgesCombined = dec.u64("goodbye edges");
    return g;
}

void
validateHello(const Hello &got, const Hello &want)
{
    auto shardCtx = [&](const char *field) {
        return detail::concat("fleet hello for shard ", want.shard,
                              ": ", field);
    };
    if (got.wireVersion != want.wireVersion) {
        throw wire::WireError(
            wire::WireErrorKind::BadVersion,
            detail::concat(shardCtx("wire version"), " mismatch: "
                           "expected ", want.wireVersion, ", found ",
                           got.wireVersion),
            want.wireVersion, got.wireVersion);
    }
    auto check = [&](uint64_t wantV, uint64_t gotV,
                     const char *field) {
        if (wantV == gotV)
            return;
        throw wire::WireError(
            wire::WireErrorKind::Mismatch,
            detail::concat(shardCtx(field), " mismatch: expected 0x",
                           fmtHex(wantV), ", found 0x", fmtHex(gotV)),
            wantV, gotV);
    };
    check(want.shard, got.shard, "shard id");
    check(want.shards, got.shards, "fleet width");
    check(want.configHash, got.configHash, "config hash");
    check(want.masterSeed, got.masterSeed, "master seed");
    check(want.shardSeed, got.shardSeed, "shard seed");
    check(want.planDigest, got.planDigest, "plan digest");
    check(want.programFp, got.programFp, "program fingerprint");
}

SparseWords
diffFrontier(const coverage::BranchCoverage &cov,
             std::vector<uint64_t> &prevTaken,
             std::vector<uint64_t> &prevNt)
{
    const auto &taken = cov.takenWords();
    const auto &nt = cov.ntWords();
    pe_assert(prevTaken.size() == taken.size() &&
                  prevNt.size() == nt.size(),
              "frontier snapshot sized for a different program");
    SparseWords delta;
    for (size_t i = 0; i < taken.size(); ++i) {
        if (taken[i] != prevTaken[i] || nt[i] != prevNt[i]) {
            delta.index.push_back(static_cast<uint32_t>(i));
            delta.taken.push_back(taken[i]);
            delta.nt.push_back(nt[i]);
            prevTaken[i] = taken[i];
            prevNt[i] = nt[i];
        }
    }
    return delta;
}

void
applyFrontier(const SparseWords &delta, std::vector<uint64_t> &taken,
              std::vector<uint64_t> &nt)
{
    for (size_t i = 0; i < delta.index.size(); ++i) {
        size_t w = delta.index[i];
        if (w >= taken.size() || w >= nt.size()) {
            throw wire::WireError(
                wire::WireErrorKind::Mismatch,
                detail::concat("sparse frontier word index ", w,
                               " beyond this program's ",
                               taken.size(), "-word bitmap"),
                taken.size(), w);
        }
        taken[w] |= delta.taken[i];
        nt[w] |= delta.nt[i];
    }
}

} // namespace pe::fleet
