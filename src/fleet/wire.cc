/**
 * @file
 * Wire codec + frame transport implementation.
 */

#include "src/fleet/wire.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::wire
{

const char *
wireErrorKindName(WireErrorKind kind)
{
    switch (kind) {
      case WireErrorKind::Truncated: return "truncated";
      case WireErrorKind::BadMagic: return "bad-magic";
      case WireErrorKind::BadVersion: return "bad-version";
      case WireErrorKind::Implausible: return "implausible";
      case WireErrorKind::BadFrame: return "bad-frame";
      case WireErrorKind::Io: return "io";
      case WireErrorKind::Mismatch: return "mismatch";
    }
    return "?";
}

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello: return "hello";
      case FrameType::HelloReply: return "hello-reply";
      case FrameType::RoundStart: return "round-start";
      case FrameType::RoundDelta: return "round-delta";
      case FrameType::Stop: return "stop";
      case FrameType::Goodbye: return "goodbye";
      case FrameType::Error: return "error";
    }
    return "?";
}

void
Decoder::need(size_t n, const char *what) const
{
    if (data.size() - pos < n) {
        throw WireError(WireErrorKind::Truncated,
                        detail::concat("truncated while reading ",
                                       what, ": need ", n,
                                       " bytes, have ",
                                       data.size() - pos),
                        n, data.size() - pos);
    }
}

uint8_t
Decoder::u8(const char *what)
{
    need(1, what);
    return static_cast<uint8_t>(data[pos++]);
}

uint32_t
Decoder::u32(const char *what)
{
    need(4, what);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    }
    pos += 4;
    return v;
}

uint64_t
Decoder::u64(const char *what)
{
    uint64_t lo = u32(what);
    uint64_t hi = u32(what);
    return lo | (hi << 32);
}

int32_t
Decoder::i32(const char *what)
{
    return static_cast<int32_t>(u32(what));
}

uint32_t
Decoder::count(const char *what)
{
    uint32_t n = u32(what);
    if (n > kSanityCap) {
        throw WireError(WireErrorKind::Implausible,
                        detail::concat(what, " count implausible: ",
                                       n, " > cap ", kSanityCap),
                        kSanityCap, n);
    }
    return n;
}

std::string
Decoder::str(const char *what)
{
    uint32_t n = count(what);
    need(n, what);
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
}

std::vector<uint64_t>
Decoder::u64vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 8, what);
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(u64(what));
    return v;
}

std::vector<uint32_t>
Decoder::u32vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 4, what);
    std::vector<uint32_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(u32(what));
    return v;
}

std::vector<int32_t>
Decoder::i32vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 4, what);
    std::vector<int32_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(i32(what));
    return v;
}

void
Decoder::expectEnd(const char *what) const
{
    if (pos != data.size()) {
        throw WireError(WireErrorKind::BadFrame,
                        detail::concat(what, ": ",
                                       data.size() - pos,
                                       " trailing bytes after payload"),
                        0, data.size() - pos);
    }
}

namespace
{

constexpr uint32_t kFrameMagic = 0x31464550; // "PEF1" little-endian

/**
 * write() that survives EINTR and short writes, and never raises
 * SIGPIPE on sockets (send(MSG_NOSIGNAL), falling back to write()
 * for plain pipes where a dead reader is the caller's EPIPE).
 */
void
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(WireErrorKind::Io,
                            detail::concat("frame write failed: ",
                                           std::strerror(errno)));
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
}

/**
 * Read exactly @p n bytes.  Returns false on EOF before the first
 * byte (clean close); throws on EOF mid-read or errno.
 */
bool
readAll(int fd, char *p, size_t n, const char *what)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(WireErrorKind::Io,
                            detail::concat("frame read failed: ",
                                           std::strerror(errno)));
        }
        if (r == 0) {
            if (got == 0)
                return false;
            throw WireError(WireErrorKind::Truncated,
                            detail::concat("peer closed mid-", what,
                                           ": got ", got, " of ", n,
                                           " bytes"),
                            n, got);
        }
        got += static_cast<size_t>(r);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, FrameType type, std::string_view payload)
{
    pe_assert(payload.size() <= kMaxFramePayload,
              "oversized frame payload");
    Encoder header;
    header.u32(kFrameMagic);
    header.u32(static_cast<uint32_t>(payload.size()));
    header.u32(static_cast<uint32_t>(type));
    // One buffer, one writev-equivalent: small frames (the common
    // case) leave in a single syscall.
    std::string buf = header.take();
    buf.append(payload.data(), payload.size());
    writeAll(fd, buf.data(), buf.size());
}

std::optional<Frame>
readFrame(int fd)
{
    char head[12];
    if (!readAll(fd, head, sizeof(head), "frame header"))
        return std::nullopt;

    Decoder dec(std::string_view(head, sizeof(head)));
    uint32_t magic = dec.u32("frame magic");
    if (magic != kFrameMagic) {
        throw WireError(WireErrorKind::BadMagic,
                        detail::concat("bad frame magic: expected 0x",
                                       fmtHex(kFrameMagic),
                                       ", found 0x", fmtHex(magic)),
                        kFrameMagic, magic);
    }
    uint32_t len = dec.u32("frame length");
    uint32_t type = dec.u32("frame type");
    if (len > kMaxFramePayload) {
        throw WireError(WireErrorKind::BadFrame,
                        detail::concat("frame payload length ", len,
                                       " exceeds cap ",
                                       kMaxFramePayload),
                        kMaxFramePayload, len);
    }

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.resize(len);
    if (len > 0 &&
        !readAll(fd, frame.payload.data(), len, "frame payload")) {
        throw WireError(WireErrorKind::Truncated,
                        "peer closed between frame header and payload",
                        len, 0);
    }
    return frame;
}

} // namespace pe::wire
