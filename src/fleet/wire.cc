/**
 * @file
 * Wire codec + frame transport implementation.
 */

#include "src/fleet/wire.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::wire
{

const char *
wireErrorKindName(WireErrorKind kind)
{
    switch (kind) {
      case WireErrorKind::Truncated: return "truncated";
      case WireErrorKind::BadMagic: return "bad-magic";
      case WireErrorKind::BadVersion: return "bad-version";
      case WireErrorKind::Implausible: return "implausible";
      case WireErrorKind::BadFrame: return "bad-frame";
      case WireErrorKind::Io: return "io";
      case WireErrorKind::Mismatch: return "mismatch";
    }
    return "?";
}

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello: return "hello";
      case FrameType::HelloReply: return "hello-reply";
      case FrameType::RoundStart: return "round-start";
      case FrameType::RoundDelta: return "round-delta";
      case FrameType::Stop: return "stop";
      case FrameType::Goodbye: return "goodbye";
      case FrameType::Error: return "error";
      case FrameType::Join: return "join";
      case FrameType::Heartbeat: return "heartbeat";
      case FrameType::HeartbeatAck: return "heartbeat-ack";
    }
    return "?";
}

void
Decoder::need(size_t n, const char *what) const
{
    if (data.size() - pos < n) {
        throw WireError(WireErrorKind::Truncated,
                        detail::concat("truncated while reading ",
                                       what, ": need ", n,
                                       " bytes, have ",
                                       data.size() - pos),
                        n, data.size() - pos);
    }
}

uint8_t
Decoder::u8(const char *what)
{
    need(1, what);
    return static_cast<uint8_t>(data[pos++]);
}

uint32_t
Decoder::u32(const char *what)
{
    need(4, what);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    }
    pos += 4;
    return v;
}

uint64_t
Decoder::u64(const char *what)
{
    uint64_t lo = u32(what);
    uint64_t hi = u32(what);
    return lo | (hi << 32);
}

int32_t
Decoder::i32(const char *what)
{
    return static_cast<int32_t>(u32(what));
}

uint32_t
Decoder::count(const char *what)
{
    uint32_t n = u32(what);
    if (n > kSanityCap) {
        throw WireError(WireErrorKind::Implausible,
                        detail::concat(what, " count implausible: ",
                                       n, " > cap ", kSanityCap),
                        kSanityCap, n);
    }
    return n;
}

std::string
Decoder::str(const char *what)
{
    uint32_t n = count(what);
    need(n, what);
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
}

std::vector<uint64_t>
Decoder::u64vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 8, what);
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(u64(what));
    return v;
}

std::vector<uint32_t>
Decoder::u32vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 4, what);
    std::vector<uint32_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(u32(what));
    return v;
}

std::vector<int32_t>
Decoder::i32vec(const char *what)
{
    uint32_t n = count(what);
    need(size_t{n} * 4, what);
    std::vector<int32_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(i32(what));
    return v;
}

void
Decoder::expectEnd(const char *what) const
{
    if (pos != data.size()) {
        throw WireError(WireErrorKind::BadFrame,
                        detail::concat(what, ": ",
                                       data.size() - pos,
                                       " trailing bytes after payload"),
                        0, data.size() - pos);
    }
}

namespace
{

constexpr uint32_t kFrameMagic = 0x31464550; // "PEF1" little-endian
constexpr size_t kFrameHeader = 12;

/**
 * Validate a complete 12-byte header; returns payload length + type.
 * One implementation for both the blocking readFrame and the
 * incremental FrameReader, so the two paths can never disagree on
 * what a malformed header is.
 */
std::pair<uint32_t, FrameType>
parseFrameHeader(const char *head)
{
    Decoder dec(std::string_view(head, kFrameHeader));
    uint32_t magic = dec.u32("frame magic");
    if (magic != kFrameMagic) {
        throw WireError(WireErrorKind::BadMagic,
                        detail::concat("bad frame magic: expected 0x",
                                       fmtHex(kFrameMagic),
                                       ", found 0x", fmtHex(magic)),
                        kFrameMagic, magic);
    }
    uint32_t len = dec.u32("frame length");
    uint32_t type = dec.u32("frame type");
    if (len > kMaxFramePayload) {
        throw WireError(WireErrorKind::BadFrame,
                        detail::concat("frame payload length ", len,
                                       " exceeds cap ",
                                       kMaxFramePayload),
                        kMaxFramePayload, len);
    }
    return {len, static_cast<FrameType>(type)};
}

/**
 * Write to a non-socket fd without risking SIGPIPE: the first time
 * the send(MSG_NOSIGNAL) path reports ENOTSOCK (a plain pipe — test
 * harnesses, fd redirection), ignore SIGPIPE process-wide so a dead
 * reader surfaces as EPIPE -> WireError{Io} instead of killing the
 * coordinator.  Sockets never reach this path, so fleets over
 * socketpairs/TCP leave the process disposition untouched.
 */
ssize_t
writeNonSocket(int fd, const char *p, size_t n)
{
    static std::once_flag once;
    std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
    return ::write(fd, p, n);
}

/**
 * write() that survives EINTR, EAGAIN (non-blocking reactor fds
 * block in poll until writable) and short writes, and never raises
 * SIGPIPE: sockets use send(MSG_NOSIGNAL), plain pipes ignore the
 * signal — either way a dead peer is WireError{Io}, handled like any
 * other worker loss.
 */
void
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = writeNonSocket(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                struct pollfd pfd = {fd, POLLOUT, 0};
                if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
                    throw WireError(
                        WireErrorKind::Io,
                        detail::concat("frame write poll failed: ",
                                       std::strerror(errno)));
                }
                continue;
            }
            throw WireError(WireErrorKind::Io,
                            detail::concat("frame write failed: ",
                                           std::strerror(errno)));
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
}

/**
 * Read exactly @p n bytes.  Returns false on EOF before the first
 * byte (clean close); throws on EOF mid-read or errno.
 */
bool
readAll(int fd, char *p, size_t n, const char *what)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(WireErrorKind::Io,
                            detail::concat("frame read failed: ",
                                           std::strerror(errno)));
        }
        if (r == 0) {
            if (got == 0)
                return false;
            throw WireError(WireErrorKind::Truncated,
                            detail::concat("peer closed mid-", what,
                                           ": got ", got, " of ", n,
                                           " bytes"),
                            n, got);
        }
        got += static_cast<size_t>(r);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, FrameType type, std::string_view payload)
{
    pe_assert(payload.size() <= kMaxFramePayload,
              "oversized frame payload");
    Encoder header;
    header.u32(kFrameMagic);
    header.u32(static_cast<uint32_t>(payload.size()));
    header.u32(static_cast<uint32_t>(type));
    // One buffer, one writev-equivalent: small frames (the common
    // case) leave in a single syscall.
    std::string buf = header.take();
    buf.append(payload.data(), payload.size());
    writeAll(fd, buf.data(), buf.size());
}

std::optional<Frame>
readFrame(int fd)
{
    char head[kFrameHeader];
    if (!readAll(fd, head, sizeof(head), "frame header"))
        return std::nullopt;

    auto [len, type] = parseFrameHeader(head);
    Frame frame;
    frame.type = type;
    frame.payload.resize(len);
    if (len > 0 &&
        !readAll(fd, frame.payload.data(), len, "frame payload")) {
        throw WireError(WireErrorKind::Truncated,
                        "peer closed between frame header and payload",
                        len, 0);
    }
    return frame;
}

void
FrameReader::feed(const char *p, size_t n)
{
    while (n > 0) {
        if (payloadLen == SIZE_MAX) {
            // Accumulating the header.  Validate the moment byte 12
            // lands: garbage is refused before any payload is
            // buffered or believed.
            size_t want = kFrameHeader - fill;
            size_t take = std::min(want, n);
            buf.append(p, take);
            fill += take;
            p += take;
            n -= take;
            if (fill < kFrameHeader)
                return;
            auto [len, t] = parseFrameHeader(buf.data());
            payloadLen = len;
            type = t;
        }
        size_t have = fill - kFrameHeader;
        size_t take = std::min(payloadLen - have, n);
        buf.append(p, take);
        fill += take;
        p += take;
        n -= take;
        if (fill - kFrameHeader < payloadLen)
            return;
        Frame frame;
        frame.type = type;
        frame.payload = buf.substr(kFrameHeader, payloadLen);
        ready.push_back(std::move(frame));
        buf.clear();
        fill = 0;
        payloadLen = SIZE_MAX;
    }
}

std::optional<Frame>
FrameReader::next()
{
    if (ready.empty())
        return std::nullopt;
    Frame frame = std::move(ready.front());
    ready.pop_front();
    return frame;
}

void
FrameReader::reset()
{
    ready.clear();
    buf.clear();
    fill = 0;
    payloadLen = SIZE_MAX;
}

FillStatus
fillFromFd(int fd, FrameReader &reader)
{
    char tmp[64 * 1024];
    bool progressed = false;
    for (;;) {
        ssize_t r = ::read(fd, tmp, sizeof(tmp));
        if (r > 0) {
            reader.feed(tmp, static_cast<size_t>(r));
            progressed = true;
            // A short read means the fd is drained; on a blocking fd
            // this is also the bail-out that keeps us from parking.
            if (static_cast<size_t>(r) < sizeof(tmp))
                return FillStatus::Progress;
            continue;
        }
        if (r == 0)
            return FillStatus::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return progressed ? FillStatus::Progress
                              : FillStatus::Drained;
        throw WireError(WireErrorKind::Io,
                        detail::concat("frame read failed: ",
                                       std::strerror(errno)));
    }
}

std::optional<Frame>
readFrameTimeout(int fd, int timeoutMs)
{
    using clock = std::chrono::steady_clock;
    auto deadline = clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    FrameReader reader;
    for (;;) {
        if (auto frame = reader.next())
            return frame;
        auto left = std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline -
                                                   clock::now())
                        .count();
        if (left <= 0) {
            throw WireError(WireErrorKind::Io,
                            detail::concat("timed out after ",
                                           timeoutMs,
                                           " ms waiting for a frame"),
                            static_cast<uint64_t>(timeoutMs), 0);
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(left));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(WireErrorKind::Io,
                            detail::concat("frame poll failed: ",
                                           std::strerror(errno)));
        }
        if (rc == 0)
            continue;   // recompute `left`, then throw above
        if (fillFromFd(fd, reader) == FillStatus::Eof) {
            if (reader.midFrame()) {
                throw WireError(WireErrorKind::Truncated,
                                "peer closed mid-frame");
            }
            return std::nullopt;
        }
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw WireError(WireErrorKind::Io,
                        detail::concat("O_NONBLOCK failed: ",
                                       std::strerror(errno)));
    }
}

} // namespace pe::wire
