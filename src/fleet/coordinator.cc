/**
 * @file
 * Fleet coordinator implementation.
 */

#include "src/fleet/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <utility>

#include <poll.h>

#include "src/core/config.hh"
#include "src/explore/serialize.hh"
#include "src/fleet/checkpoint.hh"
#include "src/fleet/transport.hh"
#include "src/fleet/worker.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::fleet
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

using Clock = std::chrono::steady_clock;

int
msUntil(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    if (left < 0)
        return 0;
    if (left > 1000 * 60 * 60)
        return 1000 * 60 * 60;
    return static_cast<int>(left);
}

/** The identity every peer (and every checkpoint) must match. */
FleetIdentity
fleetIdentityOf(const explore::ExploreOptions &base,
                const ShardPlan &plan, const isa::Program &program,
                const std::vector<std::vector<int32_t>> &seeds)
{
    FleetIdentity id;
    id.shards = plan.shards;
    id.configHash = core::configHash(base.config);
    id.masterSeed = base.seed;
    id.planDigest = plan.planDigest;
    id.programFp = explore::programFingerprint(program);
    id.sessionWord = sessionWord(base);
    id.seedsDigest = seedsDigest(seeds);
    return id;
}

} // namespace

ShardPlan
makeShardPlan(uint64_t configHash, uint64_t masterSeed,
              uint32_t shards, size_t seedCount)
{
    pe_assert(shards >= 1, "fleet needs at least one shard");
    ShardPlan plan;
    plan.shards = shards;

    // Derive per-shard seeds from a stream forked off (configHash,
    // masterSeed) so a config change re-seeds the whole fleet, never
    // just reshuffles it.
    Rng planRng(masterSeed ^ fnvMix(kFnvOffset, configHash));
    uint64_t digest = fnvMix(kFnvOffset, configHash);
    digest = fnvMix(digest, masterSeed);
    digest = fnvMix(digest, shards);
    digest = fnvMix(digest, seedCount);

    plan.specs.resize(shards);
    for (uint32_t s = 0; s < shards; ++s) {
        plan.specs[s].shard = s;
        plan.specs[s].shardSeed =
            planRng.fork(0xf1ee7000ull + s).next64();
        digest = fnvMix(digest, plan.specs[s].shardSeed);
    }

    // Deal seed inputs round-robin; when there are fewer seeds than
    // shards, wrap so every shard still starts with at least one
    // (shards exploring the same seed diverge via their shard seeds).
    if (seedCount > 0) {
        if (seedCount >= shards) {
            for (size_t i = 0; i < seedCount; ++i)
                plan.specs[i % shards].seedIndices.push_back(
                    static_cast<uint32_t>(i));
        } else {
            for (uint32_t s = 0; s < shards; ++s)
                plan.specs[s].seedIndices.push_back(
                    static_cast<uint32_t>(s % seedCount));
        }
        for (const ShardSpec &spec : plan.specs)
            for (uint32_t idx : spec.seedIndices)
                digest = fnvMix(digest, idx);
    }

    plan.planDigest = digest;
    return plan;
}

const char *
fleetStopName(FleetStop stop)
{
    switch (stop) {
    case FleetStop::RunBudget:
        return "run_budget";
    case FleetStop::Plateau:
        return "plateau";
    case FleetStop::Interrupted:
        return "interrupted";
    case FleetStop::WorkersLost:
        return "workers_lost";
    case FleetStop::QuorumLost:
        return "quorum_lost";
    }
    return "unknown";
}

Coordinator::Coordinator(const isa::Program &program,
                         std::vector<std::vector<int32_t>> seeds,
                         FleetOptions opts)
    : program(program), seeds(std::move(seeds)),
      opts(std::move(opts)), global(program)
{
    pe_assert(this->opts.shards >= 1,
              "fleet needs at least one shard");
    pe_assert(this->opts.shardPlateau >= 1,
              "shardPlateau must be >= 1");
    transport = this->opts.transport
                    ? this->opts.transport
                    : std::make_shared<ForkTransport>(program);
    shardPlan = makeShardPlan(core::configHash(this->opts.base.config),
                              this->opts.base.seed, this->opts.shards,
                              this->seeds.size());
    // Same construction path as every worker's Explorer: the tracker
    // is a pure function of the program (default enumeration caps),
    // so coordinator and shards agree on the path-id space and the
    // completion words can be OR-merged without translation.
    if (this->opts.base.config.recordEdgeTrace)
        pathTracker =
            std::make_unique<coverage::PathCoverage>(program);
}

void
Coordinator::establishFleet(FleetResult &res)
{
    size_t words = global.frontier().takenWords().size();
    FleetIdentity id =
        fleetIdentityOf(opts.base, shardPlan, program, seeds);

    std::vector<WorkerConfig> configs;
    fleet.resize(shardPlan.specs.size());
    for (size_t s = 0; s < shardPlan.specs.size(); ++s) {
        Shard &shard = fleet[s];
        shard.spec = shardPlan.specs[s];
        shard.summary.shard = shard.spec.shard;
        shard.sentTaken.assign(words, 0);
        shard.sentNt.assign(words, 0);

        WorkerConfig cfg;
        cfg.expect.wireVersion = wire::kWireVersion;
        cfg.expect.shard = shard.spec.shard;
        cfg.expect.shards = shardPlan.shards;
        cfg.expect.configHash = id.configHash;
        cfg.expect.masterSeed = opts.base.seed;
        cfg.expect.shardSeed = shard.spec.shardSeed;
        cfg.expect.planDigest = shardPlan.planDigest;
        cfg.expect.programFp = id.programFp;
        cfg.expect.heartbeatMs =
            opts.heartbeatMs > 0
                ? static_cast<uint32_t>(opts.heartbeatMs)
                : 0;
        cfg.opts = shardWorkerOptions(opts.base,
                                      shard.spec.shardSeed,
                                      shard.spec.shard,
                                      opts.workerThreads);
        for (uint32_t idx : shard.spec.seedIndices)
            cfg.seeds.push_back(seeds[idx]);
        configs.push_back(std::move(cfg));
    }

    std::vector<int> fds =
        transport->establish(id, configs, opts.stopFlag);
    pe_assert(fds.size() == fleet.size(),
              "transport returned the wrong shard count");
    for (size_t s = 0; s < fleet.size(); ++s) {
        fleet[s].fd = fds[s];
        fleet[s].summary.alive = fds[s] >= 0;
    }

    // The Hello/HelloReply handshake runs on blocking fds (lockstep,
    // one frame each way); the reactor flips them non-blocking after.
    for (Shard &shard : fleet) {
        if (!shard.summary.alive)
            continue;
        if (!handshake(shard))
            markDead(shard, res, "handshake failed");
    }
    for (Shard &shard : fleet)
        if (shard.summary.alive && shard.fd >= 0)
            wire::setNonBlocking(shard.fd);
}

bool
Coordinator::handshake(Shard &shard)
{
    Hello hello;
    hello.wireVersion = wire::kWireVersion;
    hello.shard = shard.spec.shard;
    hello.shards = shardPlan.shards;
    hello.configHash = core::configHash(opts.base.config);
    hello.masterSeed = opts.base.seed;
    hello.shardSeed = shard.spec.shardSeed;
    hello.planDigest = shardPlan.planDigest;
    hello.programFp = explore::programFingerprint(program);
    hello.heartbeatMs =
        opts.heartbeatMs > 0
            ? static_cast<uint32_t>(opts.heartbeatMs)
            : 0;

    try {
        wire::Encoder enc;
        encodeHello(enc, hello);
        wire::writeFrame(shard.fd, wire::FrameType::Hello,
                         enc.buffer());

        auto frame = wire::readFrameTimeout(shard.fd, 10000);
        if (!frame)
            throw wire::WireError(wire::WireErrorKind::Truncated,
                                  "worker closed before hello reply");
        if (frame->type == wire::FrameType::Error) {
            wire::Decoder dec(frame->payload);
            throw wire::WireError(wire::WireErrorKind::Mismatch,
                                  dec.str("worker error"));
        }
        if (frame->type != wire::FrameType::HelloReply)
            throw wire::WireError(
                wire::WireErrorKind::BadFrame,
                detail::concat("expected hello-reply, got ",
                               wire::frameTypeName(frame->type)));
        wire::Decoder dec(frame->payload);
        HelloReply reply = decodeHelloReply(dec);
        dec.expectEnd("hello-reply");
        if (reply.shard != shard.spec.shard ||
            reply.totalEdges != global.frontier().totalEdges()) {
            throw wire::WireError(
                wire::WireErrorKind::Mismatch,
                detail::concat("hello-reply identity mismatch: "
                               "expected shard ", shard.spec.shard,
                               "/", global.frontier().totalEdges(),
                               " edges, found ", reply.shard, "/",
                               reply.totalEdges, " edges"));
        }
    } catch (const wire::WireError &err) {
        if (opts.status)
            *opts.status << "[fleet] shard " << shard.spec.shard
                         << " failed handshake: " << err.what()
                         << "\n";
        return false;
    }
    return true;
}

std::vector<uint64_t>
Coordinator::allocateBudgets(uint64_t roundTotal, FleetResult &res)
{
    // Weight each live shard in percent-of-fair: steady shards 100,
    // plateaued-with-fresh-material shards steal extra, plateaued-dry
    // shards wind down to the floor, exhausted shards 0.
    std::vector<uint64_t> weight(fleet.size(), 0);
    uint64_t sum = 0;
    size_t alive = 0;
    for (size_t s = 0; s < fleet.size(); ++s) {
        const Shard &shard = fleet[s];
        if (!shard.summary.alive)
            continue;
        ++alive;
        if (shard.summary.exhausted)
            continue;
        uint64_t w = 100;
        if (shard.summary.dryRounds >= opts.shardPlateau) {
            w = shard.gotForeign && opts.stealBoostPct > 0
                    ? 100 + opts.stealBoostPct
                    : opts.idleFloorPct;
        }
        weight[s] = w;
        sum += w;
    }

    std::vector<uint64_t> budget(fleet.size(), 0);
    if (alive == 0 || roundTotal == 0)
        return budget;
    if (sum == 0) {
        // Every live shard is exhausted; hand out fair shares anyway
        // so the final round confirms nothing moved (the stop check
        // ends the fleet right after).
        for (size_t s = 0; s < fleet.size(); ++s)
            if (fleet[s].summary.alive)
                weight[s] = 100;
        sum = 100 * alive;
    }

    uint64_t assigned = 0;
    for (size_t s = 0; s < fleet.size(); ++s) {
        budget[s] = roundTotal * weight[s] / sum;
        assigned += budget[s];
    }
    // Distribute the integer remainder one run at a time in shard
    // order — deterministic, and biased toward nobody in particular.
    for (size_t s = 0; assigned < roundTotal; s = (s + 1) % fleet.size()) {
        if (weight[s] == 0)
            continue;
        ++budget[s];
        ++assigned;
    }

    // Steal accounting: runs above the fair share of live shards.
    uint64_t fair = roundTotal / alive;
    for (size_t s = 0; s < fleet.size(); ++s) {
        if (fleet[s].summary.alive && budget[s] > fair &&
            fleet[s].summary.dryRounds >= opts.shardPlateau)
            res.stolenRuns += budget[s] - fair;
    }
    return budget;
}

void
Coordinator::sendRoundStart(Shard &shard, uint64_t round,
                            uint64_t budget)
{
    RoundStart start;
    start.round = round;
    start.budgetRuns = budget;
    start.frontier =
        diffFrontier(global.frontier(), shard.sentTaken,
                     shard.sentNt);
    // Dense and idempotent (the worker ORs them in), so no per-shard
    // cursor is needed — resending unchanged words is harmless.
    if (pathTracker)
        start.pathWords = pathTracker->words();

    // Globally-admitted entries this shard has not seen, skipping
    // the ones it contributed itself (echo-free exchange).
    shard.gotForeign = false;
    for (size_t i = shard.entryMark; i < global.size(); ++i) {
        if (origins[i] == shard.spec.shard)
            continue;
        start.entries.push_back(global.entries()[i]);
        shard.gotForeign = true;
    }
    shard.entryMark = global.size();

    // Payload generation advances sentTaken/entryMark, so a resend
    // must reuse these exact bytes: this IS the replay buffer.
    wire::Encoder enc;
    encodeRoundStart(enc, start);
    shard.replayRound = round;
    shard.replayPayload = enc.take();
    shard.summary.assigned += budget;
    shard.pendingDelta = true;
    // Dispatch counts as activity: the health machine measures the
    // silence *after* the worker got work, not queueing delays.
    shard.lastActivity = Clock::now();
    shard.suspect = false;

    if (shard.fd < 0)
        return;   // detached: replayed when the worker rejoins
    wire::writeFrame(shard.fd, wire::FrameType::RoundStart,
                     shard.replayPayload);
}

void
Coordinator::mergeRoundDelta(Shard &shard, const RoundDelta &delta,
                             FleetResult &res,
                             uint64_t &roundNewEdges)
{
    res.runs += delta.runs;
    res.instructions += delta.instructions;
    res.ntSpawned += delta.ntSpawned;
    res.failedJobs += delta.failedJobs;
    shard.summary.runs += delta.runs;
    shard.summary.exhausted = delta.exhausted;

    size_t before = global.frontier().combinedCovered();

    // Entries first: each one was new over its worker's frontier at
    // admission; judging it against the global frontier *before* the
    // shard's bulk delta lands is what lets it into the global corpus
    // (the bulk delta contains the entry's own edges).
    for (const explore::CorpusEntry &entry : delta.entries) {
        size_t sizeBefore = global.size();
        if (global.considerForeign(entry, res.rounds) > 0 &&
            global.size() > sizeBefore) {
            origins.push_back(shard.spec.shard);
            ++shard.summary.admittedGlobal;
        }
    }

    if (!delta.frontier.empty()) {
        std::vector<uint64_t> taken = global.frontier().takenWords();
        std::vector<uint64_t> nt = global.frontier().ntWords();
        applyFrontier(delta.frontier, taken, nt);
        global.mergeFrontierWords(taken, nt);
    }

    // Path completion is a word-OR like the frontier, so shard-order
    // merging keeps the digest a pure function of the plan.  A size
    // disagreement is impossible past the handshake (recordEdgeTrace
    // rides in configHash), which mergeWords asserts.
    if (pathTracker && !delta.pathWords.empty())
        pathTracker->mergeWords(delta.pathWords);

    size_t grown = global.frontier().combinedCovered() - before;
    shard.summary.newEdges += grown;
    roundNewEdges += grown;
    if (grown == 0)
        ++shard.summary.dryRounds;
    else
        shard.summary.dryRounds = 0;
}

void
Coordinator::disconnectShard(Shard &shard, FleetResult &res,
                             const std::string &why)
{
    if (!shard.summary.alive)
        return;
    if (!transport->supportsReconnect()) {
        markDead(shard, res, why);
        return;
    }
    if (shard.fd >= 0) {
        transport->closeChannel(shard.spec.shard);
        shard.fd = -1;
        emitHealth("fleet_degraded", shard.spec.shard, res.rounds,
                   "detached", why);
    }
    shard.reader.reset();
    if (opts.status)
        *opts.status << "[fleet] shard " << shard.spec.shard
                     << " disconnected: " << why
                     << " (awaiting rejoin)\n";
}

void
Coordinator::markDead(Shard &shard, FleetResult &res,
                      const std::string &why)
{
    if (!shard.summary.alive)
        return;
    shard.summary.alive = false;
    ++res.lostWorkers;
    emitHealth("fleet_degraded", shard.spec.shard, res.rounds,
               "dead", why);
    if (opts.status)
        *opts.status << "[fleet] shard " << shard.spec.shard
                     << " lost: " << why << "\n";
    // Closing our end wakes a child blocked in read; the reap happens
    // in the transport's shutdown so round latency is not spent on
    // waitpid.
    if (shard.fd >= 0) {
        transport->closeChannel(shard.spec.shard);
        shard.fd = -1;
    }
    shard.reader.reset();
    shard.stashed.reset();
}

void
Coordinator::pumpShard(Shard &shard, FleetResult &res,
                       uint64_t round)
{
    wire::FillStatus status = wire::FillStatus::Drained;
    try {
        status = wire::fillFromFd(shard.fd, shard.reader);
        while (shard.summary.alive) {
            auto frame = shard.reader.next();
            if (!frame)
                break;
            if (frame->type == wire::FrameType::Error) {
                wire::Decoder dec(frame->payload);
                markDead(shard, res, dec.str("worker error"));
                return;
            }
            if (frame->type == wire::FrameType::Heartbeat) {
                noteShardActivity(shard, round);
                try {
                    wire::writeFrame(shard.fd,
                                     wire::FrameType::HeartbeatAck,
                                     {});
                } catch (const wire::WireError &) {
                    // A dead channel surfaces on the read side.
                }
                continue;
            }
            if (frame->type != wire::FrameType::RoundDelta) {
                markDead(shard, res,
                         detail::concat(
                             "expected round-delta, got ",
                             wire::frameTypeName(frame->type)));
                return;
            }
            wire::Decoder dec(frame->payload);
            RoundDelta delta = decodeRoundDelta(dec, program);
            dec.expectEnd("round-delta");
            if (delta.round != round || shard.stashed) {
                markDead(shard, res,
                         detail::concat("unexpected delta for round ",
                                        delta.round, " during round ",
                                        round));
                return;
            }
            noteShardActivity(shard, round);
            shard.stashed = std::move(delta);
        }
    } catch (const wire::WireError &err) {
        // Header garbage / malformed payloads are protocol failures;
        // only honest connection trouble earns a reconnect window.
        if (err.kind() == wire::WireErrorKind::Io)
            disconnectShard(shard, res, err.what());
        else
            markDead(shard, res, err.what());
        return;
    }

    if (status == wire::FillStatus::Eof && !shard.stashed) {
        disconnectShard(shard, res,
                        shard.reader.midFrame()
                            ? "connection died mid-frame"
                            : "connection closed mid-round");
    }
}

void
Coordinator::acceptReconnects(FleetResult &res, uint64_t round)
{
    auto mayJoin = [&](uint32_t shardId, bool rejoin) {
        (void)rejoin;
        if (shardId >= fleet.size())
            return false;
        const Shard &s = fleet[shardId];
        return s.summary.alive && s.fd < 0;
    };
    while (auto peer = transport->acceptPeer(mayJoin)) {
        Shard &shard = fleet[peer->shard];
        shard.fd = peer->fd;
        shard.reader.reset();
        try {
            wire::setNonBlocking(shard.fd);
        } catch (const wire::WireError &err) {
            disconnectShard(shard, res, err.what());
            continue;
        }
        ++res.reconnects;
        shard.lastActivity = Clock::now();
        shard.suspect = false;
        emitHealth("fleet_rejoined", shard.spec.shard, round, "live",
                   peer->rejoin ? "reconnected" : "connected");

        if (!shard.pendingDelta)
            continue;   // between rounds; nothing to replay

        // Resume: the peer is valid if it executed up to the replay
        // round (delta lost in transit) or up to the round before it
        // (RoundStart lost).  Anything else cannot resume losslessly.
        pe_assert(shard.replayRound == round,
                  "replay buffer out of step with the round loop");
        if (peer->lastAckedRound != round &&
            peer->lastAckedRound + 1 != round) {
            markDead(shard, res,
                     detail::concat("rejoined too far behind: last "
                                    "acked round ",
                                    peer->lastAckedRound,
                                    " during round ", round));
            continue;
        }
        try {
            wire::writeFrame(shard.fd, wire::FrameType::RoundStart,
                             shard.replayPayload);
        } catch (const wire::WireError &err) {
            disconnectShard(shard, res, err.what());
        }
    }
}

void
Coordinator::collectRound(FleetResult &res, uint64_t round,
                          uint64_t &roundRuns,
                          uint64_t &roundNewEdges)
{
    std::optional<Clock::time_point> deadline;
    if (opts.roundDeadlineMs > 0)
        deadline = Clock::now() +
                   std::chrono::milliseconds(opts.roundDeadlineMs);

    auto unresolved = [&] {
        size_t n = 0;
        for (const Shard &s : fleet)
            if (s.summary.alive && s.pendingDelta && !s.stashed)
                ++n;
        return n;
    };

    while (unresolved() > 0) {
        // Health first: a heartbeat-silent shard may flip suspect or
        // dead right here, shrinking the poll set below.
        int healthLeft = updateHealth(res, round);

        // Poll every live shard still owing a delta; the transport's
        // accept fd rides along whenever a detached shard could
        // rejoin.  Shards whose delta already arrived are *not*
        // polled — extra bytes from them surface next round.
        std::vector<struct pollfd> pfds;
        std::vector<size_t> owners;
        bool anyDetached = false;
        for (size_t s = 0; s < fleet.size(); ++s) {
            Shard &shard = fleet[s];
            if (!shard.summary.alive || !shard.pendingDelta ||
                shard.stashed)
                continue;
            if (shard.fd < 0) {
                anyDetached = true;
                continue;
            }
            pfds.push_back({shard.fd, POLLIN, 0});
            owners.push_back(s);
        }
        int acceptFd = transport->acceptFd();
        if (acceptFd >= 0 && anyDetached) {
            pfds.push_back({acceptFd, POLLIN, 0});
            owners.push_back(SIZE_MAX);
        }

        if (pfds.empty()) {
            // Every unresolved shard is detached with no way back.
            for (Shard &shard : fleet)
                if (shard.summary.alive && shard.pendingDelta &&
                    !shard.stashed)
                    markDead(shard, res, "detached with no "
                                         "reconnect path");
            break;
        }

        int timeout = -1;
        if (deadline) {
            timeout = msUntil(*deadline);
            if (timeout == 0) {
                // Deadline: everyone still owing a delta is dead;
                // already-stashed deltas still merge below, so a
                // stalled shard never drags the others down.
                for (Shard &shard : fleet)
                    if (shard.summary.alive && shard.pendingDelta &&
                        !shard.stashed)
                        markDead(shard, res, "round deadline");
                break;
            }
        }
        // Wake for the next health transition even when the round
        // deadline (or no deadline at all) would sleep past it.
        if (healthLeft >= 0 && (timeout < 0 || healthLeft < timeout))
            timeout = healthLeft;

        int rc = ::poll(pfds.data(), pfds.size(), timeout);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            pe_fatal("fleet poll failed: ", std::strerror(errno));
        }
        if (rc == 0)
            continue;   // deadline check happens on the next pass

        for (size_t i = 0; i < pfds.size(); ++i) {
            if (pfds[i].revents == 0)
                continue;
            if (owners[i] == SIZE_MAX)
                acceptReconnects(res, round);
            else
                pumpShard(fleet[owners[i]], res, round);
        }
    }

    // Merge in shard-id order — arrival order must never matter, or
    // the digests stop being pure functions of the plan.
    for (Shard &shard : fleet) {
        if (shard.summary.alive && shard.stashed) {
            roundRuns += shard.stashed->runs;
            mergeRoundDelta(shard, *shard.stashed, res,
                            roundNewEdges);
        }
        shard.stashed.reset();
        shard.pendingDelta = false;
    }
}

void
Coordinator::emitHealth(const char *event, uint32_t shard,
                        uint64_t round, const char *state,
                        const std::string &detail)
{
    if (!opts.base.jsonl)
        return;
    *opts.base.jsonl << "{\"event\":\"" << event
                     << "\",\"shard\":" << shard
                     << ",\"round\":" << round << ",\"state\":\""
                     << state << "\",\"detail\":\"" << detail
                     << "\"}\n";
    opts.base.jsonl->flush();
}

void
Coordinator::noteShardActivity(Shard &shard, uint64_t round)
{
    shard.lastActivity = Clock::now();
    if (shard.suspect) {
        shard.suspect = false;
        emitHealth("fleet_rejoined", shard.spec.shard, round, "live",
                   "heartbeat resumed");
        if (opts.status)
            *opts.status << "[fleet] shard " << shard.spec.shard
                         << " is live again\n";
    }
}

int
Coordinator::updateHealth(FleetResult &res, uint64_t round)
{
    if (opts.heartbeatMs <= 0)
        return -1;
    auto now = Clock::now();
    int64_t next = -1;
    for (Shard &shard : fleet) {
        // Only attached shards still owing a delta are judged: a
        // detached shard cannot beat (the reconnect window and round
        // deadline govern it), and a stashed delta is proof enough.
        if (!shard.summary.alive || !shard.pendingDelta ||
            shard.stashed || shard.fd < 0)
            continue;
        int64_t silent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - shard.lastActivity)
                .count();
        int64_t interval = opts.heartbeatMs;
        if (silent >= 2 * interval) {
            markDead(shard, res,
                     detail::concat("heartbeat timeout (silent ",
                                    silent, " ms)"));
            continue;
        }
        if (silent >= interval && !shard.suspect) {
            shard.suspect = true;
            emitHealth("fleet_degraded", shard.spec.shard, round,
                       "suspect",
                       detail::concat("silent for ", silent, " ms"));
            if (opts.status)
                *opts.status << "[fleet] shard " << shard.spec.shard
                             << " suspect: silent for " << silent
                             << " ms\n";
        }
        int64_t edge = shard.suspect ? 2 * interval : interval;
        int64_t left = edge - silent;
        if (left < 1)
            left = 1;
        if (next < 0 || left < next)
            next = left;
    }
    return static_cast<int>(next);
}

std::optional<FleetStop>
Coordinator::checkStop(const FleetResult &res) const
{
    size_t alive = 0;
    bool allExhausted = true;
    for (const Shard &shard : fleet) {
        if (!shard.summary.alive)
            continue;
        ++alive;
        if (!shard.summary.exhausted)
            allExhausted = false;
    }
    if (alive == 0)
        return FleetStop::WorkersLost;
    if (opts.stopFlag &&
        opts.stopFlag->load(std::memory_order_relaxed))
        return FleetStop::Interrupted;
    if (res.runs >= opts.base.budget.maxRuns)
        return FleetStop::RunBudget;
    if (allExhausted && res.rounds > 0)
        return FleetStop::Plateau;
    if (opts.plateauRounds && globalDryRounds >= opts.plateauRounds)
        return FleetStop::Plateau;
    return std::nullopt;
}

std::optional<FleetStop>
Coordinator::enforceQuorum(FleetResult &res)
{
    if (opts.minQuorum == 0)
        return std::nullopt;
    auto counts = [&] {
        std::pair<uint32_t, uint32_t> c{0, 0};   // {alive, attached}
        for (const Shard &s : fleet) {
            if (!s.summary.alive)
                continue;
            ++c.first;
            if (s.fd >= 0)
                ++c.second;
        }
        return c;
    };

    // Recoverable shortfall: enough shards alive, too few attached.
    // Pausing dispatch (bounded by the round deadline) beats running
    // a degraded round a rejoining worker could have joined.
    if (transport->supportsReconnect() && transport->acceptFd() >= 0) {
        std::optional<Clock::time_point> deadline;
        if (opts.roundDeadlineMs > 0)
            deadline = Clock::now() + std::chrono::milliseconds(
                                          opts.roundDeadlineMs);
        bool paused = false;
        for (;;) {
            auto [alive, attached] = counts();
            if (alive < opts.minQuorum ||
                attached >= opts.minQuorum)
                break;
            if (opts.stopFlag &&
                opts.stopFlag->load(std::memory_order_relaxed))
                return FleetStop::Interrupted;
            if (!paused) {
                paused = true;
                if (opts.status)
                    *opts.status
                        << "[fleet] below quorum (" << attached << "/"
                        << opts.minQuorum
                        << " attached); pausing for rejoins\n";
            }
            int timeout = 200;
            if (deadline) {
                int left = msUntil(*deadline);
                if (left == 0) {
                    for (Shard &shard : fleet)
                        if (shard.summary.alive && shard.fd < 0)
                            markDead(shard, res,
                                     "no rejoin within the quorum "
                                     "wait");
                    break;
                }
                timeout = std::min(timeout, left);
            }
            struct pollfd pfd = {transport->acceptFd(), POLLIN, 0};
            int rc = ::poll(&pfd, 1, timeout);
            if (rc < 0 && errno != EINTR)
                pe_fatal("fleet poll failed: ",
                         std::strerror(errno));
            if (rc > 0)
                acceptReconnects(res, res.rounds);
        }
    }

    if (counts().first < opts.minQuorum)
        return FleetStop::QuorumLost;
    return std::nullopt;
}

void
Coordinator::maybeCheckpoint(const FleetResult &res)
{
    if (opts.checkpointPath.empty())
        return;

    FleetCheckpoint ckpt;
    FleetIdentity id =
        fleetIdentityOf(opts.base, shardPlan, program, seeds);
    ckpt.configHash = id.configHash;
    ckpt.masterSeed = id.masterSeed;
    ckpt.shards = id.shards;
    ckpt.planDigest = id.planDigest;
    ckpt.programFp = id.programFp;
    ckpt.sessionWord = id.sessionWord;
    ckpt.seedsDigest = id.seedsDigest;

    ckpt.rounds = res.rounds;
    ckpt.runs = res.runs;
    ckpt.instructions = res.instructions;
    ckpt.ntSpawned = res.ntSpawned;
    ckpt.failedJobs = res.failedJobs;
    ckpt.stolenRuns = res.stolenRuns;
    ckpt.lostWorkers = res.lostWorkers;
    ckpt.reconnects = res.reconnects;
    ckpt.globalDryRounds = globalDryRounds;

    ckpt.frontierTaken = global.frontier().takenWords();
    ckpt.frontierNt = global.frontier().ntWords();
    ckpt.exerciseCounts = global.exercise().rawCounts();
    ckpt.exerciseRuns = global.exercise().runsAccumulated();
    ckpt.entries = global.entries();
    ckpt.origins = origins;
    if (pathTracker)
        ckpt.pathWords = pathTracker->words();

    for (const Shard &shard : fleet) {
        ShardCheckpoint sc;
        sc.summary = shard.summary;
        sc.sentTaken = shard.sentTaken;
        sc.sentNt = shard.sentNt;
        sc.entryMark = shard.entryMark;
        sc.gotForeign = shard.gotForeign;
        sc.replayRound = shard.replayRound;
        sc.replayPayload = shard.replayPayload;
        ckpt.shardStates.push_back(std::move(sc));
    }

    try {
        saveFleetCheckpoint(opts.checkpointPath, ckpt);
    } catch (const FatalError &err) {
        // Durability is best-effort; the session itself never dies
        // for a full disk.  The previous checkpoint (if any) is still
        // intact — the writer renames atomically.
        if (opts.status)
            *opts.status << "[fleet] warning: checkpoint write "
                            "failed: "
                         << err.what() << "\n";
        if (opts.base.jsonl) {
            *opts.base.jsonl
                << "{\"event\":\"fleet_warning\",\"warning\":"
                   "\"checkpoint_write_failed\",\"round\":"
                << res.rounds << ",\"error\":\"" << err.what()
                << "\"}\n";
            opts.base.jsonl->flush();
        }
    }
}

void
Coordinator::resumeState(FleetResult &res)
{
    FleetCheckpoint ckpt =
        loadFleetCheckpoint(opts.resumeFrom, program);
    FleetIdentity id =
        fleetIdentityOf(opts.base, shardPlan, program, seeds);

    auto check = [&](const char *field, uint64_t expected,
                     uint64_t found) {
        if (expected != found)
            pe_fatal("fleet checkpoint '", opts.resumeFrom,
                     "' belongs to another session: ", field,
                     " expected ", expected, ", found ", found);
    };
    check("config hash", id.configHash, ckpt.configHash);
    check("master seed", id.masterSeed, ckpt.masterSeed);
    check("shard count", id.shards, ckpt.shards);
    check("plan digest", id.planDigest, ckpt.planDigest);
    check("program fingerprint", id.programFp, ckpt.programFp);
    check("session word", id.sessionWord, ckpt.sessionWord);
    check("seeds digest", id.seedsDigest, ckpt.seedsDigest);
    pe_assert(ckpt.shardStates.size() == shardPlan.specs.size(),
              "checkpoint shard state count mismatch");

    global.restore(std::move(ckpt.entries), ckpt.frontierTaken,
                   ckpt.frontierNt, ckpt.exerciseCounts,
                   ckpt.exerciseRuns);
    origins = std::move(ckpt.origins);
    // Tracker presence is implied by recordEdgeTrace, which the
    // config-hash check above already judged; an empty word vector in
    // the checkpoint means the session ran without the tracker.
    if (pathTracker && !ckpt.pathWords.empty())
        pathTracker->restoreWords(ckpt.pathWords);

    res.rounds = ckpt.rounds;
    res.runs = ckpt.runs;
    res.instructions = ckpt.instructions;
    res.ntSpawned = ckpt.ntSpawned;
    res.failedJobs = ckpt.failedJobs;
    res.stolenRuns = ckpt.stolenRuns;
    res.lostWorkers = ckpt.lostWorkers;
    res.reconnects = ckpt.reconnects;
    globalDryRounds = ckpt.globalDryRounds;

    fleet.clear();
    fleet.resize(shardPlan.specs.size());
    for (size_t s = 0; s < fleet.size(); ++s) {
        Shard &shard = fleet[s];
        ShardCheckpoint &sc = ckpt.shardStates[s];
        shard.spec = shardPlan.specs[s];
        shard.summary = sc.summary;
        shard.sentTaken = std::move(sc.sentTaken);
        shard.sentNt = std::move(sc.sentNt);
        shard.entryMark = sc.entryMark;
        shard.gotForeign = sc.gotForeign;
        shard.replayRound = sc.replayRound;
        shard.replayPayload = std::move(sc.replayPayload);
        shard.lastActivity = Clock::now();
    }

    if (opts.status)
        *opts.status << "[fleet] resumed session from '"
                     << opts.resumeFrom << "': round " << res.rounds
                     << ", " << res.runs << " runs, corpus "
                     << global.size() << ", edges "
                     << global.frontier().combinedCovered() << "/"
                     << global.frontier().totalEdges() << "\n";
    if (opts.base.jsonl) {
        *opts.base.jsonl << "{\"event\":\"fleet_resumed\",\"round\":"
                         << res.rounds << ",\"runs\":" << res.runs
                         << ",\"corpus\":" << global.size()
                         << ",\"edges_combined\":"
                         << global.frontier().combinedCovered()
                         << "}\n";
        opts.base.jsonl->flush();
    }
}

void
Coordinator::reattachFleet(FleetResult &res)
{
    transport->prepareResume(
        fleetIdentityOf(opts.base, shardPlan, program, seeds));

    // Bounded wait for the session's workers to redial.  A straggler
    // past the bound is marked dead — degradation, never a hang —
    // and the quorum gate decides whether the session goes on.
    std::optional<Clock::time_point> deadline;
    if (opts.roundDeadlineMs > 0)
        deadline = Clock::now() +
                   std::chrono::milliseconds(opts.roundDeadlineMs);
    for (;;) {
        size_t missing = 0;
        for (const Shard &shard : fleet)
            if (shard.summary.alive && shard.fd < 0)
                ++missing;
        if (missing == 0)
            return;
        if (opts.stopFlag &&
            opts.stopFlag->load(std::memory_order_relaxed))
            return;   // the round loop turns this into Interrupted
        int timeout = 200;
        if (deadline) {
            int left = msUntil(*deadline);
            if (left == 0) {
                for (Shard &shard : fleet)
                    if (shard.summary.alive && shard.fd < 0)
                        markDead(shard, res,
                                 "did not redial after resume");
                return;
            }
            timeout = std::min(timeout, left);
        }
        struct pollfd pfd = {transport->acceptFd(), POLLIN, 0};
        int rc = ::poll(&pfd, 1, timeout);
        if (rc < 0 && errno != EINTR)
            pe_fatal("fleet poll failed: ", std::strerror(errno));
        if (rc > 0)
            acceptReconnects(res, res.rounds);
    }
}

std::optional<wire::Frame>
Coordinator::readShardFrame(Shard &shard, int timeoutMs)
{
    // Like wire::readFrameTimeout, but draining through the shard's
    // own reassembly buffer so bytes it already holds are not lost.
    auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (auto frame = shard.reader.next())
            return frame;
        int left = msUntil(deadline);
        if (left == 0)
            return std::nullopt;
        struct pollfd pfd = {shard.fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, left);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw wire::WireError(
                wire::WireErrorKind::Io,
                detail::concat("poll failed: ",
                               std::strerror(errno)));
        }
        if (rc == 0)
            return std::nullopt;
        if (wire::fillFromFd(shard.fd, shard.reader) ==
            wire::FillStatus::Eof)
            return shard.reader.next();
    }
}

void
Coordinator::shutdownWorkers()
{
    // Bounded: a worker that never answers Stop with Goodbye cannot
    // hang the fleet — after goodbyeTimeoutMs we fall through to the
    // transport's reap (which escalates to SIGKILL for fork).
    for (Shard &shard : fleet) {
        if (!shard.summary.alive || shard.fd < 0)
            continue;
        try {
            wire::writeFrame(shard.fd, wire::FrameType::Stop, {});
            auto frame =
                readShardFrame(shard, opts.goodbyeTimeoutMs);
            // A beat already in flight when Stop landed is not a
            // protocol violation; skip to the Goodbye behind it.
            while (frame &&
                   frame->type == wire::FrameType::Heartbeat)
                frame = readShardFrame(shard, opts.goodbyeTimeoutMs);
            if (frame && frame->type == wire::FrameType::Goodbye) {
                wire::Decoder dec(frame->payload);
                Goodbye bye = decodeGoodbye(dec);
                dec.expectEnd("goodbye");
                if (opts.status)
                    *opts.status
                        << "[fleet] shard " << shard.spec.shard
                        << " done: " << bye.runs << " runs, "
                        << bye.corpusSize << " corpus entries, "
                        << bye.edgesCombined << " edges\n";
            } else if (!frame && opts.status) {
                *opts.status << "[fleet] shard " << shard.spec.shard
                             << " sent no goodbye within "
                             << opts.goodbyeTimeoutMs
                             << " ms; reaping\n";
            }
        } catch (const wire::WireError &) {
            // Already exiting; the transport shutdown still reaps.
        }
        transport->closeChannel(shard.spec.shard);
        shard.fd = -1;
    }
    transport->shutdown(opts.reapTimeoutMs);
}

void
Coordinator::emitRound(const FleetResult &res, uint64_t round,
                       uint64_t roundRuns, uint64_t roundNewEdges)
{
    size_t alive = 0;
    for (const Shard &shard : fleet)
        if (shard.summary.alive)
            ++alive;
    if (opts.base.jsonl) {
        *opts.base.jsonl
            << "{\"event\":\"fleet_round\",\"round\":" << round
            << ",\"runs\":" << roundRuns
            << ",\"total_runs\":" << res.runs
            << ",\"new_edges\":" << roundNewEdges
            << ",\"edges_combined\":"
            << global.frontier().combinedCovered()
            << ",\"corpus\":" << global.size()
            << ",\"stolen_runs\":" << res.stolenRuns
            << ",\"alive\":" << alive;
        if (pathTracker) {
            *opts.base.jsonl
                << ",\"paths_completed\":"
                << pathTracker->completedCount()
                << ",\"cover_completed\":"
                << pathTracker->coverCompleted();
        }
        *opts.base.jsonl << "}\n";
        opts.base.jsonl->flush();
    }
    if (opts.status) {
        *opts.status << "[fleet] round " << round << ": " << roundRuns
                     << " runs, +" << roundNewEdges << " edges, "
                     << global.frontier().combinedCovered() << "/"
                     << global.frontier().totalEdges()
                     << " covered, corpus " << global.size() << ", "
                     << alive << "/" << fleet.size() << " alive\n";
    }
}

void
Coordinator::emitDone(const FleetResult &res)
{
    if (!opts.base.jsonl)
        return;
    *opts.base.jsonl
        << "{\"event\":\"fleet_done\",\"stop\":\""
        << fleetStopName(res.stop) << "\",\"rounds\":" << res.rounds
        << ",\"runs\":" << res.runs
        << ",\"failed\":" << res.failedJobs
        << ",\"instructions\":" << res.instructions
        << ",\"nt_spawned\":" << res.ntSpawned
        << ",\"corpus\":" << res.corpusSize
        << ",\"edges_taken\":" << res.edgesTaken
        << ",\"edges_combined\":" << res.edgesCombined
        << ",\"total_edges\":" << res.totalEdges
        << ",\"shards\":" << shardPlan.shards
        << ",\"transport\":\"" << transport->name()
        << "\",\"lost_workers\":" << res.lostWorkers
        << ",\"reconnects\":" << res.reconnects
        << ",\"stolen_runs\":" << res.stolenRuns
        << ",\"plan_digest\":\"" << fmtHex(res.planDigest)
        << "\",\"frontier_digest\":\"" << fmtHex(res.frontierDigest)
        << "\",\"corpus_digest\":\"" << fmtHex(res.corpusDigest)
        << "\"";
    if (pathTracker) {
        *opts.base.jsonl
            << ",\"prime_paths\":" << res.primePaths
            << ",\"path_cover_size\":" << res.pathCoverSize
            << ",\"paths_completed\":" << res.pathsCompleted
            << ",\"path_cover_completed\":" << res.pathCoverCompleted
            << ",\"path_digest\":\"" << fmtHex(res.pathDigest)
            << "\"";
    }
    *opts.base.jsonl << "}\n";
    opts.base.jsonl->flush();
}

FleetResult
Coordinator::run()
{
    FleetResult res;
    res.planDigest = shardPlan.planDigest;
    res.totalEdges = global.frontier().totalEdges();

    if (opts.base.jsonl) {
        *opts.base.jsonl
            << "{\"event\":\"fleet_start\",\"workload\":\""
            << opts.base.label << "\",\"shards\":" << shardPlan.shards
            << ",\"seed\":" << opts.base.seed
            << ",\"max_runs\":" << opts.base.budget.maxRuns
            << ",\"round_runs\":"
            << (opts.roundRuns
                    ? opts.roundRuns
                    : uint64_t(opts.shards) * opts.base.batchSize)
            << ",\"transport\":\"" << transport->name()
            << "\",\"total_edges\":" << res.totalEdges
            << ",\"config_hash\":\""
            << fmtHex(core::configHash(opts.base.config))
            << "\",\"plan_digest\":\"" << fmtHex(shardPlan.planDigest)
            << "\"}\n";
        opts.base.jsonl->flush();
    }

    if (!opts.resumeFrom.empty()) {
        // Durable-session restart: restore the merged state and let
        // the session's workers redial through the reconnect path —
        // unless the checkpoint already satisfies a stop condition,
        // in which case there is nothing left to reattach for.
        resumeState(res);
        if (!checkStop(res))
            reattachFleet(res);
    } else {
        establishFleet(res);
    }

    uint64_t roundTotal =
        opts.roundRuns ? opts.roundRuns
                       : uint64_t(opts.shards) * opts.base.batchSize;
    pe_assert(roundTotal > 0, "fleet round budget must be positive");

    for (;;) {
        if (auto stop = checkStop(res)) {
            res.stop = *stop;
            break;
        }
        if (auto stop = enforceQuorum(res)) {
            res.stop = *stop;
            break;
        }

        uint64_t round = ++res.rounds;
        uint64_t thisRound = std::min<uint64_t>(
            roundTotal, opts.base.budget.maxRuns - res.runs);
        std::vector<uint64_t> budgets =
            allocateBudgets(thisRound, res);

        for (Shard &shard : fleet) {
            if (!shard.summary.alive)
                continue;
            try {
                sendRoundStart(shard, round,
                               budgets[shard.spec.shard]);
            } catch (const wire::WireError &err) {
                // The payload is stored; a reconnecting worker can
                // still pick the round up within the deadline.
                disconnectShard(shard, res, err.what());
            }
        }

        uint64_t roundRuns = 0;
        uint64_t roundNewEdges = 0;
        collectRound(res, round, roundRuns, roundNewEdges);

        if (roundNewEdges == 0)
            ++globalDryRounds;
        else
            globalDryRounds = 0;

        // Post-merge is the one durable instant: every worker is at
        // most one round ahead of this state, which is exactly what
        // the replay buffer covers on resume.
        maybeCheckpoint(res);

        emitRound(res, round, roundRuns, roundNewEdges);
    }

    shutdownWorkers();

    res.corpusSize = global.size();
    res.edgesTaken = global.frontier().takenCovered();
    res.edgesCombined = global.frontier().combinedCovered();
    res.frontierDigest = explore::coverageDigest(global.frontier());
    if (pathTracker) {
        res.primePaths = pathTracker->numPaths();
        res.pathCoverSize = pathTracker->coverSize();
        res.pathsCompleted = pathTracker->completedCount();
        res.pathCoverCompleted = pathTracker->coverCompleted();
        res.pathDigest = pathTracker->digest();
    }

    // Corpus digest: FNV over every admitted entry's serialized
    // bytes, in admission order — the second reproducibility witness
    // next to the frontier digest.
    {
        wire::Encoder enc;
        for (const explore::CorpusEntry &entry : global.entries())
            explore::encodeEntry(enc, entry);
        uint64_t digest = fnvMix(kFnvOffset, global.size());
        for (char c : enc.buffer()) {
            digest ^= static_cast<unsigned char>(c);
            digest *= kFnvPrime;
        }
        res.corpusDigest = digest;
    }

    for (const Shard &shard : fleet)
        res.shards.push_back(shard.summary);

    emitDone(res);
    if (opts.status) {
        *opts.status << "[fleet] stopped (" << fleetStopName(res.stop)
                     << "): " << res.runs << " runs over "
                     << res.rounds << " rounds, corpus "
                     << res.corpusSize << ", edges "
                     << res.edgesCombined << "/" << res.totalEdges
                     << ", frontier digest "
                     << fmtHex(res.frontierDigest) << "\n";
    }
    return res;
}

FleetResult
runFleet(const isa::Program &program,
         std::vector<std::vector<int32_t>> seeds, FleetOptions opts)
{
    Coordinator coordinator(program, std::move(seeds),
                            std::move(opts));
    return coordinator.run();
}

} // namespace pe::fleet
