/**
 * @file
 * Software-PathExpander implementation.
 */

#include "src/swpe/software_pe.hh"

namespace pe::swpe
{

core::PeConfig
softwareConfig()
{
    core::PeConfig cfg = core::PeConfig::forMode(core::PeMode::Standard);
    cfg.costModel = core::CostModelKind::Software;
    return cfg;
}

core::RunResult
runSoftwarePe(const isa::Program &program,
              const std::vector<int32_t> &input,
              detect::Detector *detector, const core::PeConfig *base)
{
    core::PeConfig cfg = base ? *base : softwareConfig();
    cfg.mode = core::PeMode::Standard;
    cfg.costModel = core::CostModelKind::Software;
    core::PathExpanderEngine engine(program, cfg, detector);
    return engine.run(input);
}

} // namespace pe::swpe
