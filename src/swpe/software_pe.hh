/**
 * @file
 * Software-PathExpander (paper Section 5).
 *
 * The pure-software implementation uses PIN-style dynamic binary
 * instrumentation: every branch instruction is instrumented to
 * maintain the exercise history in a hash table and decide whether to
 * spawn; spawning saves the processor state through the checkpoint
 * API; every NT-Path memory write logs the old value into a
 * restore-log; and squashing replays the log and restores the
 * registers.
 *
 * Path semantics are identical to the hardware standard configuration
 * (so detection and coverage results match by construction — which is
 * also true in the paper, Section 7: "All these results of different
 * PathExpander implementation are similar").  Only the cost model
 * differs; that difference is the paper's headline 3-4 orders of
 * magnitude argument for the hardware design.
 */

#ifndef PE_SWPE_SOFTWARE_PE_HH
#define PE_SWPE_SOFTWARE_PE_HH

#include "src/core/engine.hh"

namespace pe::swpe
{

/** Default configuration of the software implementation. */
core::PeConfig softwareConfig();

/** Run @p program under software PathExpander. */
core::RunResult runSoftwarePe(const isa::Program &program,
                              const std::vector<int32_t> &input,
                              detect::Detector *detector = nullptr,
                              const core::PeConfig *base = nullptr);

} // namespace pe::swpe

#endif // PE_SWPE_SOFTWARE_PE_HH
