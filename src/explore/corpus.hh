/**
 * @file
 * The exploration corpus: the set of inputs worth mutating.
 *
 * The paper evaluates PathExpander against a fixed test suite
 * (Section 7.4); the exploration engine instead *grows* its suite.
 * The corpus is the classic coverage-guided feedback structure: an
 * input is admitted only if its run covered at least one branch edge
 * the global frontier had not seen (coverage-delta dedup), so the
 * corpus stays small — one representative per region of behavior —
 * while the frontier (the union of every run's coverage, NT-Path
 * edges included) only grows.
 *
 * Alongside the frontier the corpus keeps cross-run edge exercise
 * counts (coverage::EdgeExerciseCounts) over *every* run, admitted or
 * not; rescore() turns those into a per-entry rare-edge score that
 * the scheduler's energy function consumes.
 */

#ifndef PE_EXPLORE_CORPUS_HH
#define PE_EXPLORE_CORPUS_HH

#include <cstdint>
#include <vector>

#include "src/core/result.hh"
#include "src/coverage/coverage.hh"
#include "src/isa/program.hh"

namespace pe::explore
{

/** One admitted input and its scheduling signals. */
struct CorpusEntry
{
    CorpusEntry(std::vector<int32_t> in,
                coverage::BranchCoverage cov)
        : input(std::move(in)), coverage(std::move(cov))
    {}

    std::vector<int32_t> input;

    /** Combined coverage of the run that admitted this input. */
    coverage::BranchCoverage coverage;

    /** Edges this input added to the frontier when admitted. */
    size_t newEdges = 0;

    /** Rare edges this input reaches (refreshed by rescore()). */
    size_t rareEdges = 0;

    /**
     * NT-Paths of the admitting run that stopped at a resource bound
     * (CapacityOverflow / MaxLength): unexplored depth beyond the
     * sandbox's reach, i.e. deeper behavior a mutated input might
     * walk into on the taken path.
     */
    uint64_t ntEarlyStops = 0;

    uint64_t ntSpawned = 0;

    /** Batch index at which the entry joined (0 = seed batch). */
    uint64_t batchAdmitted = 0;

    /** How often the scheduler has picked this entry as a parent. */
    uint64_t timesScheduled = 0;

    /**
     * Static-prior seed weight (analysis::edgePotential summed over
     * the entry's uncovered branch directions), set at admission when
     * the explorer runs with useStaticPriors.  0 — the default —
     * leaves the energy function bit-identical to the prior-free
     * scheduler; it is recomputed after a checkpoint restore rather
     * than serialized.
     */
    double priorEnergy = 0.0;

    /**
     * Path-cover adjacency weight (PathCoverage::coverAdjacency over
     * this entry's coverage), maintained by the explorer when
     * ExploreOptions::pathObjective is on: recomputed at admission and
     * refreshed whenever the global completion bits change, since a
     * newly completed cover path stops contributing to every entry.
     * 0 by default, so the prior-free/path-free energies stay
     * bit-identical; recomputed after a checkpoint restore rather
     * than serialized, like priorEnergy.
     */
    double pathEnergy = 0.0;

    /**
     * True when the entry arrived from another shard over the fleet's
     * corpus-exchange rather than from a local run.  Foreign entries
     * schedule and mutate like any other, but a worker never exports
     * them back — that keeps the exchange echo-free (an entry crosses
     * each pipe at most once per direction).
     */
    bool foreign = false;
};

/** Corpus plus global frontier and cross-run edge exercise counts. */
class Corpus
{
  public:
    explicit Corpus(const isa::Program &program);

    /**
     * Account one finished run and admit @p input if its coverage
     * added a new edge to the frontier.  Returns the number of new
     * edges (0 means rejected).  Exercise counts accumulate either
     * way.
     */
    size_t consider(const std::vector<int32_t> &input,
                    const core::RunResult &result, uint64_t batch);

    /**
     * Admit an entry that another shard already vetted (fleet
     * corpus-exchange).  Same admission rule as consider() — at least
     * one edge new over the local frontier, exercise counts
     * accumulate either way — but the entry's run stats travel with
     * it instead of coming from a local RunResult, and the admitted
     * copy is flagged foreign so it is never exported back.  Returns
     * the number of locally-new edges (0 = rejected).
     */
    size_t considerForeign(CorpusEntry entry, uint64_t batch);

    /**
     * OR a serialized frontier (taken + NT words from a peer shard)
     * into the local frontier.  Word counts must match this program's
     * edge universe — the fleet validates the program fingerprint
     * before any frontier words cross the wire.
     */
    void mergeFrontierWords(const std::vector<uint64_t> &taken,
                            const std::vector<uint64_t> &nt);

    /**
     * Refresh every entry's rareEdges against the current exercise
     * counts: an edge is rare if its cross-run count is at or below
     * the @p percentile nearest-rank threshold.
     */
    void rescore(double percentile);

    const std::vector<CorpusEntry> &entries() const { return pool; }
    std::vector<CorpusEntry> &entries() { return pool; }
    size_t size() const { return pool.size(); }

    /** Union of every run's coverage (admitted or not). */
    const coverage::BranchCoverage &frontier() const { return front; }

    const coverage::EdgeExerciseCounts &exercise() const
    {
        return hits;
    }

    /**
     * Replace the whole corpus state from a checkpoint (explorer
     * resume): the entry pool, the frontier bitmaps and the exercise
     * counts, all of which the checkpoint stored together so they
     * stay mutually consistent.
     */
    void restore(std::vector<CorpusEntry> entries,
                 const std::vector<uint64_t> &frontierTaken,
                 const std::vector<uint64_t> &frontierNt,
                 const std::vector<uint32_t> &exerciseCounts,
                 uint64_t exerciseRuns);

  private:
    std::vector<CorpusEntry> pool;
    coverage::BranchCoverage front;
    coverage::EdgeExerciseCounts hits;
};

} // namespace pe::explore

#endif // PE_EXPLORE_CORPUS_HH
