/**
 * @file
 * Explorer-state serialization implementation.
 */

#include "src/explore/serialize.hh"

#include "src/explore/explorer.hh"
#include "src/isa/instruction.hh"
#include "src/support/status.hh"

namespace pe::explore
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void
fnvMix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
}

} // namespace

uint64_t
programFingerprint(const isa::Program &program)
{
    uint64_t h = kFnvOffset;
    for (char c : program.name)
        h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
    fnvMix(h, program.code.size());
    for (const auto &inst : program.code)
        fnvMix(h, isa::encode(inst));
    return h;
}

uint32_t
policyWord(const ExploreOptions &opts)
{
    return static_cast<uint32_t>(opts.policy) |
           (opts.useStaticPriors ? 0x100u : 0u) |
           (opts.pathObjective ? 0x200u : 0u);
}

uint64_t
coverageDigest(const coverage::BranchCoverage &cov)
{
    uint64_t h = kFnvOffset;
    fnvMix(h, cov.takenWords().size());
    for (uint64_t w : cov.takenWords())
        fnvMix(h, w);
    fnvMix(h, cov.ntWords().size());
    for (uint64_t w : cov.ntWords())
        fnvMix(h, w);
    return h;
}

void
encodeEntry(wire::Encoder &enc, const CorpusEntry &entry)
{
    enc.i32vec(entry.input);
    enc.u64vec(entry.coverage.takenWords());
    enc.u64vec(entry.coverage.ntWords());
    enc.u64(entry.newEdges);
    enc.u64(entry.rareEdges);
    enc.u64(entry.ntEarlyStops);
    enc.u64(entry.ntSpawned);
    enc.u64(entry.batchAdmitted);
    enc.u64(entry.timesScheduled);
    enc.u8(entry.foreign ? 1 : 0);
}

CorpusEntry
decodeEntry(wire::Decoder &dec, const isa::Program &program)
{
    std::vector<int32_t> input = dec.i32vec("entry input");
    auto taken = dec.u64vec("entry taken words");
    auto nt = dec.u64vec("entry nt words");
    coverage::BranchCoverage cov(program);
    // restoreWords() treats a size mismatch as a caller bug (abort);
    // wire data is unvalidated, so refuse it as a structured error
    // instead — the bitmaps were sized for a different program.
    if (taken.size() != cov.takenWords().size() ||
        nt.size() != cov.ntWords().size()) {
        throw wire::WireError(
            wire::WireErrorKind::Mismatch,
            detail::concat("entry coverage sized for a different "
                           "program: expected ",
                           cov.takenWords().size(), " words, found ",
                           taken.size()),
            cov.takenWords().size(), taken.size());
    }
    cov.restoreWords(taken, nt);
    CorpusEntry entry(std::move(input), std::move(cov));
    entry.newEdges = dec.u64("entry newEdges");
    entry.rareEdges = dec.u64("entry rareEdges");
    entry.ntEarlyStops = dec.u64("entry ntEarlyStops");
    entry.ntSpawned = dec.u64("entry ntSpawned");
    entry.batchAdmitted = dec.u64("entry batchAdmitted");
    entry.timesScheduled = dec.u64("entry timesScheduled");
    entry.foreign = dec.u8("entry foreign") != 0;
    return entry;
}

void
encodeBatchStats(wire::Encoder &enc, const ExploreBatchStats &stats)
{
    enc.u64(stats.batch);
    enc.u64(stats.batchRuns);
    enc.u64(stats.totalRuns);
    enc.u64(stats.admitted);
    enc.u64(stats.corpusSize);
    enc.u64(stats.takenEdges);
    enc.u64(stats.combinedEdges);
    enc.u64(stats.newEdges);
    enc.u64(stats.ntSpawned);
    enc.u64(stats.ntEarlyStops);
    enc.u64(stats.failedJobs);
    enc.u64(stats.pathsCompleted);
    enc.u64(stats.coverCompleted);
}

ExploreBatchStats
decodeBatchStats(wire::Decoder &dec)
{
    ExploreBatchStats s;
    s.batch = dec.u64("stats batch");
    s.batchRuns = dec.u64("stats batchRuns");
    s.totalRuns = dec.u64("stats totalRuns");
    s.admitted = dec.u64("stats admitted");
    s.corpusSize = dec.u64("stats corpusSize");
    s.takenEdges = dec.u64("stats takenEdges");
    s.combinedEdges = dec.u64("stats combinedEdges");
    s.newEdges = dec.u64("stats newEdges");
    s.ntSpawned = dec.u64("stats ntSpawned");
    s.ntEarlyStops = dec.u64("stats ntEarlyStops");
    s.failedJobs = dec.u64("stats failedJobs");
    s.pathsCompleted = dec.u64("stats pathsCompleted");
    s.coverCompleted = dec.u64("stats coverCompleted");
    return s;
}

} // namespace pe::explore
