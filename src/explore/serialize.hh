/**
 * @file
 * Explorer-state serialization: the shared vocabulary between the
 * on-disk checkpoint (PR 4) and the fleet's IPC frames.
 *
 * A checkpoint and a corpus-exchange frame carry the same nouns —
 * corpus entries with their coverage bitmaps, frontier words, batch
 * stats, the program fingerprint and the scheduling-policy word — so
 * this module owns their binary layout once, built on wire::Encoder /
 * wire::Decoder.  checkpoint.cc composes these into the versioned
 * disk file; src/fleet composes them into RoundStart / RoundDelta
 * payloads.  Either consumer changing a field changes both formats,
 * which is exactly the property that keeps a worker's view of an
 * entry bit-identical to what a checkpoint of that worker would hold.
 */

#ifndef PE_EXPLORE_SERIALIZE_HH
#define PE_EXPLORE_SERIALIZE_HH

#include <cstdint>

#include "src/explore/corpus.hh"
#include "src/fleet/wire.hh"
#include "src/isa/program.hh"

namespace pe::explore
{

struct ExploreBatchStats;
struct ExploreOptions;

/**
 * Identity of the program image this session explores: FNV-1a over
 * the workload name, the code size and every encoded instruction.
 * Data/locs changes that leave the code identical are deliberately
 * ignored — they cannot change control flow or the edge universe.
 */
uint64_t programFingerprint(const isa::Program &program);

/**
 * The checkpoint's "policy" word is really the full scheduling
 * contract: the SchedulePolicy enum in the low byte plus bit 8 for
 * useStaticPriors.  Prior seeding changes every energy after resume,
 * so a priors-on checkpoint must not silently continue a priors-off
 * session (or vice versa) any more than a policy swap may.
 */
uint32_t policyWord(const ExploreOptions &opts);

/**
 * Order-sensitive FNV-1a digest over a coverage tracker's taken + NT
 * words — the fleet's bit-reproducibility witness.  Two runs with the
 * same shard plan must produce the same digest; CI gates on it.
 */
uint64_t coverageDigest(const coverage::BranchCoverage &cov);

/** Everything a CorpusEntry carries, input and signals included. */
void encodeEntry(wire::Encoder &enc, const CorpusEntry &entry);

/**
 * Decode one entry against @p program's edge universe.  priorEnergy
 * is *not* on the wire: it is a pure function of (program, config,
 * coverage) and is recomputed by whoever admits the entry.
 */
CorpusEntry decodeEntry(wire::Decoder &dec,
                        const isa::Program &program);

void encodeBatchStats(wire::Encoder &enc,
                      const ExploreBatchStats &stats);
ExploreBatchStats decodeBatchStats(wire::Decoder &dec);

} // namespace pe::explore

#endif // PE_EXPLORE_SERIALIZE_HH
