/**
 * @file
 * Deterministic input mutation for the exploration engine.
 *
 * Workload inputs are flat `std::vector<int32_t>` word streams (the
 * sim::IoChannel format), so the mutator is format-agnostic: a small
 * havoc set — value replacement, insertion, deletion, span
 * duplication, splice with another corpus input, truncation — stacked
 * one to four deep per mutation.  Replacement values are drawn from
 * an alphabet harvested from the seed inputs plus a fixed table of
 * interesting constants, so command-stream workloads keep producing
 * mostly-wellformed streams while still reaching opcodes the seeds
 * never issue.
 *
 * All randomness comes from a pe::Rng handed in at construction —
 * no wall-clock, no global state — so a fixed exploration seed yields
 * a bit-identical corpus on every machine.
 */

#ifndef PE_EXPLORE_MUTATOR_HH
#define PE_EXPLORE_MUTATOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/support/rng.hh"

namespace pe::explore
{

struct MutatorOptions
{
    /** Hard cap on a mutated input's length, in words. */
    size_t maxLength = 1024;

    /** Max stacked havoc steps per mutate() call (>= 1). */
    unsigned maxStack = 4;
};

/** Deterministic havoc mutator over int32 word streams. */
class Mutator
{
  public:
    explicit Mutator(Rng rng, MutatorOptions opts = {});

    /** Harvest @p seed's distinct values into the alphabet. */
    void observe(const std::vector<int32_t> &seed);

    /**
     * Produce a mutant of @p base.  @p donor (possibly empty) is
     * another corpus input used by the splice step.  Never returns
     * an empty vector and never exceeds maxLength.
     */
    std::vector<int32_t>
    mutate(const std::vector<int32_t> &base,
           const std::vector<int32_t> &donor);

    const std::vector<int32_t> &alphabet() const { return values; }

    /**
     * RNG stream position, for explorer checkpoint/resume.  The
     * alphabet itself is not checkpointed: it is a pure function of
     * the observed seeds, which the resuming explorer re-observes.
     */
    uint64_t rngState() const { return rng.rawState(); }
    void setRngState(uint64_t s) { rng.setRawState(s); }

  private:
    int32_t pickValue();

    Rng rng;
    MutatorOptions opts;
    std::vector<int32_t> values;    //!< sorted distinct seed values
};

} // namespace pe::explore

#endif // PE_EXPLORE_MUTATOR_HH
