/**
 * @file
 * Corpus implementation.
 */

#include "src/explore/corpus.hh"

namespace pe::explore
{

Corpus::Corpus(const isa::Program &program)
    : front(program), hits(program)
{}

size_t
Corpus::consider(const std::vector<int32_t> &input,
                 const core::RunResult &result, uint64_t batch)
{
    hits.accumulate(result.coverage);

    size_t fresh = result.coverage.newEdgesOver(front);
    if (fresh == 0)
        return 0;
    front.mergeFrom(result.coverage);

    CorpusEntry entry(input, result.coverage);
    entry.newEdges = fresh;
    entry.batchAdmitted = batch;
    entry.ntSpawned = result.ntPathsSpawned;
    for (const auto &rec : result.ntRecords) {
        if (rec.cause == core::NtStopCause::CapacityOverflow ||
            rec.cause == core::NtStopCause::MaxLength) {
            ++entry.ntEarlyStops;
        }
    }
    pool.push_back(std::move(entry));
    return fresh;
}

size_t
Corpus::considerForeign(CorpusEntry entry, uint64_t batch)
{
    // The foreign run's coverage feeds the local rarity histogram
    // exactly once — the origin shard never re-sends an entry, so
    // cross-shard double counting cannot occur.
    hits.accumulate(entry.coverage);

    size_t fresh = entry.coverage.newEdgesOver(front);
    if (fresh == 0)
        return 0;
    front.mergeFrom(entry.coverage);

    entry.newEdges = fresh;
    entry.batchAdmitted = batch;
    entry.foreign = true;
    pool.push_back(std::move(entry));
    return fresh;
}

void
Corpus::mergeFrontierWords(const std::vector<uint64_t> &taken,
                           const std::vector<uint64_t> &nt)
{
    coverage::BranchCoverage peer(front);
    peer.restoreWords(taken, nt);
    front.mergeFrom(peer);
}

void
Corpus::restore(std::vector<CorpusEntry> entries,
                const std::vector<uint64_t> &frontierTaken,
                const std::vector<uint64_t> &frontierNt,
                const std::vector<uint32_t> &exerciseCounts,
                uint64_t exerciseRuns)
{
    pool = std::move(entries);
    front.restoreWords(frontierTaken, frontierNt);
    hits.restoreCounts(exerciseCounts, exerciseRuns);
}

void
Corpus::rescore(double percentile)
{
    uint32_t threshold = hits.rarityThreshold(percentile);
    for (CorpusEntry &entry : pool)
        entry.rareEdges = hits.countRareIn(entry.coverage, threshold);
}

} // namespace pe::explore
