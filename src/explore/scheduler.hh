/**
 * @file
 * Batch scheduling: which corpus entries to mutate next.
 *
 * The energy function is where coverage-per-run is won (Empc's
 * path-cover prioritization, Nagy et al.'s rare-edge weighting): an
 * entry earns energy for reaching rare edges (cross-run exercise
 * count below a percentile), for NT-Paths that hit a resource bound
 * (CapacityOverflow / MaxLength — depth the sandbox could not finish,
 * reachable on the taken path by a luckier input), and loses energy
 * the more often it has already been picked, so the search keeps
 * rotating through the frontier instead of hammering one seed.
 */

#ifndef PE_EXPLORE_SCHEDULER_HH
#define PE_EXPLORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "src/explore/corpus.hh"
#include "src/support/rng.hh"

namespace pe::explore
{

/** Parent-selection policy for the next batch. */
enum class SchedulePolicy : uint8_t
{
    UniformRandom,      //!< greedy-random: every entry equally likely
    RareEdgeWeighted,   //!< energy-weighted by rarity and early stops
};

const char *schedulePolicyName(SchedulePolicy policy);

/** Picks mutation parents for each batch. */
class Scheduler
{
  public:
    Scheduler(SchedulePolicy policy, Rng rng);

    /**
     * Choose @p batchSize parent indices into @p corpus (with
     * replacement) and bump each pick's timesScheduled.  The corpus
     * must be non-empty and rescore()d if the policy is rare-edge
     * weighted.
     */
    std::vector<size_t> pick(Corpus &corpus, size_t batchSize);

    /** The energy of one entry under the current policy. */
    double energy(const CorpusEntry &entry) const;

    /** RNG stream position, for explorer checkpoint/resume. */
    uint64_t rngState() const { return rng.rawState(); }
    void setRngState(uint64_t s) { rng.setRawState(s); }

  private:
    SchedulePolicy policy;
    Rng rng;
};

} // namespace pe::explore

#endif // PE_EXPLORE_SCHEDULER_HH
