/**
 * @file
 * Explorer checkpoint/resume.
 *
 * A checkpoint is everything the exploration loop's future depends
 * on, snapshotted at a batch boundary: the progress counters, the
 * three forked RNG stream positions, the frontier bitmaps, the
 * cross-run exercise counts, the full corpus and the per-batch
 * history.  Restoring it and continuing is bit-identical to never
 * having stopped, because the loop's only other inputs (program,
 * config, seeds) are validated to match.
 *
 * The file is binary, little-endian, versioned, and written
 * temp-then-atomic-rename: a kill -9 at any moment leaves either the
 * previous checkpoint or the new one, never a torn file.  Header
 * fields (config hash, master seed, schedule policy, a program
 * fingerprint) are checked on resume and mismatches are fatal — a
 * checkpoint silently applied to the wrong session would "resume"
 * into nonsense.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/explore/explorer.hh"
#include "src/isa/instruction.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"

namespace pe::explore
{

namespace
{

constexpr char magic[8] = {'P', 'E', 'X', 'C', 'K', 'P', '1', '\0'};
constexpr uint32_t checkpointVersion = 1;

void
putU32(std::ostream &os, uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 4);
}

void
putU64(std::ostream &os, uint64_t v)
{
    putU32(os, static_cast<uint32_t>(v));
    putU32(os, static_cast<uint32_t>(v >> 32));
}

uint32_t
getU32(std::istream &is)
{
    char b[4];
    is.read(b, 4);
    if (!is)
        pe_fatal("explorer checkpoint truncated");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(static_cast<unsigned char>(b[i]))
             << (8 * i);
    }
    return v;
}

uint64_t
getU64(std::istream &is)
{
    uint64_t lo = getU32(is);
    uint64_t hi = getU32(is);
    return lo | (hi << 32);
}

constexpr uint32_t sizeSanityCap = 1u << 26;

uint32_t
getCount(std::istream &is, const char *what)
{
    uint32_t n = getU32(is);
    if (n > sizeSanityCap)
        pe_fatal("explorer checkpoint ", what, " count implausible: ",
                 n);
    return n;
}

void
putU64Vec(std::ostream &os, const std::vector<uint64_t> &v)
{
    putU32(os, static_cast<uint32_t>(v.size()));
    for (uint64_t w : v)
        putU64(os, w);
}

std::vector<uint64_t>
getU64Vec(std::istream &is, const char *what)
{
    uint32_t n = getCount(is, what);
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        v.push_back(getU64(is));
    return v;
}

/**
 * Identity of the program image this session explores: FNV-1a over
 * the workload name, the code size and every encoded instruction.
 * Data/locs changes that leave the code identical are deliberately
 * ignored — they cannot change control flow or the edge universe.
 */
uint64_t
programFingerprint(const isa::Program &program)
{
    constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kFnvPrime = 0x100000001b3ull;
    uint64_t h = kFnvOffset;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
        }
    };
    for (char c : program.name)
        h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
    mix(program.code.size());
    for (const auto &inst : program.code)
        mix(isa::encode(inst));
    return h;
}

/**
 * The checkpoint's "policy" word is really the full scheduling
 * contract: the SchedulePolicy enum in the low byte plus bit 8 for
 * useStaticPriors.  Prior seeding changes every energy after resume,
 * so a priors-on checkpoint must not silently continue a priors-off
 * session (or vice versa) any more than a policy swap may.
 */
uint32_t
policyWord(const ExploreOptions &opts)
{
    return static_cast<uint32_t>(opts.policy) |
           (opts.useStaticPriors ? 0x100u : 0u);
}

} // namespace

void
Explorer::writeCheckpoint(const ExploreResult &res) const
{
    fault::site("explore.checkpoint_write");

    const std::string tmp = opts.checkpointPath + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            pe_fatal("cannot write checkpoint '", tmp, "'");

        os.write(magic, sizeof(magic));
        putU32(os, checkpointVersion);
        putU64(os, core::configHash(opts.config));
        putU64(os, opts.seed);
        putU64(os, programFingerprint(program));
        putU32(os, policyWord(opts));

        putU64(os, res.batches);
        putU64(os, res.runs);
        putU64(os, res.instructions);
        putU64(os, res.ntSpawned);
        putU64(os, res.failedJobs);
        putU32(os, dryBatches);

        putU64(os, mut.rngState());
        putU64(os, sched.rngState());
        putU64(os, donorRng.rawState());

        putU64Vec(os, corp.frontier().takenWords());
        putU64Vec(os, corp.frontier().ntWords());

        const auto &counts = corp.exercise().rawCounts();
        putU32(os, static_cast<uint32_t>(counts.size()));
        for (uint32_t c : counts)
            putU32(os, c);
        putU64(os, corp.exercise().runsAccumulated());

        putU32(os, static_cast<uint32_t>(corp.size()));
        for (const CorpusEntry &e : corp.entries()) {
            putU32(os, static_cast<uint32_t>(e.input.size()));
            for (int32_t w : e.input)
                putU32(os, static_cast<uint32_t>(w));
            putU64Vec(os, e.coverage.takenWords());
            putU64Vec(os, e.coverage.ntWords());
            putU64(os, e.newEdges);
            putU64(os, e.rareEdges);
            putU64(os, e.ntEarlyStops);
            putU64(os, e.ntSpawned);
            putU64(os, e.batchAdmitted);
            putU64(os, e.timesScheduled);
        }

        putU32(os, static_cast<uint32_t>(res.history.size()));
        for (const ExploreBatchStats &s : res.history) {
            putU64(os, s.batch);
            putU64(os, s.batchRuns);
            putU64(os, s.totalRuns);
            putU64(os, s.admitted);
            putU64(os, s.corpusSize);
            putU64(os, s.takenEdges);
            putU64(os, s.combinedEdges);
            putU64(os, s.newEdges);
            putU64(os, s.ntSpawned);
            putU64(os, s.ntEarlyStops);
            putU64(os, s.failedJobs);
        }

        os.flush();
        if (!os)
            pe_fatal("write to checkpoint '", tmp, "' failed");
    }

    if (std::rename(tmp.c_str(), opts.checkpointPath.c_str()) != 0) {
        pe_fatal("cannot rename checkpoint '", tmp, "' to '",
                 opts.checkpointPath, "'");
    }
}

void
Explorer::resume(ExploreResult &res)
{
    std::ifstream is(opts.resumeFrom, std::ios::binary);
    if (!is)
        pe_fatal("cannot open checkpoint '", opts.resumeFrom, "'");

    char m[8];
    is.read(m, sizeof(m));
    if (!is || std::string(m, sizeof(m)) !=
                   std::string(magic, sizeof(magic))) {
        pe_fatal("'", opts.resumeFrom,
                 "' is not an explorer checkpoint");
    }
    uint32_t version = getU32(is);
    if (version != checkpointVersion) {
        pe_fatal("checkpoint '", opts.resumeFrom, "' is version ",
                 version, ", expected ", checkpointVersion);
    }
    uint64_t cfgHash = getU64(is);
    if (cfgHash != core::configHash(opts.config)) {
        pe_fatal("checkpoint '", opts.resumeFrom,
                 "' was taken under a different engine config");
    }
    uint64_t seed = getU64(is);
    if (seed != opts.seed) {
        pe_fatal("checkpoint '", opts.resumeFrom,
                 "' was taken with master seed ", seed, ", not ",
                 opts.seed);
    }
    uint64_t fp = getU64(is);
    if (fp != programFingerprint(program)) {
        pe_fatal("checkpoint '", opts.resumeFrom,
                 "' was taken against a different program image");
    }
    uint32_t policy = getU32(is);
    if (policy != policyWord(opts)) {
        pe_fatal("checkpoint '", opts.resumeFrom,
                 "' was taken under a different schedule policy or "
                 "prior-seeding setting");
    }

    res.batches = getU64(is);
    res.runs = getU64(is);
    res.instructions = getU64(is);
    res.ntSpawned = getU64(is);
    res.failedJobs = getU64(is);
    dryBatches = getU32(is);

    mut.setRngState(getU64(is));
    sched.setRngState(getU64(is));
    donorRng.setRawState(getU64(is));

    auto frontierTaken = getU64Vec(is, "frontier-taken");
    auto frontierNt = getU64Vec(is, "frontier-nt");

    uint32_t nCounts = getCount(is, "exercise");
    std::vector<uint32_t> counts;
    counts.reserve(nCounts);
    for (uint32_t i = 0; i < nCounts; ++i)
        counts.push_back(getU32(is));
    uint64_t exerciseRuns = getU64(is);

    uint32_t nEntries = getCount(is, "corpus");
    std::vector<CorpusEntry> entries;
    entries.reserve(nEntries);
    for (uint32_t i = 0; i < nEntries; ++i) {
        uint32_t len = getCount(is, "input");
        std::vector<int32_t> input;
        input.reserve(len);
        for (uint32_t j = 0; j < len; ++j)
            input.push_back(static_cast<int32_t>(getU32(is)));
        auto taken = getU64Vec(is, "entry-taken");
        auto nt = getU64Vec(is, "entry-nt");
        coverage::BranchCoverage cov(program);
        cov.restoreWords(taken, nt);
        CorpusEntry e(std::move(input), std::move(cov));
        e.newEdges = getU64(is);
        e.rareEdges = getU64(is);
        e.ntEarlyStops = getU64(is);
        e.ntSpawned = getU64(is);
        e.batchAdmitted = getU64(is);
        e.timesScheduled = getU64(is);
        entries.push_back(std::move(e));
    }
    corp.restore(std::move(entries), frontierTaken, frontierNt, counts,
                 exerciseRuns);

    // priorEnergy is a pure function of (program, config, entry
    // coverage), so it is recomputed here rather than serialized —
    // the checkpoint format stays prior-agnostic and the restored
    // energies cannot drift from what a fresh session would compute.
    if (opts.useStaticPriors) {
        for (CorpusEntry &e : corp.entries())
            e.priorEnergy = entryPriorEnergy(e);
    }

    uint32_t nStats = getCount(is, "history");
    res.history.clear();
    res.history.reserve(nStats);
    for (uint32_t i = 0; i < nStats; ++i) {
        ExploreBatchStats s;
        s.batch = getU64(is);
        s.batchRuns = getU64(is);
        s.totalRuns = getU64(is);
        s.admitted = getU64(is);
        s.corpusSize = getU64(is);
        s.takenEdges = getU64(is);
        s.combinedEdges = getU64(is);
        s.newEdges = getU64(is);
        s.ntSpawned = getU64(is);
        s.ntEarlyStops = getU64(is);
        s.failedJobs = getU64(is);
        res.history.push_back(s);
    }

    inform("resumed from '", opts.resumeFrom, "': ", res.batches,
           " batches, ", res.runs, " runs, ",
           corp.frontier().combinedCovered(), " edges, corpus ",
           corp.size());
}

} // namespace pe::explore
