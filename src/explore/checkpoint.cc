/**
 * @file
 * Explorer checkpoint/resume.
 *
 * A checkpoint is everything the exploration loop's future depends
 * on, snapshotted at a batch boundary: the progress counters, the
 * three forked RNG stream positions, the frontier bitmaps, the
 * cross-run exercise counts, the full corpus and the per-batch
 * history.  Restoring it and continuing is bit-identical to never
 * having stopped, because the loop's only other inputs (program,
 * config, seeds) are validated to match.
 *
 * The byte layout is the shared explorer-state codec
 * (src/explore/serialize.hh over wire::Encoder/Decoder) — the same
 * encoding the fleet ships over its IPC frames — wrapped in a magic +
 * version + identity header and written temp-then-atomic-rename: a
 * kill -9 at any moment leaves either the previous checkpoint or the
 * new one, never a torn file.  Header fields (config hash, master
 * seed, schedule policy, a program fingerprint) are checked on resume
 * and mismatches are fatal with the expected and found values spelled
 * out — a checkpoint silently applied to the wrong session would
 * "resume" into nonsense, and a bare "mismatch" would leave the
 * operator of a many-session fleet guessing which knob diverged.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/explore/explorer.hh"
#include "src/explore/serialize.hh"
#include "src/fleet/wire.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::explore
{

namespace
{

constexpr char magic[8] = {'P', 'E', 'X', 'C', 'K', 'P', '2', '\0'};

/**
 * Version 2: the shared serialize.hh codec (entries gained the
 * `foreign` flag the fleet's corpus-exchange needs).  Version 3:
 * batch stats carry pathsCompleted/coverCompleted and a prime-path
 * tracker section follows the history (present flag + PathCoverage
 * state).  Older files are refused with both numbers reported.
 */
constexpr uint32_t checkpointVersion = 3;

} // namespace

void
Explorer::writeCheckpoint(const ExploreResult &res) const
{
    fault::site("explore.checkpoint_write");

    wire::Encoder enc;
    enc.bytes(magic, sizeof(magic));
    enc.u32(checkpointVersion);
    enc.u64(core::configHash(opts.config));
    enc.u64(opts.seed);
    enc.u64(programFingerprint(program));
    enc.u32(policyWord(opts));

    enc.u64(res.batches);
    enc.u64(res.runs);
    enc.u64(res.instructions);
    enc.u64(res.ntSpawned);
    enc.u64(res.failedJobs);
    enc.u32(dryBatches);

    enc.u64(mut.rngState());
    enc.u64(sched.rngState());
    enc.u64(donorRng.rawState());

    enc.u64vec(corp.frontier().takenWords());
    enc.u64vec(corp.frontier().ntWords());

    enc.u32vec(corp.exercise().rawCounts());
    enc.u64(corp.exercise().runsAccumulated());

    enc.u32(static_cast<uint32_t>(corp.size()));
    for (const CorpusEntry &e : corp.entries())
        encodeEntry(enc, e);

    enc.u32(static_cast<uint32_t>(res.history.size()));
    for (const ExploreBatchStats &s : res.history)
        encodeBatchStats(enc, s);

    // Prime-path tracker: presence is implied by the config (the
    // recordEdgeTrace flag is inside configHash, validated above),
    // but an explicit flag keeps the layout self-describing.
    enc.u8(paths ? 1 : 0);
    if (paths)
        paths->encodeState(enc);

    const std::string tmp = opts.checkpointPath + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            pe_fatal("cannot write checkpoint '", tmp, "'");
        os.write(enc.buffer().data(),
                 static_cast<std::streamsize>(enc.size()));
        os.flush();
        if (!os)
            pe_fatal("write to checkpoint '", tmp, "' failed");
    }

    if (std::rename(tmp.c_str(), opts.checkpointPath.c_str()) != 0) {
        pe_fatal("cannot rename checkpoint '", tmp, "' to '",
                 opts.checkpointPath, "'");
    }
}

void
Explorer::resume(ExploreResult &res)
{
    std::ifstream is(opts.resumeFrom, std::ios::binary);
    if (!is)
        pe_fatal("cannot open checkpoint '", opts.resumeFrom, "'");
    std::ostringstream raw;
    raw << is.rdbuf();
    const std::string bytes = raw.str();

    try {
        wire::Decoder dec(bytes);

        char m[8];
        for (size_t i = 0; i < sizeof(m); ++i)
            m[i] = static_cast<char>(dec.u8("checkpoint magic"));
        if (std::string(m, sizeof(m)) !=
            std::string(magic, sizeof(magic))) {
            pe_fatal("'", opts.resumeFrom,
                     "' is not an explorer checkpoint");
        }
        uint32_t version = dec.u32("checkpoint version");
        if (version != checkpointVersion) {
            pe_fatal("checkpoint '", opts.resumeFrom,
                     "' version mismatch: expected ",
                     checkpointVersion, ", found ", version);
        }
        uint64_t cfgHash = dec.u64("config hash");
        if (cfgHash != core::configHash(opts.config)) {
            pe_fatal("checkpoint '", opts.resumeFrom,
                     "' engine-config mismatch: this session's "
                     "config hash is 0x",
                     fmtHex(core::configHash(opts.config)),
                     ", checkpoint was taken under 0x",
                     fmtHex(cfgHash));
        }
        uint64_t seed = dec.u64("master seed");
        if (seed != opts.seed) {
            pe_fatal("checkpoint '", opts.resumeFrom,
                     "' master-seed mismatch: expected ", opts.seed,
                     ", found ", seed);
        }
        uint64_t fp = dec.u64("program fingerprint");
        if (fp != programFingerprint(program)) {
            pe_fatal("checkpoint '", opts.resumeFrom,
                     "' program mismatch: this session explores "
                     "image 0x",
                     fmtHex(programFingerprint(program)),
                     ", checkpoint was taken against 0x", fmtHex(fp));
        }
        uint32_t policy = dec.u32("policy word");
        if (policy != policyWord(opts)) {
            pe_fatal("checkpoint '", opts.resumeFrom,
                     "' schedule-policy/prior mismatch: expected "
                     "policy word 0x",
                     fmtHex(policyWord(opts)), ", found 0x",
                     fmtHex(policy));
        }

        res.batches = dec.u64("batches");
        res.runs = dec.u64("runs");
        res.instructions = dec.u64("instructions");
        res.ntSpawned = dec.u64("ntSpawned");
        res.failedJobs = dec.u64("failedJobs");
        dryBatches = dec.u32("dryBatches");

        mut.setRngState(dec.u64("mutator rng"));
        sched.setRngState(dec.u64("scheduler rng"));
        donorRng.setRawState(dec.u64("donor rng"));

        auto frontierTaken = dec.u64vec("frontier taken words");
        auto frontierNt = dec.u64vec("frontier nt words");

        auto counts = dec.u32vec("exercise counts");
        uint64_t exerciseRuns = dec.u64("exercise runs");

        uint32_t nEntries = dec.count("corpus entries");
        std::vector<CorpusEntry> entries;
        entries.reserve(nEntries);
        for (uint32_t i = 0; i < nEntries; ++i)
            entries.push_back(decodeEntry(dec, program));
        corp.restore(std::move(entries), frontierTaken, frontierNt,
                     counts, exerciseRuns);

        // priorEnergy is a pure function of (program, config, entry
        // coverage), so it is recomputed here rather than serialized —
        // the checkpoint format stays prior-agnostic and the restored
        // energies cannot drift from what a fresh session would
        // compute.
        if (opts.useStaticPriors) {
            for (CorpusEntry &e : corp.entries())
                e.priorEnergy = entryPriorEnergy(e);
        }

        uint32_t nStats = dec.count("history");
        res.history.clear();
        res.history.reserve(nStats);
        for (uint32_t i = 0; i < nStats; ++i)
            res.history.push_back(decodeBatchStats(dec));

        const bool hasTracker = dec.u8("path tracker flag") != 0;
        if (hasTracker != (paths != nullptr)) {
            // Unreachable through the public API — recordEdgeTrace is
            // part of the config hash checked above — but the layout
            // check costs nothing.
            throw wire::WireError(wire::WireErrorKind::Mismatch,
                                  "path tracker presence mismatch",
                                  paths != nullptr ? 1 : 0,
                                  hasTracker ? 1 : 0);
        }
        if (paths)
            paths->decodeState(dec);
        if (opts.pathObjective)
            refreshPathEnergies();

        dec.expectEnd("checkpoint");
    } catch (const wire::WireError &err) {
        pe_fatal("checkpoint '", opts.resumeFrom, "' unreadable (",
                 wireErrorKindName(err.kind()), "): ", err.what());
    }

    inform("resumed from '", opts.resumeFrom, "': ", res.batches,
           " batches, ", res.runs, " runs, ",
           corp.frontier().combinedCovered(), " edges, corpus ",
           corp.size());
}

} // namespace pe::explore
