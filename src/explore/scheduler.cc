/**
 * @file
 * Scheduler implementation.
 */

#include "src/explore/scheduler.hh"

#include <algorithm>

#include "src/support/status.hh"

namespace pe::explore
{

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::UniformRandom: return "uniform-random";
      case SchedulePolicy::RareEdgeWeighted: return "rare-edge";
    }
    return "?";
}

Scheduler::Scheduler(SchedulePolicy policy, Rng rng)
    : policy(policy), rng(rng)
{}

double
Scheduler::energy(const CorpusEntry &entry) const
{
    if (policy == SchedulePolicy::UniformRandom)
        return 1.0;
    // Rare edges dominate; early-stopped NT-Paths add a bounded
    // bonus; repeated selection decays the whole product so fresh
    // frontier entries get their turn.
    double rare = 1.0 + 4.0 * static_cast<double>(entry.rareEdges);
    double depth =
        1.0 + 0.25 * static_cast<double>(
                         std::min<uint64_t>(entry.ntEarlyStops, 8));
    double fatigue =
        1.0 + 0.5 * static_cast<double>(entry.timesScheduled);
    // Static-prior seeding: priorEnergy is 0 unless the explorer
    // computed spawn priors, so the default stays bit-identical.
    double prior = 1.0 + entry.priorEnergy;
    // Path-cover adjacency: 0 unless the explorer runs with
    // pathObjective, preserving bit-identity the same way.
    double pathw = 1.0 + entry.pathEnergy;
    return rare * depth * prior * pathw / fatigue;
}

std::vector<size_t>
Scheduler::pick(Corpus &corpus, size_t batchSize)
{
    pe_assert(corpus.size() > 0, "scheduling over an empty corpus");
    auto &entries = corpus.entries();

    std::vector<size_t> picks;
    picks.reserve(batchSize);
    std::vector<double> cumulative(entries.size());
    for (size_t b = 0; b < batchSize; ++b) {
        // Recompute each draw: timesScheduled feedback within the
        // batch spreads picks across entries of similar energy.
        double sum = 0.0;
        for (size_t i = 0; i < entries.size(); ++i) {
            sum += energy(entries[i]);
            cumulative[i] = sum;
        }
        double r = rng.nextDouble() * sum;
        size_t idx = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(),
                             r) -
            cumulative.begin());
        if (idx >= entries.size())
            idx = entries.size() - 1;
        ++entries[idx].timesScheduled;
        picks.push_back(idx);
    }
    return picks;
}

} // namespace pe::explore
