/**
 * @file
 * Exploration loop implementation.
 */

#include "src/explore/explorer.hh"

#include <algorithm>
#include <ostream>

#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::explore
{

const char *
exploreStopName(ExploreStop stop)
{
    switch (stop) {
      case ExploreStop::RunBudget: return "run-budget";
      case ExploreStop::InstructionBudget: return "instruction-budget";
      case ExploreStop::Plateau: return "plateau";
      case ExploreStop::NoSeeds: return "no-seeds";
    }
    return "?";
}

Explorer::Explorer(const isa::Program &program,
                   std::vector<std::vector<int32_t>> seeds,
                   ExploreOptions opts)
    : program(program), seeds(std::move(seeds)),
      opts(std::move(opts)), corp(program),
      mut(Rng(this->opts.seed).fork(1), this->opts.mutator),
      sched(this->opts.policy, Rng(this->opts.seed).fork(2)),
      donorRng(Rng(this->opts.seed).fork(3))
{
    for (const auto &seed : this->seeds)
        mut.observe(seed);
}

void
Explorer::runBatch(const std::vector<std::vector<int32_t>> &inputs,
                   ExploreResult &res)
{
    std::vector<core::CampaignJob> jobs;
    jobs.reserve(inputs.size());
    for (const auto &input : inputs) {
        core::CampaignJob job;
        job.program = &program;
        job.input = input;
        job.config = opts.config;
        job.detectorFactory = opts.detectorFactory;
        jobs.push_back(std::move(job));
    }

    size_t before = corp.frontier().combinedCovered();
    core::CampaignOptions copts;
    copts.threads = opts.threads;
    if (opts.onRun) {
        copts.onResult = [this](size_t, const core::RunResult &r) {
            opts.onRun(r);
        };
    }
    auto outcome = core::runCampaign(jobs, copts);

    ExploreBatchStats stats;
    stats.batch = res.batches;
    stats.batchRuns = outcome.results.size();
    for (size_t i = 0; i < outcome.results.size(); ++i) {
        const core::RunResult &result = outcome.results[i];
        if (corp.consider(inputs[i], result, res.batches) > 0)
            ++stats.admitted;
        res.instructions +=
            result.takenInstructions + result.ntInstructions;
        res.ntSpawned += result.ntPathsSpawned;
        stats.ntSpawned += result.ntPathsSpawned;
        for (const auto &rec : result.ntRecords) {
            if (rec.cause == core::NtStopCause::CapacityOverflow ||
                rec.cause == core::NtStopCause::MaxLength) {
                ++stats.ntEarlyStops;
            }
        }
    }
    corp.rescore(opts.rarePercentile);

    res.runs += outcome.results.size();
    res.batches += 1;

    stats.totalRuns = res.runs;
    stats.corpusSize = corp.size();
    stats.takenEdges = corp.frontier().takenCovered();
    stats.combinedEdges = corp.frontier().combinedCovered();
    stats.newEdges = stats.combinedEdges - before;
    dryBatches = stats.newEdges == 0 ? dryBatches + 1 : 0;

    emitBatch(stats);
    res.history.push_back(stats);
}

ExploreResult
Explorer::run()
{
    ExploreResult res;
    emitHeader();

    if (seeds.empty() || opts.budget.maxRuns == 0) {
        res.stop = ExploreStop::NoSeeds;
        emitDone(res);
        return res;
    }

    // Batch 0: the seeds themselves, trimmed to the run budget.
    std::vector<std::vector<int32_t>> inputs = seeds;
    if (inputs.size() > opts.budget.maxRuns)
        inputs.resize(opts.budget.maxRuns);

    for (;;) {
        runBatch(inputs, res);

        if (res.runs >= opts.budget.maxRuns) {
            res.stop = ExploreStop::RunBudget;
            break;
        }
        if (opts.budget.maxInstructions &&
            res.instructions >= opts.budget.maxInstructions) {
            res.stop = ExploreStop::InstructionBudget;
            break;
        }
        if (opts.budget.plateauBatches &&
            dryBatches >= opts.budget.plateauBatches) {
            res.stop = ExploreStop::Plateau;
            break;
        }
        if (corp.size() == 0) {
            // Only possible for branch-free programs: nothing can
            // ever be admitted, so mutation has nothing to work on.
            res.stop = ExploreStop::Plateau;
            break;
        }

        size_t batch = std::min<uint64_t>(
            opts.batchSize, opts.budget.maxRuns - res.runs);
        auto parents = sched.pick(corp, batch);
        inputs.clear();
        inputs.reserve(parents.size());
        for (size_t idx : parents) {
            const auto &donor =
                corp.entries()[donorRng.nextBelow(corp.size())]
                    .input;
            inputs.push_back(
                mut.mutate(corp.entries()[idx].input, donor));
        }
    }

    emitDone(res);
    return res;
}

void
Explorer::emitHeader() const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"start\",\"workload\":\""
                << opts.label << "\",\"policy\":\""
                << schedulePolicyName(opts.policy) << "\",\"mode\":\""
                << core::peModeName(opts.config.mode)
                << "\",\"seed\":" << opts.seed
                << ",\"batch_size\":" << opts.batchSize
                << ",\"max_runs\":" << opts.budget.maxRuns
                << ",\"max_instructions\":"
                << opts.budget.maxInstructions
                << ",\"plateau_batches\":"
                << opts.budget.plateauBatches
                << ",\"total_edges\":"
                << corp.frontier().totalEdges()
                << ",\"config_hash\":\""
                << fmtHex(core::configHash(opts.config)) << "\"}\n";
}

void
Explorer::emitBatch(const ExploreBatchStats &stats) const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"batch\",\"batch\":" << stats.batch
                << ",\"runs\":" << stats.batchRuns
                << ",\"total_runs\":" << stats.totalRuns
                << ",\"admitted\":" << stats.admitted
                << ",\"corpus\":" << stats.corpusSize
                << ",\"edges_taken\":" << stats.takenEdges
                << ",\"edges_combined\":" << stats.combinedEdges
                << ",\"new_edges\":" << stats.newEdges
                << ",\"nt_spawned\":" << stats.ntSpawned
                << ",\"nt_early_stops\":" << stats.ntEarlyStops
                << "}\n";
}

void
Explorer::emitDone(const ExploreResult &res) const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"done\",\"stop\":\""
                << exploreStopName(res.stop)
                << "\",\"batches\":" << res.batches
                << ",\"runs\":" << res.runs
                << ",\"instructions\":" << res.instructions
                << ",\"nt_spawned\":" << res.ntSpawned
                << ",\"corpus\":" << corp.size()
                << ",\"edges_taken\":"
                << corp.frontier().takenCovered()
                << ",\"edges_combined\":"
                << corp.frontier().combinedCovered() << "}\n";
    opts.jsonl->flush();
}

} // namespace pe::explore
