/**
 * @file
 * Exploration loop implementation.
 */

#include "src/explore/explorer.hh"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "src/explore/serialize.hh"
#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::explore
{

const char *
exploreStopName(ExploreStop stop)
{
    switch (stop) {
      case ExploreStop::RunBudget: return "run-budget";
      case ExploreStop::InstructionBudget: return "instruction-budget";
      case ExploreStop::Plateau: return "plateau";
      case ExploreStop::NoSeeds: return "no-seeds";
      case ExploreStop::Interrupted: return "interrupted";
    }
    return "?";
}

Explorer::Explorer(const isa::Program &program,
                   std::vector<std::vector<int32_t>> seeds,
                   ExploreOptions opts)
    : program(program), seeds(std::move(seeds)),
      opts(std::move(opts)), corp(program),
      mut(Rng(this->opts.seed).fork(1), this->opts.mutator),
      sched(this->opts.policy, Rng(this->opts.seed).fork(2)),
      donorRng(Rng(this->opts.seed).fork(3))
{
    if (this->opts.useStaticPriors) {
        priors = analysis::computeBranchPriors(
            program, this->opts.config.maxNtPathLength);
    }
    pe_assert(!this->opts.pathObjective ||
                  this->opts.config.recordEdgeTrace,
              "pathObjective requires config.recordEdgeTrace");
    if (this->opts.config.recordEdgeTrace) {
        paths = std::make_unique<coverage::PathCoverage>(program);
    }
    for (const auto &seed : this->seeds)
        mut.observe(seed);
}

double
Explorer::entryPriorEnergy(const CorpusEntry &entry) const
{
    if (!opts.useStaticPriors)
        return 0.0;
    const auto &taken = entry.coverage.takenWords();
    const auto &nt = entry.coverage.ntWords();
    auto covered = [&](uint32_t pc, bool dir) {
        uint64_t bit =
            (static_cast<uint64_t>(pc) << 1) | (dir ? 1 : 0);
        size_t word = static_cast<size_t>(bit >> 6);
        if (word >= taken.size())
            return false;
        uint64_t mask = uint64_t{1} << (bit & 63);
        return ((taken[word] | nt[word]) & mask) != 0;
    };
    // Only edges *adjacent* to the entry count: branches the run
    // reached in one direction but not the other.  A mutation of this
    // input stands a chance of flipping exactly those; branches the
    // run never touched weigh every entry equally and carry no
    // scheduling signal.
    double sum = 0.0;
    for (const auto &[pc, edges] : priors.branches) {
        bool fallCov = covered(pc, false);
        bool takenCov = covered(pc, true);
        if (fallCov == takenCov)
            continue;
        int missing = fallCov ? 1 : 0;
        sum +=
            analysis::edgePotential(edges[missing], priors.maxLen);
    }
    return sum;
}

double
Explorer::entryPathEnergy(const CorpusEntry &entry) const
{
    if (!opts.pathObjective || !paths)
        return 0.0;
    return paths->coverAdjacency(entry.coverage.takenWords(),
                                 entry.coverage.ntWords());
}

void
Explorer::refreshPathEnergies()
{
    for (CorpusEntry &entry : corp.entries())
        entry.pathEnergy = entryPathEnergy(entry);
}

void
Explorer::runBatch(const std::vector<std::vector<int32_t>> &inputs,
                   ExploreResult &res)
{
    std::vector<core::CampaignJob> jobs;
    jobs.reserve(inputs.size());
    for (const auto &input : inputs) {
        core::CampaignJob job;
        job.program = &program;
        job.input = input;
        job.config = opts.config;
        job.detectorFactory = opts.detectorFactory;
        jobs.push_back(std::move(job));
    }

    size_t before = corp.frontier().combinedCovered();
    core::CampaignOptions copts;
    copts.threads = opts.threads;
    copts.failPolicy = opts.failPolicy;
    copts.jobDeadline = opts.jobDeadline;
    if (opts.onRun) {
        copts.onResult = [this](size_t, const core::RunResult &r) {
            opts.onRun(r);
        };
    }
    auto outcome = core::runCampaign(jobs, copts);

    fault::site("explore.batch_merge");

    ExploreBatchStats stats;
    stats.batch = res.batches;
    stats.batchRuns = outcome.results.size();
    stats.failedJobs = outcome.failures.size();
    const uint64_t pathsBefore = paths ? paths->completedCount() : 0;
    for (size_t k = 0; k < outcome.results.size(); ++k) {
        const core::RunResult &result = outcome.results[k];
        if (paths) {
            // Job order — commutative OR, but keep the fold order
            // deterministic anyway so the counters match too.
            paths->fold(result.branchTrace,
                        result.branchTraceTruncated,
                        result.stopCause ==
                            core::RunStopCause::Completed);
        }
        // Under Continue/Retry the surviving results are a job-order
        // subsequence; resultJobIndex maps each back to its input.
        const auto &input = inputs[outcome.resultJobIndex[k]];
        if (corp.consider(input, result, res.batches) > 0) {
            ++stats.admitted;
            if (opts.useStaticPriors) {
                CorpusEntry &admitted = corp.entries().back();
                admitted.priorEnergy = entryPriorEnergy(admitted);
            }
        }
        res.instructions +=
            result.takenInstructions + result.ntInstructions;
        res.ntSpawned += result.ntPathsSpawned;
        stats.ntSpawned += result.ntPathsSpawned;
        for (const auto &rec : result.ntRecords) {
            if (rec.cause == core::NtStopCause::CapacityOverflow ||
                rec.cause == core::NtStopCause::MaxLength) {
                ++stats.ntEarlyStops;
            }
        }
    }
    // Failed jobs consumed their budget slot even without a result;
    // counting them keeps a persistently-failing job from extending
    // the exploration forever.
    res.runs += outcome.results.size() + outcome.failures.size();
    res.failedJobs += outcome.failures.size();
    res.batches += 1;

    stats.totalRuns = res.runs;
    stats.corpusSize = corp.size();
    stats.takenEdges = corp.frontier().takenCovered();
    stats.combinedEdges = corp.frontier().combinedCovered();
    stats.newEdges = stats.combinedEdges - before;
    dryBatches = stats.newEdges == 0 ? dryBatches + 1 : 0;

    // Percentile-rarity rescore is O(corpus * edges) — by far the
    // most expensive part of a dry batch.  Admission requires
    // newEdgesOver(frontier) > 0, so a dry batch adds no entries and
    // every existing entry keeps the ranking the last rescore gave
    // it; only the exercise-count histogram drifts (rejected runs
    // still accumulate), and that drift is folded in wholesale at the
    // next admitting batch.  Checkpoint resume is unaffected: the
    // gate is stateless per batch and serialized entries carry their
    // rareEdges.
    if (stats.newEdges > 0)
        corp.rescore(opts.rarePercentile);

    if (paths) {
        stats.pathsCompleted = paths->completedCount();
        stats.coverCompleted = paths->coverCompleted();
        // Adjacency energies go stale two ways: a completed cover
        // path stops contributing to *every* entry, and a new entry
        // starts from 0.  Both triggers are deterministic, so resumed
        // and uninterrupted sessions refresh at the same batches.
        if (opts.pathObjective &&
            (stats.pathsCompleted != pathsBefore ||
             stats.admitted > 0)) {
            refreshPathEnergies();
        }
    }

    emitBatch(stats);
    res.history.push_back(stats);
}

void
Explorer::maybeCheckpoint(const ExploreResult &res, bool force)
{
    if (opts.checkpointPath.empty())
        return;
    uint64_t every = std::max<uint64_t>(opts.checkpointEvery, 1);
    if (!force && res.batches - lastCheckpointBatch < every)
        return;
    if (res.batches == lastCheckpointBatch && lastCheckpointBatch > 0)
        return;     // nothing ran since the last snapshot
    writeCheckpoint(res);
    lastCheckpointBatch = res.batches;
}

void
Explorer::runSeedBatch()
{
    seeded = true;
    // Batch 0: the seeds themselves, trimmed to the run budget.
    std::vector<std::vector<int32_t>> inputs = seeds;
    if (inputs.size() > opts.budget.maxRuns)
        inputs.resize(opts.budget.maxRuns);
    runBatch(inputs, acc);
}

void
Explorer::runMutationBatch(size_t maxBatch)
{
    size_t batch = std::min<uint64_t>(
        maxBatch, opts.budget.maxRuns - acc.runs);
    auto parents = sched.pick(corp, batch);
    std::vector<std::vector<int32_t>> inputs;
    inputs.reserve(parents.size());
    for (size_t idx : parents) {
        const auto &donor =
            corp.entries()[donorRng.nextBelow(corp.size())].input;
        inputs.push_back(mut.mutate(corp.entries()[idx].input, donor));
    }
    runBatch(inputs, acc);
}

bool
Explorer::stopCheck(ExploreResult &res)
{
    if (opts.stopFlag &&
        opts.stopFlag->load(std::memory_order_relaxed)) {
        res.stop = ExploreStop::Interrupted;
        return true;
    }
    if (res.runs >= opts.budget.maxRuns) {
        res.stop = ExploreStop::RunBudget;
        return true;
    }
    if (opts.budget.maxInstructions &&
        res.instructions >= opts.budget.maxInstructions) {
        res.stop = ExploreStop::InstructionBudget;
        return true;
    }
    if (opts.budget.plateauBatches &&
        dryBatches >= opts.budget.plateauBatches) {
        res.stop = ExploreStop::Plateau;
        return true;
    }
    if (corp.size() == 0) {
        // Only possible for branch-free programs: nothing can
        // ever be admitted, so mutation has nothing to work on.
        res.stop = ExploreStop::Plateau;
        return true;
    }
    return false;
}

ExploreResult
Explorer::run()
{
    emitHeaderOnce();

    if (seeds.empty() || opts.budget.maxRuns == 0) {
        acc.stop = ExploreStop::NoSeeds;
        emitDone(acc);
        return acc;
    }

    if (!opts.resumeFrom.empty()) {
        // Restored state is exactly the uninterrupted run's state at
        // a batch boundary; the loop below enters at the budget
        // checks, skipping the seed batch.
        resume(acc);
        lastCheckpointBatch = acc.batches;
        seeded = true;
        exportMark = corp.size();
    } else {
        runSeedBatch();
        // Checkpoints land exactly at batch boundaries, before the
        // budget checks: a kill here resumes into the same checks the
        // uninterrupted run would perform next.
        maybeCheckpoint(acc, /*force=*/false);
    }

    while (!stopCheck(acc)) {
        runMutationBatch(opts.batchSize);
        maybeCheckpoint(acc, /*force=*/false);
    }

    // Final snapshot so a clean shutdown (Interrupted included) can
    // be resumed too.
    maybeCheckpoint(acc, /*force=*/true);
    emitDone(acc);
    return acc;
}

uint64_t
Explorer::step(uint64_t maxNewRuns)
{
    emitHeaderOnce();
    uint64_t start = acc.runs;

    if (!seeded) {
        if (seeds.empty() || opts.budget.maxRuns == 0) {
            acc.stop = ExploreStop::NoSeeds;
            return 0;
        }
        runSeedBatch();
    }

    while (acc.runs - start < maxNewRuns && !stopCheck(acc)) {
        runMutationBatch(std::min<uint64_t>(
            opts.batchSize, maxNewRuns - (acc.runs - start)));
        maybeCheckpoint(acc, /*force=*/false);
    }
    return acc.runs - start;
}

void
Explorer::importFrontierWords(const std::vector<uint64_t> &taken,
                              const std::vector<uint64_t> &nt)
{
    corp.mergeFrontierWords(taken, nt);
}

void
Explorer::importPathWords(const std::vector<uint64_t> &words)
{
    if (!paths || words.empty())
        return;
    const uint64_t before = paths->completedCount();
    paths->mergeWords(words);
    if (opts.pathObjective && paths->completedCount() != before)
        refreshPathEnergies();
}

size_t
Explorer::importForeignEntries(std::vector<CorpusEntry> entries)
{
    size_t admitted = 0;
    for (CorpusEntry &entry : entries) {
        if (corp.considerForeign(std::move(entry), acc.batches) > 0) {
            ++admitted;
            CorpusEntry &in = corp.entries().back();
            if (opts.useStaticPriors)
                in.priorEnergy = entryPriorEnergy(in);
            in.pathEnergy = entryPathEnergy(in);
        }
    }
    // Imports are admissions like any other: fold the accumulated
    // exercise drift into the rarity ranking at the same trigger a
    // local admitting batch would.
    if (admitted > 0)
        corp.rescore(opts.rarePercentile);
    return admitted;
}

std::vector<const CorpusEntry *>
Explorer::drainNewLocalEntries()
{
    std::vector<const CorpusEntry *> fresh;
    for (; exportMark < corp.size(); ++exportMark) {
        const CorpusEntry &entry = corp.entries()[exportMark];
        if (!entry.foreign)
            fresh.push_back(&entry);
    }
    return fresh;
}

void
Explorer::finish()
{
    maybeCheckpoint(acc, /*force=*/true);
    emitDone(acc);
}

void
Explorer::emitHeaderOnce()
{
    if (headerEmitted)
        return;
    headerEmitted = true;
    emitHeader();
}

void
Explorer::emitHeader() const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"start\",\"workload\":\""
                << opts.label << "\",\"policy\":\""
                << schedulePolicyName(opts.policy) << "\",\"mode\":\""
                << core::peModeName(opts.config.mode)
                << "\",\"seed\":" << opts.seed
                << ",\"batch_size\":" << opts.batchSize
                << ",\"max_runs\":" << opts.budget.maxRuns
                << ",\"max_instructions\":"
                << opts.budget.maxInstructions
                << ",\"plateau_batches\":"
                << opts.budget.plateauBatches
                << ",\"total_edges\":"
                << corp.frontier().totalEdges();
    if (paths) {
        *opts.jsonl << ",\"path_objective\":"
                    << (opts.pathObjective ? "true" : "false")
                    << ",\"prime_paths\":" << paths->numPaths()
                    << ",\"path_cover\":" << paths->coverSize()
                    << ",\"paths_truncated\":"
                    << (paths->truncated() ? "true" : "false");
    }
    *opts.jsonl << ",\"config_hash\":\""
                << fmtHex(core::configHash(opts.config)) << "\"}\n";
}

void
Explorer::emitBatch(const ExploreBatchStats &stats) const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"batch\",\"batch\":" << stats.batch
                << ",\"runs\":" << stats.batchRuns
                << ",\"total_runs\":" << stats.totalRuns
                << ",\"admitted\":" << stats.admitted
                << ",\"corpus\":" << stats.corpusSize
                << ",\"edges_taken\":" << stats.takenEdges
                << ",\"edges_combined\":" << stats.combinedEdges
                << ",\"new_edges\":" << stats.newEdges
                << ",\"nt_spawned\":" << stats.ntSpawned
                << ",\"nt_early_stops\":" << stats.ntEarlyStops
                << ",\"failed\":" << stats.failedJobs;
    if (paths) {
        *opts.jsonl << ",\"paths_completed\":" << stats.pathsCompleted
                    << ",\"cover_completed\":" << stats.coverCompleted;
    }
    *opts.jsonl << "}\n";
    // Crash safety: a consumer tailing the stream (or reading it
    // after a kill) always sees whole lines up to the last finished
    // batch.
    opts.jsonl->flush();
}

void
Explorer::emitDone(const ExploreResult &res) const
{
    if (!opts.jsonl)
        return;
    *opts.jsonl << "{\"event\":\"done\",\"stop\":\""
                << exploreStopName(res.stop)
                << "\",\"batches\":" << res.batches
                << ",\"runs\":" << res.runs
                << ",\"failed\":" << res.failedJobs
                << ",\"instructions\":" << res.instructions
                << ",\"nt_spawned\":" << res.ntSpawned
                << ",\"corpus\":" << corp.size()
                << ",\"edges_taken\":"
                << corp.frontier().takenCovered()
                << ",\"edges_combined\":"
                << corp.frontier().combinedCovered()
                << ",\"frontier_digest\":\""
                << fmtHex(coverageDigest(corp.frontier())) << "\"";
    if (paths) {
        *opts.jsonl << ",\"paths_completed\":"
                    << paths->completedCount()
                    << ",\"cover_size\":" << paths->coverSize()
                    << ",\"path_cover_completed\":"
                    << paths->coverCompleted()
                    << ",\"path_digest\":\""
                    << fmtHex(paths->digest()) << "\"";
    }
    *opts.jsonl << "}\n";
    // Terminal record: every clean shutdown (checkpoint-triggered
    // included) ends the stream the same way, so "no stopped line"
    // reliably means the session died hard.
    *opts.jsonl << "{\"event\":\"stopped\",\"cause\":\""
                << exploreStopName(res.stop) << "\"}\n";
    opts.jsonl->flush();
}

} // namespace pe::explore
