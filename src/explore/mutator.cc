/**
 * @file
 * Havoc mutator implementation.
 */

#include "src/explore/mutator.hh"

#include <algorithm>
#include <cstddef>

namespace pe::explore
{

namespace
{

/**
 * Values that tend to flip guards in word-stream workloads: loop and
 * queue bounds, off-by-one probes, and small command opcodes the
 * seeds may never issue.
 */
constexpr int32_t interesting[] = {-2, -1, 0,  1,  2,  3,  4,   5,
                                   6,  7,  8,  9,  10, 13, 15,  16,
                                   17, 31, 32, 48, 50, 64, 100, 200};

} // namespace

Mutator::Mutator(Rng rng, MutatorOptions opts)
    : rng(rng), opts(opts)
{}

void
Mutator::observe(const std::vector<int32_t> &seed)
{
    for (int32_t v : seed) {
        auto it = std::lower_bound(values.begin(), values.end(), v);
        if (it == values.end() || *it != v)
            values.insert(it, v);
    }
}

int32_t
Mutator::pickValue()
{
    switch (rng.nextBelow(4)) {
      case 0:
        return interesting[rng.nextBelow(std::size(interesting))];
      case 1:
        return static_cast<int32_t>(rng.nextRange(-4, 12));
      default:
        if (values.empty())
            return static_cast<int32_t>(rng.nextRange(0, 9));
        return values[rng.nextBelow(values.size())];
    }
}

std::vector<int32_t>
Mutator::mutate(const std::vector<int32_t> &base,
                const std::vector<int32_t> &donor)
{
    std::vector<int32_t> out = base;
    if (out.empty())
        out.push_back(pickValue());

    unsigned steps = 1 + static_cast<unsigned>(
                             rng.nextBelow(opts.maxStack));
    for (unsigned s = 0; s < steps; ++s) {
        switch (rng.nextBelow(6)) {
          case 0: {   // replace one word
            out[rng.nextBelow(out.size())] = pickValue();
            break;
          }
          case 1: {   // insert one word
            size_t at = rng.nextBelow(out.size() + 1);
            out.insert(out.begin() + static_cast<ptrdiff_t>(at),
                       pickValue());
            break;
          }
          case 2: {   // delete one word
            if (out.size() > 1)
                out.erase(out.begin() + static_cast<ptrdiff_t>(
                                            rng.nextBelow(out.size())));
            break;
          }
          case 3: {   // duplicate a span in place
            size_t at = rng.nextBelow(out.size());
            size_t len = 1 + rng.nextBelow(
                                 std::min<size_t>(out.size() - at, 8));
            std::vector<int32_t> span(out.begin() +
                                          static_cast<ptrdiff_t>(at),
                                      out.begin() +
                                          static_cast<ptrdiff_t>(at +
                                                                 len));
            out.insert(out.begin() + static_cast<ptrdiff_t>(at + len),
                       span.begin(), span.end());
            break;
          }
          case 4: {   // splice: replace our tail with donor's tail
            if (!donor.empty()) {
                size_t cut = rng.nextBelow(out.size());
                size_t from = rng.nextBelow(donor.size());
                out.resize(cut);
                out.insert(out.end(),
                           donor.begin() +
                               static_cast<ptrdiff_t>(from),
                           donor.end());
                if (out.empty())
                    out.push_back(pickValue());
            }
            break;
          }
          default: {  // truncate the tail
            if (out.size() > 2)
                out.resize(1 + rng.nextBelow(out.size() - 1));
            break;
          }
        }
    }

    if (out.size() > opts.maxLength)
        out.resize(opts.maxLength);
    return out;
}

} // namespace pe::explore
