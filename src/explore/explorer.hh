/**
 * @file
 * The coverage-guided exploration engine.
 *
 * Closes the loop the paper leaves open: Section 7.4 replays a fixed
 * test suite and reports the cumulative coverage PathExpander adds;
 * the Explorer instead *chooses* the next inputs.  Each iteration
 * schedules a batch of corpus parents (rare-edge-weighted energy),
 * mutates each into a fresh input, runs the batch through the
 * parallel campaign runner, merges every run's BranchCoverage into
 * the global frontier, and admits the inputs that covered new edges.
 * A budget (runs / instructions / coverage plateau) bounds the loop.
 *
 * Everything is deterministic for a fixed seed: mutation and
 * scheduling draw from forked pe::Rng streams, campaign results are
 * job-ordered, and coverage merges are order-independent ORs — two
 * runs with the same options produce bit-identical corpora, so
 * coverage-vs-budget curves are comparable across machines.
 *
 * Progress streams as JSONL (one object per batch) for benches and
 * CI to plot.
 */

#ifndef PE_EXPLORE_EXPLORER_HH
#define PE_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/priors.hh"
#include "src/core/campaign.hh"
#include "src/coverage/pathcov.hh"
#include "src/explore/corpus.hh"
#include "src/explore/mutator.hh"
#include "src/explore/scheduler.hh"

namespace pe::explore
{

/** When to stop exploring; the first bound hit wins. */
struct ExploreBudget
{
    /** Total monitored runs, seed batch included. */
    uint64_t maxRuns = 200;

    /** Total simulated instructions (taken + NT); 0 = unlimited. */
    uint64_t maxInstructions = 0;

    /**
     * Stop after this many consecutive batches that grew the
     * frontier by zero edges ("K dry batches"); 0 disables.
     */
    uint32_t plateauBatches = 0;
};

/** Why an exploration ended. */
enum class ExploreStop : uint8_t
{
    RunBudget,          //!< maxRuns exhausted
    InstructionBudget,  //!< maxInstructions exhausted
    Plateau,            //!< plateauBatches dry batches in a row
    NoSeeds,            //!< nothing to schedule (empty seed set)
    Interrupted,        //!< options().stopFlag was raised
};

const char *exploreStopName(ExploreStop stop);

struct ExploreOptions
{
    /** Engine configuration for every run (PE on/off, mode, ...). */
    core::PeConfig config =
        core::PeConfig::forMode(core::PeMode::Standard);

    SchedulePolicy policy = SchedulePolicy::RareEdgeWeighted;
    ExploreBudget budget;

    /** Mutants per batch after the seed batch. */
    size_t batchSize = 8;

    /** Master seed; forked into mutation/scheduling streams. */
    uint64_t seed = 0x5eedbea7;

    /** Rarity percentile for the energy function (nearest-rank). */
    double rarePercentile = 0.3;

    /** Campaign workers; 0 = defaultWorkerCount() (PE_JOBS). */
    unsigned threads = 0;

    /**
     * Failure policy forwarded to every batch campaign.  Under
     * Continue/Retry a failed job costs its run-budget slot but the
     * exploration keeps going; stats count it in failedJobs.
     */
    core::FailPolicy failPolicy;

    /** Per-run wall-clock deadline (see CampaignOptions); 0 = off. */
    std::chrono::milliseconds jobDeadline{0};

    /** Optional detector attached to every run. */
    core::DetectorFactory detectorFactory;

    MutatorOptions mutator;

    /** JSONL progress stream (one object per line); may be null. */
    std::ostream *jsonl = nullptr;

    /**
     * Called once per finished run (campaign completion order, see
     * CampaignOptions::onResult) — live progress for interactive
     * front-ends.  Exploration decisions never depend on it.
     */
    std::function<void(const core::RunResult &result)> onRun;

    /** Workload name stamped into the JSONL header. */
    std::string label;

    /**
     * Checkpoint file; empty disables checkpointing.  Written at
     * batch boundaries (every checkpointEvery batches, and once more
     * at shutdown) via write-temp-then-atomic-rename, so a kill -9
     * at any moment leaves either the previous or the new checkpoint
     * intact, never a torn file.
     */
    std::string checkpointPath;

    /** Batches between checkpoints (>= 1). */
    uint64_t checkpointEvery = 1;

    /**
     * Resume from this checkpoint file instead of running the seed
     * batch.  The checkpoint must match this session's config hash,
     * seed, schedule policy and program; the continuation is then
     * bit-identical to the uninterrupted run.  The *same seeds* must
     * be passed again (the mutator alphabet is rebuilt from them).
     */
    std::string resumeFrom;

    /**
     * Cooperative stop: checked at every batch boundary; when it
     * reads true the loop stops with ExploreStop::Interrupted after
     * writing a final checkpoint (if checkpointPath is set).  Wire a
     * signal handler's flag here for clean Ctrl-C shutdown.
     */
    const std::atomic<bool> *stopFlag = nullptr;

    /**
     * Seed each admitted entry's scheduling energy from the static
     * branch priors (analysis::computeBranchPriors at construction,
     * cut at config.maxNtPathLength): an entry's priorEnergy is the
     * summed edgePotential of the branch directions its own run did
     * *not* cover, so the scheduler leans toward parents adjacent to
     * promising unexplored edges before dynamic rarity data exists.
     * Off by default — the prior-free energies stay bit-identical.
     * Folded into the checkpoint policy word: a checkpoint taken with
     * priors on cannot silently resume a priors-off session.
     */
    bool useStaticPriors = false;

    /**
     * Path-cover-guided scheduling.  Requires config.recordEdgeTrace
     * (asserted at construction): the explorer builds the program's
     * prime-path set and minimum path cover (analysis/primepaths.hh),
     * folds every run's branch trace into a coverage::PathCoverage
     * tracker, and multiplies each entry's scheduling energy by
     * (1 + cover adjacency), leaning batches toward parents whose
     * runs already walk long prefixes of incomplete cover paths.
     * The tracker itself exists whenever recordEdgeTrace is on (that
     * flag is part of configHash); this option only adds the energy
     * shaping, and is folded into the checkpoint/fleet policy word
     * (bit 0x200) so a path-objective checkpoint cannot silently
     * resume an edge-objective session or vice versa.
     */
    bool pathObjective = false;
};

/** Per-batch progress snapshot (one JSONL line each). */
struct ExploreBatchStats
{
    uint64_t batch = 0;
    uint64_t batchRuns = 0;         //!< runs in this batch
    uint64_t totalRuns = 0;         //!< cumulative runs
    uint64_t admitted = 0;          //!< inputs that joined the corpus
    uint64_t corpusSize = 0;
    uint64_t takenEdges = 0;        //!< frontier, taken-path only
    uint64_t combinedEdges = 0;     //!< frontier with NT edges
    uint64_t newEdges = 0;          //!< frontier growth this batch
    uint64_t ntSpawned = 0;         //!< NT-Paths spawned this batch
    uint64_t ntEarlyStops = 0;      //!< capacity/max-length stops
    uint64_t failedJobs = 0;        //!< jobs with no result this batch
    uint64_t pathsCompleted = 0;    //!< cumulative prime paths done
    uint64_t coverCompleted = 0;    //!< cumulative cover paths done
};

struct ExploreResult
{
    ExploreStop stop = ExploreStop::RunBudget;
    uint64_t batches = 0;
    uint64_t runs = 0;              //!< results and failures both count
    uint64_t instructions = 0;      //!< taken + NT, all runs
    uint64_t ntSpawned = 0;
    uint64_t failedJobs = 0;        //!< jobs that produced no result
    std::vector<ExploreBatchStats> history;
};

/** The corpus → schedule → campaign → merge → mutate loop. */
class Explorer
{
  public:
    /**
     * @param seeds initial inputs (e.g. a workload's benignInputs);
     *        run as batch 0, before any mutation.
     */
    Explorer(const isa::Program &program,
             std::vector<std::vector<int32_t>> seeds,
             ExploreOptions opts);

    /** Run the loop to a budget bound; reentrant-safe to call once. */
    ExploreResult run();

    /**
     * Fleet hook: advance the loop by up to @p maxNewRuns monitored
     * runs and return control (a coordinator round).  The first call
     * runs the seed batch (which may overshoot small budgets by the
     * seed count — the caller accounts the *returned* run count).
     * Returns the runs actually executed; 0 with a nonzero budget
     * means the explorer is exhausted (empty corpus, local budget or
     * stop flag) and further calls are useless.
     *
     * run() and step() drive the same batch loop; a session uses one
     * or the other, not both.
     */
    uint64_t step(uint64_t maxNewRuns);

    /**
     * Fleet hook: OR a peer frontier into the local one.  Edges the
     * fleet already covered elsewhere stop being "new" here, so local
     * admission stays globally meaningful.
     */
    void importFrontierWords(const std::vector<uint64_t> &taken,
                             const std::vector<uint64_t> &nt);

    /**
     * Fleet hook: offer peer-admitted corpus entries to the local
     * corpus (Corpus::considerForeign semantics).  Returns how many
     * were admitted; admitted entries are rescored and, under
     * useStaticPriors, prior-seeded exactly like local admissions.
     */
    size_t importForeignEntries(std::vector<CorpusEntry> entries);

    /**
     * Fleet hook: entries admitted from *local* runs since the last
     * drain, in admission order (foreign imports are skipped — an
     * entry crosses the wire at most once per direction).  The
     * pointers are invalidated by the next batch; encode immediately.
     */
    std::vector<const CorpusEntry *> drainNewLocalEntries();

    /**
     * The prime-path completion tracker, or null when
     * config.recordEdgeTrace is off.  Fleet workers serialize its
     * words into RoundDelta; benches read its counters.
     */
    const coverage::PathCoverage *pathTracker() const
    {
        return paths.get();
    }

    /**
     * Fleet hook: OR the coordinator's merged completion words into
     * the local tracker (no-op when the tracker is off and the vector
     * is empty).  Refreshes entry path energies when the bits changed
     * and pathObjective is on — a path completed elsewhere stops
     * attracting local energy.
     */
    void importPathWords(const std::vector<uint64_t> &words);

    /** Progress so far (step() sessions; run() returns the same). */
    const ExploreResult &progress() const { return acc; }

    /**
     * End a step() session: final checkpoint (if configured) plus the
     * terminal JSONL records run() would have written.
     */
    void finish();

    const Corpus &corpus() const { return corp; }
    const ExploreOptions &options() const { return opts; }

  private:
    void runBatch(const std::vector<std::vector<int32_t>> &inputs,
                  ExploreResult &res);

    /** Run the seed inputs as batch 0, trimmed to the run budget. */
    void runSeedBatch();

    /**
     * Mutation-schedule the next batch (capped by @p maxBatch and the
     * remaining run budget) and run it.
     */
    void runMutationBatch(size_t maxBatch);

    /**
     * Evaluate the stop conditions in their documented priority
     * order; sets res.stop and returns true when the loop must end.
     */
    bool stopCheck(ExploreResult &res);

    void emitHeaderOnce();
    void emitHeader() const;
    void emitBatch(const ExploreBatchStats &stats) const;
    void emitDone(const ExploreResult &res) const;

    // Checkpoint/resume (checkpoint.cc).
    void writeCheckpoint(const ExploreResult &res) const;
    void resume(ExploreResult &res);
    void maybeCheckpoint(const ExploreResult &res, bool force);

    /**
     * Summed edgePotential over the branch directions @p entry's
     * coverage misses; 0 when useStaticPriors is off.  Deterministic
     * in (program, config), so resume recomputes it instead of the
     * checkpoint storing it.
     */
    double entryPriorEnergy(const CorpusEntry &entry) const;

    /**
     * Cover-adjacency energy for @p entry (0 when pathObjective is
     * off).  Deterministic in (program, tracker bits, entry
     * coverage); resume recomputes it like entryPriorEnergy.
     */
    double entryPathEnergy(const CorpusEntry &entry) const;

    /** Recompute pathEnergy for every corpus entry. */
    void refreshPathEnergies();

    const isa::Program &program;
    std::vector<std::vector<int32_t>> seeds;
    ExploreOptions opts;
    analysis::BranchPriors priors;

    /** Prime-path tracker; null unless config.recordEdgeTrace. */
    std::unique_ptr<coverage::PathCoverage> paths;

    Corpus corp;
    Mutator mut;
    Scheduler sched;
    Rng donorRng;
    uint32_t dryBatches = 0;
    uint64_t lastCheckpointBatch = 0;

    /** Accumulated progress shared by run() and step() sessions. */
    ExploreResult acc;
    bool seeded = false;            //!< seed batch (or resume) done
    bool headerEmitted = false;
    size_t exportMark = 0;          //!< first undrained corpus index
};

} // namespace pe::explore

#endif // PE_EXPLORE_EXPLORER_HH
