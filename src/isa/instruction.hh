/**
 * @file
 * PE-RISC instruction representation, binary encoding and disassembly.
 */

#ifndef PE_ISA_INSTRUCTION_HH
#define PE_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "src/isa/opcode.hh"

namespace pe::isa
{

/**
 * One decoded PE-RISC instruction.
 *
 * All instructions share a single format: opcode, three register
 * specifiers and a signed 32-bit immediate.  Unused fields are zero.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;

    bool operator==(const Instruction &other) const = default;
};

/**
 * Encode @p inst into the 64-bit binary format:
 *   bits [63:56] opcode, [55:50] rd, [49:44] rs1, [43:38] rs2,
 *   bits [31:0]  immediate (two's complement).
 */
uint64_t encode(const Instruction &inst);

/** Decode a 64-bit instruction word; panics on an invalid opcode. */
Instruction decode(uint64_t word);

/** Render @p inst as assembly text, e.g. "beq r8, r9, 42". */
std::string disassemble(const Instruction &inst);

// Convenience builders used by the code generator and tests.
Instruction makeR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2);
Instruction makeI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm);
Instruction makeLi(uint8_t rd, int32_t imm);
Instruction makeBranch(Opcode op, uint8_t rs1, uint8_t rs2,
                       int32_t target);
Instruction makeJmp(int32_t target);
Instruction makeJal(uint8_t rd, int32_t target);
Instruction makeJr(uint8_t rs1);
Instruction makeSys(Syscall call, uint8_t rd = 0, uint8_t rs1 = 0);

} // namespace pe::isa

#endif // PE_ISA_INSTRUCTION_HH
