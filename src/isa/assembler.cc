/**
 * @file
 * PE-RISC assembler implementation.
 */

#include "src/isa/assembler.hh"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/isa/instruction.hh"
#include "src/isa/regs.hh"
#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe::isa
{

namespace
{

struct DataSym
{
    uint32_t addr;
    int32_t size;       //!< 1 for scalars; payload words for arrays
    bool isArray;
};

class Assembler
{
  public:
    Assembler(const std::string &src, const std::string &name)
        : source(src)
    {
        program.name = name;
    }

    Program run();

  private:
    [[noreturn]] void
    error(const std::string &msg) const
    {
        pe_fatal("asm error at line ", lineNo, ": ", msg);
    }

    // ---- token helpers ------------------------------------------
    static std::vector<std::string> tokenize(const std::string &line);

    uint8_t parseReg(const std::string &tok) const;
    int32_t parseImmediate(const std::string &tok) const;

    /** Parse `imm(rX)` or `symbol(rX)`. */
    std::pair<int32_t, uint8_t>
    parseMemOperand(const std::string &tok) const;

    bool isLabelRef(const std::string &tok) const;

    void parseDirective(const std::vector<std::string> &toks);
    void parseInstruction(std::vector<std::string> toks);

    void
    emit(const Instruction &inst)
    {
        program.code.push_back(inst);
        program.locs.push_back(SourceLoc{lineNo, 0});
    }

    void patch();

    const std::string &source;
    Program program;
    int lineNo = 0;

    std::unordered_map<std::string, DataSym> dataSyms;
    std::unordered_map<std::string, uint32_t> labels;
    struct Fixup
    {
        uint32_t pc;
        std::string label;
        int line;
    };
    std::vector<Fixup> fixups;
    std::vector<int32_t> data;
    bool codeStarted = false;
};

std::vector<std::string>
Assembler::tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

uint8_t
Assembler::parseReg(const std::string &tok) const
{
    static const std::unordered_map<std::string, uint8_t> named = {
        {"zero", reg::zero}, {"sp", reg::sp}, {"fp", reg::fp},
        {"ra", reg::ra},     {"rv", reg::rv},
    };
    auto it = named.find(tok);
    if (it != named.end())
        return it->second;
    if (tok.size() >= 2 && tok[0] == 'r') {
        int n = 0;
        for (size_t i = 1; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                error("bad register '" + tok + "'");
            n = n * 10 + (tok[i] - '0');
        }
        if (n >= numRegs)
            error("register out of range '" + tok + "'");
        return static_cast<uint8_t>(n);
    }
    error("expected a register, found '" + tok + "'");
}

int32_t
Assembler::parseImmediate(const std::string &tok) const
{
    auto sym = dataSyms.find(tok);
    if (sym != dataSyms.end())
        return static_cast<int32_t>(sym->second.addr);
    try {
        size_t used = 0;
        long long v = std::stoll(tok, &used, 0);
        if (used != tok.size())
            error("bad immediate '" + tok + "'");
        if (v < INT32_MIN || v > INT32_MAX)
            error("immediate out of range '" + tok + "'");
        return static_cast<int32_t>(v);
    } catch (const std::exception &) {
        error("bad immediate '" + tok + "'");
    }
}

std::pair<int32_t, uint8_t>
Assembler::parseMemOperand(const std::string &tok) const
{
    size_t open = tok.find('(');
    if (open == std::string::npos || tok.back() != ')')
        error("expected imm(reg), found '" + tok + "'");
    std::string immPart = tok.substr(0, open);
    std::string regPart = tok.substr(open + 1,
                                     tok.size() - open - 2);
    int32_t imm = immPart.empty() ? 0 : parseImmediate(immPart);
    return {imm, parseReg(regPart)};
}

bool
Assembler::isLabelRef(const std::string &tok) const
{
    if (tok.empty())
        return false;
    char c = tok[0];
    return (std::isalpha(static_cast<unsigned char>(c)) ||
            c == '_') &&
           !dataSyms.count(tok);
}

void
Assembler::parseDirective(const std::vector<std::string> &toks)
{
    if (codeStarted)
        error("data directives must precede code");
    if (toks[0] == ".data") {
        if (toks.size() < 2 || toks.size() > 3)
            error(".data name [init]");
        if (dataSyms.count(toks[1]))
            error("duplicate symbol '" + toks[1] + "'");
        int32_t init =
            toks.size() == 3 ? parseImmediate(toks[2]) : 0;
        uint32_t addr = program.dataBase +
                        static_cast<uint32_t>(data.size());
        data.push_back(init);
        dataSyms.emplace(toks[1], DataSym{addr, 1, false});
        return;
    }
    if (toks[0] == ".array") {
        if (toks.size() < 3)
            error(".array name size [values...]");
        if (dataSyms.count(toks[1]))
            error("duplicate symbol '" + toks[1] + "'");
        int32_t size = parseImmediate(toks[2]);
        if (size <= 0)
            error("array size must be positive");
        if (static_cast<size_t>(size) + 3 < toks.size())
            error("too many initializers");
        for (uint32_t g = 0; g < Program::guardWords; ++g)
            data.push_back(0);
        uint32_t payload = program.dataBase +
                           static_cast<uint32_t>(data.size());
        for (int32_t i = 0; i < size; ++i) {
            size_t ti = 3 + static_cast<size_t>(i);
            data.push_back(ti < toks.size()
                               ? parseImmediate(toks[ti])
                               : 0);
        }
        for (uint32_t g = 0; g < Program::guardWords; ++g)
            data.push_back(0);
        dataSyms.emplace(toks[1], DataSym{payload, size, true});
        return;
    }
    error("unknown directive '" + toks[0] + "'");
}

void
Assembler::parseInstruction(std::vector<std::string> toks)
{
    codeStarted = true;
    std::string op = toks[0];
    auto want = [&](size_t n) {
        if (toks.size() != n + 1) {
            error("'" + op + "' expects " + std::to_string(n) +
                  " operand(s)");
        }
    };
    auto branchTarget = [&](const std::string &tok) -> int32_t {
        if (isLabelRef(tok)) {
            fixups.push_back(
                {static_cast<uint32_t>(program.code.size()), tok,
                 lineNo});
            return 0;
        }
        return parseImmediate(tok);
    };

    static const std::unordered_map<std::string, Opcode> rType = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub},
        {"mul", Opcode::Mul}, {"div", Opcode::Div},
        {"rem", Opcode::Rem}, {"and", Opcode::And},
        {"or", Opcode::Or},   {"xor", Opcode::Xor},
        {"shl", Opcode::Shl}, {"shr", Opcode::Shr},
        {"sra", Opcode::Sra}, {"slt", Opcode::Slt},
        {"sle", Opcode::Sle}, {"seq", Opcode::Seq},
        {"sne", Opcode::Sne}, {"sgt", Opcode::Sgt},
        {"sge", Opcode::Sge},
    };
    static const std::unordered_map<std::string, Opcode> iType = {
        {"addi", Opcode::Addi}, {"andi", Opcode::Andi},
        {"ori", Opcode::Ori},   {"xori", Opcode::Xori},
        {"shli", Opcode::Shli}, {"shri", Opcode::Shri},
        {"slti", Opcode::Slti},
    };
    static const std::unordered_map<std::string, Opcode> branches = {
        {"beq", Opcode::Beq}, {"bne", Opcode::Bne},
        {"blt", Opcode::Blt}, {"bge", Opcode::Bge},
        {"ble", Opcode::Ble}, {"bgt", Opcode::Bgt},
    };
    static const std::unordered_map<std::string, Syscall> syscalls = {
        {"exit", Syscall::Exit},
        {"print_int", Syscall::PrintInt},
        {"print_char", Syscall::PrintChar},
        {"read_int", Syscall::ReadInt},
        {"read_char", Syscall::ReadChar},
    };
    static const std::unordered_map<std::string, ObjectKind> kinds = {
        {"global", ObjectKind::GlobalArray},
        {"stack", ObjectKind::StackArray},
        {"heap", ObjectKind::HeapBlock},
        {"blank", ObjectKind::BlankStruct},
    };

    if (auto it = rType.find(op); it != rType.end()) {
        want(3);
        emit(makeR(it->second, parseReg(toks[1]), parseReg(toks[2]),
                   parseReg(toks[3])));
        return;
    }
    if (auto it = iType.find(op); it != iType.end()) {
        want(3);
        emit(makeI(it->second, parseReg(toks[1]), parseReg(toks[2]),
                   parseImmediate(toks[3])));
        return;
    }
    if (auto it = branches.find(op); it != branches.end()) {
        want(3);
        uint8_t rs1 = parseReg(toks[1]);
        uint8_t rs2 = parseReg(toks[2]);
        emit(makeBranch(it->second, rs1, rs2, branchTarget(toks[3])));
        return;
    }
    if (op == "nop") {
        want(0);
        emit(Instruction{});
        return;
    }
    if (op == "li") {
        want(2);
        emit(makeLi(parseReg(toks[1]), parseImmediate(toks[2])));
        return;
    }
    if (op == "ld") {
        want(2);
        auto [imm, base] = parseMemOperand(toks[2]);
        emit(makeI(Opcode::Ld, parseReg(toks[1]), base, imm));
        return;
    }
    if (op == "st") {
        want(2);
        auto [imm, base] = parseMemOperand(toks[2]);
        emit(Instruction{Opcode::St, 0, base, parseReg(toks[1]),
                         imm});
        return;
    }
    if (op == "jmp") {
        want(1);
        emit(makeJmp(branchTarget(toks[1])));
        return;
    }
    if (op == "jal") {
        want(2);
        uint8_t rd = parseReg(toks[1]);
        emit(makeJal(rd, branchTarget(toks[2])));
        return;
    }
    if (op == "jr") {
        want(1);
        emit(makeJr(parseReg(toks[1])));
        return;
    }
    if (op == "alloc") {
        want(2);
        emit(makeR(Opcode::Alloc, parseReg(toks[1]),
                   parseReg(toks[2]), 0));
        return;
    }
    if (op == "chkb") {
        want(1);
        auto [imm, base] = parseMemOperand(toks[1]);
        emit(makeI(Opcode::Chkb, 0, base, imm));
        return;
    }
    if (op == "assert") {
        want(2);
        int32_t id = parseImmediate(toks[2]);
        emit(Instruction{Opcode::Assert, 0, parseReg(toks[1]), 0,
                         id});
        program.assertLocs[id] = SourceLoc{lineNo, 0};
        return;
    }
    if (op == "regobj") {
        want(3);
        auto kind = kinds.find(toks[3]);
        if (kind == kinds.end())
            error("unknown object kind '" + toks[3] + "'");
        emit(Instruction{Opcode::Regobj, 0, parseReg(toks[1]),
                         parseReg(toks[2]),
                         static_cast<int32_t>(kind->second)});
        return;
    }
    if (op == "unregobj") {
        want(1);
        emit(Instruction{Opcode::Unregobj, 0, parseReg(toks[1]), 0,
                         0});
        return;
    }
    if (op == "pfix") {
        want(2);
        emit(makeI(Opcode::Pfix, parseReg(toks[1]), 0,
                   parseImmediate(toks[2])));
        return;
    }
    if (op == "pfixst") {
        want(2);
        auto [imm, base] = parseMemOperand(toks[2]);
        emit(Instruction{Opcode::Pfixst, 0, base, parseReg(toks[1]),
                         imm});
        return;
    }
    if (op == "sys") {
        if (toks.size() < 2)
            error("sys needs a selector");
        auto call = syscalls.find(toks[1]);
        if (call == syscalls.end())
            error("unknown syscall '" + toks[1] + "'");
        uint8_t r = 0;
        if (toks.size() == 3)
            r = parseReg(toks[2]);
        else if (toks.size() > 3)
            error("sys takes at most one register");
        bool isRead = call->second == Syscall::ReadInt ||
                      call->second == Syscall::ReadChar;
        emit(makeSys(call->second, isRead ? r : 0,
                     isRead ? 0 : r));
        return;
    }
    error("unknown mnemonic '" + op + "'");
}

void
Assembler::patch()
{
    for (const auto &f : fixups) {
        auto it = labels.find(f.label);
        if (it == labels.end()) {
            // Name the referencing instruction too: with several uses
            // of one misspelled label, the line alone does not say
            // which branch the fix belongs to.
            pe_fatal("asm error at line ", f.line,
                     ": undefined label '", f.label, "' referenced by "
                     "'", disassemble(program.code[f.pc]), "' at pc ",
                     f.pc);
        }
        program.code[f.pc].imm = static_cast<int32_t>(it->second);
    }
}

Program
Assembler::run()
{
    // Pass 1: parse everything; labels resolve via fixups.
    std::vector<std::string> lines = split(source, '\n');

    // The automatic prologue registers every .array; it is emitted
    // first, so scan the directives up front.
    for (const auto &raw : lines) {
        ++lineNo;
        auto toks = tokenize(raw);
        if (toks.empty())
            continue;
        if (toks[0][0] == '.')
            parseDirective(toks);
        else
            break;  // first code line; stop the directive scan
    }

    // Emit the registration prologue.
    for (const auto &[name, sym] : dataSyms) {
        if (!sym.isArray)
            continue;
        emit(makeLi(reg::s0, static_cast<int32_t>(sym.addr)));
        emit(makeLi(reg::s1, sym.size));
        emit(Instruction{Opcode::Regobj, 0, reg::s0, reg::s1,
                         static_cast<int32_t>(
                             ObjectKind::GlobalArray)});
    }

    // Pass 2: the code lines.
    lineNo = 0;
    bool inData = true;
    for (const auto &raw : lines) {
        ++lineNo;
        auto toks = tokenize(raw);
        if (toks.empty())
            continue;
        if (toks[0][0] == '.') {
            if (!inData)
                error("data directives must precede code");
            continue;   // handled in the directive scan
        }
        inData = false;
        // Leading label(s).
        while (!toks.empty() && toks[0].back() == ':') {
            std::string label = toks[0].substr(0, toks[0].size() - 1);
            if (label.empty())
                error("empty label");
            if (labels.count(label))
                error("duplicate label '" + label + "'");
            labels.emplace(label,
                           static_cast<uint32_t>(program.code.size()));
            toks.erase(toks.begin());
        }
        if (toks.empty())
            continue;
        parseInstruction(std::move(toks));
    }

    patch();
    program.dataInit = data;
    program.heapBase =
        program.dataBase + static_cast<uint32_t>(data.size());
    program.entry = 0;
    program.funcs.push_back(FuncInfo{
        "asm", 0, static_cast<uint32_t>(program.code.size())});
    return std::move(program);
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    return Assembler(source, name).run();
}

} // namespace pe::isa
