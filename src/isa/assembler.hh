/**
 * @file
 * A textual assembler for PE-RISC.
 *
 * The MiniC compiler is the normal way to produce programs, but
 * hand-written assembly is invaluable for tests, micro-benchmarks and
 * for poking at the PathExpander hardware directly (e.g. crafting a
 * branch with specific Pfix sequences).  Example:
 *
 *     .data   counter 0           # scalar word with initializer
 *     .array  buf 8               # guarded array (auto-registered)
 *
 *     main:
 *         li      r8, 5
 *     loop:
 *         addi    r8, r8, -1
 *         bgt     r8, r0, loop
 *         ld      r9, counter(r0) # data symbols usable as immediates
 *         sys     print_int r9
 *         sys     exit
 *
 * Syntax:
 *  - one instruction per line; `#` starts a comment;
 *  - labels are `name:` on their own line or before an instruction;
 *  - branch/jump targets may be labels or absolute integers;
 *  - `name(rX)` memory operands; data symbol names may be used
 *    wherever an immediate is expected;
 *  - syscall selectors: exit, print_int, print_char, read_int,
 *    read_char (with the value/destination register as the operand);
 *  - object kinds for regobj: global, stack, heap, blank.
 *
 * Arrays declared with `.array` are surrounded by guard words and
 * registered with the dynamic checkers by an automatic prologue.
 */

#ifndef PE_ISA_ASSEMBLER_HH
#define PE_ISA_ASSEMBLER_HH

#include <string>

#include "src/isa/program.hh"

namespace pe::isa
{

/**
 * Assemble @p source into a program image named @p name.
 * Throws FatalError with a line diagnostic on malformed input.
 */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

} // namespace pe::isa

#endif // PE_ISA_ASSEMBLER_HH
