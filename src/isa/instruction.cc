/**
 * @file
 * Instruction encode/decode and disassembly.
 */

#include "src/isa/instruction.hh"

#include <sstream>

#include "src/isa/regs.hh"
#include "src/support/status.hh"

namespace pe::isa
{

uint64_t
encode(const Instruction &inst)
{
    pe_assert(inst.op < Opcode::NumOpcodes, "encode: bad opcode");
    pe_assert(inst.rd < numRegs && inst.rs1 < numRegs && inst.rs2 < numRegs,
              "encode: bad register specifier");
    uint64_t word = 0;
    word |= static_cast<uint64_t>(inst.op) << 56;
    word |= static_cast<uint64_t>(inst.rd) << 50;
    word |= static_cast<uint64_t>(inst.rs1) << 44;
    word |= static_cast<uint64_t>(inst.rs2) << 38;
    word |= static_cast<uint64_t>(static_cast<uint32_t>(inst.imm));
    return word;
}

Instruction
decode(uint64_t word)
{
    Instruction inst;
    uint8_t op = static_cast<uint8_t>(word >> 56);
    if (op >= static_cast<uint8_t>(Opcode::NumOpcodes))
        pe_panic("decode: invalid opcode ", static_cast<int>(op));
    inst.op = static_cast<Opcode>(op);
    inst.rd = static_cast<uint8_t>((word >> 50) & 0x3f);
    inst.rs1 = static_cast<uint8_t>((word >> 44) & 0x3f);
    inst.rs2 = static_cast<uint8_t>((word >> 38) & 0x3f);
    inst.imm = static_cast<int32_t>(static_cast<uint32_t>(word));
    return inst;
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream oss;
    oss << opcodeName(inst.op);
    auto r = [](uint8_t n) { return "r" + std::to_string(n); };
    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sle: case Opcode::Seq: case Opcode::Sne:
      case Opcode::Sgt: case Opcode::Sge:
        oss << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
            << r(inst.rs2);
        break;
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Shli: case Opcode::Shri:
      case Opcode::Slti:
        oss << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
            << inst.imm;
        break;
      case Opcode::Li:
      case Opcode::Pfix:
        oss << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Ld:
        oss << " " << r(inst.rd) << ", " << inst.imm << "("
            << r(inst.rs1) << ")";
        break;
      case Opcode::St:
      case Opcode::Pfixst:
        oss << " " << r(inst.rs2) << ", " << inst.imm << "("
            << r(inst.rs1) << ")";
        break;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
        oss << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", "
            << inst.imm;
        break;
      case Opcode::Jmp:
        oss << " " << inst.imm;
        break;
      case Opcode::Jal:
        oss << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Jr:
        oss << " " << r(inst.rs1);
        break;
      case Opcode::Alloc:
        oss << " " << r(inst.rd) << ", " << r(inst.rs1);
        break;
      case Opcode::Chkb:
        oss << " " << inst.imm << "(" << r(inst.rs1) << ")";
        break;
      case Opcode::Assert:
        oss << " " << r(inst.rs1) << ", #" << inst.imm;
        break;
      case Opcode::Regobj:
        oss << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", kind="
            << inst.imm;
        break;
      case Opcode::Unregobj:
        oss << " " << r(inst.rs1);
        break;
      case Opcode::Sys:
        oss << " #" << inst.imm << " rd=" << r(inst.rd) << " rs1="
            << r(inst.rs1);
        break;
      default:
        pe_panic("disassemble: bad opcode");
    }
    return oss.str();
}

Instruction
makeR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    return Instruction{op, rd, rs1, rs2, 0};
}

Instruction
makeI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm)
{
    return Instruction{op, rd, rs1, 0, imm};
}

Instruction
makeLi(uint8_t rd, int32_t imm)
{
    return Instruction{Opcode::Li, rd, 0, 0, imm};
}

Instruction
makeBranch(Opcode op, uint8_t rs1, uint8_t rs2, int32_t target)
{
    pe_assert(isConditionalBranch(op), "makeBranch: not a branch");
    return Instruction{op, 0, rs1, rs2, target};
}

Instruction
makeJmp(int32_t target)
{
    return Instruction{Opcode::Jmp, 0, 0, 0, target};
}

Instruction
makeJal(uint8_t rd, int32_t target)
{
    return Instruction{Opcode::Jal, rd, 0, 0, target};
}

Instruction
makeJr(uint8_t rs1)
{
    return Instruction{Opcode::Jr, 0, rs1, 0, 0};
}

Instruction
makeSys(Syscall call, uint8_t rd, uint8_t rs1)
{
    return Instruction{Opcode::Sys, rd, rs1, 0,
                       static_cast<int32_t>(call)};
}

} // namespace pe::isa
