/**
 * @file
 * Opcode property tables.
 */

#include "src/isa/opcode.hh"

#include "src/support/status.hh"

namespace pe::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Sle: return "sle";
      case Opcode::Seq: return "seq";
      case Opcode::Sne: return "sne";
      case Opcode::Sgt: return "sgt";
      case Opcode::Sge: return "sge";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Slti: return "slti";
      case Opcode::Li: return "li";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::Alloc: return "alloc";
      case Opcode::Chkb: return "chkb";
      case Opcode::Assert: return "assert";
      case Opcode::Regobj: return "regobj";
      case Opcode::Unregobj: return "unregobj";
      case Opcode::Pfix: return "pfix";
      case Opcode::Pfixst: return "pfixst";
      case Opcode::Sys: return "sys";
      default:
        pe_panic("opcodeName: bad opcode ", static_cast<int>(op));
    }
}

bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
        return true;
      default:
        return false;
    }
}

bool
isMemoryOp(Opcode op)
{
    switch (op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Pfixst:
        return true;
      default:
        return false;
    }
}

bool
isPredicatedFix(Opcode op)
{
    return op == Opcode::Pfix || op == Opcode::Pfixst;
}

} // namespace pe::isa
