/**
 * @file
 * Opcode set of the PE-RISC target ISA.
 *
 * PE-RISC is the 32-bit word-addressed RISC ISA that the MiniC
 * compiler targets and the simulator executes.  It contains the three
 * PathExpander-specific extensions described in the paper:
 *
 *  - the predicated variable-fixing pair Pfix/Pfixst (Section 4.4,
 *    Table 1), executed only while the core's NT-entry predicate
 *    register is set;
 *  - Chkb, the hook through which a dynamic checker (CCured-like or
 *    iWatcher-like) validates a memory access;
 *  - Assert, the assertion-based detection method.
 *
 * Regobj/Unregobj communicate object lifetimes (arrays, heap blocks
 * and their guard zones) to the dynamic checkers, standing in for the
 * instrumented allocation library the paper's checkers rely on.
 */

#ifndef PE_ISA_OPCODE_HH
#define PE_ISA_OPCODE_HH

#include <cstdint>

namespace pe::isa
{

enum class Opcode : uint8_t
{
    Nop = 0,

    // ALU, register-register.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr, Sra,
    Slt, Sle, Seq, Sne, Sgt, Sge,

    // ALU, register-immediate.
    Addi, Andi, Ori, Xori, Shli, Shri, Slti,
    Li,                 //!< rd <- imm (full 32-bit immediate)

    // Memory: word load/store, address = regs[rs1] + imm.
    Ld,                 //!< rd <- mem[rs1 + imm]
    St,                 //!< mem[rs1 + imm] <- rs2

    // Control flow.  Branch/jump targets are absolute code indices.
    Beq, Bne, Blt, Bge, Ble, Bgt,
    Jmp,                //!< pc <- imm
    Jal,                //!< rd <- pc + 1; pc <- imm
    Jr,                 //!< pc <- regs[rs1]

    // Allocation and detector hooks.
    Alloc,              //!< rd <- bump-allocate regs[rs1] words
    Chkb,               //!< checker validates address regs[rs1] + imm
    Assert,             //!< report assertion imm when regs[rs1] == 0
    Regobj,             //!< register object [regs[rs1], +regs[rs2])
    Unregobj,           //!< unregister object at base regs[rs1]

    // PathExpander predicated fixing (NOPs unless NT-entry predicate).
    Pfix,               //!< rd <- imm
    Pfixst,             //!< mem[rs1 + imm] <- rs2

    // System call; imm selects the Syscall.
    Sys,

    NumOpcodes
};

/** Syscall selectors carried in the imm field of Sys. */
enum class Syscall : int32_t
{
    Exit = 0,           //!< end of program
    PrintInt,           //!< output regs[rs1] as an integer
    PrintChar,          //!< output regs[rs1] as a character
    ReadInt,            //!< rd <- next input word (or -1 at EOF)
    ReadChar,           //!< rd <- next input word (or -1 at EOF)
};

/** Human-readable mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** True for the six conditional branch opcodes. */
bool isConditionalBranch(Opcode op);

/** True for opcodes that read or write data memory. */
bool isMemoryOp(Opcode op);

/** True for the predicated fixing opcodes. */
bool isPredicatedFix(Opcode op);

} // namespace pe::isa

#endif // PE_ISA_OPCODE_HH
