/**
 * @file
 * The PE-RISC object format: serialize a compiled Program (code in
 * the 64-bit binary encoding, data image, symbol metadata) to a byte
 * stream and load it back.
 *
 * This is how compiled workloads can be shipped without their MiniC
 * sources (e.g. `pe_run --emit-obj prog.po` and later
 * `pe_run prog.po`), and it exercises the binary instruction encoding
 * end to end.
 *
 * Layout (all integers little-endian):
 *
 *   magic   "PERISC1\0"
 *   u32     name length, bytes
 *   u32     dataBase, heapBase, entry, blankAddr
 *   u32     code count,   u64 encoded instructions
 *   u32     locs count,   i32 line + i32 col each
 *   u32     data count,   i32 words
 *   u32     func count,   {u32 len, bytes, u32 startPc, u32 endPc}
 *   u32     assert count, {i32 id, i32 line}
 */

#ifndef PE_ISA_OBJFILE_HH
#define PE_ISA_OBJFILE_HH

#include <iosfwd>
#include <string>

#include "src/isa/program.hh"

namespace pe::isa
{

/** Serialize @p program to @p os. */
void saveObject(const Program &program, std::ostream &os);

/** Deserialize a program; throws FatalError on malformed input. */
Program loadObject(std::istream &is);

/** Convenience file wrappers (throw FatalError on I/O failure). */
void saveObjectFile(const Program &program, const std::string &path);
Program loadObjectFile(const std::string &path);

} // namespace pe::isa

#endif // PE_ISA_OBJFILE_HH
