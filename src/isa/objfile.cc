/**
 * @file
 * Object-format implementation.
 */

#include "src/isa/objfile.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/support/faultinject.hh"
#include "src/support/status.hh"

namespace pe::isa
{

namespace
{

constexpr char magic[8] = {'P', 'E', 'R', 'I', 'S', 'C', '1', '\0'};

void
putU32(std::ostream &os, uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 4);
}

void
putU64(std::ostream &os, uint64_t v)
{
    putU32(os, static_cast<uint32_t>(v));
    putU32(os, static_cast<uint32_t>(v >> 32));
}

void
putI32(std::ostream &os, int32_t v)
{
    putU32(os, static_cast<uint32_t>(v));
}

void
putString(std::ostream &os, const std::string &s)
{
    putU32(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

uint32_t
getU32(std::istream &is)
{
    char b[4];
    is.read(b, 4);
    if (!is)
        pe_fatal("object file truncated");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(static_cast<unsigned char>(b[i]))
             << (8 * i);
    }
    return v;
}

uint64_t
getU64(std::istream &is)
{
    uint64_t lo = getU32(is);
    uint64_t hi = getU32(is);
    return lo | (hi << 32);
}

int32_t
getI32(std::istream &is)
{
    return static_cast<int32_t>(getU32(is));
}

std::string
getString(std::istream &is, uint32_t maxLen = 1u << 20)
{
    uint32_t len = getU32(is);
    if (len > maxLen)
        pe_fatal("object file string too long");
    std::string s(len, '\0');
    is.read(s.data(), len);
    if (!is)
        pe_fatal("object file truncated");
    return s;
}

constexpr uint32_t sizeSanityCap = 1u << 26;

uint32_t
getCount(std::istream &is, const char *what)
{
    uint32_t n = getU32(is);
    if (n > sizeSanityCap)
        pe_fatal("object file ", what, " count implausible: ", n);
    return n;
}

} // namespace

void
saveObject(const Program &program, std::ostream &os)
{
    os.write(magic, sizeof(magic));
    putString(os, program.name);
    putU32(os, program.dataBase);
    putU32(os, program.heapBase);
    putU32(os, program.entry);
    putU32(os, program.blankAddr);

    putU32(os, static_cast<uint32_t>(program.code.size()));
    for (const auto &inst : program.code)
        putU64(os, encode(inst));

    putU32(os, static_cast<uint32_t>(program.locs.size()));
    for (const auto &loc : program.locs) {
        putI32(os, loc.line);
        putI32(os, loc.col);
    }

    putU32(os, static_cast<uint32_t>(program.dataInit.size()));
    for (int32_t w : program.dataInit)
        putI32(os, w);

    putU32(os, static_cast<uint32_t>(program.funcs.size()));
    for (const auto &f : program.funcs) {
        putString(os, f.name);
        putU32(os, f.startPc);
        putU32(os, f.endPc);
    }

    putU32(os, static_cast<uint32_t>(program.assertLocs.size()));
    for (const auto &[id, loc] : program.assertLocs) {
        putI32(os, id);
        putI32(os, loc.line);
    }
}

Program
loadObject(std::istream &is)
{
    char m[8];
    is.read(m, sizeof(m));
    if (!is || std::memcmp(m, magic, sizeof(magic)) != 0)
        pe_fatal("not a PE-RISC object file");

    Program p;
    p.name = getString(is);
    p.dataBase = getU32(is);
    p.heapBase = getU32(is);
    p.entry = getU32(is);
    p.blankAddr = getU32(is);

    uint32_t n = getCount(is, "code");
    p.code.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        p.code.push_back(decode(getU64(is)));

    n = getCount(is, "locs");
    p.locs.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        SourceLoc loc;
        loc.line = getI32(is);
        loc.col = getI32(is);
        p.locs.push_back(loc);
    }

    n = getCount(is, "data");
    p.dataInit.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        p.dataInit.push_back(getI32(is));

    n = getCount(is, "func");
    for (uint32_t i = 0; i < n; ++i) {
        FuncInfo f;
        f.name = getString(is);
        f.startPc = getU32(is);
        f.endPc = getU32(is);
        p.funcs.push_back(std::move(f));
    }

    n = getCount(is, "assert");
    for (uint32_t i = 0; i < n; ++i) {
        int32_t id = getI32(is);
        int32_t line = getI32(is);
        p.assertLocs[id] = SourceLoc{line, 0};
    }

    if (p.entry > p.code.size())
        pe_fatal("object file entry out of range");
    return p;
}

void
saveObjectFile(const Program &program, const std::string &path)
{
    fault::site("objfile.write");
    std::ofstream os(path, std::ios::binary);
    if (!os)
        pe_fatal("cannot write '", path, "'");
    saveObject(program, os);
    if (!os)
        pe_fatal("write to '", path, "' failed");
}

Program
loadObjectFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        pe_fatal("cannot open '", path, "'");
    return loadObject(is);
}

} // namespace pe::isa
