/**
 * @file
 * Register-file conventions for PE-RISC.
 *
 * 32 general-purpose 32-bit registers.  r0 reads as zero and ignores
 * writes.  The remaining conventions exist for the MiniC ABI:
 *
 *   r1  sp   stack pointer (full-descending, word granularity)
 *   r2  fp   frame pointer
 *   r3  ra   return address (code index)
 *   r4  rv   return value
 *   r5-r7    assembler/runtime temporaries
 *   r8-r27   expression evaluation stack of the MiniC code generator
 *   r28-r31  code-generator scratch (address computation, fixing)
 */

#ifndef PE_ISA_REGS_HH
#define PE_ISA_REGS_HH

#include <cstdint>

namespace pe::isa
{

constexpr int numRegs = 32;

namespace reg
{
constexpr uint8_t zero = 0;
constexpr uint8_t sp = 1;
constexpr uint8_t fp = 2;
constexpr uint8_t ra = 3;
constexpr uint8_t rv = 4;
constexpr uint8_t t0 = 5;
constexpr uint8_t t1 = 6;
constexpr uint8_t t2 = 7;
constexpr uint8_t evalBase = 8;   //!< first expression-stack register
constexpr uint8_t evalLimit = 28; //!< one past the last expression register
constexpr uint8_t s0 = 28;        //!< codegen scratch
constexpr uint8_t s1 = 29;
constexpr uint8_t s2 = 30;
constexpr uint8_t s3 = 31;
} // namespace reg

} // namespace pe::isa

#endif // PE_ISA_REGS_HH
