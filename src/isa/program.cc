/**
 * @file
 * Program image helpers.
 */

#include "src/isa/program.hh"

#include <sstream>

namespace pe::isa
{

SourceLoc
Program::locOf(uint32_t pc) const
{
    if (pc < locs.size())
        return locs[pc];
    return SourceLoc{};
}

const std::string &
Program::funcOf(uint32_t pc) const
{
    static const std::string unknown = "?";
    for (const auto &f : funcs) {
        if (pc >= f.startPc && pc < f.endPc)
            return f.name;
    }
    return unknown;
}

std::vector<uint32_t>
Program::branchPcs() const
{
    std::vector<uint32_t> pcs;
    for (uint32_t pc = 0; pc < code.size(); ++pc) {
        if (isConditionalBranch(code[pc].op))
            pcs.push_back(pc);
    }
    return pcs;
}

size_t
Program::numBranches() const
{
    return branchPcs().size();
}

std::string
Program::describePc(uint32_t pc) const
{
    std::ostringstream oss;
    oss << funcOf(pc) << ":" << locOf(pc).line;
    return oss.str();
}

} // namespace pe::isa
