/**
 * @file
 * The loadable program image produced by the MiniC compiler and
 * consumed by the simulator, the coverage tracker and PathExpander.
 */

#ifndef PE_ISA_PROGRAM_HH
#define PE_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/isa/instruction.hh"

namespace pe::isa
{

/** Source position inside the MiniC translation unit. */
struct SourceLoc
{
    int line = 0;
    int col = 0;
};

/** Kinds of memory objects registered with the dynamic checkers. */
enum class ObjectKind : int32_t
{
    GlobalArray = 0,
    StackArray = 1,
    HeapBlock = 2,
    BlankStruct = 3,
};

/** Function extent, for symbolization of report sites. */
struct FuncInfo
{
    std::string name;
    uint32_t startPc = 0;   //!< first code index
    uint32_t endPc = 0;     //!< one past the last code index
};

/**
 * A complete PE-RISC program image.
 *
 * Code lives in a separate (Harvard) instruction store indexed by PC.
 * Data memory layout, in word addresses:
 *
 *   [0, dataBase)              reserved words (heap-pointer cell, ...)
 *   [dataBase, heapBase)       globals, string literals, blank struct
 *   [heapBase, stack)          heap, bump-allocated upward
 *   [... memWords)             stack, growing downward from the top
 */
struct Program
{
    /**
     * Words [0, nullZoneWords) are the unmapped "null zone": both
     * checkers treat accesses there as wild (null-pointer derefs).
     * Runtime cells (the heap bump pointer) live just above it.
     */
    static constexpr uint32_t nullZoneWords = 8;
    /** Word address of the heap bump-pointer cell. */
    static constexpr uint32_t heapPtrCell = 8;
    /** First word address usable for globals. */
    static constexpr uint32_t defaultDataBase = 16;
    /** Guard-zone width, in words, around every checked object. */
    static constexpr uint32_t guardWords = 2;

    std::vector<Instruction> code;
    std::vector<SourceLoc> locs;            //!< parallel to code

    std::vector<int32_t> dataInit;          //!< globals image at dataBase
    uint32_t dataBase = defaultDataBase;
    uint32_t heapBase = defaultDataBase;    //!< first heap word
    uint32_t entry = 0;                     //!< initial PC
    uint32_t blankAddr = 0;                 //!< blank-structure base

    std::vector<FuncInfo> funcs;
    std::unordered_map<int32_t, SourceLoc> assertLocs;
    std::string name;                       //!< workload name

    /** Source location of code index @p pc (0/0 when unknown). */
    SourceLoc locOf(uint32_t pc) const;

    /** Name of the function containing @p pc ("?" when unknown). */
    const std::string &funcOf(uint32_t pc) const;

    /** All conditional-branch code indices, in program order. */
    std::vector<uint32_t> branchPcs() const;

    /** Count of conditional branches (== branchPcs().size()). */
    size_t numBranches() const;

    /** Human-readable "func:line" tag for a report site. */
    std::string describePc(uint32_t pc) const;
};

} // namespace pe::isa

#endif // PE_ISA_PROGRAM_HH
