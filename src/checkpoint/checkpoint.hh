/**
 * @file
 * Architectural-register checkpointing for the standard configuration
 * (paper Section 4.2: "it checkpoints the architectural registers as
 * well as the program counter in a way similar to previous work").
 */

#ifndef PE_CHECKPOINT_CHECKPOINT_HH
#define PE_CHECKPOINT_CHECKPOINT_HH

#include <array>
#include <cstdint>

#include "src/isa/regs.hh"

namespace pe::sim
{
struct Core;
} // namespace pe::sim

namespace pe::checkpoint
{

/** Snapshot of one core's architectural state. */
struct RegCheckpoint
{
    std::array<int32_t, isa::numRegs> regs{};
    uint32_t pc = 0;
    bool ntEntryPred = false;
};

/** Capture @p core into a checkpoint. */
RegCheckpoint take(const sim::Core &core);

/** Restore @p core from @p cp. */
void restore(sim::Core &core, const RegCheckpoint &cp);

} // namespace pe::checkpoint

#endif // PE_CHECKPOINT_CHECKPOINT_HH
