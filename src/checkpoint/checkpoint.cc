/**
 * @file
 * Checkpoint/rollback implementation.
 */

#include "src/checkpoint/checkpoint.hh"

#include "src/sim/core.hh"

namespace pe::checkpoint
{

RegCheckpoint
take(const sim::Core &core)
{
    RegCheckpoint cp;
    cp.regs = core.regs;
    cp.pc = core.pc;
    cp.ntEntryPred = core.ntEntryPred;
    return cp;
}

void
restore(sim::Core &core, const RegCheckpoint &cp)
{
    core.regs = cp.regs;
    core.pc = cp.pc;
    core.ntEntryPred = cp.ntEntryPred;
}

} // namespace pe::checkpoint
